//! Property tests: every decoded implementation satisfies the paper's
//! constraint families (2a)–(2h) and (3a)–(3b), for arbitrary genotypes.

use eea_bist::paper_table1;
use eea_dse::{augment, DiagSpec, DseProblem};
use eea_model::{paper_case_study, Implementation, ResourceKind};
use proptest::prelude::*;

fn quick_diag() -> DiagSpec {
    let case = paper_case_study();
    augment(&case, &paper_table1()[..3]).expect("gateway present")
}

/// Checks the paper's constraint families directly on a decoded
/// implementation (independent re-implementation of the semantics, not of
/// the encoding).
fn check_constraints(diag: &DiagSpec, x: &Implementation) {
    let spec = &diag.spec;
    let app = &spec.application;

    // Functional tasks bound exactly once; diagnostic at most once (2a).
    for t in app.task_ids() {
        let bound = x.binding_of(t).is_some();
        if app.task(t).kind.is_diagnostic() {
            // at most once is implied by the map structure; nothing to do
        } else {
            assert!(bound, "functional task {t} unbound");
        }
        if let Some(r) = x.binding_of(t) {
            assert!(
                spec.mapping_options(t).contains(&r),
                "illegal binding of {t}"
            );
        }
    }

    // (3a) at most one profile per ECU; (3b) data task iff test task.
    for ecu in diag.bist_ecus() {
        let selected = diag
            .options_of(ecu)
            .filter(|o| x.binding_of(o.test).is_some())
            .count();
        assert!(selected <= 1, "(3a) violated on {ecu}");
    }
    for o in &diag.options {
        assert_eq!(
            x.binding_of(o.test).is_some(),
            x.binding_of(o.data).is_some(),
            "(3b) violated"
        );
    }

    // (2h) no diagnosis-only resources.
    for o in &diag.options {
        for task in [o.test, o.data] {
            if let Some(r) = x.binding_of(task) {
                assert!(
                    x.tasks_on(r).any(|t| !app.task(t).kind.is_diagnostic()),
                    "(2h) violated: {r} hosts only diagnosis"
                );
            }
        }
    }

    // (2b)-(2g) summarised: structural route validation (connected route
    // containing sender and bound receivers) plus cycle-freedom.
    spec.validate_implementation(x).expect("valid implementation");
    for route in x.routing.values() {
        let unique: std::collections::BTreeSet<_> = route.iter().collect();
        assert_eq!(unique.len(), route.len(), "(2d) violated: cycle in route");
    }

    // Messages of unbound (diagnostic) senders have no route.
    for m in app.message_ids() {
        let sender = app.message(m).sender;
        if x.binding_of(sender).is_none() {
            assert!(
                !x.routing.contains_key(&m),
                "route exists for inactive message {m}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary genotypes decode to implementations satisfying every
    /// constraint family.
    #[test]
    fn decoded_solutions_satisfy_all_constraints(seed in any::<u64>()) {
        let diag = quick_diag();
        let mut problem = DseProblem::new(&diag);
        let n = eea_moea::Problem::genotype_len(&problem);
        // Deterministic pseudo-random genotype from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let genotype: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = problem.decode(&genotype).expect("feasible decode");
        check_constraints(&diag, &x);
    }
}

/// The all-zero and all-one genotypes are valid corner cases.
#[test]
fn corner_genotypes_decode() {
    let diag = quick_diag();
    let mut problem = DseProblem::new(&diag);
    let n = eea_moea::Problem::genotype_len(&problem);
    for fill in [0.0, 1.0, 0.5] {
        let genotype = vec![fill; n];
        let x = problem.decode(&genotype).expect("feasible decode");
        check_constraints(&diag, &x);
    }
}

/// The gateway always hosts the mandatory collection task, so it is always
/// allocated — the precondition for gateway-stored test data.
#[test]
fn gateway_always_allocated() {
    let diag = quick_diag();
    let mut problem = DseProblem::new(&diag);
    let n = eea_moea::Problem::genotype_len(&problem);
    let x = problem.decode(&vec![0.25; n]).expect("feasible");
    assert_eq!(x.binding_of(diag.collect), Some(diag.gateway));
    assert!(x.allocation.contains(&diag.gateway));
    assert_eq!(
        diag.spec.architecture.resource(diag.gateway).kind,
        ResourceKind::Gateway
    );
}

/// Polarity genes steer BIST selection: all-true polarities select
/// strictly more sessions than all-false polarities.
#[test]
fn polarity_steers_bist_selection() {
    let diag = quick_diag();
    let mut problem = DseProblem::new(&diag);
    let n = eea_moea::Problem::genotype_len(&problem) / 2;

    let mut all_false = vec![0.9; 2 * n];
    for g in all_false.iter_mut().skip(n) {
        *g = 0.0;
    }
    let x0 = problem.decode(&all_false).expect("feasible");
    let selected0 = diag
        .options
        .iter()
        .filter(|o| x0.binding_of(o.test).is_some())
        .count();

    let mut all_true = vec![0.9; 2 * n];
    for g in all_true.iter_mut().skip(n) {
        *g = 1.0;
    }
    let x1 = problem.decode(&all_true).expect("feasible");
    let selected1 = diag
        .options
        .iter()
        .filter(|o| x1.binding_of(o.test).is_some())
        .count();

    assert_eq!(selected0, 0, "negative polarity selects no BIST");
    assert_eq!(
        selected1,
        diag.bist_ecus().len(),
        "positive polarity selects one session per ECU"
    );
}
