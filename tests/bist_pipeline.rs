//! Integration tests of the full BIST substrate pipeline: netlist →
//! fault simulation → ATPG → STUMPS session → profile generation.

use eea_atpg::{generate_tests, AtpgConfig};
use eea_bist::{
    generate_profiles, paper_table1, CoverageTarget, Lfsr, ProfileConfig, StumpsSession,
};
use eea_faultsim::{FaultSim, FaultUniverse, PatternBlock};
use eea_netlist::{bench_format, synthesize, ScanChains, SynthConfig};

fn cut() -> eea_netlist::Circuit {
    synthesize(&SynthConfig {
        gates: 400,
        inputs: 16,
        dffs: 32,
        seed: 0xBEEF,
        ..SynthConfig::default()
    }).expect("synthesizes")
}

/// Mixed-mode flow: LFSR random phase covers most faults, PODEM top-off
/// pushes coverage to the ATPG ceiling — the Table I generation recipe.
#[test]
fn mixed_mode_flow_reaches_atpg_ceiling() {
    let c = cut();
    let chains = ScanChains::balanced(&c, 8).expect("at least one chain");

    // Random phase.
    let mut universe = FaultUniverse::collapsed(&c);
    let mut sim = FaultSim::new(&c);
    let mut lfsr = Lfsr::new32(0xACE1);
    for _ in 0..16 {
        let block = eea_bist::lfsr_pattern_block(&c, &chains, &mut lfsr, 64);
        sim.detect_block(&block, &mut universe);
    }
    let random_cov = universe.coverage();
    assert!(random_cov > 0.5, "random coverage = {random_cov}");

    // Deterministic top-off.
    let run = eea_atpg::generate_tests_for(&c, &mut universe, &AtpgConfig::default());
    let final_cov = universe.coverage();
    assert!(final_cov > random_cov, "top-off must add coverage");
    assert!(final_cov > 0.85, "final coverage = {final_cov}");
    assert!(!run.cubes.is_empty());

    // Compare against a from-scratch ATPG ceiling.
    let scratch = generate_tests(&c, &AtpgConfig::default());
    assert!(
        (final_cov - scratch.coverage()).abs() < 0.05,
        "mixed-mode ({final_cov}) should land near the scratch ATPG ceiling ({})",
        scratch.coverage()
    );
}

/// The STUMPS session detects injected faults through signature
/// mismatches, and the failing window localises the first detection.
#[test]
fn stumps_session_localises_faults() {
    let c = cut();
    let chains = ScanChains::balanced(&c, 8).expect("at least one chain");
    let session = StumpsSession::new(&c, &chains, 0x1234, 16);
    let golden = session.run_golden(256);
    assert_eq!(golden.signatures.len(), 16);

    // Find the first block-detectable faults and verify fail data.
    let universe = FaultUniverse::collapsed(&c);
    let mut sim = FaultSim::new(&c);
    let mut lfsr = Lfsr::new32(0x1234);
    let block = eea_bist::lfsr_pattern_block(&c, &chains, &mut lfsr, 64);
    sim.run_good(&block);
    let mut checked = 0;
    for fi in 0..universe.num_faults() {
        let fault = universe.fault(fi);
        let mask = sim.detect_mask(fault, &block, false);
        if mask.is_zero() {
            continue;
        }
        let fail = session.run_with_fault(fault, &golden);
        assert!(!fail.is_pass(), "{fault} detected in block but session passed");
        // First failing window is consistent with the first detecting
        // pattern (window size 16).
        let first_pattern = mask.trailing_zeros() as u64;
        let expected_window = first_pattern / 16;
        assert!(
            u64::from(fail.entries()[0].window) <= expected_window,
            "{fault}: window {} later than expected {}",
            fail.entries()[0].window,
            expected_window
        );
        checked += 1;
        if checked >= 25 {
            break;
        }
    }
    assert!(checked >= 10, "too few detectable faults exercised");
}

/// Profile generation reproduces the Table I *trends* on an open circuit:
/// runtime grows with pattern count, deterministic data shrinks, coverage
/// targets order the rows.
#[test]
fn profile_generation_matches_table1_trends() {
    let c = cut();
    let cfg = ProfileConfig {
        prp_counts: vec![128, 512, 2048],
        targets: vec![CoverageTarget::Max, CoverageTarget::OfMax(0.95)],
        num_chains: 8,
        ..ProfileConfig::default()
    };
    let profiles = generate_profiles(&c, &cfg).expect("profiles generate");
    assert_eq!(profiles.len(), 6);

    // Same trends as the published table.
    let published = paper_table1();
    // (a) runtime increases with PRPs within a coverage class.
    assert!(profiles[2].runtime_ms > profiles[0].runtime_ms);
    assert!(published[4].runtime_ms > published[0].runtime_ms);
    // (b) the low-coverage target needs less stored data than max.
    for pair in profiles.chunks(2) {
        assert!(pair[0].data_bytes >= pair[1].data_bytes);
        assert!(pair[0].coverage >= pair[1].coverage - 1e-9);
    }
    // (c) more PRPs => fewer deterministic patterns for the same target.
    assert!(
        profiles[4].deterministic_patterns <= profiles[0].deterministic_patterns,
        "{} vs {}",
        profiles[4].deterministic_patterns,
        profiles[0].deterministic_patterns
    );
}

/// Scan-chain and pattern bookkeeping stay consistent through the stack:
/// the chain placement maps every scan cell to exactly one (chain, slot).
#[test]
fn scan_placement_is_bijective() {
    let c = cut();
    for chains_n in [1, 4, 7, 32] {
        let chains = ScanChains::balanced(&c, chains_n).expect("at least one chain");
        let mut seen = vec![false; c.num_dffs()];
        for ci in 0..chains.num_chains() {
            for (pos, &ff) in chains.chain(ci).iter().enumerate() {
                let idx = c
                    .dffs()
                    .iter()
                    .position(|&d| d == ff)
                    .expect("chain cell is a dff");
                assert!(!seen[idx], "cell appears twice");
                seen[idx] = true;
                assert_eq!(chains.placement(idx), (ci, pos));
            }
        }
        assert!(seen.iter().all(|&s| s), "every dff placed");
    }
}

/// The classic benchmark circuits parse and run through the whole pipeline.
#[test]
fn iscas_circuits_run_through_pipeline() {
    for src in [bench_format::C17, bench_format::S27] {
        let c = bench_format::parse(src).expect("parses");
        let run = generate_tests(&c, &AtpgConfig::default());
        assert!(run.coverage() > 0.95, "coverage = {}", run.coverage());
        let chains = ScanChains::balanced(&c, 2).expect("at least one chain");
        let session = StumpsSession::new(&c, &chains, 0xF00D, 8);
        let golden = session.run_golden(64);
        assert_eq!(golden.signatures.len(), 8);
        // A fault-free re-run yields identical signatures.
        assert_eq!(session.run_golden(64), golden);
    }
}

/// Random patterns never detect a fault PODEM proved untestable
/// (cross-validation of ATPG redundancy proofs against the simulator).
#[test]
fn untestable_faults_never_detected_by_random_patterns() {
    let c = synthesize(&SynthConfig {
        gates: 150,
        inputs: 10,
        dffs: 8,
        seed: 0x5EED,
        ..SynthConfig::default()
    }).expect("synthesizes");
    let mut podem = eea_atpg::Podem::new(&c, 50_000);
    let universe = FaultUniverse::collapsed(&c);
    let untestable: Vec<_> = (0..universe.num_faults())
        .filter(|&fi| {
            matches!(
                podem.run(universe.fault(fi)),
                eea_atpg::AtpgOutcome::Untestable
            )
        })
        .collect();
    let mut sim = FaultSim::new(&c);
    let mut rng = 0x0DDB_1A5E_0DDB_1A5Eu64;
    for _ in 0..64 {
        let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
        block.fill_words(|| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        });
        sim.run_good(&block);
        for &fi in &untestable {
            assert!(
                sim.detect_mask(universe.fault(fi), &block, true).is_zero(),
                "untestable fault {} detected!",
                universe.fault(fi)
            );
        }
    }
}
