//! Property tests for the fleet engine's determinism contract: for a
//! *random* campaign configuration, the fleet report at 1 worker thread /
//! 1 aggregation shard is bit-identical to the report at N threads and M
//! shards — same discipline as `tests/parallel_determinism.rs`, but with
//! the configuration space explored by proptest instead of a fixed
//! workload. Covers both axes of the sharded pipeline (DESIGN.md §10):
//! the simulation-stage fold (thread count) and the diagnosis-stage
//! sharding (shard count), across all three transport backends.

use std::sync::OnceLock;

use proptest::prelude::*;

use eea_fleet::{
    Campaign, CampaignConfig, CutConfig, CutModel, EcuSessionPlan, ShutoffModel,
    TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

/// One shared CUT model: building it per case would dominate the runtime
/// without adding coverage (the properties vary the campaign, not the
/// substrate).
fn cut() -> &'static CutModel {
    static CUT: OnceLock<CutModel> = OnceLock::new();
    CUT.get_or_init(|| {
        CutModel::build(CutConfig {
            gates: 100,
            patterns: 128,
            window: 16,
            ..CutConfig::default()
        })
        .unwrap_or_else(|e| panic!("substrate builds: {e}"))
    })
}

/// A small hand-built blueprint set over a given transport backend: one
/// all-local fast implementation, one gateway-streaming implementation,
/// one with a session that can never run (infinite transfer) to exercise
/// the skip path. The timeline quantities are the same for every backend —
/// determinism must hold regardless of where the numbers came from.
fn blueprints(transport: TransportKind) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fleet_report_is_thread_and_shard_count_independent(
        vehicles in 1u32..250,
        defect_pct in 0usize..=100,
        horizon_days in 1u64..=30,
        seed in 0u64..u64::MAX,
        batch_size in 1usize..96,
        threads in 2usize..9,
        shards in 2usize..9,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let mut cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            horizon_s: horizon_days as f64 * 86_400.0,
            seed,
            threads: 1,
            shards: 1,
            shutoff: ShutoffModel::default(),
            batch_size,
        };
        let serial = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        cfg.threads = threads;
        cfg.shards = shards;
        let parallel = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(parallel, serial);
    }

    /// The tentpole contract of the sharded gateway: serial aggregation
    /// (1 shard) and sharded aggregation produce the identical
    /// `FleetReport` across {1, 2, 3, 8} shards, for every transport
    /// backend, over the *same* simulated shards — aggregation is
    /// borrow-only, so one simulation feeds every shard count.
    #[test]
    fn sharded_aggregation_matches_serial_aggregate(
        vehicles in 1u32..300,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 2,
            shards: 1,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        for shards in [1usize, 2, 3, 8] {
            let sharded = Campaign::new(cut(), &bp, CampaignConfig { shards, ..cfg.clone() })
                .unwrap_or_else(|e| panic!("valid campaign: {e}"))
                .run();
            prop_assert_eq!(&sharded, &campaign, "shards = {}", shards);
        }
    }

    #[test]
    fn same_config_same_report_across_runs(
        vehicles in 1u32..120,
        seed in 0u64..u64::MAX,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            seed,
            threads: 1,
            ..CampaignConfig::default()
        };
        let a = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        let b = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(a, b);
    }
}
