//! Property tests for the fleet engine's determinism contract: for a
//! *random* campaign configuration, the fleet report at 1 worker thread /
//! 1 aggregation shard is bit-identical to the report at N threads and M
//! shards — same discipline as `tests/parallel_determinism.rs`, but with
//! the configuration space explored by proptest instead of a fixed
//! workload. Covers both axes of the sharded pipeline (DESIGN.md §10):
//! the simulation-stage fold (thread count) and the diagnosis-stage
//! sharding (shard count), across all three transport backends — plus
//! the gateway ingest service's snapshot-under-load contract
//! (DESIGN.md §12): mid-campaign snapshots are bit-identical across
//! arrival interleaving × queue capacity × thread × shard sweeps.

use std::sync::OnceLock;

use proptest::prelude::*;

use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    GatewayConfig, GatewayService, MarchTest, NoisyChannel, PeriodicTask, ShutoffModel,
    SporadicTask, SramConfig, TaskSetConfig, TransportKind, VehicleArrival, VehicleBlueprint,
};
use eea_model::ResourceId;
use eea_moea::Rng;

/// One shared CUT model: building it per case would dominate the runtime
/// without adding coverage (the properties vary the campaign, not the
/// substrate).
fn cut() -> &'static CutModel {
    static CUT: OnceLock<CutModel> = OnceLock::new();
    CUT.get_or_init(|| {
        CutModel::build(CutConfig {
            gates: 100,
            patterns: 128,
            window: 16,
            ..CutConfig::default()
        })
        .unwrap_or_else(|e| panic!("substrate builds: {e}"))
    })
}

/// A small hand-built blueprint set over a given transport backend: one
/// all-local fast implementation, one gateway-streaming implementation,
/// one with a session that can never run (infinite transfer) to exercise
/// the skip path. The timeline quantities are the same for every backend —
/// determinism must hold regardless of where the numbers came from.
fn blueprints(transport: TransportKind) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
    ]
}

/// One shared March-test model for the mixed-family properties, same
/// rationale as [`cut`].
fn sram() -> &'static MarchTest {
    static SRAM: OnceLock<MarchTest> = OnceLock::new();
    SRAM.get_or_init(|| {
        MarchTest::build(SramConfig::default()).unwrap_or_else(|e| panic!("SRAM builds: {e}"))
    })
}

/// The mixed-family sibling of [`blueprints`]: the SRAM March test
/// replaces the logic CUT on the streaming blueprint and on the second
/// session of the heterogeneous one, and every blueprint carries
/// `task_set` (so `Some` exercises schedule-derived windows fleet-wide).
fn mixed_blueprints(
    transport: TransportKind,
    task_set: Option<&TaskSetConfig>,
) -> Vec<VehicleBlueprint> {
    let mut bp = blueprints(transport);
    bp[1].sessions[0].family = CutFamily::Sram;
    bp[2].sessions[1].family = CutFamily::Sram;
    for b in &mut bp {
        b.task_set = task_set.cloned();
    }
    bp
}

/// [`blueprints`] with every vehicle's upload path re-routed over the
/// given channel — the timeline quantities are unchanged, only the bus
/// between ECU and gateway differs.
fn channel_blueprints(transport: TransportKind, channel: ChannelConfig) -> Vec<VehicleBlueprint> {
    let mut bp = blueprints(transport);
    for b in &mut bp {
        b.channel = channel;
    }
    bp
}

/// A busy-but-schedulable task set: two periodic tasks (hyperperiod
/// 60 s, utilization 0.35), one sporadic task, a 5 s minimum slice.
fn busy_task_set() -> TaskSetConfig {
    TaskSetConfig {
        periodic: vec![
            PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 4_000_000,
                priority: 0,
            },
            PeriodicTask {
                period_us: 60_000_000,
                offset_us: 5_000_000,
                wcet_us: 9_000_000,
                priority: 1,
            },
        ],
        sporadic: vec![SporadicTask {
            min_interarrival_us: 45_000_000,
            wcet_us: 2_000_000,
            priority: 2,
        }],
        min_slice_s: 5.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Equivalence oracle for the schedule-derived window source: a
    /// *degenerate* task set — a single registered-but-idle task, zero
    /// utilization, zero minimum slice — must reproduce the flat-budget
    /// campaign **bit-for-bit**, for any period, fleet and thread count.
    /// This pins the `TaskSchedule` pass-through path against the same
    /// frozen contract `FlatBudget` carries.
    #[test]
    fn degenerate_task_set_reproduces_flat_budget(
        vehicles in 1u32..200,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        threads in 1usize..5,
        idle_period_s in 1u64..=120,
        transport_idx in 0usize..3,
    ) {
        let transport = TransportKind::ALL[transport_idx];
        let degenerate = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: idle_period_s * 1_000_000,
                offset_us: 0,
                wcet_us: 0,
                priority: 0,
            }],
            ..TaskSetConfig::default()
        };
        let flat_bp = blueprints(transport);
        let mut sched_bp = blueprints(transport);
        for b in &mut sched_bp {
            b.task_set = Some(degenerate.clone());
        }
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads,
            ..CampaignConfig::default()
        };
        let flat = Campaign::new(cut(), &flat_bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        let sched = Campaign::new(cut(), &sched_bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(sched, flat);
    }

    /// The determinism contract over heterogeneous CUT families *and*
    /// schedule-derived windows: a mixed logic/SRAM fleet whose
    /// blueprints carry a busy task set reports bit-identically at 1
    /// thread / 1 shard and at N threads / M shards.
    #[test]
    fn mixed_family_campaign_is_thread_and_shard_independent(
        vehicles in 1u32..200,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        threads in 2usize..9,
        shards in 2usize..9,
        scheduled in 0usize..2,
        transport_idx in 0usize..3,
    ) {
        let ts = busy_task_set();
        let bp = mixed_blueprints(
            TransportKind::ALL[transport_idx],
            (scheduled == 1).then_some(&ts),
        );
        let mut cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 1,
            shards: 1,
            ..CampaignConfig::default()
        };
        let serial = Campaign::with_models(cut(), Some(sram()), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        // When the campaign is genuinely mixed (some detection came from
        // a non-logic family), the per-family split must account every
        // detection exactly once.
        if !serial.per_family.is_empty() {
            let split: u64 = serial.per_family.iter().map(|f| f.detected).sum();
            prop_assert_eq!(split, serial.detected);
        }
        cfg.threads = threads;
        cfg.shards = shards;
        let parallel = Campaign::with_models(cut(), Some(sram()), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn fleet_report_is_thread_and_shard_count_independent(
        vehicles in 1u32..250,
        defect_pct in 0usize..=100,
        horizon_days in 1u64..=30,
        seed in 0u64..u64::MAX,
        batch_size in 1usize..96,
        threads in 2usize..9,
        shards in 2usize..9,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let mut cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            horizon_s: horizon_days as f64 * 86_400.0,
            seed,
            threads: 1,
            shards: 1,
            shutoff: ShutoffModel::default(),
            batch_size,
        };
        let serial = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        cfg.threads = threads;
        cfg.shards = shards;
        let parallel = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(parallel, serial);
    }

    /// The tentpole contract of the sharded gateway: serial aggregation
    /// (1 shard) and sharded aggregation produce the identical
    /// `FleetReport` across {1, 2, 3, 8} shards, for every transport
    /// backend, over the *same* simulated shards — aggregation is
    /// borrow-only, so one simulation feeds every shard count.
    #[test]
    fn sharded_aggregation_matches_serial_aggregate(
        vehicles in 1u32..300,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 2,
            shards: 1,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        for shards in [1usize, 2, 3, 8] {
            let sharded = Campaign::new(cut(), &bp, CampaignConfig { shards, ..cfg.clone() })
                .unwrap_or_else(|e| panic!("valid campaign: {e}"))
                .run();
            prop_assert_eq!(&sharded, &campaign, "shards = {}", shards);
        }
    }

    /// The gateway tentpole contract, snapshot-under-load determinism: a
    /// mid-campaign snapshot after ingesting a given *set* of arrivals
    /// (a random prefix of the fleet) at a random time t is bit-identical
    /// regardless of arrival interleaving (Fisher-Yates permutation),
    /// queue capacity / drain cadence, thread count and shard count.
    #[test]
    fn gateway_snapshot_is_interleaving_thread_and_shard_independent(
        vehicles in 1u32..220,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        prefix_pct in 0usize..=100,
        t_pct in 1usize..=100,
        threads in 1usize..9,
        shards in 1usize..9,
        capacity in 1usize..257,
        shuffle_seed in 0u64..u64::MAX,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 1,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"));
        let arrivals: Vec<VehicleArrival> = campaign.arrivals().collect();
        let n_prefix = arrivals.len() * prefix_pct / 100;
        let horizon_s = campaign.config().horizon_s;
        let at_s = horizon_s * t_pct as f64 / 100.0;

        // Reference: vehicle-index order, serial service, ample queue.
        let mut reference = GatewayService::new(cut(), GatewayConfig {
            vehicles,
            horizon_s,
            shards: 1,
            threads: 1,
            ..GatewayConfig::default()
        }).unwrap_or_else(|e| panic!("provisions: {e}"));
        for &a in &arrivals[..n_prefix] {
            reference.accept(a).unwrap_or_else(|e| panic!("accept: {e}"));
        }
        let want = reference.snapshot_at(at_s);

        // The same *set*, shuffled, folded through a small bounded queue
        // (drain cadence = whenever it fills) at other thread/shard counts.
        let mut permuted: Vec<VehicleArrival> = arrivals[..n_prefix].to_vec();
        let mut rng = Rng::new(shuffle_seed);
        for i in (1..permuted.len()).rev() {
            let j = rng.below(i + 1);
            permuted.swap(i, j);
        }
        let mut svc = GatewayService::new(cut(), GatewayConfig {
            vehicles,
            horizon_s,
            queue_capacity: capacity,
            shards,
            threads,
            ..GatewayConfig::default()
        }).unwrap_or_else(|e| panic!("provisions: {e}"));
        for &a in &permuted {
            svc.accept(a).unwrap_or_else(|e| panic!("accept: {e}"));
        }
        let got = svc.snapshot_at(at_s);
        prop_assert_eq!(got, want);
    }

    /// The one-shot wrapper under *real* producer nondeterminism: feeding
    /// the whole fleet through the parallel bounded-channel producers and
    /// snapshotting at the horizon equals the serial `run()`, at any
    /// thread and shard count.
    #[test]
    fn gateway_feed_at_any_parallelism_matches_run(
        vehicles in 1u32..260,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        threads in 1usize..9,
        shards in 1usize..9,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 1,
            shards: 1,
            ..CampaignConfig::default()
        };
        let serial = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        let campaign = Campaign::new(cut(), &bp, CampaignConfig { threads, shards, ..cfg })
            .unwrap_or_else(|e| panic!("valid campaign: {e}"));
        let mut svc = campaign.gateway().unwrap_or_else(|e| panic!("provisions: {e}"));
        campaign.feed(&mut svc).unwrap_or_else(|e| panic!("feeds: {e}"));
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        prop_assert_eq!(snap.report, serial);
        prop_assert_eq!(snap.ingested, u64::from(vehicles));
        prop_assert_eq!(snap.shed, 0, "the trusted feed path never sheds");
        prop_assert_eq!(snap.duplicates, 0);
    }

    /// Equivalence oracle for the channel layer: a zero-rate, uncapped
    /// `NoisyChannel` — which still owns and advances its dedicated
    /// per-vehicle RNG streams — must reproduce the `Clean` campaign
    /// **bit-for-bit**, for any campaign seed, channel seed, fleet size,
    /// transport and thread count. This pins the noisy path against the
    /// same frozen contract `Clean` carries (the channel sibling of
    /// `degenerate_task_set_reproduces_flat_budget`).
    #[test]
    fn zero_rate_noisy_channel_reproduces_clean(
        vehicles in 1u32..200,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        channel_seed in 0u64..u64::MAX,
        threads in 1usize..5,
        transport_idx in 0usize..3,
    ) {
        let transport = TransportKind::ALL[transport_idx];
        let clean_bp = blueprints(transport);
        let noisy_bp = channel_blueprints(
            transport,
            ChannelConfig::Noisy(NoisyChannel {
                seed: channel_seed,
                ..NoisyChannel::default()
            }),
        );
        let cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads,
            ..CampaignConfig::default()
        };
        let clean = Campaign::new(cut(), &clean_bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        let noisy = Campaign::new(cut(), &noisy_bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert!(noisy.robustness.is_none(), "zero rates inflict nothing");
        prop_assert_eq!(noisy, clean);
    }

    /// The determinism contract under *active* impairment: a fleet on an
    /// aggressively noisy channel (frame errors, corruption, window loss,
    /// a tight truncation cap) reports bit-identically at 1 thread /
    /// 1 shard versus N threads / M shards — including the f64
    /// retransmit-overhead accumulator and the robustness rank CDF — and
    /// the identical report falls out of the gateway when the same
    /// arrivals are fed in a random interleaving through a small bounded
    /// queue.
    #[test]
    fn impaired_campaign_is_thread_shard_and_interleaving_independent(
        vehicles in 1u32..200,
        defect_pct in 0usize..=100,
        seed in 0u64..u64::MAX,
        threads in 2usize..9,
        shards in 2usize..9,
        shuffle_seed in 0u64..u64::MAX,
        capacity in 1usize..257,
        transport_idx in 0usize..3,
    ) {
        let channel = ChannelConfig::Noisy(NoisyChannel {
            frame_error_rate: 0.05,
            corruption_rate: 0.2,
            window_loss_rate: 0.15,
            truncation_cap_bytes: 96,
            seed: seed.rotate_left(17),
        });
        let bp = channel_blueprints(TransportKind::ALL[transport_idx], channel);
        let mut cfg = CampaignConfig {
            vehicles,
            defect_fraction: defect_pct as f64 / 100.0,
            seed,
            threads: 1,
            shards: 1,
            ..CampaignConfig::default()
        };
        let serial = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        cfg.threads = threads;
        cfg.shards = shards;
        let parallel = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(&parallel, &serial);

        // The same fleet through the gateway service: shuffled arrival
        // order, bounded queue, snapshot at the horizon.
        let campaign = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"));
        let mut arrivals: Vec<VehicleArrival> = campaign.arrivals().collect();
        let mut rng = Rng::new(shuffle_seed);
        for i in (1..arrivals.len()).rev() {
            let j = rng.below(i + 1);
            arrivals.swap(i, j);
        }
        let horizon_s = campaign.config().horizon_s;
        let mut svc = GatewayService::new(cut(), GatewayConfig {
            vehicles,
            horizon_s,
            queue_capacity: capacity,
            shards,
            threads,
            ..GatewayConfig::default()
        }).unwrap_or_else(|e| panic!("provisions: {e}"));
        for &a in &arrivals {
            svc.accept(a).unwrap_or_else(|e| panic!("accept: {e}"));
        }
        let snap = svc.snapshot_at(horizon_s);
        prop_assert_eq!(snap.report, serial);
        prop_assert_eq!(snap.malformed, 0, "well-formed fleets are never rejected");
    }

    #[test]
    fn same_config_same_report_across_runs(
        vehicles in 1u32..120,
        seed in 0u64..u64::MAX,
        transport_idx in 0usize..3,
    ) {
        let bp = blueprints(TransportKind::ALL[transport_idx]);
        let cfg = CampaignConfig {
            vehicles,
            seed,
            threads: 1,
            ..CampaignConfig::default()
        };
        let a = Campaign::new(cut(), &bp, cfg.clone())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        let b = Campaign::new(cut(), &bp, cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run();
        prop_assert_eq!(a, b);
    }
}
