//! End-to-end fleet campaign over the paper case study: explore a (small)
//! Pareto front, decode blueprints, seed real collapsed defects into a
//! fleet, and check that the gateway aggregation pipeline detects **and
//! localizes** every seeded defect within a generous horizon — plus the
//! engine's core contract, bit-identical reports at any thread count.

use eea_bist::paper_table1;
use eea_dse::{augment, explore, DseConfig};
use eea_fleet::{
    blueprints_from_front, Campaign, CampaignConfig, CutConfig, CutModel, FleetReport,
    VehicleBlueprint,
};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

fn campaign_fixture() -> (CutModel, Vec<VehicleBlueprint>) {
    let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..6]).expect("gateway present");
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 24,
            evaluations: 480,
            seed: 0xF1EE7,
            ..Nsga2Config::default()
        },
        threads: 1,
    };
    let front = explore(&diag, &cfg, |_, _| {}).front;
    let blueprints = blueprints_from_front(&diag, &front).expect("front flattens");
    // Restrict to blueprints a commuter duty cycle can finish well inside
    // the horizon: campaign-capable and bounded total session work. The
    // engine itself accepts the full set; the restriction only sharpens
    // the detection assertion below from "most" to "all".
    let filtered: Vec<VehicleBlueprint> = blueprints
        .into_iter()
        .filter(|b| b.is_campaign_capable() && b.total_work_s() < 150_000.0)
        .collect();
    assert!(
        !filtered.is_empty(),
        "exploration front yields at least one lightweight capable blueprint"
    );
    (cut, filtered)
}

fn run(cut: &CutModel, blueprints: &[VehicleBlueprint], threads: usize) -> FleetReport {
    let cfg = CampaignConfig {
        vehicles: 400,
        defect_fraction: 0.2,
        horizon_s: 90.0 * 86_400.0,
        seed: 0xCA4,
        threads,
        batch_size: 16,
        ..CampaignConfig::default()
    };
    Campaign::new(cut, blueprints, cfg).expect("valid campaign").run()
}

#[test]
fn seeded_defects_are_detected_and_localized() {
    let (cut, blueprints) = campaign_fixture();
    let report = run(&cut, &blueprints, 1);

    assert!(
        report.defective > 0,
        "a 20 % defect fraction over 400 vehicles seeds defects"
    );
    assert_eq!(
        report.detected, report.defective,
        "every seeded defect's fail data reaches the gateway within 90 days"
    );
    assert_eq!(
        report.localized, report.detected,
        "window-based diagnosis ranks the true fault in the top equivalence class"
    );
    assert_eq!(report.latency.count, report.detected);
    assert!(report.latency.min_s > 0.0, "detection takes wall time");
    assert!(report.latency.p50_s <= report.latency.p90_s);
    assert!(report.latency.p90_s <= report.latency.p99_s);

    // Findings are consistent with the per-ECU aggregation.
    assert_eq!(report.findings.len() as u32, report.detected);
    let seeded: u32 = report.per_ecu.iter().map(|e| e.seeded).sum();
    let detected: u32 = report.per_ecu.iter().map(|e| e.detected).sum();
    assert_eq!(seeded, report.defective);
    assert_eq!(detected, report.detected);
    for f in &report.findings {
        assert!(f.localized);
        assert_eq!(f.true_fault_rank, 1, "true fault tops its own diagnosis");
        assert!(f.candidates > 0);
        assert!(cut.detectable_faults().contains(&f.fault_index));
    }
    for e in &report.per_ecu {
        let ranked: u32 = e.top_faults.iter().map(|&(_, n)| n).sum();
        assert_eq!(ranked, e.detected, "candidate ranking covers all findings");
    }

    // The coverage curve is monotone and ends fully covered.
    let mut prev = 0.0;
    for &(_, frac) in &report.coverage_over_time {
        assert!(frac >= prev);
        prev = frac;
    }
    assert_eq!(prev, 1.0, "all defects detected by the horizon");

    // Batching covered every upload.
    assert_eq!(report.batches, report.detected.div_ceil(16));
}

// No `EEA_THREADS` manipulation here (unlike tests/parallel_determinism.rs):
// the assertion holds under any override precisely because the report is
// thread-count independent, so mutating process-global state is unnecessary.
#[test]
fn fleet_report_is_bit_identical_at_any_thread_count() {
    let (cut, blueprints) = campaign_fixture();
    let serial = run(&cut, &blueprints, 1);
    for threads in [2, 4, 7] {
        let parallel = run(&cut, &blueprints, threads);
        assert_eq!(
            parallel, serial,
            "fleet report diverged at {threads} threads"
        );
    }
}
