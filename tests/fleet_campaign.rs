//! End-to-end fleet campaign over the paper case study: explore a (small)
//! Pareto front, decode blueprints, seed real collapsed defects into a
//! fleet, and check that the gateway aggregation pipeline detects **and
//! localizes** every seeded defect within a generous horizon — plus the
//! engine's core contract, bit-identical reports at any thread count, for
//! every transport backend (classic-CAN mirroring, CAN FD, FlexRay).

use std::sync::OnceLock;

use eea_bist::paper_table1;
use eea_dse::augment::DiagSpec;
use eea_dse::explore::ExploredImplementation;
use eea_dse::{augment, explore, DseConfig, TransportConfig};
use eea_fleet::{
    blueprints_from_front_with, Campaign, CampaignConfig, CutConfig, CutModel, FleetReport,
    TransportKind, VehicleBlueprint,
};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

struct Fixture {
    cut: CutModel,
    diag: DiagSpec,
    front: Vec<ExploredImplementation>,
}

/// One shared exploration front: the transports are compared on the *same*
/// Pareto-front implementations, and re-exploring per test would dominate
/// the runtime.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..6]).expect("gateway present");
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 24,
                evaluations: 480,
                seed: 0xF1EE7,
                ..Nsga2Config::default()
            },
            threads: 1,
            ..DseConfig::default()
        };
        let front = explore(&diag, &cfg, |_, _| {}).front;
        Fixture { cut, diag, front }
    })
}

/// Blueprints over `transport`, restricted to what a commuter duty cycle
/// can finish well inside the horizon: campaign-capable and bounded total
/// session work. The engine itself accepts the full set; the restriction
/// only sharpens the detection assertion below from "most" to "all".
fn blueprints_for(transport: &TransportConfig) -> Vec<VehicleBlueprint> {
    let f = fixture();
    let blueprints =
        blueprints_from_front_with(&f.diag, &f.front, transport).expect("front flattens");
    let filtered: Vec<VehicleBlueprint> = blueprints
        .into_iter()
        .filter(|b| b.is_campaign_capable() && b.total_work_s() < 150_000.0)
        .collect();
    assert!(
        !filtered.is_empty(),
        "exploration front yields at least one lightweight capable blueprint on {}",
        transport.kind(),
    );
    filtered
}

fn run(cut: &CutModel, blueprints: &[VehicleBlueprint], threads: usize) -> FleetReport {
    let cfg = CampaignConfig {
        vehicles: 400,
        defect_fraction: 0.2,
        horizon_s: 90.0 * 86_400.0,
        seed: 0xCA4,
        threads,
        batch_size: 16,
        ..CampaignConfig::default()
    };
    Campaign::new(cut, blueprints, cfg).expect("valid campaign").run()
}

#[test]
fn seeded_defects_are_detected_and_localized() {
    let cut = &fixture().cut;
    let blueprints = blueprints_for(&TransportConfig::MirroredCan);
    let report = run(cut, &blueprints, 1);

    assert!(
        report.defective > 0,
        "a 20 % defect fraction over 400 vehicles seeds defects"
    );
    assert_eq!(
        report.detected,
        u64::from(report.defective),
        "every seeded defect's fail data reaches the gateway within 90 days"
    );
    assert_eq!(
        report.localized, report.detected,
        "window-based diagnosis ranks the true fault in the top equivalence class"
    );
    assert_eq!(report.latency.count, report.detected);
    assert!(report.latency.min_s > 0.0, "detection takes wall time");
    assert!(report.latency.p50_s <= report.latency.p90_s);
    assert!(report.latency.p90_s <= report.latency.p99_s);

    // Findings are consistent with the per-ECU aggregation.
    assert_eq!(report.findings.len() as u64, report.detected);
    let seeded: u32 = report.per_ecu.iter().map(|e| e.seeded).sum();
    let detected: u32 = report.per_ecu.iter().map(|e| e.detected).sum();
    assert_eq!(seeded, report.defective);
    assert_eq!(u64::from(detected), report.detected);
    for f in &report.findings {
        assert!(f.localized);
        assert_eq!(f.true_fault_rank, 1, "true fault tops its own diagnosis");
        assert!(f.candidates > 0);
        assert!(cut.detectable_faults().contains(&f.fault_index));
    }
    for e in &report.per_ecu {
        let ranked: u32 = e.top_faults.iter().map(|&(_, n)| n).sum();
        assert_eq!(ranked, e.detected, "candidate ranking covers all findings");
    }

    // The coverage curve is monotone and ends fully covered.
    let mut prev = 0.0;
    for &(_, frac) in &report.coverage_over_time {
        assert!(frac >= prev);
        prev = frac;
    }
    assert_eq!(prev, 1.0, "all defects detected by the horizon");

    // Batching covered every upload.
    assert_eq!(report.batches, report.detected.div_ceil(16));
}

// No `EEA_THREADS` manipulation here (unlike tests/parallel_determinism.rs):
// the assertion holds under any override precisely because the report is
// thread-count independent, so mutating process-global state is unnecessary.
#[test]
fn fleet_report_is_bit_identical_at_any_thread_count() {
    let cut = &fixture().cut;
    for kind in TransportKind::ALL {
        let blueprints = blueprints_for(&TransportConfig::for_kind(kind));
        let serial = run(cut, &blueprints, 1);
        for threads in [2, 4, 7] {
            let parallel = run(cut, &blueprints, threads);
            assert_eq!(
                parallel, serial,
                "fleet report diverged at {threads} threads on {kind}"
            );
        }
    }
}

/// The transports genuinely differ end to end: CAN FD's upgraded payloads
/// shorten every remote transfer relative to classic CAN on the *same*
/// implementation, and FlexRay's static slots provide an upload path
/// independent of the mirrored schedule.
#[test]
fn transports_produce_distinct_but_consistent_blueprints() {
    let f = fixture();
    let classic = blueprints_from_front_with(&f.diag, &f.front, &TransportConfig::MirroredCan)
        .expect("classic flattens");
    let fd = blueprints_from_front_with(&f.diag, &f.front, &TransportConfig::can_fd_default())
        .expect("fd flattens");
    let flexray =
        blueprints_from_front_with(&f.diag, &f.front, &TransportConfig::flexray_default())
            .expect("flexray flattens");
    assert_eq!(classic.len(), fd.len());
    assert_eq!(classic.len(), flexray.len());

    let mut remote_sessions = 0usize;
    for (c, d) in classic.iter().zip(&fd) {
        assert_eq!(c.transport, TransportKind::MirroredCan);
        assert_eq!(d.transport, TransportKind::CanFd);
        assert_eq!(c.sessions.len(), d.sessions.len());
        for (cs, ds) in c.sessions.iter().zip(&d.sessions) {
            assert_eq!(cs.ecu, ds.ecu);
            assert_eq!(cs.local_storage, ds.local_storage);
            if !cs.local_storage && cs.transfer_s.is_finite() {
                remote_sessions += 1;
                assert!(
                    ds.transfer_s < cs.transfer_s,
                    "FD upgrade must shorten the remote transfer: {} vs {}",
                    ds.transfer_s,
                    cs.transfer_s
                );
            }
        }
    }
    assert!(
        remote_sessions > 0,
        "front contains at least one gateway-streaming session to compare"
    );
    assert!(
        flexray.iter().any(VehicleBlueprint::is_campaign_capable),
        "static slots give at least one blueprint an upload path"
    );
}
