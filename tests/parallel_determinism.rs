//! The parallel evaluation engine must be a pure performance knob: for a
//! fixed seed, an exploration at any thread count is byte-identical to the
//! single-threaded run — same front, same evaluation count, same
//! convergence trace. The lane scheme (see `eea_dse::EVAL_LANES`) is what
//! makes this hold despite per-solver learned-clause state.

use eea_bist::paper_table1;
use eea_dse::{augment, explore, DseConfig, DseResult};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

fn run(threads: usize) -> DseResult {
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 24,
            evaluations: 600,
            seed: 0xD47E,
            ..Nsga2Config::default()
        },
        threads,
        ..DseConfig::default()
    };
    explore(&diag, &cfg, |_, _| {})
}

// A single test function: the `EEA_THREADS` check mutates process-global
// environment, so it must not run concurrently with the sweep.
#[test]
fn explore_is_bit_identical_at_any_thread_count() {
    std::env::remove_var("EEA_THREADS");
    let serial = run(1);
    for threads in [2, 4, 7] {
        let parallel = run(threads);
        assert_eq!(parallel.threads, threads);
        assert_eq!(parallel.evaluations, serial.evaluations, "threads {threads}");
        assert_eq!(parallel.infeasible, serial.infeasible, "threads {threads}");
        assert_eq!(
            parallel.convergence, serial.convergence,
            "convergence trace diverged at threads {threads}"
        );
        assert_eq!(
            parallel.front.len(),
            serial.front.len(),
            "front size diverged at threads {threads}"
        );
        for (i, (p, s)) in parallel.front.iter().zip(&serial.front).enumerate() {
            assert_eq!(
                p.objectives, s.objectives,
                "objectives of front[{i}] diverged at threads {threads}"
            );
            assert_eq!(
                p.memory, s.memory,
                "memory summary of front[{i}] diverged at threads {threads}"
            );
            assert_eq!(
                p.implementation, s.implementation,
                "decoded implementation of front[{i}] diverged at threads {threads}"
            );
        }
    }

    // `EEA_THREADS` takes precedence over `DseConfig::threads`; the result
    // must still be identical (the knob only moves wall-clock time).
    std::env::set_var("EEA_THREADS", "3");
    let overridden = run(1);
    std::env::remove_var("EEA_THREADS");
    assert_eq!(overridden.threads, 3);
    assert_eq!(overridden.evaluations, serial.evaluations);
    assert_eq!(overridden.convergence, serial.convergence);
    assert_eq!(overridden.front.len(), serial.front.len());
    for (p, s) in overridden.front.iter().zip(&serial.front) {
        assert_eq!(p.objectives, s.objectives);
    }
}
