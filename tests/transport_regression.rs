//! Frozen-front regression guard for the `Transport` refactor.
//!
//! The `MirroredCan` backend must be a *strict refactor* of the historical
//! Eq. (1) free-function path: for a fixed-seed exploration the minimised
//! objective vectors `[cost, -quality, shutoff]` of every front
//! implementation are compared **bit for bit** against a front frozen
//! before the refactor. Any numerical drift — a reordered bandwidth sum, a
//! changed clamp, a different error mapping — trips this test.
//!
//! Regenerate the frozen table (only when the *exploration* itself changes
//! deliberately, never to paper over transport drift) with:
//!
//! ```text
//! EEA_FREEZE_FRONT=1 cargo test -p eea-dse --test transport_regression -- --nocapture
//! ```

use eea_bist::paper_table1;
use eea_dse::augment::augment;
use eea_dse::explore::{explore, DseConfig};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

/// Exploration fixture: small budget, fixed seed, one worker thread.
fn frozen_cfg() -> DseConfig {
    DseConfig {
        nsga2: Nsga2Config {
            population: 20,
            evaluations: 400,
            seed: 0xF40_2E7,
            ..Nsga2Config::default()
        },
        threads: 1,
        ..DseConfig::default()
    }
}

fn run_front() -> Vec<[u64; 3]> {
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
    let result = explore(&diag, &frozen_cfg(), |_, _| {});
    result
        .front
        .iter()
        .map(|e| {
            let v = e.objectives.to_minimized();
            [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()]
        })
        .collect()
}

/// The pre-refactor front: `f64::to_bits` of each minimised objective
/// vector, cost-sorted (the explore() output order).
const FROZEN_FRONT: &[[u64; 3]] = &[
    [0x4079400000000000, 0x8000000000000000, 0x0000000000000000],
    [0x4079494665AA7EC4, 0xBFEECE9ED57275E0, 0x40ADA05A79BBADC1],
    [0x407B841E68A0D34B, 0xBFEF19598536058E, 0x3F73F290ABB44E51],
    [0x407C00B1C0010C71, 0xBFEF3EC283B58B39, 0x3F73F290ABB44E51],
];

#[test]
fn mirrored_can_reproduces_frozen_front_bit_for_bit() {
    let front = run_front();
    if std::env::var("EEA_FREEZE_FRONT").is_ok() {
        println!("const FROZEN_FRONT: &[[u64; 3]] = &[");
        for v in &front {
            println!(
                "    [0x{:016X}, 0x{:016X}, 0x{:016X}],",
                v[0], v[1], v[2]
            );
        }
        println!("];");
        return;
    }
    assert_eq!(
        front.len(),
        FROZEN_FRONT.len(),
        "front size changed: {} vs frozen {}",
        front.len(),
        FROZEN_FRONT.len()
    );
    for (i, (got, want)) in front.iter().zip(FROZEN_FRONT).enumerate() {
        assert_eq!(
            got, want,
            "objective vector {i} drifted: got {:?} ({:e}, {:e}, {:e})",
            got,
            f64::from_bits(got[0]),
            f64::from_bits(got[1]),
            f64::from_bits(got[2]),
        );
    }
}
