//! End-to-end exploration tests on the paper's case study.

use eea_bist::paper_table1;
use eea_dse::explore::baseline_cost;
use eea_dse::{
    augment, explore, fig5_points, fig6_rows, headline, DseConfig, SHUTOFF_MARKER_SPLIT_S,
};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

fn run_exploration(profiles: usize, evaluations: usize, seed: u64) -> eea_dse::DseResult {
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..profiles]).expect("gateway present");
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 30,
            evaluations,
            seed,
            ..Nsga2Config::default()
        },
        threads: 1,
        ..DseConfig::default()
    };
    explore(&diag, &cfg, |_, _| {})
}

#[test]
fn front_reproduces_papers_tradeoff_structure() {
    let res = run_exploration(8, 5_000, 42);
    assert!(res.front.len() >= 10, "front = {}", res.front.len());
    assert_eq!(res.infeasible, 0);

    let points = fig5_points(&res.front);
    // Fig. 5 structure: both marker classes exist — some implementations
    // finish their sessions quickly (local storage), others trade memory
    // cost for long transfers (> 20 s, gateway storage).
    let fast = points.iter().filter(|p| p.fast_shutoff).count();
    let slow = points.len() - fast;
    assert!(fast > 0, "no fast-shutoff implementations found");
    assert!(slow > 0, "no slow-shutoff implementations found");

    // The high-quality cheap implementations are the slow ones (the paper:
    // "these are the implementations which have a high fault coverage with
    // only a minor increase in monetary costs, as their deterministic test
    // patterns are stored centrally at the gateway").
    let best_cheap_slow = points
        .iter()
        .filter(|p| !p.fast_shutoff)
        .map(|p| (p.cost, p.quality_pct))
        .fold((f64::INFINITY, 0.0), |(c, q), (pc, pq)| {
            if pc < c {
                (pc, pq)
            } else {
                (c, q)
            }
        });
    let best_cheap_fast = points
        .iter()
        .filter(|p| p.fast_shutoff && p.quality_pct > 0.0)
        .map(|p| p.cost)
        .fold(f64::INFINITY, f64::min);
    if best_cheap_fast.is_finite() {
        assert!(
            best_cheap_slow.0 <= best_cheap_fast,
            "gateway storage should reach quality cheaper ({} vs {})",
            best_cheap_slow.0,
            best_cheap_fast
        );
    }
}

#[test]
fn headline_quality_within_small_budget() {
    let res = run_exploration(8, 1_500, 7);
    let case = paper_case_study();
    let base = baseline_cost(&case, 800, 3, 1).expect("gateway present");
    let hl = headline(&res.front, Some(base)).expect("headline computable");
    // The paper reports 80.7 % quality within +3.7 % cost; our substrate's
    // exact number differs, but high quality at single-digit extra cost is
    // the reproduced claim.
    assert!(
        hl.best_quality_pct_in_budget > 50.0,
        "only {:.1} % within budget",
        hl.best_quality_pct_in_budget
    );
    assert!(hl.extra_cost_pct <= 3.7 + 1e-9);
}

#[test]
fn fig6_memory_split_tradeoff() {
    let res = run_exploration(8, 1_500, 42);
    let rows = fig6_rows(&res.front, 7);
    assert!(!rows.is_empty());
    // Shut-off correlates with the gateway share: the row with the largest
    // gateway fraction must have a longer shut-off than the row with the
    // largest local fraction.
    let most_gateway = rows
        .iter()
        .max_by_key(|r| r.gateway_bytes)
        .expect("nonempty");
    let most_local = rows
        .iter()
        .max_by_key(|r| r.distributed_bytes)
        .expect("nonempty");
    if most_gateway.gateway_bytes > 0
        && most_local.distributed_bytes > most_local.gateway_bytes
    {
        assert!(
            most_gateway.shutoff_s >= most_local.shutoff_s
                || most_local.shutoff_s < SHUTOFF_MARKER_SPLIT_S,
            "gateway-heavy row should be slower: {:?} vs {:?}",
            most_gateway,
            most_local
        );
    }
}

#[test]
fn exploration_is_deterministic() {
    let a = run_exploration(4, 400, 99);
    let b = run_exploration(4, 400, 99);
    assert_eq!(a.front.len(), b.front.len());
    for (x, y) in a.front.iter().zip(&b.front) {
        assert_eq!(x.objectives.to_minimized(), y.objectives.to_minimized());
    }
}

#[test]
fn larger_budget_does_not_shrink_quality_range() {
    let small = run_exploration(4, 300, 5);
    let large = run_exploration(4, 1_200, 5);
    let best = |r: &eea_dse::DseResult| {
        r.front
            .iter()
            .map(|e| e.objectives.test_quality)
            .fold(0.0, f64::max)
    };
    assert!(best(&large) >= best(&small) - 0.02);
}
