//! Frozen-report regression for the sharded gateway pipeline: a
//! 100 000-vehicle campaign at the benchmark seed is pinned **bit-for-bit**
//! — headline counters exactly, plus an FNV-1a digest of the full
//! `FleetReport` Debug rendering (covering every finding, latency
//! percentile, coverage point and per-ECU row). Any change to the
//! simulate/merge/diagnose/fold pipeline that alters even one bit of the
//! report fails this test; intentional semantic changes must re-freeze the
//! constants below and say why in the commit.

use std::sync::OnceLock;

use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FleetReport, TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

/// The benchmark campaign seed (`EEA_SEED` default in `eea-bench`).
const SEED: u64 = 2014;
const VEHICLES: u32 = 100_000;

fn cut() -> CutModel {
    CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })
    .unwrap_or_else(|e| panic!("substrate builds: {e}"))
}

/// Same hand-built trio as `tests/fleet_determinism.rs`: local-storage
/// fast path, gateway-streaming path, and a blueprint whose first session
/// can never complete.
fn blueprints() -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
    ]
}

/// FNV-1a 64 over the complete Debug rendering: every f64 prints with
/// enough digits to round-trip, so digest equality is bit equality of the
/// whole report.
fn digest(report: &FleetReport) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in format!("{report:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn frozen_report() -> &'static FleetReport {
    static REPORT: OnceLock<FleetReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let cfg = CampaignConfig {
            vehicles: VEHICLES,
            seed: SEED,
            threads: 0, // auto — the report must not depend on it
            ..CampaignConfig::default()
        };
        Campaign::new(&cut(), &blueprints(), cfg)
            .unwrap_or_else(|e| panic!("valid campaign: {e}"))
            .run()
    })
}

#[test]
fn headline_counters_are_frozen() {
    let report = frozen_report();
    assert_eq!(report.vehicles, 100_000);
    assert_eq!(report.defective, 1_931);
    assert_eq!(report.detected, 1_931);
    assert_eq!(report.localized, 1_931);
    assert_eq!(report.sessions_completed, 133_293);
    assert_eq!(report.windows_used, 126_161);
    assert_eq!(report.batches, 31);
    assert_eq!(report.latency.count, 1_931);
    assert_eq!(report.findings.len(), 1_931);
    assert_eq!(report.coverage_over_time.len(), 32);
    assert_eq!(report.per_ecu.len(), 4);
}

const FROZEN_DIGEST: u64 = 0xC52D_7E52_A85B_1C99;

#[test]
fn full_report_digest_is_frozen() {
    let d = digest(frozen_report());
    assert_eq!(
        d, FROZEN_DIGEST,
        "FleetReport changed bit-for-bit (digest {d:#018X}); if intentional, re-freeze"
    );
}

/// The frozen digest must also come out of an explicitly sharded,
/// explicitly threaded run — the 100 000-vehicle instantiation of the
/// determinism contract the proptests check on small fleets.
#[test]
fn digest_survives_explicit_threads_and_shards() {
    let cfg = CampaignConfig {
        vehicles: VEHICLES,
        seed: SEED,
        threads: 3,
        shards: 5,
        ..CampaignConfig::default()
    };
    let report = Campaign::new(&cut(), &blueprints(), cfg)
        .unwrap_or_else(|e| panic!("valid campaign: {e}"))
        .run();
    assert_eq!(digest(&report), FROZEN_DIGEST);
    assert_eq!(&report, frozen_report());
}
