//! Integration tests of the non-intrusiveness property (Fig. 4 and Eq. (1)
//! of the paper), spanning `eea-can` and `eea-dse`.

use eea_can::{
    analyze, mirror_messages, response_time, transfer_time_s, BusSim, CanId, Message,
    BUS_BITRATE_BPS,
};

fn msg(id: u16, payload: u8, period_us: u64) -> Message {
    Message::new(CanId::new(id).expect("valid id"), payload, period_us).expect("valid message")
}

/// Mirroring must keep every other message's *simulated* worst-case latency
/// exactly unchanged, for a variety of schedules.
#[test]
fn mirroring_preserves_latencies_across_schedules() {
    let sim = BusSim::new(BUS_BITRATE_BPS).expect("valid bitrate");
    let schedules: Vec<(Vec<Message>, Vec<Message>)> = vec![
        (
            vec![msg(0x100, 4, 10_000)],
            vec![msg(0x050, 8, 5_000), msg(0x300, 8, 50_000)],
        ),
        (
            vec![msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)],
            vec![
                msg(0x050, 8, 5_000),
                msg(0x150, 6, 10_000),
                msg(0x300, 8, 50_000),
            ],
        ),
        (
            vec![msg(0x210, 1, 100_000), msg(0x218, 8, 10_000), msg(0x220, 3, 20_000)],
            vec![msg(0x010, 8, 5_000), msg(0x400, 4, 25_000)],
        ),
    ];
    for (under_test, others) in schedules {
        let mut functional = others.clone();
        functional.extend_from_slice(&under_test);
        let base = sim.run(&functional, 3_000_000).expect("simulates");

        let mirrored = mirror_messages(&under_test, 0x30, &others).expect("mirrors");
        let mut test_sched = others.clone();
        test_sched.extend_from_slice(&mirrored);
        let test = sim.run(&test_sched, 3_000_000).expect("simulates");

        for o in &others {
            assert_eq!(
                base.by_id(o.id()).expect("present").max_response_us,
                test.by_id(o.id()).expect("present").max_response_us,
                "latency of {} changed",
                o.id()
            );
        }
    }
}

/// The analytical RTA bounds are equally unaffected: the interference and
/// blocking sets seen by third-party messages are identical under
/// mirroring.
#[test]
fn mirroring_preserves_rta_bounds() {
    let under_test = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
    let others = [msg(0x050, 8, 5_000), msg(0x150, 6, 10_000)];
    let mut functional: Vec<Message> = others.to_vec();
    functional.extend_from_slice(&under_test);
    let mirrored = mirror_messages(&under_test, 0x10, &others).expect("mirrors");
    let mut test_sched: Vec<Message> = others.to_vec();
    test_sched.extend_from_slice(&mirrored);

    for o in &others {
        let before = response_time(o, &functional, BUS_BITRATE_BPS);
        let after = response_time(o, &test_sched, BUS_BITRATE_BPS);
        assert_eq!(before, after, "RTA bound of {} changed", o.id());
    }
}

/// Eq. (1) sanity: transfer time scales linearly with the data volume and
/// inversely with the mirrored bandwidth; cross-checked against a
/// first-principles bandwidth computation.
#[test]
fn eq1_matches_first_principles() {
    let set_a = [msg(0x100, 4, 10_000)]; // 400 B/s
    let set_b = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)]; // 800 B/s
    let bytes = 2_399_185u64; // profile 1 of Table I

    let q_a = transfer_time_s(bytes, &set_a).expect("non-empty set");
    let q_b = transfer_time_s(bytes, &set_b).expect("non-empty set");
    assert!((q_a - bytes as f64 / 400.0).abs() < 1e-6);
    assert!((q_b - bytes as f64 / 800.0).abs() < 1e-6);
    // Twice the bandwidth, half the time.
    assert!((q_a / q_b - 2.0).abs() < 1e-9);
    // Linear in size.
    assert!((transfer_time_s(2 * bytes, &set_a).expect("non-empty set") / q_a - 2.0).abs() < 1e-9);
}

/// Eq. (1) against the event-driven simulator: streaming the pattern set
/// over the mirrored messages takes (within one period of slack) the time
/// the formula predicts.
#[test]
fn eq1_cross_checked_against_simulation() {
    let under_test = [msg(0x100, 8, 10_000), msg(0x108, 8, 20_000)];
    let payload_per_period: f64 = under_test
        .iter()
        .map(Message::payload_bandwidth_bytes_per_s)
        .sum(); // 1200 B/s
    let data_bytes = 12_000u64; // 10 s worth
    let predicted = transfer_time_s(data_bytes, &under_test).expect("non-empty set");
    assert!((predicted - data_bytes as f64 / payload_per_period).abs() < 1e-9);

    // Simulate the mirrored messages and count how long until the payload
    // bytes delivered reach data_bytes.
    let mirrored = mirror_messages(&under_test, 0x40, &[]).expect("mirrors");
    let sim = BusSim::new(BUS_BITRATE_BPS).expect("valid bitrate");
    let horizon = (predicted * 1.2 * 1e6) as u64;
    let run = sim.run(&mirrored, horizon).expect("simulates");
    let delivered: u64 = run
        .stats
        .iter()
        .zip(&mirrored)
        .map(|(s, m)| s.frames * u64::from(m.payload()))
        .sum();
    assert!(
        delivered >= data_bytes,
        "simulation delivered {delivered} bytes in {:.1} s, expected >= {data_bytes}",
        horizon as f64 / 1e6
    );
    // And the delivery rate matches the formula within 5 %.
    let rate = delivered as f64 / (horizon as f64 / 1e6);
    assert!(
        (rate - payload_per_period).abs() / payload_per_period < 0.05,
        "rate {rate} vs {payload_per_period}"
    );
}

/// The full schedule including mirrored messages stays schedulable: no
/// analysis divergence is introduced by the test traffic.
#[test]
fn mirrored_schedule_stays_schedulable() {
    let under_test = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
    let others = [msg(0x050, 8, 5_000), msg(0x150, 6, 10_000)];
    let mirrored = mirror_messages(&under_test, 0x10, &others).expect("mirrors");
    let mut all: Vec<Message> = others.to_vec();
    all.extend_from_slice(&mirrored);
    let results = analyze(&all, BUS_BITRATE_BPS);
    assert!(
        results.iter().all(|r| r.response_us.is_ok()),
        "mirrored schedule must remain schedulable"
    );
}
