//! Frozen **mid-campaign snapshot** regression for the gateway ingest
//! service — the streaming sibling of `tests/fleet_frozen_report.rs`.
//! The same 100 000-vehicle campaign at the benchmark seed is ingested
//! arrival by arrival into a `GatewayService`; the snapshot at a 256th of
//! the horizon is pinned bit-for-bit (headline counters + FNV-1a digest
//! of the full report Debug rendering), and the snapshot at the horizon must
//! reproduce the one-shot pipeline's frozen digest exactly. Any change to
//! the ingest fold, the block ledger, or the snapshot stages that alters
//! one bit fails here; intentional semantic changes must re-freeze the
//! constants and say why in the commit.

use std::sync::OnceLock;

use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FleetReport, GatewaySnapshot, TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

/// The benchmark campaign seed (`EEA_SEED` default in `eea-bench`).
const SEED: u64 = 2014;
const VEHICLES: u32 = 100_000;
/// `CampaignConfig::default().horizon_s` — 30 days.
const HORIZON_S: f64 = 30.0 * 86_400.0;

/// The one-shot pipeline's frozen digest (`tests/fleet_frozen_report.rs`):
/// the horizon snapshot must land on the identical report.
const FROZEN_ONE_SHOT_DIGEST: u64 = 0xC52D_7E52_A85B_1C99;

/// The mid-campaign snapshot time: horizon/256 ≈ 2.8 h, between the
/// detection-latency median (~2.4 h) and p90 (~4.7 h) on this substrate —
/// most but not all uploads are visible, so the snapshot genuinely
/// exercises the time filter (every detection lands inside 8.5 h here;
/// any snapshot time in whole days would already be saturated).
const MID_AT_S: f64 = HORIZON_S / 256.0;
/// The frozen mid-campaign snapshot digest.
const FROZEN_MID_DIGEST: u64 = 0xD9D9_5A5D_CE7F_E675;
/// Detections visible at the mid-campaign snapshot (of 1 931 total).
const FROZEN_MID_DETECTED: u64 = 1_283;

fn cut() -> CutModel {
    CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })
    .unwrap_or_else(|e| panic!("substrate builds: {e}"))
}

/// Same hand-built trio as `tests/fleet_frozen_report.rs`.
fn blueprints() -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
    ]
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        vehicles: VEHICLES,
        seed: SEED,
        threads: 0, // auto — snapshots must not depend on it
        ..CampaignConfig::default()
    }
}

/// FNV-1a 64 over the complete Debug rendering — identical convention to
/// `tests/fleet_frozen_report.rs`.
fn digest(report: &FleetReport) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in format!("{report:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One full serial ingest of the fleet, snapshotted mid-campaign and at
/// the horizon. Serial arrival order here; the parallel-feed test below
/// must land on the same bits.
fn snapshots() -> &'static (GatewaySnapshot, GatewaySnapshot) {
    static SNAPS: OnceLock<(GatewaySnapshot, GatewaySnapshot)> = OnceLock::new();
    SNAPS.get_or_init(|| {
        let cut = cut();
        let bp = blueprints();
        let campaign = Campaign::new(&cut, &bp, campaign_config())
            .unwrap_or_else(|e| panic!("valid campaign: {e}"));
        let mut svc = campaign
            .gateway()
            .unwrap_or_else(|e| panic!("provisions: {e}"));
        for arrival in campaign.arrivals() {
            svc.accept(arrival)
                .unwrap_or_else(|e| panic!("accept: {e}"));
        }
        let mid = svc.snapshot_at(MID_AT_S);
        let fin = svc.snapshot_at(HORIZON_S);
        (mid, fin)
    })
}

#[test]
fn mid_campaign_snapshot_is_frozen() {
    let (mid, _) = snapshots();
    assert_eq!(mid.at_s, MID_AT_S);
    assert_eq!(mid.ingested, u64::from(VEHICLES));
    assert_eq!(mid.shed, 0);
    assert_eq!(mid.duplicates, 0);
    // window 16 × 128 patterns ⇒ at most 8 failing windows (96 bytes):
    // this substrate never overflows the 638-byte fail memory.
    assert_eq!(mid.truncated_uploads, 0);
    assert_eq!(mid.report.vehicles, VEHICLES);
    assert_eq!(mid.report.detected, FROZEN_MID_DETECTED);
    // Census facts are horizon facts, not snapshot-time facts.
    assert_eq!(mid.report.defective, 1_931);
    assert_eq!(mid.report.sessions_completed, 133_293);
    assert_eq!(mid.report.windows_used, 126_161);
    let d = digest(&mid.report);
    assert_eq!(
        d, FROZEN_MID_DIGEST,
        "mid-campaign snapshot changed bit-for-bit (digest {d:#018X}, detected {}); \
         if intentional, re-freeze",
        mid.report.detected
    );
}

#[test]
fn horizon_snapshot_reproduces_the_one_shot_digest() {
    let (mid, fin) = snapshots();
    assert!(
        mid.report.detected <= fin.report.detected,
        "snapshots are monotone in t"
    );
    assert_eq!(fin.uploads_ingested, fin.report.detected);
    let d = digest(&fin.report);
    assert_eq!(
        d, FROZEN_ONE_SHOT_DIGEST,
        "horizon snapshot must be bit-identical to the one-shot pipeline (digest {d:#018X})"
    );
}

/// The same frozen bits out of the parallel bounded-channel feed at
/// explicit thread/shard counts — the 100 000-vehicle instantiation of
/// the snapshot-under-load proptests.
#[test]
fn mid_digest_survives_parallel_feed() {
    let cut = cut();
    let bp = blueprints();
    let cfg = CampaignConfig {
        threads: 3,
        shards: 5,
        ..campaign_config()
    };
    let campaign = Campaign::new(&cut, &bp, cfg).unwrap_or_else(|e| panic!("valid campaign: {e}"));
    let mut svc = campaign
        .gateway()
        .unwrap_or_else(|e| panic!("provisions: {e}"));
    campaign
        .feed(&mut svc)
        .unwrap_or_else(|e| panic!("feeds: {e}"));
    let mid = svc.snapshot_at(MID_AT_S);
    assert_eq!(digest(&mid.report), FROZEN_MID_DIGEST);
    let fin = svc.snapshot_at(HORIZON_S);
    assert_eq!(digest(&fin.report), FROZEN_ONE_SHOT_DIGEST);
    let (serial_mid, serial_fin) = snapshots();
    assert_eq!(&mid, serial_mid);
    assert_eq!(&fin, serial_fin);
}
