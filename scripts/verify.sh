#!/usr/bin/env bash
# Tier-1 verify: the exact line CI runs and ROADMAP.md documents.
#
# Offline-friendly by design: the workspace has no external crate
# dependencies (proptest/criterion resolve to the vendored stubs under
# stubs/), so this needs no network after the rust toolchain is
# installed. `--offline` makes that a hard guarantee rather than an
# accident of a warm cache.
#
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the release build (debug test + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
fi

if [[ "$quick" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -q"
cargo clippy --workspace --all-targets -q

echo "==> tier-1 verify OK"
