//! End-to-end diagnosis: the two §I use cases of the paper, demonstrated.
//!
//! 1. **Workshop repair** — a defect somewhere in the vehicle corrupts one
//!    ECU's BIST session; the fail data collected at the gateway names the
//!    faulty ECU directly (no part-swapping).
//! 2. **Failure analysis** — the failing ECU's fail memory (window
//!    indices + faulty signatures) feeds window-based logic diagnosis,
//!    which ranks candidate stuck-at faults inside the IC.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example diagnosis --release
//! ```

use eea_bist::{Diagnoser, StumpsSession};
use eea_faultsim::FaultUniverse;
use eea_netlist::{synthesize, ScanChains, SynthConfig};

fn main() {
    // The vehicle: 5 ECUs, each with the same CUT (as in the case study,
    // where all ECUs carry the same automotive microprocessor).
    let cut = synthesize(&SynthConfig {
        gates: 400,
        inputs: 16,
        dffs: 32,
        seed: 0xD1A6,
        ..SynthConfig::default()
    })
    .expect("valid synth config");
    println!("CUT per ECU: {}", cut.stats());
    let chains = ScanChains::balanced(&cut, 8).expect("at least one chain");
    let window = 8;
    let patterns = 512;
    let session = StumpsSession::new(&cut, &chains, 0xACE1, window);
    let golden = session.run_golden(patterns);
    println!(
        "BIST session: {} patterns, {} intermediate signatures (response data)",
        patterns,
        golden.signatures.len()
    );

    // A latent defect strikes ECU 3.
    let universe = FaultUniverse::collapsed(&cut);
    let defect = universe.fault(universe.num_faults() / 3);
    let faulty_ecu = 3usize;
    println!("\ninjected defect: {defect} in ecu{faulty_ecu} (unknown to the diagnosis)");

    // === Use case 1: workshop repair ===
    // Periodic BIST runs on every ECU; fail data is collected centrally.
    println!("\n== workshop repair: per-ECU session outcomes at the gateway ==");
    let mut faulty_found = None;
    for ecu in 0..5 {
        let fail = if ecu == faulty_ecu {
            session.run_with_fault(defect, &golden)
        } else {
            eea_bist::FailData::new()
        };
        println!(
            "  ecu{ecu}: {fail}  (fail memory: {} bytes)",
            fail.byte_size()
        );
        if !fail.is_pass() {
            faulty_found = Some((ecu, fail));
        }
    }
    let (found_ecu, fail_data) = faulty_found.expect("the defect was detected");
    assert_eq!(found_ecu, faulty_ecu);
    println!("  -> replace ecu{found_ecu}; all other ECUs stay in the vehicle");

    // === Use case 2: failure analysis ===
    println!("\n== failure analysis: window-based logic diagnosis of the returned IC ==");
    let diagnoser = Diagnoser::new(&cut, &chains, 0xACE1, window, patterns);
    let ranked = diagnoser.diagnose(&fail_data);
    let first_fail = fail_data.entries()[0].window;
    println!(
        "  observed: first failing window {first_fail} of {}",
        diagnoser.windows()
    );
    println!("  top candidates of {} total:", diagnoser.num_candidates());
    for cand in ranked.iter().take(8) {
        let marker = if cand.fault == defect { "  <-- true defect" } else { "" };
        println!("    {:<14} score {:.3}{marker}", cand.fault.to_string(), cand.score);
    }
    let resolution = diagnoser.resolution(&fail_data);
    println!(
        "  diagnostic resolution: {resolution} candidate(s) in the top equivalence class"
    );
    let best = ranked[0].score;
    assert!(
        ranked
            .iter()
            .take_while(|c| c.score == best)
            .any(|c| c.fault == defect),
        "true defect must rank in the top equivalence class"
    );
    println!("\nfault localised — chip-level root cause analysis can start from here.");
}
