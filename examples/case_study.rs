//! The paper's full case study (Section IV): all 36 Table I profiles on
//! all 15 ECUs, multi-objective exploration, and the Fig. 5 / Fig. 6 /
//! headline outputs.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example case_study --release            # 10k evaluations
//! EEA_EVALS=100000 cargo run -p eea-dse --example case_study --release   # paper budget
//! ```

use eea_bist::paper_table1;
use eea_dse::explore::baseline_cost;
use eea_dse::{
    augment, explore, fig5_ascii, fig5_csv, fig5_points, fig6_csv, fig6_rows, headline, DseConfig,
};
use eea_model::paper_case_study;

fn main() {
    let evaluations: usize = std::env::var("EEA_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()).expect("gateway present");
    println!(
        "case study: {} tasks, {} messages, {} mapping edges after augmentation",
        diag.spec.application.num_tasks(),
        diag.spec.application.num_messages(),
        diag.spec.num_mappings()
    );

    let mut cfg = DseConfig::default();
    cfg.nsga2.evaluations = evaluations;
    cfg.nsga2.population = 100;
    cfg.nsga2.seed = 2014;
    let result = explore(&diag, &cfg, |evals, archive| {
        if evals % 2_000 < 200 {
            eprintln!("  {evals}/{evaluations} evaluations, archive = {archive}");
        }
    });
    println!(
        "\n{} evaluations in {:.1} s ({:.0} evals/s; paper: 100,000 in ~29 min on 8 cores)",
        result.evaluations,
        result.duration_s,
        result.evals_per_second()
    );
    println!(
        "{} non-dominated implementations (paper: 176)",
        result.front.len()
    );

    // Headline: best quality within +3.7 % of the diagnosis-free baseline.
    let base = baseline_cost(&case, 2_000, 77, 0).expect("gateway present");
    println!("baseline (no structural test) cost: {base:.1}");
    match headline(&result.front, Some(base)) {
        Some(hl) => println!(
            "headline: {:.1} % test quality within +3.7 % budget (actual +{:.2} %); paper: 80.7 % at < 3.7 %",
            hl.best_quality_pct_in_budget, hl.extra_cost_pct
        ),
        None => println!("headline: no implementation fits the +3.7 % budget"),
    }

    // Fig. 5.
    let points = fig5_points(&result.front);
    println!("\n== Fig. 5: cost vs test quality ==");
    println!("{}", fig5_ascii(&points, 76, 20));
    let fast = points.iter().filter(|p| p.fast_shutoff).count();
    println!(
        "{} implementations below the 20 s shut-off split (o), {} above (^)",
        fast,
        points.len() - fast
    );

    // Fig. 6.
    println!("\n== Fig. 6: memory split and shut-off of 7 representatives ==");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>10} {:>8}",
        "impl", "gateway [B]", "local [B]", "shut-off [s]", "quality", "cost"
    );
    let rows = fig6_rows(&result.front, 7);
    for r in &rows {
        println!(
            "{:>4} {:>14} {:>14} {:>14.3} {:>9.2}% {:>8.1}",
            r.number, r.gateway_bytes, r.distributed_bytes, r.shutoff_s, r.quality_pct, r.cost
        );
    }

    // CSV exports for external plotting.
    std::fs::write("fig5.csv", fig5_csv(&points)).expect("write fig5.csv");
    std::fs::write("fig6.csv", fig6_csv(&rows)).expect("write fig6.csv");
    println!("\nwrote fig5.csv and fig6.csv");
}
