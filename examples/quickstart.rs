//! Quickstart: explore diagnosis tradeoffs on the paper's case study.
//!
//! Builds the industrial case study (45 tasks, 41 messages, 15 ECUs, 3 CAN
//! buses), augments it with a handful of Table I BIST profiles, runs a
//! short design space exploration, and prints the resulting Pareto front.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example quickstart --release
//! ```

use eea_bist::paper_table1;
use eea_dse::{augment, explore, fig5_ascii, fig5_points, DseConfig};
use eea_model::paper_case_study;

fn main() {
    // 1. The functional E/E-architecture specification.
    let case = paper_case_study();
    println!("case study: {}", case.spec.application);
    println!("            {}", case.spec.architecture);

    // 2. Augment with BIST profiles (4 of the 36 published ones keep this
    //    quickstart snappy; see examples/case_study.rs for the full set).
    let profiles = paper_table1();
    let diag = augment(&case, &profiles[..4]).expect("gateway present");
    println!(
        "augmented:  {} BIST options on {} ECUs",
        diag.options.len(),
        diag.bist_ecus().len()
    );

    // 3. Explore. The genotype is decoded by the SAT solver into feasible
    //    implementations; NSGA-II drives cost / test quality / shut-off.
    let mut cfg = DseConfig::default();
    cfg.nsga2.population = 40;
    cfg.nsga2.evaluations = 2_000;
    cfg.nsga2.seed = 1;
    let result = explore(&diag, &cfg, |evals, archive| {
        if evals % 500 == 0 {
            eprintln!("  {evals} evaluations, archive holds {archive} non-dominated designs");
        }
    });

    // 4. Report.
    println!(
        "\nexplored {} implementations in {:.1} s ({:.0} evals/s)",
        result.evaluations,
        result.duration_s,
        result.evals_per_second()
    );
    println!("Pareto front: {} implementations\n", result.front.len());
    println!(
        "{:>10} {:>12} {:>14} {:>10} {:>12}",
        "cost", "quality [%]", "shut-off [s]", "gw [kB]", "local [kB]"
    );
    for e in result.front.iter().take(20) {
        println!(
            "{:>10.1} {:>12.2} {:>14.3} {:>10} {:>12}",
            e.objectives.cost,
            e.objectives.test_quality * 100.0,
            e.objectives.shutoff_s,
            e.memory.gateway_bytes / 1024,
            e.memory.distributed_bytes / 1024
        );
    }
    if result.front.len() > 20 {
        println!("... and {} more", result.front.len() - 20);
    }

    println!("\n{}", fig5_ascii(&fig5_points(&result.front), 72, 18));
}
