//! Building your own E/E-architecture from scratch with the library API —
//! the adoption path for users whose network is not the paper's case
//! study.
//!
//! Models a small two-bus commercial-vehicle subnet, defines its own BIST
//! profiles (e.g. from a different CUT), explores, and checks the derived
//! functional CAN schedules.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example custom_architecture --release
//! ```

use eea_bist::BistProfile;
use eea_dse::{augment, check_schedulability, explore, DseConfig};
use eea_model::{
    Application, Architecture, CaseStudy, Resource, ResourceKind, Specification, TaskKind,
};
use eea_moea::Nsga2Config;

fn main() {
    // ---- Architecture: gateway, 2 buses, 4 ECUs, 2 sensors, 2 actuators.
    let mut arch = Architecture::new();
    let gateway = arch.add_resource(Resource {
        name: "cgw".into(),
        kind: ResourceKind::Gateway,
        cost: 60.0,
        memory_cost_per_byte: 5e-7,
        bist_capable: false,
    });
    let mut buses = Vec::new();
    let mut ecus = Vec::new();
    let mut ecus_by_bus = Vec::new();
    for b in 0..2 {
        let bus = arch.add_resource(Resource {
            name: format!("can{b}"),
            kind: ResourceKind::CanBus,
            cost: 4.0,
            memory_cost_per_byte: 0.0,
            bist_capable: false,
        });
        arch.connect(gateway, bus);
        buses.push(bus);
        let mut on_bus = Vec::new();
        for e in 0..2 {
            let ecu = arch.add_resource(Resource {
                name: format!("ecu{b}{e}"),
                kind: ResourceKind::Ecu,
                cost: 25.0 + 5.0 * f64::from(e),
                memory_cost_per_byte: 5e-6,
                bist_capable: true,
            });
            arch.connect(ecu, bus);
            ecus.push(ecu);
            on_bus.push(ecu);
        }
        ecus_by_bus.push(on_bus);
    }
    let sensor = arch.add_resource(Resource {
        name: "wheel_speed".into(),
        kind: ResourceKind::Sensor,
        cost: 3.0,
        memory_cost_per_byte: 0.0,
        bist_capable: false,
    });
    arch.connect(sensor, buses[0]);
    let actuator = arch.add_resource(Resource {
        name: "brake_valve".into(),
        kind: ResourceKind::Actuator,
        cost: 4.0,
        memory_cost_per_byte: 0.0,
        bist_capable: false,
    });
    arch.connect(actuator, buses[1]);

    // ---- Application: a brake-by-wire style pipeline crossing both buses.
    let mut app = Application::new();
    let sense = app.add_task("sense_speed", TaskKind::Functional);
    let filter = app.add_task("filter", TaskKind::Functional);
    let control = app.add_task("abs_control", TaskKind::Functional);
    let actuate = app.add_task("apply_brake", TaskKind::Functional);
    app.add_message("speed_raw", sense, &[filter], 4, 10_000);
    app.add_message("speed_f", filter, &[control], 6, 10_000);
    app.add_message("brake_cmd", control, &[actuate], 2, 10_000);

    let mut spec = Specification::new(app, arch);
    spec.add_mapping(sense, sensor);
    spec.add_mapping(actuate, actuator);
    for &t in &[filter, control] {
        for &e in &ecus {
            spec.add_mapping(t, e);
        }
        spec.add_mapping(t, gateway);
    }
    spec.validate().expect("valid specification");

    // ---- Custom BIST profiles (a smaller CUT than the paper's).
    let profiles: Vec<BistProfile> = vec![
        BistProfile {
            id: 1,
            random_patterns: 1_000,
            deterministic_patterns: 120,
            coverage: 0.995,
            runtime_ms: 2.4,
            data_bytes: 180_000,
        },
        BistProfile {
            id: 2,
            random_patterns: 1_000,
            deterministic_patterns: 30,
            coverage: 0.95,
            runtime_ms: 2.1,
            data_bytes: 40_000,
        },
        BistProfile {
            id: 3,
            random_patterns: 10_000,
            deterministic_patterns: 10,
            coverage: 0.97,
            runtime_ms: 11.0,
            data_bytes: 12_000,
        },
    ];

    // ---- Explore.
    let case = CaseStudy {
        spec,
        gateway,
        buses: buses.clone(),
        ecus_by_bus,
        app_tasks: vec![vec![sense, filter, control, actuate]],
    };
    let diag = augment(&case, &profiles).expect("gateway present");
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 24,
            evaluations: 1_200,
            seed: 7,
            ..Nsga2Config::default()
        },
        ..DseConfig::default()
    };
    let result = explore(&diag, &cfg, |_, _| {});
    println!(
        "explored {} designs, front holds {}:",
        result.evaluations,
        result.front.len()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10}",
        "cost", "quality", "shutoff [s]", "gw [kB]", "local [kB]"
    );
    for e in &result.front {
        println!(
            "{:>8.1} {:>9.1}% {:>12.3} {:>10} {:>10}",
            e.objectives.cost,
            e.objectives.test_quality * 100.0,
            e.objectives.shutoff_s,
            e.memory.gateway_bytes / 1024,
            e.memory.distributed_bytes / 1024
        );
    }

    // ---- Certify the functional schedules of the best design.
    let best = result
        .front
        .iter()
        .max_by(|a, b| {
            a.objectives
                .test_quality
                .partial_cmp(&b.objectives.test_quality)
                .expect("finite")
        })
        .expect("nonempty front");
    let schedules =
        check_schedulability(&diag, &best.implementation, eea_can::BUS_BITRATE_BPS)
            .expect("functional schedule certifies");
    println!("\nderived functional CAN schedules:");
    for s in &schedules {
        println!(
            "  {}: {} messages, {:.1} % load",
            diag.spec.architecture.resource(s.bus).name,
            s.messages.len(),
            s.utilization(eea_can::BUS_BITRATE_BPS) * 100.0
        );
    }
}
