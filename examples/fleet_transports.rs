//! Classic CAN vs CAN FD vs FlexRay, end to end: the same exploration
//! front decoded into vehicle blueprints once per transport backend, the
//! same fleet campaign run on each, and the detection-latency
//! distributions compared side by side.
//!
//! The transport axis is the only thing that changes between the runs —
//! seeds, blueprints and defect draws are identical — so the latency
//! shifts below are purely the Eq. (1) transfer/upload pricing of each
//! backend: classic mirroring streams at the inactive ECU's own schedule
//! rate, CAN FD multiplies the payloads (default ×8), and FlexRay rides
//! dedicated static slots.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-fleet --example fleet_transports --release
//! ```

use eea_bist::paper_table1;
use eea_dse::{augment, explore, DseConfig, EeaError};
use eea_fleet::{
    blueprints_from_front_with, Campaign, CampaignConfig, CutConfig, CutModel, TransportConfig,
    TransportKind,
};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

fn main() -> Result<(), EeaError> {
    let cut = CutModel::build(CutConfig::default())?;

    // One exploration front, shared by every backend: the comparison is
    // about re-pricing the same implementations, not re-exploring.
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..6])?;
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 24,
            evaluations: 600,
            seed: 2014,
            ..Nsga2Config::default()
        },
        threads: 0,
        ..DseConfig::default()
    };
    let front = explore(&diag, &cfg, |_, _| {}).front;
    println!("front: {} non-dominated implementations\n", front.len());

    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "transport", "capable", "detected", "localized", "p50 [h]", "p90 [h]", "p99 [h]"
    );
    for kind in TransportKind::ALL {
        let transport = TransportConfig::for_kind(kind);
        let blueprints = blueprints_from_front_with(&diag, &front, &transport)?;
        let capable = blueprints.iter().filter(|b| b.is_campaign_capable()).count();

        let campaign = Campaign::new(
            &cut,
            &blueprints,
            CampaignConfig {
                vehicles: 2_000,
                ..CampaignConfig::default()
            },
        )?;
        let report = campaign.run();
        println!(
            "{:<12} {:>8} {:>9} {:>9} {:>10.1} {:>10.1} {:>10.1}",
            kind.label(),
            capable,
            format!("{}/{}", report.detected, report.defective),
            report.localized,
            report.latency.p50_s / 3_600.0,
            report.latency.p90_s / 3_600.0,
            report.latency.p99_s / 3_600.0
        );
    }

    println!(
        "\nreading: faster upload paths pull the whole latency distribution\n\
         forward — the sessions themselves are unchanged, only the Eq. (1)\n\
         transfer and the fail-data upload are re-priced per backend."
    );
    Ok(())
}
