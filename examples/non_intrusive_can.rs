//! Demonstrates the paper's *non-intrusiveness* claim on a simulated CAN
//! bus (Fig. 4): replacing an inactive ECU's functional messages with
//! mirrored test-data messages leaves every other message's latency
//! untouched — while a naive bulk transfer would not.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example non_intrusive_can --release
//! ```

use eea_can::{
    analyze, mirror_messages, transfer_time_s, BusSim, CanId, Message, BUS_BITRATE_BPS,
};

fn msg(id: u16, payload: u8, period_us: u64) -> Message {
    Message::new(CanId::new(id).expect("valid id"), payload, period_us).expect("valid message")
}

fn main() {
    // The ECU under test sends two functional messages; three other ECUs
    // share the bus.
    let ecu_under_test = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
    let others = [
        msg(0x050, 8, 5_000),
        msg(0x150, 6, 10_000),
        msg(0x300, 8, 50_000),
        msg(0x420, 2, 100_000),
    ];
    let sim = BusSim::new(BUS_BITRATE_BPS).expect("valid bitrate");
    let horizon = 5_000_000; // 5 s

    // Baseline: the certified functional schedule.
    let mut functional: Vec<Message> = others.to_vec();
    functional.extend_from_slice(&ecu_under_test);
    let base = sim.run(&functional, horizon).expect("simulates");

    // BIST session: the ECU's messages go silent, mirrored test-data
    // messages (same size/period/relative priority, fresh IDs) take their
    // place.
    let mirrored =
        mirror_messages(&ecu_under_test, 0x20, &others).expect("mirroring succeeds");
    let mut test_schedule: Vec<Message> = others.to_vec();
    test_schedule.extend_from_slice(&mirrored);
    let test = sim.run(&test_schedule, horizon).expect("simulates");

    // A naive alternative: a greedy low-priority bulk message at 1 ms.
    let bulk = msg(0x7FF, 8, 1_000);
    let mut naive: Vec<Message> = functional.clone();
    naive.push(bulk);
    let naive_run = sim.run(&naive, horizon).expect("simulates");

    println!("worst-case observed latency of the OTHER ECUs' messages [us]:");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "id", "functional", "mirrored", "naive bulk", "RTA bound"
    );
    let rta = analyze(&functional, BUS_BITRATE_BPS);
    for o in &others {
        let b = base.by_id(o.id()).expect("simulated");
        let t = test.by_id(o.id()).expect("simulated");
        let n = naive_run.by_id(o.id()).expect("simulated");
        let bound = rta
            .iter()
            .find(|r| r.id == o.id())
            .and_then(|r| r.response_us.as_ref().ok())
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            o.id().to_string(),
            b.max_response_us,
            t.max_response_us,
            n.max_response_us,
            bound
        );
        assert_eq!(
            b.max_response_us, t.max_response_us,
            "mirroring must not change functional latencies"
        );
    }
    println!("\nmirrored schedule: bit-identical latencies (non-intrusive).");
    println!("naive bulk transfer: latencies shift — certification would be void.\n");

    // Eq. (1): how long does a BIST pattern set take over the mirror?
    for bytes in [455_061u64, 994_156, 2_399_185] {
        let q = transfer_time_s(bytes, &ecu_under_test).expect("non-empty schedule");
        println!(
            "Eq. (1): {:>9} bytes over the mirrored schedule ({:>4.0} B/s): {:>8.1} s",
            bytes,
            ecu_under_test
                .iter()
                .map(Message::payload_bandwidth_bytes_per_s)
                .sum::<f64>(),
            q
        );
    }
}
