//! Fleet campaign walkthrough: from an exploration front to a fleet-wide
//! diagnosis report.
//!
//! Builds the shared CUT model, decodes vehicle blueprints from a short
//! case-study exploration, seeds real collapsed stuck-at defects into a
//! 2,000-vehicle fleet, and prints what the gateway learned: detection
//! latency, localization quality and the per-ECU candidate rankings.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-fleet --example fleet_campaign --release
//! ```

use eea_bist::paper_table1;
use eea_dse::{augment, explore, DseConfig, EeaError};
use eea_fleet::{blueprints_from_front, Campaign, CampaignConfig, CutConfig, CutModel};
use eea_model::paper_case_study;
use eea_moea::Nsga2Config;

fn main() -> Result<(), EeaError> {
    // 1. The shared circuit-under-test: golden session, per-fault fail
    //    data and the diagnosis dictionary, precomputed once.
    let cut = CutModel::build(CutConfig::default())?;
    println!(
        "CUT model: {} collapsed faults, {} session-detectable ({:.1} % coverage)",
        cut.num_faults(),
        cut.detectable_faults().len(),
        cut.coverage() * 100.0
    );

    // 2. Vehicle blueprints from a short exploration of the paper's case
    //    study (Eq. (1) transfer times over *constructed* mirror
    //    schedules, Eq. (5) shut-off budgets from the objectives).
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1()[..6])?;
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 24,
            evaluations: 600,
            seed: 2014,
            ..Nsga2Config::default()
        },
        threads: 0,
        ..DseConfig::default()
    };
    let front = explore(&diag, &cfg, |_, _| {}).front;
    let blueprints = blueprints_from_front(&diag, &front)?;
    println!(
        "blueprints: {} implementations, {} campaign-capable",
        blueprints.len(),
        blueprints.iter().filter(|b| b.is_campaign_capable()).count()
    );

    // 3. The campaign: 2,000 vehicles, 2 % seeded defective, 30 days.
    let campaign = Campaign::new(
        &cut,
        &blueprints,
        CampaignConfig {
            vehicles: 2_000,
            ..CampaignConfig::default()
        },
    )?;
    let report = campaign.run();

    println!(
        "\ncampaign: {} vehicles, {} defective, {} detected ({:.1} %), {} localized ({:.1} %)",
        report.vehicles,
        report.defective,
        report.detected,
        report.detection_rate() * 100.0,
        report.localized,
        report.localization_rate() * 100.0
    );
    println!(
        "fleet BIST: {} sessions over {} shut-off windows ({:.1} h total)",
        report.sessions_completed,
        report.windows_used,
        report.bist_time_s / 3_600.0
    );
    println!(
        "latency: p50 {:.1} h, p90 {:.1} h, p99 {:.1} h",
        report.latency.p50_s / 3_600.0,
        report.latency.p90_s / 3_600.0,
        report.latency.p99_s / 3_600.0
    );

    println!("\nper-ECU results (seeded/detected/localized, top diagnosed faults):");
    for e in &report.per_ecu {
        let top: Vec<String> = e
            .top_faults
            .iter()
            .take(3)
            .map(|&(fault, n)| format!("f{fault}x{n}"))
            .collect();
        println!(
            "  {}: {}/{}/{} mean latency {:.1} h top [{}]",
            e.ecu,
            e.seeded,
            e.detected,
            e.localized,
            e.mean_latency_s / 3_600.0,
            top.join(", ")
        );
    }

    println!("\ncampaign coverage over time:");
    for &(t, frac) in report.coverage_over_time.iter().step_by(4) {
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  day {:>4.1}: {bar} {:.0} %", t / 86_400.0, frac * 100.0);
    }
    Ok(())
}
