//! Regenerates a Table I-style BIST profile table from scratch on an open
//! synthetic CUT: LFSR pseudo-random patterns graded by fault simulation,
//! PODEM deterministic top-off, and the runtime/data-size models.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-dse --example bist_profiles --release
//! EEA_CUT_GATES=5000 cargo run -p eea-dse --example bist_profiles --release
//! ```

use eea_bist::{generate_profiles, paper_table1, CoverageTarget, ProfileConfig};
use eea_netlist::{synthesize, SynthConfig};

fn main() {
    let gates: usize = std::env::var("EEA_CUT_GATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500);

    // The open substitute for the paper's Infineon CUT (371,900 collapsed
    // faults, 100 chains x <=77 cells, 40 MHz): a synthetic scan circuit,
    // dimensioned for laptop-scale experiments.
    let cut = synthesize(&SynthConfig {
        gates,
        inputs: 32,
        dffs: 128,
        seed: 0xC07,
        ..SynthConfig::default()
    })
    .expect("valid synth config");
    println!("CUT: {}", cut.stats());

    let cfg = ProfileConfig {
        prp_counts: vec![256, 512, 1_024, 4_096, 16_384],
        targets: vec![
            CoverageTarget::Max,
            CoverageTarget::Max,
            CoverageTarget::OfMax(0.98),
            CoverageTarget::OfMax(0.95),
        ],
        num_chains: 32,
        ..ProfileConfig::default()
    };
    println!(
        "generating {} profiles ({} PRP counts x {} coverage targets)...\n",
        cfg.prp_counts.len() * cfg.targets.len(),
        cfg.prp_counts.len(),
        cfg.targets.len()
    );
    let profiles = generate_profiles(&cut, &cfg).expect("profiles generate");

    println!(
        "{:>3} {:>8} {:>6} {:>9} {:>11} {:>12}",
        "#", "PRPs", "det.", "cov [%]", "l(b) [ms]", "s(b) [B]"
    );
    for p in &profiles {
        println!(
            "{:>3} {:>8} {:>6} {:>9.2} {:>11.2} {:>12}",
            p.id,
            p.random_patterns,
            p.deterministic_patterns,
            p.coverage * 100.0,
            p.runtime_ms,
            p.data_bytes
        );
    }

    println!("\n== The published Table I (paper dataset, for comparison) ==");
    println!("{:>3} {:>8} {:>9} {:>11} {:>12}", "#", "PRPs", "cov [%]", "l(b) [ms]", "s(b) [B]");
    for p in paper_table1().iter().take(8) {
        println!(
            "{:>3} {:>8} {:>9.2} {:>11.2} {:>12}",
            p.id,
            p.random_patterns,
            p.coverage * 100.0,
            p.runtime_ms,
            p.data_bytes
        );
    }
    println!("... (36 rows total; see `cargo run -p eea-bench --bin table1`)");
}
