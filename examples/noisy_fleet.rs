//! Clean vs. impaired campaign, side by side: what a noisy bus costs.
//!
//! Runs the same 5,000-vehicle fleet twice — once over the pass-through
//! [`eea_fleet::ChannelConfig::Clean`] channel and once over an
//! aggressively noisy bus ([`eea_fleet::NoisyChannel`]: 5 % frame errors
//! forcing retransmission, 20 % payload corruption, 10 % window loss, and
//! a 48-byte truncation cap) — then prints the retransmission overhead
//! and the localization-rank CDF shift the robustness block measures.
//! Detection counts are identical by construction: the channel degrades
//! *diagnosis quality*, it never drops a detection.
//!
//! Run with:
//!
//! ```text
//! cargo run -p eea-fleet --example noisy_fleet --release
//! ```

use eea_dse::EeaError;
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FleetReport, NoisyChannel, TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

/// One streaming and one local-storage implementation, stamped with the
/// given channel — the bus between ECU and gateway is the only knob this
/// example turns.
fn blueprints(channel: ChannelConfig) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
    ]
}

fn run(cut: &CutModel, channel: ChannelConfig) -> Result<FleetReport, EeaError> {
    let bp = blueprints(channel);
    let campaign = Campaign::new(
        cut,
        &bp,
        CampaignConfig {
            vehicles: 5_000,
            defect_fraction: 0.05,
            seed: 2014,
            ..CampaignConfig::default()
        },
    )?;
    Ok(campaign.run())
}

fn main() -> Result<(), EeaError> {
    let cut = CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })?;

    let clean = run(&cut, ChannelConfig::Clean)?;
    let noisy = run(
        &cut,
        ChannelConfig::Noisy(NoisyChannel {
            frame_error_rate: 0.05,
            corruption_rate: 0.2,
            window_loss_rate: 0.1,
            truncation_cap_bytes: 48,
            seed: 7,
        }),
    )?;

    println!("channel        detected  localized  p50 latency");
    for (label, r) in [("clean", &clean), ("noisy", &noisy)] {
        println!(
            "{label:<14} {:>8} {:>10}   {:>8.1} h",
            r.detected,
            r.localized,
            r.latency.p50_s / 3_600.0
        );
    }
    assert_eq!(
        clean.detected, noisy.detected,
        "impairment degrades diagnosis quality, it never drops detections"
    );

    assert!(clean.robustness.is_none(), "clean fleets have no axis");
    let Some(rob) = &noisy.robustness else {
        return Err(EeaError::Fleet(
            "noisy campaign must report a robustness block".into(),
        ));
    };

    println!(
        "\nbus overhead: {} frames retransmitted, +{:.1} s upload time fleet-wide",
        rob.retransmitted_frames, rob.retransmit_overhead_s
    );
    println!(
        "impaired uploads: {} ({} window-lost, {} corrupted, {} cap-truncated)",
        rob.impaired_uploads,
        rob.window_lost_uploads,
        rob.corrupted_uploads,
        rob.cap_truncated_uploads
    );
    println!(
        "diagnosis impact: {} rank-degraded, {} delocalized (of {} impaired)",
        rob.rank_degraded, rob.delocalized, rob.impaired_uploads
    );

    // The rank CDF: how many impaired uploads still rank the true fault
    // within the top k candidates, against their clean-channel twins.
    println!("\nlocalization-rank CDF shift (impaired vs clean twin):");
    for p in &rob.rank_cdf {
        let frac = |n: u64| {
            if rob.impaired_uploads == 0 {
                0.0
            } else {
                n as f64 / rob.impaired_uploads as f64
            }
        };
        let bar = |n: u64| "#".repeat((frac(n) * 40.0).round() as usize);
        println!(
            "  rank <= {:>2}: clean    {:<40} {:>5.1} %",
            p.bound,
            bar(p.clean_le),
            frac(p.clean_le) * 100.0
        );
        println!(
            "              impaired {:<40} {:>5.1} %",
            bar(p.impaired_le),
            frac(p.impaired_le) * 100.0
        );
    }
    Ok(())
}
