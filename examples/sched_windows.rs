//! In-ECU cyclic-task schedule → shut-off windows, end to end.
//!
//! Builds the task set the `sched_campaign` benchmark stamps on its
//! blueprints, simulates the fixed-priority executive over one
//! hyperperiod, prints the busy/idle timeline as an ASCII strip, and then
//! shows the `(gap, window)` stream a single vehicle would draw from it —
//! next to the flat-budget stream the same RNG seed produces, so the
//! schedule's carving is visible side by side.
//!
//! ```text
//! cargo run -p eea-fleet --example sched_windows
//! ```

use eea_fleet::{
    FlatBudget, PeriodicTask, SchedPlan, ShutoffModel, SporadicTask, TaskSchedule, TaskSetConfig,
    WindowSource,
};
use eea_moea::Rng;
use eea_sched::TaskSet;

fn main() -> Result<(), eea_sched::SchedError> {
    // Two periodic tasks (hyperperiod 60 s, utilization 0.39) plus one
    // sporadic task — the blueprint task set of the sched_campaign bench.
    let config = TaskSetConfig {
        periodic: vec![
            PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 4_000_000,
                priority: 0,
            },
            PeriodicTask {
                period_us: 60_000_000,
                offset_us: 5_000_000,
                wcet_us: 9_000_000,
                priority: 1,
            },
        ],
        sporadic: vec![SporadicTask {
            min_interarrival_us: 45_000_000,
            wcet_us: 2_000_000,
            priority: 2,
        }],
        min_slice_s: 5.0,
    };

    let set = TaskSet::from_config(&config)?;
    let hyper_us = set.hyperperiod_us();
    println!(
        "task set: {} periodic, {} sporadic — hyperperiod {} s, worst-case utilization {:.2}",
        set.periodic().len(),
        set.sporadic().len(),
        hyper_us / 1_000_000,
        set.utilization()
    );

    // One steady-state hyperperiod of the executive, as maximal slices.
    let timeline = set.timeline(hyper_us)?;
    println!("\nexecutive timeline over one hyperperiod:");
    for slice in timeline.slices() {
        let occupant = match slice.task {
            Some(t) => format!("task {t} (prio {})", set.periodic()[t].priority),
            None => "idle".to_string(),
        };
        println!(
            "  {:6.1} s .. {:6.1} s  {}",
            slice.start_us as f64 * 1e-6,
            slice.end_us as f64 * 1e-6,
            occupant
        );
    }
    // ASCII strip, one character per second: '#' busy, '.' idle.
    let strip: String = (0..hyper_us / 1_000_000)
        .map(|sec| {
            let us = sec * 1_000_000;
            let busy = timeline
                .slices()
                .iter()
                .any(|s| s.task.is_some() && s.start_us <= us && us < s.end_us);
            if busy {
                '#'
            } else {
                '.'
            }
        })
        .collect();
    println!("  [{strip}]  (1 char = 1 s)");
    println!(
        "  idle {:.0} s of {:.0} s ({:.0} %)",
        timeline.idle_us() as f64 * 1e-6,
        hyper_us as f64 * 1e-6,
        100.0 * timeline.idle_us() as f64 / hyper_us as f64
    );

    // The same shut-off macro budget the fleet uses, carved two ways.
    let shutoff = ShutoffModel::default();
    let flat = FlatBudget::from_bounds(
        shutoff.min_gap_s,
        shutoff.max_gap_s,
        shutoff.min_window_s,
        shutoff.max_window_s,
    );
    let plan = SchedPlan::build(&config)?;
    let horizon_s = 86_400.0;

    println!("\nflat-budget stream (seed 2014, first 6 pairs):");
    let mut rng = Rng::new(2014);
    let mut src = flat;
    for i in 0..6 {
        let (gap, window) = src.next_window(&mut rng);
        println!("  {i}: drive {gap:7.1} s, then BIST window {window:7.1} s");
    }

    println!("schedule-derived stream (same seed, first 6 pairs):");
    let mut rng = Rng::new(2014);
    let mut src = TaskSchedule::new(flat, &plan, horizon_s);
    for i in 0..6 {
        let (gap, window) = src.next_window(&mut rng);
        println!("  {i}: gap {gap:7.1} s, then BIST slice {window:7.1} s");
    }
    println!(
        "\neach flat macro window lands at a random phase of the {:.0} s \
hyperperiod and is\ncarved into idle slices >= {:.0} s, minus sporadic \
steal — more, shorter windows,\nsame wall time.",
        plan.table().hyper_s(),
        config.min_slice_s
    );
    Ok(())
}
