//! Integration coverage of the "other field bus" extension paths the
//! paper sketches in its outlook: CAN FD (mirrored-bandwidth multiplier
//! for Eq. (1)) and FlexRay (static-segment non-intrusiveness by
//! construction). The classic mirroring pipeline is the baseline both are
//! compared against.

use std::collections::BTreeMap;

use proptest::prelude::*;

use eea_can::fd::{fd_payload_round_up, FdConfig, FD_PAYLOADS};
use eea_can::flexray::{FlexRayConfig, FlexRayError, FlexRaySchedule};
use eea_can::{mirror_messages_auto, transfer_time_s, CanFd, CanId, Message, Transport};

/// A small ECU schedule: three functional messages with spaced ids.
fn functional() -> Vec<Message> {
    vec![
        Message::new(CanId::new(0x100).unwrap(), 8, 10_000).unwrap(),
        Message::new(CanId::new(0x180).unwrap(), 4, 20_000).unwrap(),
        Message::new(CanId::new(0x200).unwrap(), 2, 50_000).unwrap(),
    ]
}

#[test]
fn fd_upgrade_multiplies_mirrored_eq1_bandwidth() {
    let msgs = functional();
    let mirror = mirror_messages_auto(&msgs, &[]).expect("gaps are free");
    let classic_q = transfer_time_s(1 << 20, &mirror).expect("bandwidth positive");

    // Upgrading every mirrored frame to a 64-byte FD payload at the same
    // period multiplies each message's bandwidth by 64/payload; the
    // aggregate Eq. (1) bandwidth grows accordingly and the transfer time
    // shrinks by exactly that aggregate ratio.
    let fd = FdConfig::default();
    let classic_bw: f64 = mirror
        .iter()
        .map(Message::payload_bandwidth_bytes_per_s)
        .sum();
    let fd_bw: f64 = mirror
        .iter()
        .map(|m| fd.payload_bandwidth_bytes_per_s(64, m.period_us()))
        .sum();
    let fd_q = (1u64 << 20) as f64 / fd_bw;
    assert!(fd_bw > classic_bw);
    assert!(
        (classic_q / fd_q - fd_bw / classic_bw).abs() < 1e-9,
        "transfer speed-up equals the bandwidth multiplier"
    );

    // Per-message speed-up matches the Eq. (1) speed-up helper.
    for m in &mirror {
        let per_msg = fd.payload_bandwidth_bytes_per_s(64, m.period_us())
            / m.payload_bandwidth_bytes_per_s();
        assert!((per_msg - fd.eq1_speedup(m.payload(), 64)).abs() < 1e-9);
    }
}

#[test]
fn fd_payload_rounding_covers_the_profile_fail_sizes() {
    // Fail-data records (12 bytes/entry) and classic 8-byte payloads all
    // round into valid DLC lengths; oversized payloads are typed errors.
    assert_eq!(fd_payload_round_up(12), Ok(12));
    assert_eq!(fd_payload_round_up(13), Ok(16));
    assert!(fd_payload_round_up(65).is_err());
    for &p in &FD_PAYLOADS {
        assert_eq!(fd_payload_round_up(p), Ok(p));
    }
}

#[test]
fn fd_frame_times_scale_with_data_rate_not_arbitration_rate() {
    let base = FdConfig::default();
    let faster_data = FdConfig {
        data_bps: 5_000_000,
        ..base
    };
    // More data-phase rate shortens big frames substantially...
    let t_base = base.frame_time_us(64).expect("valid payload");
    let t_fast = faster_data.frame_time_us(64).expect("valid payload");
    assert!(t_fast < t_base);
    // ...while the arbitration phase (classic-compatible, where the
    // mirroring argument lives) is untouched by the data-rate choice:
    // the delta between 0-byte frames at both configs only stems from the
    // data-phase CRC bits.
    let d0 = base.frame_time_us(0).expect("valid payload")
        - faster_data.frame_time_us(0).expect("valid payload");
    let d64 = t_base - t_fast;
    assert!(d64 > d0, "payload bits dominate the data-phase saving");
}

#[test]
fn flexray_static_segment_is_non_intrusive_by_construction() {
    let mut schedule = FlexRaySchedule::new(FlexRayConfig::default());
    // Functional layout: node 1 and node 2 own interleaved slots.
    for slot in [0u16, 2, 4] {
        schedule.assign(slot, 1).expect("slot free");
    }
    for slot in [1u16, 3] {
        schedule.assign(slot, 2).expect("slot free");
    }
    let node2_before = schedule.slots_of(2);
    let bw2_before = schedule.node_bandwidth_bytes_per_s(2);

    // BIST streaming for the shut-off node 1 reuses exactly node 1's
    // slots. TDMA exclusivity is the non-intrusiveness proof: claiming a
    // foreign or occupied slot is a typed error, so the data stream
    // cannot even express an intrusive schedule.
    assert_eq!(schedule.assign(1, 99), Err(FlexRayError::SlotTaken(1)));
    assert_eq!(
        schedule.assign(FlexRayConfig::default().static_slots, 99),
        Err(FlexRayError::SlotOutOfRange(
            FlexRayConfig::default().static_slots
        ))
    );
    assert_eq!(schedule.slots_of(2), node2_before);
    assert_eq!(schedule.node_bandwidth_bytes_per_s(2), bw2_before);

    // Eq. (1) analogue: transfer over the node's own slots only.
    let bytes = 2_399_185u64; // profile 1 encoded test data
    let t1 = schedule.transfer_time_s(1, bytes);
    assert!((t1 - bytes as f64 / schedule.node_bandwidth_bytes_per_s(1)).abs() < 1e-9);
    // A node with no slots can never stream test data.
    assert!(schedule.transfer_time_s(7, bytes).is_infinite());
}

#[test]
fn cross_bus_transfer_comparison_orders_as_expected() {
    // The same encoded pattern set over the three buses the paper's
    // concept covers: classic CAN mirror < CAN FD upgrade < FlexRay with
    // a generous slot allocation (bandwidths differ by construction).
    let bytes = 1u64 << 20;
    let msgs = functional();
    let mirror = mirror_messages_auto(&msgs, &[]).expect("gaps are free");
    let classic_q = transfer_time_s(bytes, &mirror).expect("bandwidth positive");

    let fd = FdConfig::default();
    let fd_bw: f64 = mirror
        .iter()
        .map(|m| fd.payload_bandwidth_bytes_per_s(64, m.period_us()))
        .sum();
    let fd_q = bytes as f64 / fd_bw;

    let mut schedule = FlexRaySchedule::new(FlexRayConfig::default());
    for slot in 0..8 {
        schedule.assign(slot, 1).expect("slot free");
    }
    let flexray_q = schedule.transfer_time_s(1, bytes);

    assert!(fd_q < classic_q, "FD multiplies the mirrored bandwidth");
    assert!(
        flexray_q < fd_q,
        "8 static slots of 32 B per 5 ms outpace the upgraded mirror here"
    );
}

/// ULP distance between two finite, same-sign floats.
fn ulp_distance(a: f64, b: f64) -> u64 {
    a.to_bits().abs_diff(b.to_bits())
}

proptest! {
    /// The degenerate FD upgrade (`payload_multiplier == 1.0`) is classic
    /// CAN: for *any* message set, the [`CanFd`] transfer time is within
    /// 1 ULP of the historical Eq. (1) free function (the identity fast
    /// path in [`CanFd::upgrade_payload`] makes it bit-exact, but 1 ULP is
    /// the contract).
    #[test]
    fn fd_multiplier_one_matches_classic_within_one_ulp(
        first_payload in 1u8..=8,
        rest in proptest::collection::vec((0u8..=8, 1_000u64..=1_000_000), 0..5),
        first_period in 1_000u64..=1_000_000,
        data_bytes in 1u64..(1 << 30),
    ) {
        let mut msgs = vec![
            Message::new(CanId::new(0x100).unwrap(), first_payload, first_period).unwrap(),
        ];
        for (i, (payload, period)) in rest.into_iter().enumerate() {
            let id = CanId::new(0x108 + i as u16 * 8).unwrap();
            msgs.push(Message::new(id, payload, period).unwrap());
        }
        let classic_q = transfer_time_s(data_bytes, &msgs).unwrap();

        let nodes: BTreeMap<u32, Vec<Message>> = [(7u32, msgs)].into();
        let fd = CanFd::new(nodes, FdConfig::default(), 1.0).unwrap();
        let fd_q = fd.transfer_time_s(7, data_bytes).unwrap();

        prop_assert!(classic_q.is_finite() && fd_q.is_finite());
        prop_assert!(
            ulp_distance(classic_q, fd_q) <= 1,
            "multiplier-1.0 FD diverged from classic CAN: {classic_q} vs {fd_q}"
        );
    }
}
