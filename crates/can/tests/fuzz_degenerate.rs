//! Fuzz harness for the CAN layer on *degenerate* message sets: empty
//! schedules, overloaded buses, exhausted priority gaps, and extreme data
//! volumes. `mirror_messages`, `response_time` and `transfer_time_s` must
//! return typed errors — never panic, overflow or diverge (see DESIGN.md,
//! "Error taxonomy").

use eea_can::{
    analyze, mirror_messages, mirror_messages_auto, response_time, transfer_time_s, CanId,
    Message, MirrorError, BUS_BITRATE_BPS,
};
use proptest::prelude::*;

fn msg(id: u16, payload: u8, period_us: u64) -> Message {
    Message::new(CanId::new(id).expect("valid id"), payload, period_us).expect("valid message")
}

/// Arbitrary (possibly empty, possibly overloaded) schedules: tiny periods
/// drive utilisation far past 1.0 and ids may sit directly adjacent so
/// mirroring gaps are exhausted.
fn degenerate_schedule() -> impl Strategy<Value = Vec<Message>> {
    proptest::collection::vec((0u16..0x7F8, 1u8..=8, 0usize..6), 0..10).prop_map(|raw| {
        // Includes sub-frame-time periods: a single 8-byte frame at 1 Mbit/s
        // lasts ~130 us, so a 100 us period is an overload on its own.
        let periods = [100u64, 500, 1_000, 10_000, 100_000, u64::MAX];
        let mut used = std::collections::BTreeSet::new();
        raw.into_iter()
            .filter_map(|(id, payload, pi)| {
                let mut id = id;
                while used.contains(&id) {
                    id = (id + 1) % 0x7F8;
                }
                used.insert(id);
                Message::new(CanId::new(id).ok()?, payload, periods[pi]).ok()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Eq. (1) on arbitrary data volumes and schedules: a typed error for
    /// the empty set, a finite positive time otherwise — even at
    /// `u64::MAX` bytes (which must saturate through `f64`, not wrap).
    #[test]
    fn transfer_time_total_on_degenerate_sets(
        sched in degenerate_schedule(),
        bytes in any::<u64>(),
    ) {
        match transfer_time_s(bytes, &sched) {
            Err(MirrorError::NoMessages) => prop_assert!(sched.is_empty()),
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
            Ok(t) => {
                prop_assert!(!sched.is_empty());
                prop_assert!(t >= 0.0 && !t.is_nan(), "Eq. (1) produced {t}");
            }
        }
        let _ = transfer_time_s(u64::MAX, &sched);
        let _ = transfer_time_s(0, &sched);
    }

    /// RTA terminates with `Ok` or a typed error on every schedule,
    /// including overloads (utilisation > 1) and `u64::MAX` periods; it
    /// must neither panic nor spin.
    #[test]
    fn rta_total_on_degenerate_sets(sched in degenerate_schedule()) {
        for m in &sched {
            let r = response_time(m, &sched, BUS_BITRATE_BPS);
            if let Ok(bound) = r {
                prop_assert!(
                    bound <= m.period_us(),
                    "{}: bound {bound} exceeds period {}",
                    m.id(),
                    m.period_us()
                );
            }
        }
        // The batch form agrees with the per-message form.
        for r in analyze(&sched, BUS_BITRATE_BPS) {
            let m = sched.iter().find(|m| m.id() == r.id).expect("analyzed message");
            prop_assert_eq!(r.response_us, response_time(m, &sched, BUS_BITRATE_BPS));
        }
    }

    /// Mirroring is total: every (schedule, offset) pair yields mirrors or
    /// a typed error, and successful mirrors preserve count, payloads and
    /// periods.
    #[test]
    fn mirroring_total_on_degenerate_sets(
        sched in degenerate_schedule(),
        split in 0usize..10,
        offset in 0u16..0x900,
    ) {
        let split = split.min(sched.len());
        let (under_test, others) = sched.split_at(split);
        for (f, o) in [(under_test, others), (others, under_test), (&sched[..], &[][..])] {
            match mirror_messages(f, offset, o) {
                Err(MirrorError::NoMessages) => prop_assert!(f.is_empty()),
                Err(_) => {}
                Ok(mirrored) => {
                    prop_assert_eq!(mirrored.len(), f.len());
                    for (m, orig) in mirrored.iter().zip(f) {
                        prop_assert_eq!(m.payload(), orig.payload());
                        prop_assert_eq!(m.period_us(), orig.period_us());
                    }
                }
            }
            let _ = mirror_messages_auto(f, o);
        }
    }
}

/// Hand-picked degenerate corners that random generation may miss.
#[test]
fn degenerate_corners_return_typed_errors() {
    // Empty everything.
    assert_eq!(transfer_time_s(1, &[]), Err(MirrorError::NoMessages));
    assert_eq!(mirror_messages(&[], 8, &[]), Err(MirrorError::NoMessages));
    assert!(mirror_messages_auto(&[], &[]).is_err());

    // Offset pushes the mirror past the 11-bit identifier space.
    let high = msg(0x7F0, 8, 10_000);
    assert!(matches!(
        mirror_messages(&[high], 0x100, &[]),
        Err(MirrorError::IdOverflow(_))
    ));

    // Zero offset: the mirror collides with its own original.
    assert!(matches!(
        mirror_messages(&[high], 0, &[]),
        Err(MirrorError::IdCollision(_))
    ));

    // Adjacent third-party id exhausts the priority gap for auto-mirroring.
    let gap_free = [msg(0x100, 8, 10_000)];
    let blocker = [msg(0x101, 8, 10_000)];
    assert!(matches!(
        mirror_messages_auto(&gap_free, &blocker),
        Err(MirrorError::GapExhausted(_))
    ));

    // A single message whose frame time exceeds its own period: overloaded
    // bus, typed error, no divergence.
    let overload = [msg(0x010, 8, 100)];
    assert!(response_time(&overload[0], &overload, BUS_BITRATE_BPS).is_err());

    // Maximum period: interference windows cannot overflow.
    let forever = [msg(0x020, 1, u64::MAX), msg(0x021, 8, u64::MAX)];
    for m in &forever {
        let _ = response_time(m, &forever, BUS_BITRATE_BPS);
    }
}
