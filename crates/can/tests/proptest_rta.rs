//! Property tests: the analytical worst-case response time always bounds
//! the simulated latency, and mirroring is latency-neutral for arbitrary
//! schedules.

use eea_can::{mirror_messages_auto, response_time, BusSim, CanId, Message, BUS_BITRATE_BPS};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Sched(Vec<Message>);

fn schedule_strategy(max_msgs: usize) -> impl Strategy<Value = Sched> {
    proptest::collection::vec(
        (0u16..0x180, 1u8..=8, 0usize..4),
        1..=max_msgs,
    )
    .prop_map(|raw| {
        let periods = [10_000u64, 20_000, 50_000, 100_000];
        let mut used = std::collections::BTreeSet::new();
        let msgs = raw
            .into_iter()
            .filter_map(|(id, payload, pi)| {
                // Spread ids to avoid duplicates.
                let mut id = id;
                while used.contains(&id) {
                    id = (id + 1) % 0x200;
                }
                used.insert(id);
                Message::new(CanId::new(id).ok()?, payload, periods[pi]).ok()
            })
            .collect();
        Sched(msgs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the analysis: simulation never exceeds the RTA bound.
    #[test]
    fn rta_bounds_simulation(sched in schedule_strategy(8)) {
        let msgs = sched.0;
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let run = sim.run(&msgs, 2_000_000).expect("unique ids");
        for (m, stats) in msgs.iter().zip(&run.stats) {
            if let Ok(bound) = response_time(m, &msgs, BUS_BITRATE_BPS) {
                prop_assert!(
                    stats.max_response_us <= bound,
                    "{}: simulated {} > bound {}",
                    m.id(), stats.max_response_us, bound
                );
            }
        }
    }

    /// Non-intrusiveness for arbitrary schedules: mirroring the first
    /// message leaves everyone else's latency unchanged.
    #[test]
    fn mirroring_is_latency_neutral(sched in schedule_strategy(6)) {
        let msgs = sched.0;
        prop_assume!(msgs.len() >= 2);
        let under_test = vec![msgs[0]];
        let others: Vec<Message> = msgs[1..].to_vec();
        let Ok(mirrored) = mirror_messages_auto(&under_test, &others) else {
            // Priority gap exhausted: mirroring is impossible here.
            return Ok(());
        };

        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let mut functional = others.clone();
        functional.extend_from_slice(&under_test);
        let base = sim.run(&functional, 2_000_000).expect("unique ids");
        let mut test_sched = others.clone();
        test_sched.extend_from_slice(&mirrored);
        let test = sim.run(&test_sched, 2_000_000).expect("unique ids");
        for o in &others {
            prop_assert_eq!(
                base.by_id(o.id()).expect("present").max_response_us,
                test.by_id(o.id()).expect("present").max_response_us
            );
        }
    }

    /// Utilisation accounting: the simulated utilisation matches the sum of
    /// per-message utilisations (within rounding of partial frames at the
    /// horizon).
    #[test]
    fn utilisation_matches_sum(sched in schedule_strategy(5)) {
        let msgs = sched.0;
        let expected: f64 = msgs.iter().map(|m| m.utilization(BUS_BITRATE_BPS)).sum();
        prop_assume!(expected < 0.9);
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let run = sim.run(&msgs, 10_000_000).expect("unique ids");
        prop_assert!(
            (run.utilization - expected).abs() < 0.05,
            "simulated {} vs expected {}",
            run.utilization,
            expected
        );
    }
}
