//! Event-driven CAN bus simulation.
//!
//! Models ID-based non-preemptive arbitration cycle-accurately at frame
//! granularity: whenever the bus goes idle, the pending frame with the
//! lowest identifier wins. Used to cross-check the analytical worst-case
//! response times and — crucially for the paper — to *demonstrate* that
//! mirrored test traffic leaves functional latencies unchanged.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::frame::CanId;
use crate::message::Message;

/// Error from constructing or running a [`BusSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusSimError {
    /// The bitrate must be positive — a 0 bit/s bus transmits nothing.
    ZeroBitrate,
    /// Two messages share an identifier; arbitration would be undefined on
    /// a real bus (both nodes would win and collide past the ID field).
    DuplicateId(CanId),
}

impl fmt::Display for BusSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusSimError::ZeroBitrate => write!(f, "bus bitrate must be positive"),
            BusSimError::DuplicateId(id) => {
                write!(f, "duplicate CAN identifier {id}: arbitration is undefined")
            }
        }
    }
}

impl Error for BusSimError {}

/// Observed per-message statistics of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageStats {
    /// Message identifier.
    pub id: CanId,
    /// Number of frame instances transmitted.
    pub frames: u64,
    /// Maximum observed response time (release -> end of transmission), µs.
    pub max_response_us: u64,
    /// Sum of response times (for averaging), µs.
    pub total_response_us: u64,
}

impl MessageStats {
    /// Average response time in microseconds.
    pub fn avg_response_us(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_response_us as f64 / self.frames as f64
        }
    }
}

/// Result of a [`BusSim`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-message statistics, in the input message order.
    pub stats: Vec<MessageStats>,
    /// Fraction of simulated time the bus was busy.
    pub utilization: f64,
    /// Simulated horizon in microseconds.
    pub horizon_us: u64,
}

impl SimResult {
    /// Looks up the stats of a message by identifier.
    pub fn by_id(&self, id: CanId) -> Option<&MessageStats> {
        self.stats.iter().find(|s| s.id == id)
    }
}

/// Event-driven simulator for one CAN bus.
#[derive(Debug, Clone)]
pub struct BusSim {
    bitrate_bps: u64,
}

impl BusSim {
    /// Creates a simulator at the given bitrate.
    ///
    /// # Errors
    ///
    /// Returns [`BusSimError::ZeroBitrate`] if `bitrate_bps == 0`.
    pub fn new(bitrate_bps: u64) -> Result<Self, BusSimError> {
        if bitrate_bps == 0 {
            return Err(BusSimError::ZeroBitrate);
        }
        Ok(BusSim { bitrate_bps })
    }

    /// Simulates `messages` for `horizon_us` microseconds. All releases are
    /// strictly periodic at `offset + k·period`.
    ///
    /// # Errors
    ///
    /// Returns [`BusSimError::DuplicateId`] if two messages share an
    /// identifier.
    pub fn run(&self, messages: &[Message], horizon_us: u64) -> Result<SimResult, BusSimError> {
        let mut seen: HashSet<u16> = HashSet::new();
        for m in messages {
            if !seen.insert(m.id().value()) {
                return Err(BusSimError::DuplicateId(m.id()));
            }
        }
        let mut stats: Vec<MessageStats> = messages
            .iter()
            .map(|m| MessageStats {
                id: m.id(),
                frames: 0,
                max_response_us: 0,
                total_response_us: 0,
            })
            .collect();
        // Next release time per message.
        let mut next_release: Vec<u64> = messages.iter().map(Message::offset_us).collect();
        // Pending queue: (message index, release time).
        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut now = 0u64;
        let mut busy_us = 0u64;

        loop {
            // Release everything due by `now`.
            for (i, m) in messages.iter().enumerate() {
                while next_release[i] <= now && next_release[i] < horizon_us {
                    pending.push((i, next_release[i]));
                    next_release[i] += m.period_us();
                }
            }
            if let Some(pos) = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(i, _))| messages[i].id())
                .map(|(pos, _)| pos)
            {
                let (i, release) = pending.swap_remove(pos);
                let c = messages[i].tx_time_us(self.bitrate_bps);
                let end = now + c;
                busy_us += c;
                let resp = end - release;
                let s = &mut stats[i];
                s.frames += 1;
                s.max_response_us = s.max_response_us.max(resp);
                s.total_response_us += resp;
                now = end;
                if now >= horizon_us {
                    break;
                }
            } else {
                // Idle: jump to the next release.
                let next = next_release
                    .iter()
                    .copied()
                    .filter(|&t| t < horizon_us)
                    .min();
                match next {
                    Some(t) => now = t,
                    None => break,
                }
            }
        }
        Ok(SimResult {
            stats,
            utilization: busy_us as f64 / horizon_us.max(1) as f64,
            horizon_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::BUS_BITRATE_BPS;
    use crate::rta::response_time;

    fn id(v: u16) -> CanId {
        CanId::new(v).expect("valid id")
    }

    fn msg(idv: u16, payload: u8, period: u64) -> Message {
        Message::new(id(idv), payload, period).unwrap()
    }

    #[test]
    fn frame_counts_match_periods() {
        let msgs = [msg(1, 8, 10_000), msg(2, 4, 20_000)];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let res = sim.run(&msgs, 100_000).expect("unique ids");
        assert_eq!(res.stats[0].frames, 10);
        assert_eq!(res.stats[1].frames, 5);
    }

    #[test]
    fn simulated_response_never_exceeds_rta_bound() {
        let msgs = [
            msg(1, 8, 5_000),
            msg(3, 6, 10_000),
            msg(7, 8, 20_000),
            msg(11, 2, 50_000),
        ];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let res = sim.run(&msgs, 1_000_000).expect("unique ids");
        for (m, s) in msgs.iter().zip(&res.stats) {
            let bound = response_time(m, &msgs, BUS_BITRATE_BPS)
                .expect("schedulable set");
            assert!(
                s.max_response_us <= bound,
                "{}: simulated {} > bound {}",
                m.id(),
                s.max_response_us,
                bound
            );
        }
    }

    #[test]
    fn arbitration_prefers_lower_id() {
        // Two messages released simultaneously: the lower ID must always
        // observe the smaller worst-case response.
        let msgs = [msg(0x10, 8, 1_000), msg(0x300, 8, 1_000)];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let res = sim.run(&msgs, 100_000).expect("unique ids");
        assert!(res.stats[0].max_response_us < res.stats[1].max_response_us);
    }

    #[test]
    fn utilization_accumulates() {
        let msgs = [msg(1, 8, 1_000)];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let res = sim.run(&msgs, 1_000_000).expect("unique ids");
        // 270us per 1000us period = 27 %.
        assert!((res.utilization - 0.27).abs() < 0.01);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let msgs = [msg(1, 8, 1_000), msg(1, 4, 2_000)];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        assert_eq!(
            sim.run(&msgs, 10_000),
            Err(BusSimError::DuplicateId(id(1)))
        );
    }

    #[test]
    fn zero_bitrate_rejected() {
        assert_eq!(BusSim::new(0).unwrap_err(), BusSimError::ZeroBitrate);
    }

    #[test]
    fn empty_set_idles() {
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let res = sim.run(&[], 10_000).expect("unique ids");
        assert_eq!(res.utilization, 0.0);
        assert!(res.stats.is_empty());
    }
}
