//! The unified `Transport` abstraction: classic-CAN mirroring, CAN FD and
//! FlexRay as interchangeable test-data backends.
//!
//! The paper's non-intrusive scheme hinges on one quantity: the time to
//! move `s` bytes of test data (or fail data) to/from an inactive ECU
//! without perturbing the certified bus schedule. Eq. (1) gives it for
//! classic-CAN mirroring; the outlook sketches the same argument for CAN
//! FD (identical arbitration, faster data phase, bigger payloads) and
//! FlexRay (static-segment TDMA, non-intrusive by construction). This
//! module makes the *transport choice itself* a first-class axis:
//!
//! * [`Transport`] — the trait every backend implements: per-node payload
//!   bandwidth, the transfer-time query, and a schedulability/validation
//!   hook,
//! * [`MirroredCan`] — wraps the Eq. (1) mirror arithmetic of
//!   [`crate::transfer_time_s`] behaviour-identically (bit for bit),
//! * [`CanFd`] — wraps [`FdConfig`]: each mirrored frame's payload scales
//!   by a multiplier and rounds up to the next DLC-encodable length,
//! * [`FlexRayStatic`] — wraps [`FlexRaySchedule::transfer_time_s`]: a
//!   node's bandwidth is the static-slot payload it owns per cycle,
//! * [`TransportConfig`] — the declarative parameter block higher layers
//!   (DSE objectives, fleet blueprints, bench binaries) carry around and
//!   [`build`](TransportConfig::build) into a concrete backend per
//!   implementation.
//!
//! Nodes are opaque `u32` tags (the same convention as
//! [`FlexRaySchedule`]); callers map their ECU identifiers onto them.
//! All three backends are deterministic: the same node → message-set /
//! slot assignment always produces the same bandwidth sum, in the same
//! floating-point order, so higher layers can promise bit-identical
//! results at any thread count.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::fd::{fd_payload_round_up, FdConfig, InvalidFdPayloadError};
use crate::flexray::{FlexRayConfig, FlexRayError, FlexRaySchedule};
use crate::frame::BUS_BITRATE_BPS;
use crate::message::Message;
use crate::mirror::MirrorError;

/// Which backend a [`Transport`] object (or a [`TransportConfig`]) is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransportKind {
    /// Classic-CAN schedule mirroring (Eq. (1) of the paper).
    MirroredCan,
    /// CAN FD: mirrored arbitration, payloads upgraded to FD lengths.
    CanFd,
    /// FlexRay static segment: TDMA slots owned by the node.
    FlexRay,
}

impl TransportKind {
    /// All backends, in canonical (classic → FD → FlexRay) order.
    pub const ALL: [TransportKind; 3] =
        [TransportKind::MirroredCan, TransportKind::CanFd, TransportKind::FlexRay];

    /// Stable lowercase label used in artifact files (CSV/JSON) and logs.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::MirroredCan => "classic-can",
            TransportKind::CanFd => "can-fd",
            TransportKind::FlexRay => "flexray",
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error of the transport layer. Converges into [`crate::CanError`] (and
/// from there into the workspace-wide `EeaError`) like every other enum of
/// this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The node has no payload bandwidth on this transport (no mirrored
    /// message, no static slot) — a transfer can never complete.
    NoBandwidth(u32),
    /// A bus configuration grants zero bandwidth overall: an [`FdConfig`]
    /// with a zero bit rate, or a [`FlexRayConfig`] with a zero cycle,
    /// zero slots or zero slot payload. Previously such configurations
    /// silently produced `inf`/`NaN` transfer times.
    ZeroBandwidth,
    /// The CAN FD payload multiplier is not a positive finite number.
    InvalidMultiplier(f64),
    /// The schedule over-subscribes the bus: aggregate worst-case frame
    /// utilisation exceeds 1. Carried value is the computed utilisation.
    Overloaded(f64),
    /// A payload did not fit any CAN FD DLC length.
    Fd(InvalidFdPayloadError),
    /// Mirror construction or an identifier-level invariant failed.
    Mirror(MirrorError),
    /// FlexRay slot assignment failed.
    FlexRay(FlexRayError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NoBandwidth(node) => {
                write!(f, "node {node} has no payload bandwidth on this transport")
            }
            TransportError::ZeroBandwidth => {
                write!(f, "bus configuration grants zero bandwidth")
            }
            TransportError::InvalidMultiplier(m) => {
                write!(f, "CAN FD payload multiplier must be positive and finite, got {m}")
            }
            TransportError::Overloaded(u) => {
                write!(f, "schedule over-subscribes the bus (utilisation {u:.3} > 1)")
            }
            TransportError::Fd(e) => e.fmt(f),
            TransportError::Mirror(e) => e.fmt(f),
            TransportError::FlexRay(e) => e.fmt(f),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Fd(e) => Some(e),
            TransportError::Mirror(e) => Some(e),
            TransportError::FlexRay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidFdPayloadError> for TransportError {
    fn from(e: InvalidFdPayloadError) -> Self {
        TransportError::Fd(e)
    }
}

impl From<MirrorError> for TransportError {
    fn from(e: MirrorError) -> Self {
        TransportError::Mirror(e)
    }
}

impl From<FlexRayError> for TransportError {
    fn from(e: FlexRayError) -> Self {
        TransportError::FlexRay(e)
    }
}

/// A test-data transport: the bus-side abstraction every layer above the
/// CAN crate (DSE objectives, fleet blueprints, bench binaries) queries
/// instead of calling backend-specific free functions.
///
/// The contract:
///
/// * [`bandwidth_bytes_per_s`](Transport::bandwidth_bytes_per_s) is the
///   aggregate payload bandwidth the certified schedule grants `node`
///   without perturbing any other participant (the denominator of Eq. (1)
///   and its analogues). `0.0` for unknown nodes.
/// * [`transfer_time_s`](Transport::transfer_time_s) is the Eq. (1)
///   query: seconds to move `data_bytes` through that bandwidth. A node
///   without bandwidth is a typed [`TransportError::NoBandwidth`], never
///   a silent `inf`.
/// * [`validate`](Transport::validate) is the schedulability hook: checks
///   the backend's own invariants (identifier uniqueness, DLC
///   encodability, bus utilisation ≤ 1, non-degenerate configuration).
pub trait Transport {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;

    /// Aggregate payload bandwidth (bytes/s) available to `node`;
    /// `0.0` when the transport grants the node nothing.
    fn bandwidth_bytes_per_s(&self, node: u32) -> f64;

    /// Transfer time (seconds) of `data_bytes` of test data to/from
    /// `node` — Eq. (1) for mirrored CAN, its analogues for FD/FlexRay.
    ///
    /// # Errors
    ///
    /// [`TransportError::NoBandwidth`] when the node has no payload
    /// bandwidth on this transport.
    fn transfer_time_s(&self, node: u32, data_bytes: u64) -> Result<f64, TransportError> {
        let bandwidth = self.bandwidth_bytes_per_s(node);
        if bandwidth <= 0.0 {
            Err(TransportError::NoBandwidth(node))
        } else {
            Ok(data_bytes as f64 / bandwidth)
        }
    }

    /// Schedulability/validation hook: checks the backend invariants that
    /// make the non-intrusiveness argument sound.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] describing the first violated invariant.
    fn validate(&self) -> Result<(), TransportError>;
}

/// Classic-CAN mirroring — Eq. (1), behaviour-identical to
/// [`crate::transfer_time_s`].
///
/// Each node owns a set of (mirrored or functional — both carry identical
/// payload sizes in **bytes** and periods) [`Message`]s; the bandwidth is
/// their aggregate `s(c)/p(c)` sum, accumulated in message order so the
/// result is bit-for-bit the historical free-function value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MirroredCan {
    nodes: BTreeMap<u32, Vec<Message>>,
}

impl MirroredCan {
    /// Builds the backend over per-node message sets.
    pub fn new(nodes: BTreeMap<u32, Vec<Message>>) -> Self {
        MirroredCan { nodes }
    }

    /// The messages a node streams test data over (empty for unknown
    /// nodes).
    pub fn messages(&self, node: u32) -> &[Message] {
        self.nodes.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl Transport for MirroredCan {
    fn kind(&self) -> TransportKind {
        TransportKind::MirroredCan
    }

    fn bandwidth_bytes_per_s(&self, node: u32) -> f64 {
        self.nodes
            .get(&node)
            .map(|msgs| msgs.iter().map(Message::payload_bandwidth_bytes_per_s).sum())
            .unwrap_or(0.0)
    }

    fn validate(&self) -> Result<(), TransportError> {
        // Identifier uniqueness across the whole set: a duplicate id makes
        // arbitration nondeterministic and voids the mirroring argument.
        let mut seen = BTreeSet::new();
        let mut utilization = 0.0f64;
        for m in self.nodes.values().flatten() {
            if !seen.insert(m.id()) {
                return Err(TransportError::Mirror(MirrorError::IdCollision(m.id())));
            }
            utilization += m.utilization(BUS_BITRATE_BPS);
        }
        if utilization > 1.0 {
            return Err(TransportError::Overloaded(utilization));
        }
        Ok(())
    }
}

/// CAN FD — mirrored arbitration with upgraded payloads.
///
/// CAN FD keeps classic arbitration (the mirroring argument carries over
/// verbatim) but allows payloads up to 64 bytes at a faster data-phase bit
/// rate. The backend scales every mirrored frame's payload (**bytes**) by
/// `payload_multiplier`, rounds the result up to the next DLC-encodable
/// length ([`fd_payload_round_up`]), and caps it at 64 — the period is
/// untouched, so relative priorities and the certified schedule stay
/// intact while the Eq. (1) bandwidth multiplies.
///
/// With `payload_multiplier == 1.0` every payload in `0..=8` maps to
/// itself and the bandwidth arithmetic is the exact classic-CAN
/// expression: transfer times match [`MirroredCan`] bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CanFd {
    /// Per-node upgraded frames: `(fd payload bytes, period µs)`.
    nodes: BTreeMap<u32, Vec<(u8, u64)>>,
    config: FdConfig,
    payload_multiplier: f64,
}

impl CanFd {
    /// Builds the backend over per-node (classic) message sets, upgrading
    /// every payload by `payload_multiplier`.
    ///
    /// # Errors
    ///
    /// * [`TransportError::InvalidMultiplier`] unless the multiplier is
    ///   positive and finite,
    /// * [`TransportError::ZeroBandwidth`] when either [`FdConfig`] bit
    ///   rate is zero (see [`FdConfig::checked`]).
    pub fn new(
        nodes: BTreeMap<u32, Vec<Message>>,
        config: FdConfig,
        payload_multiplier: f64,
    ) -> Result<Self, TransportError> {
        if !payload_multiplier.is_finite() || payload_multiplier <= 0.0 {
            return Err(TransportError::InvalidMultiplier(payload_multiplier));
        }
        let config = FdConfig::checked(config.nominal_bps, config.data_bps)?;
        let mut upgraded: BTreeMap<u32, Vec<(u8, u64)>> = BTreeMap::new();
        for (node, msgs) in nodes {
            let frames = msgs
                .iter()
                .map(|m| {
                    let p = Self::upgrade_payload(m.payload(), payload_multiplier)?;
                    Ok((p, m.period_us()))
                })
                .collect::<Result<Vec<_>, TransportError>>()?;
            upgraded.insert(node, frames);
        }
        Ok(CanFd {
            nodes: upgraded,
            config,
            payload_multiplier,
        })
    }

    /// A classic payload (bytes) scaled by `multiplier`, rounded up to the
    /// next DLC-encodable FD length and capped at 64 bytes.
    ///
    /// # Errors
    ///
    /// [`TransportError::InvalidMultiplier`] unless the multiplier is
    /// positive and finite.
    pub fn upgrade_payload(payload: u8, multiplier: f64) -> Result<u8, TransportError> {
        if !multiplier.is_finite() || multiplier <= 0.0 {
            return Err(TransportError::InvalidMultiplier(multiplier));
        }
        if multiplier == 1.0 {
            // Identity fast path: classic payloads 0..=8 are all
            // DLC-encodable, and the exact payload keeps the bandwidth
            // arithmetic bit-identical to classic CAN.
            return Ok(fd_payload_round_up(payload)?);
        }
        let scaled = (f64::from(payload) * multiplier).ceil().clamp(0.0, 64.0);
        Ok(fd_payload_round_up(scaled as u8)?)
    }

    /// The dual-rate bus configuration.
    pub fn config(&self) -> FdConfig {
        self.config
    }

    /// The payload upgrade factor.
    pub fn payload_multiplier(&self) -> f64 {
        self.payload_multiplier
    }
}

impl Transport for CanFd {
    fn kind(&self) -> TransportKind {
        TransportKind::CanFd
    }

    fn bandwidth_bytes_per_s(&self, node: u32) -> f64 {
        self.nodes
            .get(&node)
            .map(|frames| {
                frames
                    .iter()
                    .map(|&(p, period)| self.config.payload_bandwidth_bytes_per_s(p, period))
                    .sum()
            })
            .unwrap_or(0.0)
    }

    fn validate(&self) -> Result<(), TransportError> {
        let config = FdConfig::checked(self.config.nominal_bps, self.config.data_bps)?;
        // Schedulability: the upgraded frames must still fit their
        // periods. Worst-case FD frame time per period, summed over the
        // whole bus.
        let mut utilization = 0.0f64;
        for &(p, period) in self.nodes.values().flatten() {
            let frame_us = config.frame_time_us(p)?;
            utilization += frame_us as f64 / period.max(1) as f64;
        }
        if utilization > 1.0 {
            return Err(TransportError::Overloaded(utilization));
        }
        Ok(())
    }
}

/// FlexRay static segment — TDMA slots, non-intrusive by construction.
///
/// Wraps a [`FlexRaySchedule`]: a node's bandwidth is the payload of the
/// static slots it owns per communication cycle, and
/// [`Transport::transfer_time_s`] is exactly
/// [`FlexRaySchedule::transfer_time_s`] with the silent `inf` of a
/// slot-less node replaced by a typed [`TransportError::NoBandwidth`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlexRayStatic {
    schedule: FlexRaySchedule,
}

impl FlexRayStatic {
    /// Wraps an existing schedule.
    pub fn new(schedule: FlexRaySchedule) -> Self {
        FlexRayStatic { schedule }
    }

    /// Deterministic even assignment: each node of `nodes` (in the given
    /// order) receives `slots_per_node` consecutive static slots until the
    /// segment is exhausted; later nodes own nothing (their transfers are
    /// typed [`TransportError::NoBandwidth`] errors).
    ///
    /// # Errors
    ///
    /// [`TransportError::ZeroBandwidth`] for a degenerate configuration
    /// (zero cycle length, zero slots, zero slot payload).
    pub fn evenly_assigned(
        config: FlexRayConfig,
        nodes: &[u32],
        slots_per_node: u16,
    ) -> Result<Self, TransportError> {
        if config.cycle_us == 0 || config.static_slots == 0 || config.slot_payload_bytes == 0 {
            return Err(TransportError::ZeroBandwidth);
        }
        let mut schedule = FlexRaySchedule::new(config);
        let mut next_slot = 0u16;
        'nodes: for &node in nodes {
            for _ in 0..slots_per_node {
                if next_slot >= config.static_slots {
                    break 'nodes;
                }
                schedule.assign(next_slot, node)?;
                next_slot += 1;
            }
        }
        Ok(FlexRayStatic { schedule })
    }

    /// The underlying static-segment schedule.
    pub fn schedule(&self) -> &FlexRaySchedule {
        &self.schedule
    }
}

impl Transport for FlexRayStatic {
    fn kind(&self) -> TransportKind {
        TransportKind::FlexRay
    }

    fn bandwidth_bytes_per_s(&self, node: u32) -> f64 {
        self.schedule.node_bandwidth_bytes_per_s(node)
    }

    fn validate(&self) -> Result<(), TransportError> {
        let config = self.schedule.config();
        if config.cycle_us == 0 || config.static_slots == 0 || config.slot_payload_bytes == 0 {
            return Err(TransportError::ZeroBandwidth);
        }
        // TDMA utilisation cannot exceed 1 by construction (exclusive
        // slots); nothing further to check.
        Ok(())
    }
}

/// Declarative transport selection plus parameters — what the layers above
/// carry in their configuration structs (`DseConfig`, fleet blueprints,
/// bench knobs) and [`build`](TransportConfig::build) into a concrete
/// [`Transport`] per decoded implementation.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TransportConfig {
    /// Classic-CAN mirroring (the paper's baseline; the default).
    #[default]
    MirroredCan,
    /// CAN FD with a dual-rate bus configuration and a payload upgrade
    /// factor applied to every mirrored frame.
    CanFd {
        /// Dual-rate bus configuration.
        config: FdConfig,
        /// Payload scale factor (`1.0` reproduces classic CAN bit for
        /// bit; `8.0` upgrades 8-byte frames to 64-byte FD frames).
        payload_multiplier: f64,
    },
    /// FlexRay static segment with an even slot assignment.
    FlexRay {
        /// Static-segment configuration.
        config: FlexRayConfig,
        /// Static slots granted to each node, in node order, until the
        /// segment is exhausted.
        slots_per_node: u16,
    },
}

impl TransportConfig {
    /// The default CAN FD axis point: standard 500 k/2 M dual-rate bus,
    /// 8-byte mirrors upgraded to 64-byte FD frames.
    pub fn can_fd_default() -> Self {
        TransportConfig::CanFd {
            config: FdConfig::default(),
            payload_multiplier: 8.0,
        }
    }

    /// The default FlexRay axis point: standard 5 ms / 62-slot / 32-byte
    /// static segment, four slots per node.
    pub fn flexray_default() -> Self {
        TransportConfig::FlexRay {
            config: FlexRayConfig::default(),
            slots_per_node: 4,
        }
    }

    /// The backend this configuration selects.
    pub fn kind(&self) -> TransportKind {
        match self {
            TransportConfig::MirroredCan => TransportKind::MirroredCan,
            TransportConfig::CanFd { .. } => TransportKind::CanFd,
            TransportConfig::FlexRay { .. } => TransportKind::FlexRay,
        }
    }

    /// The default configuration of a given backend.
    pub fn for_kind(kind: TransportKind) -> Self {
        match kind {
            TransportKind::MirroredCan => TransportConfig::MirroredCan,
            TransportKind::CanFd => TransportConfig::can_fd_default(),
            TransportKind::FlexRay => TransportConfig::flexray_default(),
        }
    }

    /// Checks the configuration parameters without building a backend —
    /// everything [`build`](TransportConfig::build) could reject that does
    /// not depend on the node → message-set map.
    ///
    /// # Errors
    ///
    /// * [`TransportError::InvalidMultiplier`] / [`TransportError::ZeroBandwidth`]
    ///   for degenerate CAN FD parameters,
    /// * [`TransportError::ZeroBandwidth`] for a degenerate FlexRay
    ///   configuration.
    pub fn validate(&self) -> Result<(), TransportError> {
        match self {
            TransportConfig::MirroredCan => Ok(()),
            TransportConfig::CanFd {
                config,
                payload_multiplier,
            } => {
                if !payload_multiplier.is_finite() || *payload_multiplier <= 0.0 {
                    return Err(TransportError::InvalidMultiplier(*payload_multiplier));
                }
                FdConfig::checked(config.nominal_bps, config.data_bps).map(|_| ())
            }
            TransportConfig::FlexRay { config, .. } => {
                if config.cycle_us == 0 || config.static_slots == 0 || config.slot_payload_bytes == 0
                {
                    return Err(TransportError::ZeroBandwidth);
                }
                Ok(())
            }
        }
    }

    /// Builds a concrete backend over per-node message sets (for FlexRay,
    /// only the node *keys* matter: slots are assigned evenly over them in
    /// ascending node order).
    ///
    /// # Errors
    ///
    /// The same parameter errors as [`validate`](TransportConfig::validate);
    /// node-map-dependent errors cannot occur (payload upgrades are capped
    /// and slot assignment stops at the segment boundary).
    pub fn build(
        &self,
        nodes: BTreeMap<u32, Vec<Message>>,
    ) -> Result<Box<dyn Transport>, TransportError> {
        match self {
            TransportConfig::MirroredCan => Ok(Box::new(MirroredCan::new(nodes))),
            TransportConfig::CanFd {
                config,
                payload_multiplier,
            } => Ok(Box::new(CanFd::new(nodes, *config, *payload_multiplier)?)),
            TransportConfig::FlexRay {
                config,
                slots_per_node,
            } => {
                let node_ids: Vec<u32> = nodes.keys().copied().collect();
                Ok(Box::new(FlexRayStatic::evenly_assigned(
                    *config,
                    &node_ids,
                    *slots_per_node,
                )?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::CanId;
    use crate::mirror::transfer_time_s;

    fn msg(idv: u16, payload: u8, period: u64) -> Message {
        Message::new(CanId::new(idv).expect("valid id"), payload, period).expect("valid message")
    }

    fn nodes() -> BTreeMap<u32, Vec<Message>> {
        let mut m = BTreeMap::new();
        m.insert(3u32, vec![msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)]);
        m.insert(7u32, vec![msg(0x200, 2, 50_000)]);
        m
    }

    #[test]
    fn mirrored_can_matches_free_function_bit_for_bit() {
        let backend = MirroredCan::new(nodes());
        for (node, msgs) in [
            (3u32, vec![msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)]),
            (7u32, vec![msg(0x200, 2, 50_000)]),
        ] {
            for bytes in [0u64, 1, 1600, 1 << 20, u64::MAX >> 16] {
                let free = transfer_time_s(bytes, &msgs).expect("bandwidth positive");
                let via_trait = backend.transfer_time_s(node, bytes).expect("bandwidth positive");
                assert_eq!(free.to_bits(), via_trait.to_bits(), "node {node}, {bytes} B");
            }
        }
        assert_eq!(
            backend.transfer_time_s(99, 100),
            Err(TransportError::NoBandwidth(99))
        );
    }

    #[test]
    fn fd_multiplier_one_is_classic_identity() {
        let backend =
            CanFd::new(nodes(), FdConfig::default(), 1.0).expect("valid configuration");
        let classic = MirroredCan::new(nodes());
        for node in [3u32, 7] {
            assert_eq!(
                backend.bandwidth_bytes_per_s(node).to_bits(),
                classic.bandwidth_bytes_per_s(node).to_bits()
            );
        }
    }

    #[test]
    fn fd_multiplier_scales_bandwidth() {
        let classic = MirroredCan::new(nodes());
        let fd = CanFd::new(nodes(), FdConfig::default(), 8.0).expect("valid configuration");
        // 4→32, 8→64, 2→16: exact ×8 upgrades.
        for node in [3u32, 7] {
            let ratio = fd.bandwidth_bytes_per_s(node) / classic.bandwidth_bytes_per_s(node);
            assert!((ratio - 8.0).abs() < 1e-12, "node {node}: ratio {ratio}");
        }
        let t_classic = classic.transfer_time_s(3, 1 << 20).expect("bandwidth");
        let t_fd = fd.transfer_time_s(3, 1 << 20).expect("bandwidth");
        assert!((t_classic / t_fd - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fd_rejects_degenerate_parameters() {
        assert_eq!(
            CanFd::new(nodes(), FdConfig::default(), 0.0).err(),
            Some(TransportError::InvalidMultiplier(0.0))
        );
        assert_eq!(
            CanFd::new(nodes(), FdConfig::default(), f64::NAN)
                .err()
                .map(|e| matches!(e, TransportError::InvalidMultiplier(_))),
            Some(true)
        );
        let zero = FdConfig {
            nominal_bps: 0,
            data_bps: 2_000_000,
        };
        assert_eq!(
            CanFd::new(nodes(), zero, 1.0).err(),
            Some(TransportError::ZeroBandwidth)
        );
    }

    #[test]
    fn fd_upgrade_rounds_and_caps() {
        assert_eq!(CanFd::upgrade_payload(8, 1.0), Ok(8));
        assert_eq!(CanFd::upgrade_payload(8, 8.0), Ok(64));
        assert_eq!(CanFd::upgrade_payload(8, 100.0), Ok(64), "capped at 64");
        assert_eq!(CanFd::upgrade_payload(3, 2.0), Ok(6));
        assert_eq!(CanFd::upgrade_payload(5, 2.0), Ok(12), "10 rounds to 12");
        assert_eq!(CanFd::upgrade_payload(0, 4.0), Ok(0));
    }

    #[test]
    fn flexray_even_assignment_is_deterministic() {
        let a = FlexRayStatic::evenly_assigned(FlexRayConfig::default(), &[3, 7], 4)
            .expect("valid configuration");
        let b = FlexRayStatic::evenly_assigned(FlexRayConfig::default(), &[3, 7], 4)
            .expect("valid configuration");
        assert_eq!(a, b);
        assert_eq!(a.schedule().slots_of(3), vec![0, 1, 2, 3]);
        assert_eq!(a.schedule().slots_of(7), vec![4, 5, 6, 7]);
        // 4 slots × 32 B per 5 ms = 25,600 B/s.
        assert!((a.bandwidth_bytes_per_s(3) - 25_600.0).abs() < 1e-9);
        assert_eq!(
            a.transfer_time_s(99, 1),
            Err(TransportError::NoBandwidth(99)),
            "slot-less nodes are typed errors, not silent inf"
        );
    }

    #[test]
    fn flexray_exhausts_segment_gracefully() {
        let many: Vec<u32> = (0..40).collect();
        let t = FlexRayStatic::evenly_assigned(FlexRayConfig::default(), &many, 2)
            .expect("valid configuration");
        // 62 slots / 2 per node → 31 nodes served, the rest own nothing.
        assert!(t.bandwidth_bytes_per_s(30) > 0.0);
        assert_eq!(t.bandwidth_bytes_per_s(31), 0.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn flexray_rejects_degenerate_config() {
        let bad = FlexRayConfig {
            cycle_us: 0,
            ..FlexRayConfig::default()
        };
        assert_eq!(
            FlexRayStatic::evenly_assigned(bad, &[1], 1).err(),
            Some(TransportError::ZeroBandwidth)
        );
    }

    #[test]
    fn config_builds_every_backend() {
        for kind in TransportKind::ALL {
            let cfg = TransportConfig::for_kind(kind);
            assert_eq!(cfg.kind(), kind);
            cfg.validate().expect("default configurations are valid");
            let backend = cfg.build(nodes()).expect("default configurations build");
            assert_eq!(backend.kind(), kind);
            assert!(backend.bandwidth_bytes_per_s(3) > 0.0);
            assert!(backend.validate().is_ok());
            let t = backend.transfer_time_s(3, 1 << 20).expect("bandwidth positive");
            assert!(t.is_finite() && t > 0.0);
        }
    }

    #[test]
    fn config_validate_catches_degenerate_parameters() {
        let bad_fd = TransportConfig::CanFd {
            config: FdConfig::default(),
            payload_multiplier: -1.0,
        };
        assert_eq!(
            bad_fd.validate(),
            Err(TransportError::InvalidMultiplier(-1.0))
        );
        let bad_fr = TransportConfig::FlexRay {
            config: FlexRayConfig {
                slot_payload_bytes: 0,
                ..FlexRayConfig::default()
            },
            slots_per_node: 1,
        };
        assert_eq!(bad_fr.validate(), Err(TransportError::ZeroBandwidth));
    }

    #[test]
    fn mirrored_can_validate_checks_collisions_and_load() {
        let mut n = BTreeMap::new();
        n.insert(1u32, vec![msg(0x100, 4, 10_000)]);
        n.insert(2u32, vec![msg(0x100, 8, 20_000)]);
        let t = MirroredCan::new(n);
        assert!(matches!(
            t.validate(),
            Err(TransportError::Mirror(MirrorError::IdCollision(_)))
        ));
        // A single hog with a 1 ms period over-subscribes 500 kbit/s.
        let mut n = BTreeMap::new();
        n.insert(1u32, (0..10).map(|i| msg(0x100 + i, 8, 1_000)).collect());
        assert!(matches!(
            MirroredCan::new(n).validate(),
            Err(TransportError::Overloaded(_))
        ));
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(TransportKind::MirroredCan.label(), "classic-can");
        assert_eq!(TransportKind::CanFd.label(), "can-fd");
        assert_eq!(TransportKind::FlexRay.label(), "flexray");
        assert_eq!(TransportKind::ALL.len(), 3);
    }
}
