//! CAN FD frames — the first "other automotive field bus" the paper's
//! concept extends to.
//!
//! CAN FD keeps the arbitration semantics of classic CAN (so the mirroring
//! argument carries over verbatim) but switches to a higher bit rate for
//! the data phase and allows payloads up to 64 bytes. For the test-data
//! transfers of the paper this multiplies the mirrored bandwidth of
//! Eq. (1) without touching relative priorities.

use std::error::Error;
use std::fmt;

use crate::transport::TransportError;

/// Valid CAN FD payload lengths (DLC-encodable). Lengths are **payload
/// bytes** (the data field), not frame bits — compare
/// [`crate::frame_bits`], which counts the whole worst-case frame in bits.
pub const FD_PAYLOADS: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64];

/// Error for payloads not encodable in a CAN FD DLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFdPayloadError(pub u8);

impl fmt::Display for InvalidFdPayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bytes is not a valid CAN FD payload length", self.0)
    }
}

impl Error for InvalidFdPayloadError {}

/// Rounds a payload size up to the next DLC-encodable CAN FD length.
///
/// # Errors
///
/// Returns [`InvalidFdPayloadError`] for sizes above 64 bytes.
pub fn fd_payload_round_up(bytes: u8) -> Result<u8, InvalidFdPayloadError> {
    FD_PAYLOADS
        .iter()
        .copied()
        .find(|&p| p >= bytes)
        .ok_or(InvalidFdPayloadError(bytes))
}

/// Dual-rate CAN FD bus configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdConfig {
    /// Arbitration-phase bit rate (classic, e.g. 500 kbit/s).
    pub nominal_bps: u64,
    /// Data-phase bit rate (e.g. 2 or 5 Mbit/s).
    pub data_bps: u64,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            nominal_bps: 500_000,
            data_bps: 2_000_000,
        }
    }
}

impl FdConfig {
    /// Checked constructor: rejects configurations that grant zero
    /// bandwidth instead of letting them flow into the bandwidth
    /// arithmetic, where a zero bit rate previously yielded `INFINITY`
    /// frame times silently (the rates are only clamped, not validated,
    /// by [`FdConfig::frame_time_us`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::ZeroBandwidth`] when either bit rate is
    /// zero.
    pub fn checked(nominal_bps: u64, data_bps: u64) -> Result<Self, TransportError> {
        if nominal_bps == 0 || data_bps == 0 {
            return Err(TransportError::ZeroBandwidth);
        }
        Ok(FdConfig {
            nominal_bps,
            data_bps,
        })
    }

    /// Worst-case transmission time of a CAN FD frame with `payload` bytes
    /// (11-bit identifier), in microseconds.
    ///
    /// Bit counts follow the ISO 11898-1 FD format: ~30 arbitration-phase
    /// bits (SOF, identifier, control up to BRS) plus the data phase
    /// (remaining control, payload, 17/21-bit CRC with fixed stuff bits,
    /// stuffing) transmitted at the data rate, plus the ACK/EOF tail at
    /// the nominal rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFdPayloadError`] if `payload` is not DLC-encodable
    /// (use [`fd_payload_round_up`] first). Both rates of the configuration
    /// are clamped to at least 1 bit/s to keep the arithmetic total.
    pub fn frame_time_us(&self, payload: u8) -> Result<u64, InvalidFdPayloadError> {
        if !FD_PAYLOADS.contains(&payload) {
            return Err(InvalidFdPayloadError(payload));
        }
        let arbitration_bits = 30u64; // SOF + 11-bit id + RRS/IDE/FDF/res + BRS
        let crc_bits: u64 = if payload <= 16 { 17 + 5 } else { 21 + 6 }; // incl. fixed stuff
        let data_field_bits = 8 * u64::from(payload);
        // Dynamic stuffing applies up to the CRC field (1 in 5 worst case).
        let stuffable = 4 + data_field_bits; // ESI + DLC + data
        let data_phase_bits = stuffable + stuffable.div_ceil(4) + crc_bits;
        let tail_bits = 13u64; // CRC delim, ACK, EOF, part of IFS
        let us = |bits: u64, bps: u64| (bits * 1_000_000).div_ceil(bps.max(1));
        Ok(us(arbitration_bits, self.nominal_bps)
            + us(data_phase_bits, self.data_bps)
            + us(tail_bits, self.nominal_bps))
    }

    /// Effective payload bandwidth (bytes/s) of a periodic FD message
    /// whose data field carries `payload` **bytes** (not bits — frame-level
    /// bit counts live in [`FdConfig::frame_time_us`]). A
    /// zero period yields `f64::INFINITY` (degenerate input, documented
    /// rather than panicking); callers validating messages via
    /// [`crate::Message`] never hit it.
    pub fn payload_bandwidth_bytes_per_s(&self, payload: u8, period_us: u64) -> f64 {
        if period_us == 0 {
            return f64::INFINITY;
        }
        f64::from(payload) * 1e6 / period_us as f64
    }

    /// Speed-up of the mirrored Eq. (1) transfer when a classic CAN
    /// message of `classic_payload` **bytes** is upgraded to an FD frame of
    /// `fd_payload` **bytes** at the same period: the bandwidth ratio. A zero
    /// classic payload yields `f64::INFINITY` (no classic bandwidth to
    /// compare against).
    pub fn eq1_speedup(&self, classic_payload: u8, fd_payload: u8) -> f64 {
        if classic_payload == 0 {
            return f64::INFINITY;
        }
        f64::from(fd_payload) / f64::from(classic_payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_bits;

    #[test]
    fn payload_rounding() {
        assert_eq!(fd_payload_round_up(0), Ok(0));
        assert_eq!(fd_payload_round_up(8), Ok(8));
        assert_eq!(fd_payload_round_up(9), Ok(12));
        assert_eq!(fd_payload_round_up(33), Ok(48));
        assert_eq!(fd_payload_round_up(64), Ok(64));
        assert_eq!(fd_payload_round_up(65), Err(InvalidFdPayloadError(65)));
    }

    #[test]
    fn fd_frame_faster_per_byte_than_classic() {
        let fd = FdConfig::default();
        // 64 bytes FD vs 8 x 8-byte classic frames at 500 kbit/s.
        let fd_time = fd.frame_time_us(64).unwrap();
        let classic_time =
            8 * (u64::from(frame_bits(8).unwrap()) * 1_000_000).div_ceil(500_000);
        assert!(
            fd_time < classic_time / 2,
            "FD {fd_time}us vs classic {classic_time}us"
        );
    }

    #[test]
    fn frame_time_monotone_in_payload() {
        let fd = FdConfig::default();
        let mut last = 0;
        for &p in &FD_PAYLOADS {
            let t = fd.frame_time_us(p).unwrap();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn higher_data_rate_shortens_frames() {
        let slow = FdConfig {
            nominal_bps: 500_000,
            data_bps: 1_000_000,
        };
        let fast = FdConfig {
            nominal_bps: 500_000,
            data_bps: 5_000_000,
        };
        assert!(fast.frame_time_us(64).unwrap() < slow.frame_time_us(64).unwrap());
    }

    #[test]
    fn eq1_speedup_ratio() {
        let fd = FdConfig::default();
        // Upgrading an 8-byte mirror to a 64-byte FD mirror at the same
        // period multiplies the Eq. (1) bandwidth by 8.
        assert!((fd.eq1_speedup(8, 64) - 8.0).abs() < 1e-12);
        let bw_classic = fd.payload_bandwidth_bytes_per_s(8, 10_000);
        let bw_fd = fd.payload_bandwidth_bytes_per_s(64, 10_000);
        assert!((bw_fd / bw_classic - 8.0).abs() < 1e-12);
    }

    #[test]
    fn checked_constructor_rejects_zero_rates() {
        assert_eq!(
            FdConfig::checked(0, 2_000_000),
            Err(TransportError::ZeroBandwidth)
        );
        assert_eq!(
            FdConfig::checked(500_000, 0),
            Err(TransportError::ZeroBandwidth)
        );
        assert_eq!(
            FdConfig::checked(500_000, 2_000_000),
            Ok(FdConfig::default())
        );
    }

    #[test]
    fn rejects_bad_payload() {
        assert_eq!(
            FdConfig::default().frame_time_us(9),
            Err(InvalidFdPayloadError(9))
        );
    }
}
