//! CAN bus modelling: frames, arbitration, response-time analysis and the
//! paper's non-intrusive schedule mirroring.
//!
//! The paper transfers encoded deterministic test patterns over a regular
//! CAN field bus as the *test access mechanism* (TAM). To keep the
//! certified bus schedule untouched, the test-data messages `c'` *mirror*
//! the communication properties — size, period and relative priority — of
//! the ECU's now-inactive functional messages `c` (Fig. 4). Eq. (1) of the
//! paper then gives the transfer time of a pattern set as its size divided
//! by the mirrored messages' aggregate bandwidth.
//!
//! Provided here:
//!
//! * [`CanId`]/[`frame_bits`] — identifiers and worst-case (bit-stuffed)
//!   frame lengths of CAN 2.0A data frames,
//! * [`Message`] — periodic messages with jitter and offset,
//! * [`response_time`]/[`analyze`] — the classic worst-case response-time
//!   analysis for CAN (non-preemptive fixed-priority arbitration),
//! * [`BusSim`] — an event-driven simulator of ID-based arbitration used to
//!   cross-check the analysis and to *demonstrate* non-intrusiveness rather
//!   than assume it,
//! * [`mirror_messages`]/[`transfer_time_s`] — the schedule mirroring and
//!   Eq. (1).
//!
//! # Example
//!
//! ```
//! use eea_can::{transfer_time_s, Message, CanId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An ECU sending 2 messages: 4 bytes @ 10 ms and 8 bytes @ 20 ms.
//! let msgs = vec![
//!     Message::new(CanId::new(0x100)?, 4, 10_000)?,
//!     Message::new(CanId::new(0x200)?, 8, 20_000)?,
//! ];
//! // Eq. (1): q = s / (sum of size/period). 1 MiB of test data:
//! let q = transfer_time_s(1 << 20, &msgs);
//! assert!(q > 0.0);
//! # Ok(())
//! # }
//! ```

mod bus;
pub mod fd;
pub mod flexray;
mod frame;
mod message;
mod mirror;
mod rta;

pub use bus::{BusSim, MessageStats, SimResult};
pub use frame::{frame_bits, CanId, InvalidCanIdError, BUS_BITRATE_BPS};
pub use message::{InvalidMessageError, Message};
pub use mirror::{mirror_messages, mirror_messages_auto, transfer_time_s, MirrorError};
pub use rta::{analyze, response_time, RtaResult};
