//! CAN bus modelling: frames, arbitration, response-time analysis and the
//! paper's non-intrusive schedule mirroring.
//!
//! The paper transfers encoded deterministic test patterns over a regular
//! CAN field bus as the *test access mechanism* (TAM). To keep the
//! certified bus schedule untouched, the test-data messages `c'` *mirror*
//! the communication properties — size, period and relative priority — of
//! the ECU's now-inactive functional messages `c` (Fig. 4). Eq. (1) of the
//! paper then gives the transfer time of a pattern set as its size divided
//! by the mirrored messages' aggregate bandwidth.
//!
//! Provided here:
//!
//! * [`CanId`]/[`frame_bits`] — identifiers and worst-case (bit-stuffed)
//!   frame lengths of CAN 2.0A data frames,
//! * [`Message`] — periodic messages with jitter and offset,
//! * [`response_time`]/[`analyze`] — the classic worst-case response-time
//!   analysis for CAN (non-preemptive fixed-priority arbitration),
//! * [`BusSim`] — an event-driven simulator of ID-based arbitration used to
//!   cross-check the analysis and to *demonstrate* non-intrusiveness rather
//!   than assume it,
//! * [`mirror_messages`]/[`transfer_time_s`] — the schedule mirroring and
//!   Eq. (1).
//!
//! # Example
//!
//! ```
//! use eea_can::{transfer_time_s, Message, CanId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An ECU sending 2 messages: 4 bytes @ 10 ms and 8 bytes @ 20 ms.
//! let msgs = vec![
//!     Message::new(CanId::new(0x100)?, 4, 10_000)?,
//!     Message::new(CanId::new(0x200)?, 8, 20_000)?,
//! ];
//! // Eq. (1): q = s / (sum of size/period). 1 MiB of test data:
//! let q = transfer_time_s(1 << 20, &msgs)?;
//! assert!(q > 0.0);
//! # Ok(())
//! # }
//! ```

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod bus;
pub mod channel;
pub mod fd;
pub mod flexray;
mod frame;
mod message;
mod mirror;
mod rta;
pub mod transport;

pub use bus::{BusSim, BusSimError, MessageStats, SimResult};
pub use channel::{
    ChannelConfig, ChannelError, ChannelModel, ChannelRng, Clean, Impairment, ImpairmentKind,
    NoisyChannel,
};
pub use frame::{frame_bits, CanId, InvalidCanIdError, InvalidPayloadError, BUS_BITRATE_BPS};
pub use message::{InvalidMessageError, Message};
pub use mirror::{mirror_messages, mirror_messages_auto, transfer_time_s, MirrorError};
pub use rta::{analyze, response_time, RtaError, RtaResult};
pub use transport::{
    CanFd, FlexRayStatic, MirroredCan, Transport, TransportConfig, TransportError, TransportKind,
};

use std::error::Error;
use std::fmt;

/// Crate-level error: every fallible `eea-can` API returns a variant of
/// this (or an error that converts into it).
#[derive(Debug, Clone, PartialEq)]
pub enum CanError {
    /// Identifier outside the 11-bit range.
    Id(InvalidCanIdError),
    /// Payload outside the CAN 2.0 limit.
    Payload(InvalidPayloadError),
    /// Inconsistent message parameters.
    Message(InvalidMessageError),
    /// Schedule mirroring failed.
    Mirror(MirrorError),
    /// Response-time analysis produced no bound.
    Rta(RtaError),
    /// Bus simulation rejected its input.
    Sim(BusSimError),
    /// CAN FD payload not DLC-encodable.
    Fd(fd::InvalidFdPayloadError),
    /// FlexRay slot assignment failed.
    FlexRay(flexray::FlexRayError),
    /// Transport backend construction or validation failed.
    Transport(TransportError),
    /// Channel-impairment configuration rejected.
    Channel(ChannelError),
}

impl fmt::Display for CanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanError::Id(e) => e.fmt(f),
            CanError::Payload(e) => e.fmt(f),
            CanError::Message(e) => e.fmt(f),
            CanError::Mirror(e) => e.fmt(f),
            CanError::Rta(e) => e.fmt(f),
            CanError::Sim(e) => e.fmt(f),
            CanError::Fd(e) => e.fmt(f),
            CanError::FlexRay(e) => e.fmt(f),
            CanError::Transport(e) => e.fmt(f),
            CanError::Channel(e) => e.fmt(f),
        }
    }
}

impl Error for CanError {}

impl From<InvalidCanIdError> for CanError {
    fn from(e: InvalidCanIdError) -> Self {
        CanError::Id(e)
    }
}

impl From<InvalidPayloadError> for CanError {
    fn from(e: InvalidPayloadError) -> Self {
        CanError::Payload(e)
    }
}

impl From<InvalidMessageError> for CanError {
    fn from(e: InvalidMessageError) -> Self {
        CanError::Message(e)
    }
}

impl From<MirrorError> for CanError {
    fn from(e: MirrorError) -> Self {
        CanError::Mirror(e)
    }
}

impl From<RtaError> for CanError {
    fn from(e: RtaError) -> Self {
        CanError::Rta(e)
    }
}

impl From<BusSimError> for CanError {
    fn from(e: BusSimError) -> Self {
        CanError::Sim(e)
    }
}

impl From<fd::InvalidFdPayloadError> for CanError {
    fn from(e: fd::InvalidFdPayloadError) -> Self {
        CanError::Fd(e)
    }
}

impl From<flexray::FlexRayError> for CanError {
    fn from(e: flexray::FlexRayError) -> Self {
        CanError::FlexRay(e)
    }
}

impl From<TransportError> for CanError {
    fn from(e: TransportError) -> Self {
        CanError::Transport(e)
    }
}

impl From<ChannelError> for CanError {
    fn from(e: ChannelError) -> Self {
        CanError::Channel(e)
    }
}
