use std::error::Error;
use std::fmt;

/// Default CAN bitrate used throughout the case study (500 kbit/s, the
/// usual rate of powertrain/chassis CAN in the paper's era).
pub const BUS_BITRATE_BPS: u64 = 500_000;

/// An 11-bit CAN 2.0A identifier. Lower numeric value = higher arbitration
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanId(u16);

/// Error for identifiers outside the 11-bit range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCanIdError(pub u16);

impl fmt::Display for InvalidCanIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "identifier {:#x} exceeds the 11-bit CAN range", self.0)
    }
}

impl Error for InvalidCanIdError {}

impl CanId {
    /// Maximum legal identifier (2^11 - 1).
    pub const MAX: u16 = 0x7FF;

    /// Creates an identifier.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCanIdError`] if `id > 0x7FF`.
    pub fn new(id: u16) -> Result<Self, InvalidCanIdError> {
        if id > Self::MAX {
            Err(InvalidCanIdError(id))
        } else {
            Ok(CanId(id))
        }
    }

    /// Raw identifier value.
    #[inline]
    pub fn value(self) -> u16 {
        self.0
    }

    /// Whether `self` wins arbitration against `other` (lower value wins).
    #[inline]
    pub fn beats(self, other: CanId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#05x}", self.0)
    }
}

impl TryFrom<u16> for CanId {
    type Error = InvalidCanIdError;

    fn try_from(v: u16) -> Result<Self, Self::Error> {
        CanId::new(v)
    }
}

/// Error for payloads exceeding the CAN 2.0 limit of 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPayloadError(pub u8);

impl fmt::Display for InvalidPayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload of {} bytes exceeds the CAN 2.0 limit of 8", self.0)
    }
}

impl Error for InvalidPayloadError {}

/// Worst-case transmitted bits of a CAN 2.0A data frame with `payload`
/// bytes, including the maximum possible bit stuffing.
///
/// The frame carries `47 + 8·s` bits of which `34 + 8·s` are subject to
/// stuffing (one stuff bit after each run of five); the classic worst case
/// (Davis et al., "Controller Area Network (CAN) schedulability analysis")
/// is
///
/// ```text
/// bits(s) = 47 + 8·s + floor((34 + 8·s − 1) / 4)
/// ```
///
/// The `47 + 8·s` fixed bits break down as `8·s` data bits plus 44 bits of
/// frame overhead (SOF, identifier, control, CRC, ACK, EOF) plus the 3-bit
/// interframe space.
///
/// # Errors
///
/// Returns [`InvalidPayloadError`] if `payload > 8`.
pub fn frame_bits(payload: u8) -> Result<u32, InvalidPayloadError> {
    if payload > 8 {
        return Err(InvalidPayloadError(payload));
    }
    Ok(frame_bits_checked_payload(payload))
}

/// Closed-form frame length for a payload already known to be `<= 8`
/// (guaranteed by [`crate::Message`]'s constructor validation).
pub(crate) fn frame_bits_checked_payload(payload: u8) -> u32 {
    let s = u32::from(payload);
    47 + 8 * s + (34 + 8 * s - 1) / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_range() {
        assert!(CanId::new(0).is_ok());
        assert!(CanId::new(0x7FF).is_ok());
        assert_eq!(CanId::new(0x800), Err(InvalidCanIdError(0x800)));
        assert_eq!(CanId::try_from(5u16).map(CanId::value), Ok(5));
    }

    #[test]
    fn priority_order() {
        let high = CanId::new(0x10).unwrap();
        let low = CanId::new(0x400).unwrap();
        assert!(high.beats(low));
        assert!(!low.beats(high));
        assert!(!high.beats(high));
    }

    #[test]
    fn frame_bits_known_values() {
        // Standard literature values: 0-byte frame = 55 bits worst case,
        // 8-byte frame = 135 bits worst case.
        assert_eq!(frame_bits(0), Ok(55));
        assert_eq!(frame_bits(8), Ok(135));
        // Monotone in payload.
        for s in 0..8 {
            assert!(frame_bits(s + 1).unwrap() > frame_bits(s).unwrap());
        }
    }

    #[test]
    fn frame_bits_matches_can20a_closed_form() {
        // CAN 2.0A worst case for every legal payload n: 8n data bits plus
        // 44 overhead bits (SOF, ID, RTR, control, CRC, ACK, EOF) plus the
        // 3-bit interframe space, plus floor((34 + 8n - 1)/4) stuff bits in
        // the stuffable region.
        for n in 0u8..=8 {
            let data_and_overhead = 8 * u32::from(n) + 44;
            let interframe_space = 3;
            let stuff_bits = (34 + 8 * u32::from(n) - 1) / 4;
            assert_eq!(
                frame_bits(n),
                Ok(data_and_overhead + interframe_space + stuff_bits),
                "payload {n}"
            );
        }
    }

    #[test]
    fn frame_bits_rejects_oversize() {
        assert_eq!(frame_bits(9), Err(InvalidPayloadError(9)));
        assert_eq!(frame_bits(255), Err(InvalidPayloadError(255)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CanId::new(0x123).unwrap().to_string(), "0x123");
        assert!(InvalidCanIdError(0x900).to_string().contains("11-bit"));
    }
}
