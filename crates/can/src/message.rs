use std::error::Error;
use std::fmt;

use crate::frame::{frame_bits_checked_payload, CanId};

/// A periodic CAN message. Time unit: microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    id: CanId,
    payload: u8,
    period_us: u64,
    offset_us: u64,
    jitter_us: u64,
}

/// Error for inconsistent message parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidMessageError {
    /// Payload exceeds 8 bytes.
    Payload(u8),
    /// Period must be positive.
    ZeroPeriod,
}

impl fmt::Display for InvalidMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidMessageError::Payload(p) => {
                write!(f, "payload of {p} bytes exceeds the CAN 2.0 limit of 8")
            }
            InvalidMessageError::ZeroPeriod => write!(f, "message period must be positive"),
        }
    }
}

impl Error for InvalidMessageError {}

impl Message {
    /// Creates a message with zero offset and jitter.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMessageError`] for payloads over 8 bytes or a zero
    /// period.
    pub fn new(id: CanId, payload: u8, period_us: u64) -> Result<Self, InvalidMessageError> {
        Self::with_timing(id, payload, period_us, 0, 0)
    }

    /// Creates a message with explicit release offset and queuing jitter.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMessageError`] for payloads over 8 bytes or a zero
    /// period.
    pub fn with_timing(
        id: CanId,
        payload: u8,
        period_us: u64,
        offset_us: u64,
        jitter_us: u64,
    ) -> Result<Self, InvalidMessageError> {
        if payload > 8 {
            return Err(InvalidMessageError::Payload(payload));
        }
        if period_us == 0 {
            return Err(InvalidMessageError::ZeroPeriod);
        }
        Ok(Message {
            id,
            payload,
            period_us,
            offset_us,
            jitter_us,
        })
    }

    /// Arbitration identifier.
    #[inline]
    pub fn id(&self) -> CanId {
        self.id
    }

    /// Payload size in bytes (0..=8).
    #[inline]
    pub fn payload(&self) -> u8 {
        self.payload
    }

    /// Period in microseconds.
    #[inline]
    pub fn period_us(&self) -> u64 {
        self.period_us
    }

    /// Release offset in microseconds.
    #[inline]
    pub fn offset_us(&self) -> u64 {
        self.offset_us
    }

    /// Queuing jitter in microseconds.
    #[inline]
    pub fn jitter_us(&self) -> u64 {
        self.jitter_us
    }

    /// Returns a copy with a different identifier — the mirroring primitive:
    /// same size, period and timing, fresh ID.
    pub fn with_id(mut self, id: CanId) -> Self {
        self.id = id;
        self
    }

    /// Worst-case frame transmission time in microseconds at `bitrate_bps`.
    /// A zero bitrate means the frame never completes; the time saturates
    /// to `u64::MAX` instead of panicking.
    pub fn tx_time_us(&self, bitrate_bps: u64) -> u64 {
        if bitrate_bps == 0 {
            return u64::MAX;
        }
        (u64::from(frame_bits_checked_payload(self.payload)) * 1_000_000).div_ceil(bitrate_bps)
    }

    /// Long-run bandwidth share of this message: bytes of payload per
    /// second (`s(c) / p(c)` of Eq. (1)).
    pub fn payload_bandwidth_bytes_per_s(&self) -> f64 {
        f64::from(self.payload) * 1e6 / self.period_us as f64
    }

    /// Bus utilisation fraction of this message at `bitrate_bps` (frame
    /// bits, not just payload).
    pub fn utilization(&self, bitrate_bps: u64) -> f64 {
        self.tx_time_us(bitrate_bps) as f64 / self.period_us as f64
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}B @{}us",
            self.id, self.payload, self.period_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u16) -> CanId {
        CanId::new(v).expect("valid id")
    }

    #[test]
    fn validation() {
        assert!(Message::new(id(1), 9, 1000).is_err());
        assert!(Message::new(id(1), 8, 0).is_err());
        assert!(Message::new(id(1), 8, 1000).is_ok());
    }

    #[test]
    fn tx_time_500k() {
        // 8-byte frame, 135 bits worst case at 500 kbit/s = 270 us.
        let m = Message::new(id(1), 8, 10_000).unwrap();
        assert_eq!(m.tx_time_us(500_000), 270);
    }

    #[test]
    fn zero_bitrate_saturates() {
        let m = Message::new(id(1), 8, 10_000).unwrap();
        assert_eq!(m.tx_time_us(0), u64::MAX);
    }

    #[test]
    fn bandwidth_and_utilization() {
        let m = Message::new(id(1), 4, 10_000).unwrap();
        // 4 bytes per 10 ms = 400 bytes/s.
        assert!((m.payload_bandwidth_bytes_per_s() - 400.0).abs() < 1e-9);
        let u = m.utilization(500_000);
        assert!(u > 0.0 && u < 1.0);
    }

    #[test]
    fn with_id_preserves_timing() {
        let m = Message::with_timing(id(5), 6, 5_000, 100, 50).unwrap();
        let m2 = m.with_id(id(0x700));
        assert_eq!(m2.id().value(), 0x700);
        assert_eq!(m2.payload(), 6);
        assert_eq!(m2.period_us(), 5_000);
        assert_eq!(m2.offset_us(), 100);
        assert_eq!(m2.jitter_us(), 50);
    }
}
