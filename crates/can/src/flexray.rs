//! FlexRay static-segment modelling — the second "other field bus".
//!
//! FlexRay's static segment is TDMA: each slot of every communication
//! cycle belongs to exactly one sender. Non-intrusiveness is then *by
//! construction*: a BIST data stream that only uses the inactive ECU's own
//! slots cannot shift anyone else's frames by a single bit. The Eq. (1)
//! analogue is the slot payload the ECU owns per cycle.

use std::error::Error;
use std::fmt;

/// FlexRay static-segment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlexRayConfig {
    /// Communication cycle length in microseconds (typically 5000).
    pub cycle_us: u64,
    /// Number of static slots per cycle.
    pub static_slots: u16,
    /// Payload bytes per static slot (2 x payload words; up to 254).
    pub slot_payload_bytes: u16,
}

impl Default for FlexRayConfig {
    fn default() -> Self {
        FlexRayConfig {
            cycle_us: 5_000,
            static_slots: 62,
            slot_payload_bytes: 32,
        }
    }
}

/// Error from slot assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlexRayError {
    /// The slot index is out of range.
    SlotOutOfRange(u16),
    /// The slot is already owned by another sender.
    SlotTaken(u16),
}

impl fmt::Display for FlexRayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlexRayError::SlotOutOfRange(s) => write!(f, "static slot {s} is out of range"),
            FlexRayError::SlotTaken(s) => write!(f, "static slot {s} is already assigned"),
        }
    }
}

impl Error for FlexRayError {}

/// A static-segment schedule: slot → owning node (opaque `u32` tags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexRaySchedule {
    config: FlexRayConfig,
    owners: Vec<Option<u32>>,
}

impl FlexRaySchedule {
    /// Creates an empty schedule for `config`.
    pub fn new(config: FlexRayConfig) -> Self {
        FlexRaySchedule {
            owners: vec![None; config.static_slots as usize],
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> FlexRayConfig {
        self.config
    }

    /// Assigns `slot` to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError`] when the slot is out of range or taken.
    pub fn assign(&mut self, slot: u16, node: u32) -> Result<(), FlexRayError> {
        let idx = usize::from(slot);
        if idx >= self.owners.len() {
            return Err(FlexRayError::SlotOutOfRange(slot));
        }
        if self.owners[idx].is_some() {
            return Err(FlexRayError::SlotTaken(slot));
        }
        self.owners[idx] = Some(node);
        Ok(())
    }

    /// Owner of a slot.
    pub fn owner(&self, slot: u16) -> Option<u32> {
        self.owners.get(usize::from(slot)).copied().flatten()
    }

    /// Slots owned by `node`.
    pub fn slots_of(&self, node: u32) -> Vec<u16> {
        self.owners
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == Some(node))
            .map(|(i, _)| i as u16)
            .collect()
    }

    /// Static-segment utilisation: assigned slots / total slots.
    pub fn utilization(&self) -> f64 {
        let assigned = self.owners.iter().filter(|o| o.is_some()).count();
        assigned as f64 / self.owners.len().max(1) as f64
    }

    /// The Eq. (1) analogue for FlexRay: payload bandwidth (bytes/s) a
    /// node's own static slots provide — the rate at which mirrored BIST
    /// data can stream without touching any other slot.
    pub fn node_bandwidth_bytes_per_s(&self, node: u32) -> f64 {
        let slots = self.slots_of(node).len() as f64;
        slots * f64::from(self.config.slot_payload_bytes) * 1e6 / self.config.cycle_us as f64
    }

    /// Transfer time (seconds) of `data_bytes` over the node's own slots;
    /// infinite when the node owns no slot.
    pub fn transfer_time_s(&self, node: u32, data_bytes: u64) -> f64 {
        let bw = self.node_bandwidth_bytes_per_s(node);
        if bw <= 0.0 {
            f64::INFINITY
        } else {
            data_bytes as f64 / bw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> FlexRaySchedule {
        let mut s = FlexRaySchedule::new(FlexRayConfig::default());
        s.assign(0, 10).unwrap();
        s.assign(1, 10).unwrap();
        s.assign(2, 20).unwrap();
        s
    }

    #[test]
    fn assignment_rules() {
        let mut s = schedule();
        assert_eq!(s.owner(0), Some(10));
        assert_eq!(s.owner(3), None);
        assert_eq!(s.assign(0, 30), Err(FlexRayError::SlotTaken(0)));
        assert_eq!(s.assign(99, 30), Err(FlexRayError::SlotOutOfRange(99)));
        assert_eq!(s.slots_of(10), vec![0, 1]);
    }

    #[test]
    fn bandwidth_scales_with_slots() {
        let s = schedule();
        // Node 10 owns 2 slots x 32 B per 5 ms cycle = 12,800 B/s.
        assert!((s.node_bandwidth_bytes_per_s(10) - 12_800.0).abs() < 1e-9);
        assert!((s.node_bandwidth_bytes_per_s(20) - 6_400.0).abs() < 1e-9);
        assert!(s.node_bandwidth_bytes_per_s(99) == 0.0);
    }

    #[test]
    fn transfer_time_analogue_of_eq1() {
        let s = schedule();
        // 2.4 MB of profile-1 test data over node 10's slots.
        let t = s.transfer_time_s(10, 2_399_185);
        assert!((t - 2_399_185.0 / 12_800.0).abs() < 1e-6);
        assert!(s.transfer_time_s(99, 1).is_infinite());
    }

    #[test]
    fn utilization_counts_assigned() {
        let s = schedule();
        assert!((s.utilization() - 3.0 / 62.0).abs() < 1e-12);
    }

    #[test]
    fn tdma_is_non_intrusive_by_construction() {
        // Reassigning the content of node 10's slots (functional frames ->
        // BIST data) leaves every other node's slots untouched: the
        // schedule object is the proof — slots are exclusive.
        let s = schedule();
        for slot in s.slots_of(20) {
            assert_eq!(s.owner(slot), Some(20));
        }
        for slot in s.slots_of(10) {
            assert_ne!(s.owner(slot), Some(20));
        }
    }
}
