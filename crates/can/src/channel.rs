//! Deterministic channel-impairment models layered over the transport.
//!
//! The [`Transport`](crate::Transport) backends price *ideal* transfers:
//! every frame arrives intact on the first attempt. A [`ChannelModel`]
//! describes what the physical bus does to those frames — error frames
//! forcing retransmission (which inflates the Eq. (1) transfer time) and
//! payload corruption that survives into the uploaded fail memory.
//!
//! Two implementations exist:
//!
//! * [`Clean`] — the provable pass-through identity: zero retransmissions,
//!   zero corruption, and — critically — **zero RNG draws**, so a clean
//!   channel is bit-for-bit the historical upload path (the same
//!   `FlatBudget`/`WindowSource` pattern the scheduler layer uses).
//! * [`NoisyChannel`] — per-frame Bernoulli error events and per-upload
//!   payload impairment, driven by a dedicated SplitMix64 stream
//!   ([`ChannelRng`]) derived from per-vehicle sub-seeds. The stream is
//!   disjoint from the simulation's own RNG, so results stay bit-identical
//!   across thread × shard sweeps and a zero-rate noisy channel reproduces
//!   [`Clean`] exactly.
//!
//! The impairment a channel inflicts on one upload is summarised in the
//! compact [`Impairment`] descriptor; the consumer (the fleet layer)
//! applies it to the actual fail memory, keeping this crate free of any
//! fail-data knowledge beyond "a payload is a sequence of entries".

use std::error::Error;
use std::fmt;

/// Golden-ratio increment of the SplitMix64 sequence (must match
/// `eea_moea::Rng` bit for bit).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation constant folded into every channel sub-seed so the
/// channel stream never collides with the simulation's own per-vehicle
/// stream (ASCII `"channel!"`).
const CHANNEL_DOMAIN: u64 = 0x6368_616E_6E65_6C21;

/// SplitMix64 generator — bit-for-bit the algorithm of `eea_moea::Rng`,
/// duplicated here because `eea-can` sits below the MOEA crate in the
/// dependency order. The equivalence is pinned by unit tests against the
/// published SplitMix64 reference vectors (which also pin `eea_moea::Rng`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRng(u64);

impl ChannelRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        ChannelRng(seed)
    }

    /// One SplitMix64 output step.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        Self::scramble(self.0)
    }

    /// The SplitMix64 output scrambler.
    fn scramble(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One SplitMix64 step without constructing an intermediate generator
    /// (seed-derivation helper, mirrors `eea_moea::Rng::mix`).
    pub fn mix(seed: u64) -> u64 {
        Self::scramble(seed.wrapping_add(GOLDEN))
    }

    /// Uniform draw in `[0, 1)` with 53 bits of mantissa.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Validation error of a channel configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A probability knob is not a finite value in `[0, 1)`.
    InvalidRate {
        /// Which knob (`"frame_error_rate"`, ...).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The truncation cap admits zero payload bytes.
    ZeroTruncationCap,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidRate { field, value } => {
                write!(
                    f,
                    "channel {field} must be a finite value in [0, 1), got {value}"
                )
            }
            ChannelError::ZeroTruncationCap => {
                write!(f, "channel truncation cap must admit at least one byte")
            }
        }
    }
}

impl Error for ChannelError {}

/// What the channel did to one upload's payload, as a compact descriptor
/// the consumer applies to the actual fail memory. The space is small and
/// discrete on purpose: diagnosis caches keyed by `(fault, Impairment)`
/// stay bounded regardless of fleet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Impairment {
    /// Maximum payload entries that survived transfer (`u16::MAX` =
    /// uncapped). The consumer chooses the entry granularity; the channel
    /// only caps a count.
    pub cap_entries: u16,
    /// Payload-content impairment.
    pub kind: ImpairmentKind,
}

/// Content impairment of one upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImpairmentKind {
    /// Payload arrived intact.
    Intact,
    /// One payload entry was lost in transit; `slot` selects which
    /// (consumer-side, modulo the payload length).
    WindowLost {
        /// Entry-selection slot in `[0, 8)`.
        slot: u8,
    },
    /// One payload entry arrived corrupted; `salt` parameterises the
    /// consumer-side bit flip.
    CorruptedSyndrome {
        /// Corruption salt in `[0, 16)`.
        salt: u8,
    },
}

impl Impairment {
    /// The identity descriptor: nothing capped, nothing altered.
    pub const NONE: Impairment = Impairment {
        cap_entries: u16::MAX,
        kind: ImpairmentKind::Intact,
    };

    /// Whether this descriptor is the identity.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

/// A channel model: the stochastic layer between a priced transfer and
/// the bytes the gateway actually receives.
///
/// Implementations must be deterministic functions of the supplied
/// [`ChannelRng`] state, and [`Clean`] must consume **no** draws — that is
/// what makes the clean path a provable identity.
pub trait ChannelModel {
    /// Number of frames (out of `frames` offered) that had to be re-sent.
    /// Each retransmission costs the consumer one extra frame time.
    fn retransmitted_frames(&self, rng: &mut ChannelRng, frames: u64) -> u64;

    /// The impairment inflicted on one upload whose payload the consumer
    /// caps at `cap_entries` entries.
    fn impair(&self, rng: &mut ChannelRng, cap_entries: u16) -> Impairment;

    /// Deterministic Eq. (1) re-pricing factor for *streamed* transfers:
    /// with frame error rate `p`, each frame is sent `1/(1-p)` times in
    /// expectation, so the effective transfer time inflates by that
    /// factor. `1.0` for a clean channel.
    fn transfer_inflation(&self) -> f64;
}

/// The pass-through identity channel: no errors, no corruption, no RNG
/// draws. Campaigns over `Clean` are bit-for-bit the historical path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Clean;

impl ChannelModel for Clean {
    fn retransmitted_frames(&self, _rng: &mut ChannelRng, _frames: u64) -> u64 {
        0
    }

    fn impair(&self, _rng: &mut ChannelRng, _cap_entries: u16) -> Impairment {
        Impairment::NONE
    }

    fn transfer_inflation(&self) -> f64 {
        1.0
    }
}

/// A noisy bus: per-frame error events forcing retransmission, and
/// per-upload payload impairment (window loss or syndrome corruption),
/// plus an optional payload truncation cap.
///
/// All rates are probabilities in `[0, 1)`. The all-zero-rate, uncapped
/// configuration is *exactly* [`Clean`] at the report level (the fleet
/// equivalence-oracle proptest pins this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyChannel {
    /// Probability an individual frame is hit by a bus error frame and
    /// must be retransmitted.
    pub frame_error_rate: f64,
    /// Probability an upload's payload arrives with one corrupted entry.
    pub corruption_rate: f64,
    /// Probability an upload loses one payload entry entirely (an
    /// interrupted window transfer).
    pub window_loss_rate: f64,
    /// Payload byte cap the channel enforces on uploads (`u64::MAX` =
    /// uncapped). The consumer converts bytes to its entry granularity.
    pub truncation_cap_bytes: u64,
    /// Channel seed, folded with the campaign seed and vehicle index into
    /// per-vehicle sub-streams.
    pub seed: u64,
}

impl Default for NoisyChannel {
    /// The identity configuration: zero rates, uncapped. Set rates
    /// explicitly to model an actual noisy bus.
    fn default() -> Self {
        NoisyChannel {
            frame_error_rate: 0.0,
            corruption_rate: 0.0,
            window_loss_rate: 0.0,
            truncation_cap_bytes: u64::MAX,
            seed: 0,
        }
    }
}

impl NoisyChannel {
    /// Validates the rate and cap knobs.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidRate`] for any rate outside `[0, 1)` (a rate
    /// of exactly 1 would retransmit forever), [`ChannelError::ZeroTruncationCap`]
    /// for a cap of zero bytes.
    pub fn validate(&self) -> Result<(), ChannelError> {
        for (field, value) in [
            ("frame_error_rate", self.frame_error_rate),
            ("corruption_rate", self.corruption_rate),
            ("window_loss_rate", self.window_loss_rate),
        ] {
            if !value.is_finite() || !(0.0..1.0).contains(&value) {
                return Err(ChannelError::InvalidRate { field, value });
            }
        }
        if self.truncation_cap_bytes == 0 {
            return Err(ChannelError::ZeroTruncationCap);
        }
        Ok(())
    }

    /// The per-vehicle channel sub-stream: one SplitMix64 mix of the
    /// domain-separated `(campaign seed, channel seed)` pair and the
    /// vehicle index. Disjoint from the simulation's own per-vehicle
    /// stream by the [`CHANNEL_DOMAIN`] fold.
    pub fn vehicle_rng(&self, campaign_seed: u64, vehicle: u32) -> ChannelRng {
        let domain = campaign_seed ^ self.seed ^ CHANNEL_DOMAIN;
        ChannelRng::new(ChannelRng::mix(
            domain.wrapping_add(u64::from(vehicle).wrapping_mul(GOLDEN)),
        ))
    }
}

impl ChannelModel for NoisyChannel {
    /// One Bernoulli draw per offered frame. A zero error rate still
    /// consumes draws from the (dedicated) channel stream but always
    /// returns 0 — the consumer's pricing must add *nothing* in that case
    /// so the zero-rate configuration stays bit-identical to [`Clean`].
    fn retransmitted_frames(&self, rng: &mut ChannelRng, frames: u64) -> u64 {
        let mut retx = 0u64;
        for _ in 0..frames {
            if rng.chance(self.frame_error_rate) {
                retx += 1;
            }
        }
        retx
    }

    /// Pinned draw order (any change re-freezes noisy digests): one
    /// window-loss Bernoulli first; on a hit one `below(8)` slot draw.
    /// Otherwise one corruption Bernoulli; on a hit one `below(16)` salt
    /// draw. The cap applies regardless of the content outcome.
    fn impair(&self, rng: &mut ChannelRng, cap_entries: u16) -> Impairment {
        let kind = if rng.chance(self.window_loss_rate) {
            ImpairmentKind::WindowLost {
                slot: rng.below(8) as u8,
            }
        } else if rng.chance(self.corruption_rate) {
            ImpairmentKind::CorruptedSyndrome {
                salt: rng.below(16) as u8,
            }
        } else {
            ImpairmentKind::Intact
        };
        Impairment { cap_entries, kind }
    }

    fn transfer_inflation(&self) -> f64 {
        1.0 / (1.0 - self.frame_error_rate)
    }
}

/// Serializable channel selector threaded from `DseConfig` through
/// blueprints to the fleet campaign — the channel sibling of
/// [`TransportConfig`](crate::TransportConfig).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChannelConfig {
    /// The pass-through identity (the historical path, the default).
    #[default]
    Clean,
    /// A noisy bus with the given impairment knobs.
    Noisy(NoisyChannel),
}

impl ChannelConfig {
    /// Whether this is the pass-through identity configuration. Note a
    /// zero-rate [`NoisyChannel`] is *not* `Clean` structurally — it is
    /// merely proven equivalent at the report level.
    pub fn is_clean(&self) -> bool {
        matches!(self, ChannelConfig::Clean)
    }

    /// Short label for logs and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            ChannelConfig::Clean => "clean",
            ChannelConfig::Noisy(_) => "noisy",
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`NoisyChannel::validate`]; `Clean` always validates.
    pub fn validate(&self) -> Result<(), ChannelError> {
        match self {
            ChannelConfig::Clean => Ok(()),
            ChannelConfig::Noisy(n) => n.validate(),
        }
    }
}

impl ChannelModel for ChannelConfig {
    fn retransmitted_frames(&self, rng: &mut ChannelRng, frames: u64) -> u64 {
        match self {
            ChannelConfig::Clean => Clean.retransmitted_frames(rng, frames),
            ChannelConfig::Noisy(n) => n.retransmitted_frames(rng, frames),
        }
    }

    fn impair(&self, rng: &mut ChannelRng, cap_entries: u16) -> Impairment {
        match self {
            ChannelConfig::Clean => Clean.impair(rng, cap_entries),
            ChannelConfig::Noisy(n) => n.impair(rng, cap_entries),
        }
    }

    fn transfer_inflation(&self) -> f64 {
        match self {
            ChannelConfig::Clean => Clean.transfer_inflation(),
            ChannelConfig::Noisy(n) => n.transfer_inflation(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published SplitMix64 reference vectors for seed 0 — the same
    /// vectors that characterise `eea_moea::Rng`, so passing here pins the
    /// two implementations to each other without a cross-crate dependency.
    #[test]
    fn rng_matches_splitmix64_reference() {
        let mut rng = ChannelRng::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(ChannelRng::mix(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = ChannelRng::new(99);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    /// `Clean` consumes no draws: RNG state is untouched by any call.
    #[test]
    fn clean_is_a_draw_free_identity() {
        let mut rng = ChannelRng::new(7);
        let before = rng;
        assert_eq!(Clean.retransmitted_frames(&mut rng, 1_000_000), 0);
        assert_eq!(Clean.impair(&mut rng, 3), Impairment::NONE);
        assert_eq!(Clean.transfer_inflation(), 1.0);
        assert_eq!(rng, before, "Clean must not consume RNG draws");
    }

    /// A zero-rate noisy channel returns identity *outcomes* (it does
    /// consume draws — from its own dedicated stream).
    #[test]
    fn zero_rate_noisy_outcomes_are_identity() {
        let noisy = NoisyChannel::default();
        let mut rng = ChannelRng::new(42);
        assert_eq!(noisy.retransmitted_frames(&mut rng, 512), 0);
        let imp = noisy.impair(&mut rng, u16::MAX);
        assert_eq!(imp, Impairment::NONE);
        assert!(imp.is_none());
        assert_eq!(noisy.transfer_inflation(), 1.0);
    }

    #[test]
    fn nonzero_rates_eventually_fire_and_stay_in_range() {
        let noisy = NoisyChannel {
            frame_error_rate: 0.25,
            corruption_rate: 0.3,
            window_loss_rate: 0.2,
            ..NoisyChannel::default()
        };
        let mut rng = ChannelRng::new(2014);
        let retx = noisy.retransmitted_frames(&mut rng, 10_000);
        assert!(retx > 1_500 && retx < 3_500, "retx {retx} far from 25 %");
        let (mut lost, mut corrupted, mut intact) = (0, 0, 0);
        for _ in 0..10_000 {
            match noisy.impair(&mut rng, 5).kind {
                ImpairmentKind::WindowLost { slot } => {
                    assert!(slot < 8);
                    lost += 1;
                }
                ImpairmentKind::CorruptedSyndrome { salt } => {
                    assert!(salt < 16);
                    corrupted += 1;
                }
                ImpairmentKind::Intact => intact += 1,
            }
        }
        assert!(lost > 1_000, "window loss fired {lost} times");
        assert!(corrupted > 1_000, "corruption fired {corrupted} times");
        assert!(intact > 4_000, "intact survived {intact} times");
        assert!((noisy.transfer_inflation() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn impairments_are_deterministic_per_seed() {
        let noisy = NoisyChannel {
            corruption_rate: 0.5,
            window_loss_rate: 0.5,
            frame_error_rate: 0.1,
            seed: 77,
            ..NoisyChannel::default()
        };
        let run = |vehicle: u32| {
            let mut rng = noisy.vehicle_rng(2014, vehicle);
            (
                noisy.retransmitted_frames(&mut rng, 64),
                noisy.impair(&mut rng, 9),
            )
        };
        assert_eq!(run(3), run(3));
        // Different vehicles get different sub-streams (overwhelmingly).
        assert!((0..32).any(|v| run(v) != run(0)));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert_eq!(ChannelConfig::Clean.validate(), Ok(()));
        assert_eq!(ChannelConfig::default(), ChannelConfig::Clean);
        let ok = NoisyChannel {
            frame_error_rate: 0.05,
            ..NoisyChannel::default()
        };
        assert_eq!(ChannelConfig::Noisy(ok).validate(), Ok(()));
        for (field, bad) in [
            (
                "frame_error_rate",
                NoisyChannel {
                    frame_error_rate: 1.0,
                    ..NoisyChannel::default()
                },
            ),
            (
                "corruption_rate",
                NoisyChannel {
                    corruption_rate: -0.1,
                    ..NoisyChannel::default()
                },
            ),
            (
                "window_loss_rate",
                NoisyChannel {
                    window_loss_rate: f64::NAN,
                    ..NoisyChannel::default()
                },
            ),
        ] {
            match bad.validate() {
                Err(ChannelError::InvalidRate { field: f, .. }) => assert_eq!(f, field),
                other => panic!("{field}: expected InvalidRate, got {other:?}"),
            }
        }
        let capless = NoisyChannel {
            truncation_cap_bytes: 0,
            ..NoisyChannel::default()
        };
        assert_eq!(capless.validate(), Err(ChannelError::ZeroTruncationCap));
    }

    #[test]
    fn errors_display() {
        let e = ChannelError::InvalidRate {
            field: "corruption_rate",
            value: 2.0,
        };
        assert!(e.to_string().contains("corruption_rate"));
        assert!(ChannelError::ZeroTruncationCap.to_string().contains("cap"));
    }
}
