//! Non-intrusive schedule mirroring and Eq. (1) of the paper.
//!
//! When an ECU is shut off for BIST, its functional messages stop. The
//! paper reuses exactly that freed bandwidth: each test-data message `c'`
//! *mirrors* an inactive functional message `c` — same payload size, same
//! period, same relative priority — under a fresh CAN identifier so other
//! subscribers can tell them apart. Because all timing-relevant properties
//! are identical, the certified schedule (and every other message's
//! worst-case response time) is untouched.
//!
//! The time to stream `s` bytes of test data through the mirrored set is
//! Eq. (1):
//!
//! ```text
//! q(b^T) = s(b^D) / Σ_{c ∈ I} s(c)/p(c)
//! ```
//!
//! Every size in this module is a **payload size in bytes** — `s(b^D)` is
//! test-data bytes, `s(c)` is a message's data-field bytes (`0..=8`).
//! Frame-level *bit* counts (stuffing, CRC, inter-frame space) only enter
//! through [`crate::frame_bits`], which the response-time analysis uses;
//! Eq. (1) deliberately counts payload bytes because mirrored frames incur
//! the same per-frame overhead the functional frames already paid for.

use std::error::Error;
use std::fmt;

use crate::frame::{CanId, InvalidCanIdError};
use crate::message::Message;

/// Error from [`mirror_messages`] / [`mirror_messages_auto`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirrorError {
    /// The mirrored identifier fell outside the 11-bit range.
    IdOverflow(InvalidCanIdError),
    /// A mirrored identifier collides with an existing message on the bus.
    IdCollision(CanId),
    /// The mirrored identifier crosses another message's identifier, which
    /// would change the relative arbitration priority and void the
    /// non-intrusiveness guarantee.
    PriorityOrderChanged(CanId),
    /// No free identifier exists in the priority gap of the given original
    /// identifier.
    GapExhausted(CanId),
    /// The ECU has no functional messages to mirror — no bandwidth exists
    /// for test-data transfer.
    NoMessages,
}

impl fmt::Display for MirrorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MirrorError::IdOverflow(e) => write!(f, "mirrored {e}"),
            MirrorError::IdCollision(id) => {
                write!(f, "mirrored identifier {id} collides with existing traffic")
            }
            MirrorError::PriorityOrderChanged(id) => {
                write!(
                    f,
                    "mirrored identifier {id} crosses other traffic and changes relative priority"
                )
            }
            MirrorError::GapExhausted(id) => {
                write!(f, "no free identifier in the priority gap of {id}")
            }
            MirrorError::NoMessages => {
                write!(f, "ECU has no functional messages whose schedule could be mirrored")
            }
        }
    }
}

impl Error for MirrorError {}

impl From<InvalidCanIdError> for MirrorError {
    fn from(e: InvalidCanIdError) -> Self {
        MirrorError::IdOverflow(e)
    }
}

/// Builds the mirrored test-data messages for an ECU.
///
/// `functional` is the set `I` of the ECU's own messages (inactive during
/// the BIST session); `id_offset` is added to each identifier to produce
/// the fresh `c'` IDs — it must be chosen so that the relative priority
/// among the mirrored set and against all other bus traffic is preserved
/// (a constant offset keeps the relative order of the mirrored messages).
/// `other_traffic` is the remaining bus traffic used for collision checks.
///
/// # Errors
///
/// * [`MirrorError::NoMessages`] when `functional` is empty,
/// * [`MirrorError::IdOverflow`] when an offset ID exceeds 11 bits,
/// * [`MirrorError::IdCollision`] when an offset ID is already in use,
/// * [`MirrorError::PriorityOrderChanged`] when an offset ID crosses a
///   third-party identifier (the non-intrusiveness guarantee would break:
///   that message's interference set changes).
pub fn mirror_messages(
    functional: &[Message],
    id_offset: u16,
    other_traffic: &[Message],
) -> Result<Vec<Message>, MirrorError> {
    if functional.is_empty() {
        return Err(MirrorError::NoMessages);
    }
    let mut mirrored = Vec::with_capacity(functional.len());
    for m in functional {
        let new_id = CanId::new(m.id().value() + id_offset)?;
        if other_traffic.iter().any(|o| o.id() == new_id)
            || functional.iter().any(|o| o.id() == new_id)
        {
            return Err(MirrorError::IdCollision(new_id));
        }
        // Relative priority against every third-party message must be
        // preserved: no other identifier may lie between the original and
        // the mirror.
        for o in other_traffic {
            if (o.id() < m.id()) != (o.id() < new_id) {
                return Err(MirrorError::PriorityOrderChanged(new_id));
            }
        }
        mirrored.push(m.with_id(new_id));
    }
    Ok(mirrored)
}

/// Like [`mirror_messages`] but chooses the mirrored identifiers
/// automatically: each mirror gets the smallest free identifier above its
/// original that stays inside the original's *priority gap* (no
/// third-party identifier between original and mirror), so relative
/// priority is preserved by construction.
///
/// # Errors
///
/// * [`MirrorError::NoMessages`] when `functional` is empty,
/// * [`MirrorError::GapExhausted`] when a priority gap holds no free
///   identifier.
pub fn mirror_messages_auto(
    functional: &[Message],
    other_traffic: &[Message],
) -> Result<Vec<Message>, MirrorError> {
    if functional.is_empty() {
        return Err(MirrorError::NoMessages);
    }
    let mut used: std::collections::BTreeSet<u16> = other_traffic
        .iter()
        .chain(functional)
        .map(|m| m.id().value())
        .collect();
    // Assign in increasing original-id order so the mirrored set keeps its
    // internal order too.
    let mut order: Vec<usize> = (0..functional.len()).collect();
    order.sort_by_key(|&i| functional[i].id());
    let mut mirrored: Vec<Option<Message>> = vec![None; functional.len()];
    for idx in order {
        let m = &functional[idx];
        let orig = m.id().value();
        // Upper bound: the next third-party identifier above the original.
        let upper = other_traffic
            .iter()
            .map(|o| o.id().value())
            .filter(|&v| v > orig)
            .min()
            .unwrap_or(CanId::MAX + 1);
        let candidate = (orig + 1..upper).find(|v| !used.contains(v));
        match candidate {
            Some(v) => {
                used.insert(v);
                // `v < upper <= CanId::MAX + 1`, so the id is always legal;
                // `?` keeps the path typed instead of unwrapping.
                mirrored[idx] = Some(m.with_id(CanId::new(v)?));
            }
            None => return Err(MirrorError::GapExhausted(m.id())),
        }
    }
    // Every index of `order` was assigned above, so flattening drops
    // nothing.
    let assigned: Vec<Message> = mirrored.into_iter().flatten().collect();
    debug_assert_eq!(assigned.len(), functional.len());
    Ok(assigned)
}

/// Eq. (1): transfer time (seconds) of `data_bytes` **bytes** of test data
/// over the mirrored messages `functional` of the ECU under test. The
/// denominator sums each message's payload bandwidth in bytes/s (payload
/// bytes per period) — not frame bits; see the module docs and
/// [`crate::frame_bits`] for the bit-level view.
///
/// # Errors
///
/// Returns [`MirrorError::NoMessages`] when the set is empty or carries no
/// payload bandwidth (all payloads zero) — previously this silently
/// produced `inf`/`NaN`, which poisoned every downstream objective that
/// consumed it.
pub fn transfer_time_s(data_bytes: u64, functional: &[Message]) -> Result<f64, MirrorError> {
    let bandwidth: f64 = functional
        .iter()
        .map(Message::payload_bandwidth_bytes_per_s)
        .sum();
    if bandwidth <= 0.0 {
        Err(MirrorError::NoMessages)
    } else {
        Ok(data_bytes as f64 / bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusSim;
    use crate::frame::BUS_BITRATE_BPS;

    fn id(v: u16) -> CanId {
        CanId::new(v).expect("valid id")
    }

    fn msg(idv: u16, payload: u8, period: u64) -> Message {
        Message::new(id(idv), payload, period).unwrap()
    }

    #[test]
    fn eq1_example() {
        // 2 MiB over (4B @ 10ms + 8B @ 20ms) = 400 + 400 = 800 B/s.
        let funcs = [msg(0x100, 4, 10_000), msg(0x101, 8, 20_000)];
        let q = transfer_time_s(1600, &funcs).unwrap();
        assert!((q - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eq1_monotone_in_size() {
        let funcs = [msg(0x100, 8, 10_000)];
        assert!(transfer_time_s(2000, &funcs).unwrap() > transfer_time_s(1000, &funcs).unwrap());
    }

    #[test]
    fn eq1_no_bandwidth_is_typed_error() {
        // Regression: an empty or all-zero-payload set used to yield `inf`
        // — both now surface as a typed error.
        assert_eq!(transfer_time_s(100, &[]), Err(MirrorError::NoMessages));
        let zero_payload = [msg(0x100, 0, 10_000), msg(0x101, 0, 5_000)];
        assert_eq!(
            transfer_time_s(100, &zero_payload),
            Err(MirrorError::NoMessages)
        );
        // Zero data over real bandwidth is a legitimate zero-time transfer.
        let funcs = [msg(0x100, 4, 10_000)];
        assert_eq!(transfer_time_s(0, &funcs), Ok(0.0));
    }

    #[test]
    fn mirror_preserves_timing_and_renames() {
        let funcs = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
        let other = [msg(0x050, 8, 5_000)];
        let mirrored = mirror_messages(&funcs, 0x400, &other).unwrap();
        assert_eq!(mirrored.len(), 2);
        for (m, m2) in funcs.iter().zip(&mirrored) {
            assert_eq!(m2.payload(), m.payload());
            assert_eq!(m2.period_us(), m.period_us());
            assert_eq!(m2.id().value(), m.id().value() + 0x400);
        }
        // Relative order within the mirrored set is preserved.
        assert!(mirrored[0].id().beats(mirrored[1].id()));
    }

    #[test]
    fn mirror_detects_collision() {
        let funcs = [msg(0x100, 4, 10_000)];
        let other = [msg(0x500, 8, 5_000)];
        assert_eq!(
            mirror_messages(&funcs, 0x400, &other),
            Err(MirrorError::IdCollision(id(0x500)))
        );
    }

    #[test]
    fn mirror_rejects_priority_crossing() {
        // Offsetting 0x100 by 0x100 crosses the third-party id 0x150.
        let funcs = [msg(0x100, 4, 10_000)];
        let other = [msg(0x150, 8, 5_000)];
        assert_eq!(
            mirror_messages(&funcs, 0x100, &other),
            Err(MirrorError::PriorityOrderChanged(id(0x200)))
        );
    }

    #[test]
    fn auto_mirror_stays_in_gap() {
        let funcs = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
        let other = [msg(0x050, 8, 5_000), msg(0x150, 6, 10_000)];
        let mirrored = mirror_messages_auto(&funcs, &other).unwrap();
        for (m, m2) in funcs.iter().zip(&mirrored) {
            assert_eq!(m2.payload(), m.payload());
            assert_eq!(m2.period_us(), m.period_us());
            // Every third-party message keeps its relative order.
            for o in &other {
                assert_eq!(o.id() < m.id(), o.id() < m2.id());
            }
        }
        // Internal order preserved.
        assert!(mirrored[0].id().beats(mirrored[1].id()));
    }

    #[test]
    fn auto_mirror_gap_exhausted() {
        // 0x000's gap towards 0x001 is empty.
        let funcs = [msg(0x000, 4, 10_000)];
        let other = [msg(0x001, 8, 5_000)];
        assert_eq!(
            mirror_messages_auto(&funcs, &other),
            Err(MirrorError::GapExhausted(id(0x000)))
        );
    }

    #[test]
    fn auto_mirror_dense_functional_block() {
        // Adjacent functional ids share the tail of the gap.
        let funcs = [msg(0x100, 1, 10_000), msg(0x101, 2, 10_000), msg(0x102, 3, 10_000)];
        let mirrored = mirror_messages_auto(&funcs, &[]).unwrap();
        let ids: Vec<u16> = mirrored.iter().map(|m| m.id().value()).collect();
        assert_eq!(ids, vec![0x103, 0x104, 0x105]);
    }

    #[test]
    fn mirror_detects_overflow_and_empty() {
        let funcs = [msg(0x700, 4, 10_000)];
        assert!(matches!(
            mirror_messages(&funcs, 0x200, &[]),
            Err(MirrorError::IdOverflow(_))
        ));
        assert_eq!(mirror_messages(&[], 1, &[]), Err(MirrorError::NoMessages));
    }

    /// The paper's core claim, demonstrated end to end: replacing an ECU's
    /// functional messages with their mirrors leaves every *other*
    /// message's observed worst-case latency unchanged.
    #[test]
    fn mirroring_is_non_intrusive() {
        // ECU A (under test) sends 0x100/0x108; ECUs B/C send the rest.
        let ecu_a = [msg(0x100, 4, 10_000), msg(0x108, 8, 20_000)];
        let others = [
            msg(0x050, 8, 5_000),
            msg(0x150, 6, 10_000),
            msg(0x300, 8, 50_000),
        ];
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("positive bitrate");
        let horizon = 2_000_000;

        // Baseline: functional schedule.
        let mut baseline: Vec<Message> = others.to_vec();
        baseline.extend_from_slice(&ecu_a);
        let base = sim.run(&baseline, horizon).expect("unique ids");

        // Test session: ECU A inactive, mirrored messages take its place.
        let mirrored = mirror_messages(&ecu_a, 0x20, &others).unwrap();
        let mut test_sched: Vec<Message> = others.to_vec();
        test_sched.extend_from_slice(&mirrored);
        let test = sim.run(&test_sched, horizon).expect("unique ids");

        for o in &others {
            let b = base.by_id(o.id()).unwrap();
            let t = test.by_id(o.id()).unwrap();
            assert_eq!(
                b.max_response_us, t.max_response_us,
                "latency of {} changed under mirroring",
                o.id()
            );
            assert_eq!(b.frames, t.frames);
        }
    }
}
