//! Worst-case response-time analysis for CAN.
//!
//! CAN arbitration is non-preemptive fixed-priority scheduling: a message's
//! worst-case queuing delay is one blocking frame (a lower-priority frame
//! that just won the bus) plus the interference of all higher-priority
//! messages. The classic recurrence (Tindell/Burns, corrected by Davis et
//! al. 2007) is
//!
//! ```text
//! w = B + Σ_{k ∈ hp} ⌈(w + J_k + τ_bit) / T_k⌉ · C_k
//! R = J + w + C
//! ```
//!
//! The paper's *non-intrusive* claim rests on exactly this analysis: since
//! mirrored test messages have the same size, period and relative priority
//! as the functional messages they replace, every other message's `B`, `hp`
//! interference set, and hence `R`, is unchanged.

use std::error::Error;
use std::fmt;

use crate::frame::CanId;
use crate::message::Message;

/// Why the response-time analysis produced no bound for a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtaError {
    /// The higher-priority interference set alone demands ≥ 100 % of the
    /// bus: the queuing-delay recurrence grows without bound, so the
    /// fixpoint iteration can never terminate. Reported *before* iterating
    /// instead of spinning through the iteration cap.
    Overload {
        /// Aggregate utilisation of the higher-priority set.
        utilization: f64,
    },
    /// The iteration exceeded the message's period (deadline assumed =
    /// period): the message is unschedulable even though the bus is not
    /// overloaded at this priority level.
    DeadlineExceeded,
    /// The fixpoint iteration hit its defensive cap without converging.
    /// Unreachable for well-formed inputs (the queuing delay is a monotone
    /// integer sequence bounded by the deadline check), kept as a typed
    /// escape hatch instead of a panic.
    IterationCap,
}

impl fmt::Display for RtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtaError::Overload { utilization } => write!(
                f,
                "bus overloaded at this priority level ({:.1} % demand): busy period diverges",
                utilization * 100.0
            ),
            RtaError::DeadlineExceeded => {
                write!(f, "response time exceeds the period (deadline = period)")
            }
            RtaError::IterationCap => {
                write!(f, "fixpoint iteration cap reached without convergence")
            }
        }
    }
}

impl Error for RtaError {}

/// Analysis result for one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtaResult {
    /// Message identifier.
    pub id: CanId,
    /// Worst-case response time in microseconds (queuing + transmission),
    /// or the typed reason no bound exists.
    pub response_us: Result<u64, RtaError>,
    /// Worst-case blocking by lower-priority traffic in microseconds.
    pub blocking_us: u64,
}

impl RtaResult {
    /// Whether the message meets its implicit deadline (= period).
    pub fn schedulable(&self) -> bool {
        self.response_us.is_ok()
    }
}

/// Worst-case response time of `target` against the complete message set
/// `all` (which should include `target` itself; it is excluded from its own
/// interference).
///
/// # Errors
///
/// * [`RtaError::Overload`] when the higher-priority interference set
///   alone demands 100 % of the bus — the queuing delay diverges, so this
///   is detected up front rather than discovered by iterating,
/// * [`RtaError::DeadlineExceeded`] when the bound exceeds the period,
/// * [`RtaError::IterationCap`] if the defensive iteration cap is hit.
pub fn response_time(target: &Message, all: &[Message], bitrate_bps: u64) -> Result<u64, RtaError> {
    let c = target.tx_time_us(bitrate_bps);
    let tau_bit = 1_000_000f64 / bitrate_bps.max(1) as f64;
    // Blocking: longest lower-or-equal-priority frame (excluding self).
    let blocking = all
        .iter()
        .filter(|m| !m.id().beats(target.id()) && m.id() != target.id())
        .map(|m| m.tx_time_us(bitrate_bps))
        .max()
        .unwrap_or(0);
    let hp: Vec<&Message> = all
        .iter()
        .filter(|m| m.id().beats(target.id()))
        .collect();

    // Divergence check: the recurrence w = B + Σ_{hp} ⌈…⌉·C_k has a finite
    // fixpoint iff the higher-priority set's utilisation is below 1 (each
    // iterate is bounded by an affine map with slope Σ C_k/T_k). At ≥ 1 the
    // iterates grow without bound — fail fast with the measured demand
    // instead of iterating.
    let utilization: f64 = hp
        .iter()
        .map(|m| m.tx_time_us(bitrate_bps) as f64 / m.period_us() as f64)
        .sum();
    if utilization >= 1.0 {
        return Err(RtaError::Overload { utilization });
    }

    // Seed: `w₀ = B + 1`. Any seed at or below the least fixpoint converges
    // to the least fixpoint, because the right-hand side of the recurrence
    // is monotone in `w` and the iterates form a non-decreasing sequence.
    // The true queuing delay is at least `B` (one blocking frame) and, via
    // the `n.max(1)` floor below, at least one frame of every hp message —
    // so `B + 1` is a valid under-approximation whenever any interference
    // exists, and when `hp` is empty the iteration settles on `B` in two
    // rounds. Starting one above `B` keeps the first interference window
    // strictly positive so the initial ⌈·⌉ terms are never zero.
    let mut w = blocking + 1;
    // Fixpoint iteration on the queuing delay.
    for _ in 0..10_000 {
        let mut next = blocking;
        for m in &hp {
            let interference_window = w as f64 + m.jitter_us() as f64 + tau_bit;
            let n = (interference_window / m.period_us() as f64).ceil() as u64;
            next += n.max(1) * m.tx_time_us(bitrate_bps);
        }
        if next == w {
            let r = target.jitter_us() + w + c;
            return if r <= target.period_us() {
                Ok(r)
            } else {
                Err(RtaError::DeadlineExceeded)
            };
        }
        if next.saturating_add(c) > target.period_us() {
            return Err(RtaError::DeadlineExceeded);
        }
        w = next;
    }
    Err(RtaError::IterationCap)
}

/// Runs the response-time analysis for every message in `all`.
pub fn analyze(all: &[Message], bitrate_bps: u64) -> Vec<RtaResult> {
    all.iter()
        .map(|m| {
            let blocking = all
                .iter()
                .filter(|o| !o.id().beats(m.id()) && o.id() != m.id())
                .map(|o| o.tx_time_us(bitrate_bps))
                .max()
                .unwrap_or(0);
            RtaResult {
                id: m.id(),
                response_us: response_time(m, all, bitrate_bps),
                blocking_us: blocking,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::BUS_BITRATE_BPS;

    fn id(v: u16) -> CanId {
        CanId::new(v).expect("valid id")
    }

    #[test]
    fn lone_message_response_is_tx_time() {
        let m = Message::new(id(1), 8, 10_000).unwrap();
        let r = response_time(&m, &[m], BUS_BITRATE_BPS).unwrap();
        // No blocking, no interference: R = C.
        assert_eq!(r, m.tx_time_us(BUS_BITRATE_BPS));
    }

    #[test]
    fn highest_priority_suffers_only_blocking() {
        let hi = Message::new(id(1), 2, 10_000).unwrap();
        let lo = Message::new(id(0x200), 8, 10_000).unwrap();
        let all = [hi, lo];
        let r = response_time(&hi, &all, BUS_BITRATE_BPS).unwrap();
        assert_eq!(
            r,
            lo.tx_time_us(BUS_BITRATE_BPS) + hi.tx_time_us(BUS_BITRATE_BPS)
        );
    }

    #[test]
    fn lower_priority_sees_interference() {
        let hi = Message::new(id(1), 8, 1_000).unwrap();
        let lo = Message::new(id(0x200), 8, 10_000).unwrap();
        let all = [hi, lo];
        let r_lo = response_time(&lo, &all, BUS_BITRATE_BPS).unwrap();
        let r_hi = response_time(&hi, &all, BUS_BITRATE_BPS).unwrap();
        // hi suffers blocking by lo's frame, lo suffers hi interference; in
        // this symmetric 2-message case the bounds coincide.
        assert!(r_lo >= r_hi);
        // lo experiences at least one hi frame of interference.
        assert!(r_lo >= hi.tx_time_us(BUS_BITRATE_BPS) + lo.tx_time_us(BUS_BITRATE_BPS));
    }

    #[test]
    fn overload_detected() {
        // Three 8-byte messages at 300 us period each exceed 100 % bus
        // utilisation at 500 kbit/s (270 us per frame). The lowest-priority
        // message sees 180 % higher-priority demand: the analysis must
        // report divergence up front, not spin through the iteration cap.
        let msgs = [
            Message::new(id(1), 8, 300).unwrap(),
            Message::new(id(2), 8, 300).unwrap(),
            Message::new(id(3), 8, 300).unwrap(),
        ];
        match response_time(&msgs[2], &msgs, BUS_BITRATE_BPS) {
            Err(RtaError::Overload { utilization }) => {
                assert!((utilization - 1.8).abs() < 1e-9);
            }
            other => panic!("expected Overload, got {other:?}"),
        }
    }

    #[test]
    fn unschedulable_but_not_overloaded() {
        // Higher-priority demand stays below 100 %, yet the target cannot
        // finish inside its own (tight) period: a deadline miss, not a
        // divergent busy period.
        let hi = Message::new(id(1), 8, 600).unwrap(); // 45 % of the bus
        let lo = Message::new(id(0x200), 8, 400).unwrap(); // C = 270 > 400 - 270
        let all = [hi, lo];
        assert_eq!(
            response_time(&lo, &all, BUS_BITRATE_BPS),
            Err(RtaError::DeadlineExceeded)
        );
    }

    #[test]
    fn analyze_covers_all() {
        let msgs = [
            Message::new(id(1), 4, 10_000).unwrap(),
            Message::new(id(5), 8, 20_000).unwrap(),
            Message::new(id(9), 1, 50_000).unwrap(),
        ];
        let res = analyze(&msgs, BUS_BITRATE_BPS);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|r| r.schedulable()));
        // The lowest-priority message has zero blocking from below.
        assert_eq!(res[2].blocking_us, 0);
    }
}
