//! Worst-case response-time analysis for CAN.
//!
//! CAN arbitration is non-preemptive fixed-priority scheduling: a message's
//! worst-case queuing delay is one blocking frame (a lower-priority frame
//! that just won the bus) plus the interference of all higher-priority
//! messages. The classic recurrence (Tindell/Burns, corrected by Davis et
//! al. 2007) is
//!
//! ```text
//! w = B + Σ_{k ∈ hp} ⌈(w + J_k + τ_bit) / T_k⌉ · C_k
//! R = J + w + C
//! ```
//!
//! The paper's *non-intrusive* claim rests on exactly this analysis: since
//! mirrored test messages have the same size, period and relative priority
//! as the functional messages they replace, every other message's `B`, `hp`
//! interference set, and hence `R`, is unchanged.

use crate::frame::CanId;
use crate::message::Message;

/// Analysis result for one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtaResult {
    /// Message identifier.
    pub id: CanId,
    /// Worst-case response time in microseconds (queuing + transmission),
    /// or `None` if the analysis did not converge within the message's
    /// period (deadline assumed = period).
    pub response_us: Option<u64>,
    /// Worst-case blocking by lower-priority traffic in microseconds.
    pub blocking_us: u64,
}

/// Worst-case response time of `target` against the complete message set
/// `all` (which should include `target` itself; it is excluded from its own
/// interference). Returns `None` when the busy period exceeds the message's
/// period, i.e. the message is unschedulable under the implicit
/// deadline-equals-period assumption.
pub fn response_time(target: &Message, all: &[Message], bitrate_bps: u64) -> Option<u64> {
    let c = target.tx_time_us(bitrate_bps);
    let tau_bit = 1_000_000f64 / bitrate_bps as f64;
    // Blocking: longest lower-or-equal-priority frame (excluding self).
    let blocking = all
        .iter()
        .filter(|m| !m.id().beats(target.id()) && m.id() != target.id())
        .map(|m| m.tx_time_us(bitrate_bps))
        .max()
        .unwrap_or(0);
    let hp: Vec<&Message> = all
        .iter()
        .filter(|m| m.id().beats(target.id()))
        .collect();

    let mut w = blocking + 1;
    // Fixpoint iteration on the queuing delay.
    for _ in 0..10_000 {
        let mut next = blocking;
        for m in &hp {
            let interference_window = w as f64 + m.jitter_us() as f64 + tau_bit;
            let n = (interference_window / m.period_us() as f64).ceil() as u64;
            next += n.max(1) * m.tx_time_us(bitrate_bps);
        }
        if next == w {
            let r = target.jitter_us() + w + c;
            return if r <= target.period_us() {
                Some(r)
            } else {
                None
            };
        }
        if next + c > target.period_us() {
            return None;
        }
        w = next;
    }
    None
}

/// Runs the response-time analysis for every message in `all`.
pub fn analyze(all: &[Message], bitrate_bps: u64) -> Vec<RtaResult> {
    all.iter()
        .map(|m| {
            let blocking = all
                .iter()
                .filter(|o| !o.id().beats(m.id()) && o.id() != m.id())
                .map(|o| o.tx_time_us(bitrate_bps))
                .max()
                .unwrap_or(0);
            RtaResult {
                id: m.id(),
                response_us: response_time(m, all, bitrate_bps),
                blocking_us: blocking,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::BUS_BITRATE_BPS;

    fn id(v: u16) -> CanId {
        CanId::new(v).expect("valid id")
    }

    #[test]
    fn lone_message_response_is_tx_time() {
        let m = Message::new(id(1), 8, 10_000).unwrap();
        let r = response_time(&m, &[m], BUS_BITRATE_BPS).unwrap();
        // No blocking, no interference: R = C.
        assert_eq!(r, m.tx_time_us(BUS_BITRATE_BPS));
    }

    #[test]
    fn highest_priority_suffers_only_blocking() {
        let hi = Message::new(id(1), 2, 10_000).unwrap();
        let lo = Message::new(id(0x200), 8, 10_000).unwrap();
        let all = [hi, lo];
        let r = response_time(&hi, &all, BUS_BITRATE_BPS).unwrap();
        assert_eq!(
            r,
            lo.tx_time_us(BUS_BITRATE_BPS) + hi.tx_time_us(BUS_BITRATE_BPS)
        );
    }

    #[test]
    fn lower_priority_sees_interference() {
        let hi = Message::new(id(1), 8, 1_000).unwrap();
        let lo = Message::new(id(0x200), 8, 10_000).unwrap();
        let all = [hi, lo];
        let r_lo = response_time(&lo, &all, BUS_BITRATE_BPS).unwrap();
        let r_hi = response_time(&hi, &all, BUS_BITRATE_BPS).unwrap();
        // hi suffers blocking by lo's frame, lo suffers hi interference; in
        // this symmetric 2-message case the bounds coincide.
        assert!(r_lo >= r_hi);
        // lo experiences at least one hi frame of interference.
        assert!(r_lo >= hi.tx_time_us(BUS_BITRATE_BPS) + lo.tx_time_us(BUS_BITRATE_BPS));
    }

    #[test]
    fn overload_detected() {
        // Three 8-byte messages at 300 us period each exceed 100 % bus
        // utilisation at 500 kbit/s (270 us per frame).
        let msgs = [
            Message::new(id(1), 8, 300).unwrap(),
            Message::new(id(2), 8, 300).unwrap(),
            Message::new(id(3), 8, 300).unwrap(),
        ];
        assert_eq!(response_time(&msgs[2], &msgs, BUS_BITRATE_BPS), None);
    }

    #[test]
    fn analyze_covers_all() {
        let msgs = [
            Message::new(id(1), 4, 10_000).unwrap(),
            Message::new(id(5), 8, 20_000).unwrap(),
            Message::new(id(9), 1, 50_000).unwrap(),
        ];
        let res = analyze(&msgs, BUS_BITRATE_BPS);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|r| r.response_us.is_some()));
        // The lowest-priority message has zero blocking from below.
        assert_eq!(res[2].blocking_us, 0);
    }
}
