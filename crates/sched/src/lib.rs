//! Deterministic in-ECU cyclic-task executive (DESIGN.md §13).
//!
//! The paper's non-intrusive premise is that BIST runs only in the
//! shut-off windows the ECU's *real* workload leaves open. This crate
//! models that workload as an IEC 61131-3-style task set — cyclic tasks
//! with period/offset/WCET/priority plus sporadic event-triggered tasks
//! with a minimum inter-arrival — and derives window availability from
//! the schedule instead of a flat per-vehicle budget:
//!
//! - [`TaskSet`] validates a [`TaskSetConfig`] (typed [`SchedError`]s for
//!   degenerate periods, overutilization, hyperperiod overflow) and
//!   simulates the fixed-priority preemptive executive into a
//!   [`ScheduleTimeline`] over an integer-microsecond clock — exact
//!   arithmetic, so the timeline is a pure function of the config.
//!   Deadline misses (implicit deadlines: a job must finish before its
//!   task's next release) surface as [`SchedError::DeadlineMiss`].
//! - [`IdleTable`] folds the timeline's steady-state hyperperiod into a
//!   cyclic busy/idle segment table that per-vehicle simulation can walk
//!   allocation-free.
//! - [`WindowSource`] abstracts where `(gap, window)` pairs come from:
//!   [`FlatBudget`] reproduces the historical `ShutoffModel` draw stream
//!   bit-for-bit (the frozen fleet digests pin this), and
//!   [`TaskSchedule`] carves each flat macro window into the idle
//!   intervals the task set leaves open, stealing time for sporadic
//!   arrivals drawn from the same per-vehicle SplitMix64 stream.

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod task;
mod timeline;
mod window;

pub use task::{PeriodicTask, SchedError, SporadicTask, TaskSet, TaskSetConfig};
pub use timeline::{IdleTable, ScheduleTimeline, TimelineSlice};
pub use window::{FlatBudget, SchedPlan, TaskSchedule, WindowSource};
