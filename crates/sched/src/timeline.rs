//! Fixed-priority preemptive executive simulation and the steady-state
//! idle table the fleet walks.

use crate::task::{SchedError, TaskSet};

/// One maximal run of the executive: `[start_us, end_us)` with either a
/// running periodic task or idle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSlice {
    /// Slice start, microseconds.
    pub start_us: u64,
    /// Slice end (exclusive), microseconds.
    pub end_us: u64,
    /// The running task (index into [`TaskSet::periodic`]), or `None`
    /// for idle time.
    pub task: Option<usize>,
}

/// The executive's schedule over `[0, horizon_us)` as maximal
/// same-occupant slices. Pure function of the task set — sporadic load is
/// per-vehicle and never enters the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTimeline {
    slices: Vec<TimelineSlice>,
    horizon_us: u64,
}

impl ScheduleTimeline {
    /// The maximal slices, in time order, covering `[0, horizon_us)`
    /// exactly.
    pub fn slices(&self) -> &[TimelineSlice] {
        &self.slices
    }

    /// The simulated horizon in microseconds.
    pub fn horizon_us(&self) -> u64 {
        self.horizon_us
    }

    /// The idle intervals `(start_us, end_us)` in time order.
    pub fn idle_intervals(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slices
            .iter()
            .filter(|s| s.task.is_none())
            .map(|s| (s.start_us, s.end_us))
    }

    /// Total idle microseconds.
    pub fn idle_us(&self) -> u64 {
        self.idle_intervals().map(|(a, b)| b - a).sum()
    }

    /// Total busy microseconds.
    pub fn busy_us(&self) -> u64 {
        self.horizon_us - self.idle_us()
    }
}

impl TaskSet {
    /// Simulates the fixed-priority preemptive executive over
    /// `[0, horizon_us)`: at every instant the highest-priority released
    /// and unfinished task runs (priority 0 highest, ties by declaration
    /// order). Event-driven — cost scales with job releases, not with
    /// microseconds.
    ///
    /// # Errors
    ///
    /// [`SchedError::DeadlineMiss`] when a job is still unfinished at its
    /// task's next release (implicit deadlines).
    pub fn timeline(&self, horizon_us: u64) -> Result<ScheduleTimeline, SchedError> {
        struct Job {
            next_release_us: u64,
            remaining_us: u64,
        }
        let mut jobs: Vec<Job> = self
            .periodic
            .iter()
            .map(|t| Job {
                next_release_us: t.offset_us,
                remaining_us: 0,
            })
            .collect();
        let mut slices: Vec<TimelineSlice> = Vec::new();
        let mut push = |start_us: u64, end_us: u64, task: Option<usize>| {
            if start_us >= end_us {
                return;
            }
            if let Some(last) = slices.last_mut() {
                if last.task == task && last.end_us == start_us {
                    last.end_us = end_us;
                    return;
                }
            }
            slices.push(TimelineSlice {
                start_us,
                end_us,
                task,
            });
        };
        let mut t = 0u64;
        while t < horizon_us {
            for (task, job) in jobs.iter_mut().enumerate() {
                while job.next_release_us <= t {
                    if job.remaining_us > 0 {
                        return Err(SchedError::DeadlineMiss {
                            task,
                            at_us: job.next_release_us,
                        });
                    }
                    job.remaining_us = self.periodic[task].wcet_us;
                    job.next_release_us += self.periodic[task].period_us;
                }
            }
            // The next release bounds every slice: a higher-priority
            // release there may preempt whatever runs now.
            let next_release = jobs
                .iter()
                .map(|j| j.next_release_us)
                .min()
                .unwrap_or(horizon_us)
                .min(horizon_us);
            let running = jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.remaining_us > 0)
                .min_by_key(|&(i, _)| (self.periodic[i].priority, i))
                .map(|(i, _)| i);
            match running {
                Some(i) => {
                    let end = (t + jobs[i].remaining_us).min(next_release);
                    jobs[i].remaining_us -= end - t;
                    push(t, end.min(horizon_us), Some(i));
                    t = end;
                }
                None => {
                    push(t, next_release, None);
                    t = next_release;
                }
            }
        }
        Ok(ScheduleTimeline {
            slices,
            horizon_us,
        })
    }
}

/// The steady-state hyperperiod of a task set, folded into a cyclic
/// busy/idle segment table in seconds: what the per-vehicle window carver
/// walks, allocation-free. Built from the *second* simulated hyperperiod
/// (`[H, 2H)`) so first-cycle transients (offsets, jobs straddling the
/// first boundary) don't distort the recurring pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleTable {
    /// Cyclic segments `(length_s, idle)`, alternating and gap-free over
    /// one hyperperiod. Never empty.
    segments: Vec<(f64, bool)>,
    hyper_s: f64,
    pure_idle: bool,
}

const US_TO_S: f64 = 1e-6;

impl IdleTable {
    /// Builds the steady-state table for `set`.
    ///
    /// # Errors
    ///
    /// [`SchedError::DeadlineMiss`] propagated from the executive
    /// simulation.
    pub fn build(set: &TaskSet) -> Result<Self, SchedError> {
        let hyper_us = set.hyperperiod_us();
        let timeline = set.timeline(2 * hyper_us)?;
        let mut segments: Vec<(f64, bool)> = Vec::new();
        for s in timeline.slices() {
            // Clip to the steady-state window [H, 2H).
            let start = s.start_us.max(hyper_us);
            let end = s.end_us.min(2 * hyper_us);
            if start >= end {
                continue;
            }
            let idle = s.task.is_none();
            let len_s = (end - start) as f64 * US_TO_S;
            match segments.last_mut() {
                Some((last_len, last_idle)) if *last_idle == idle => *last_len += len_s,
                _ => segments.push((len_s, idle)),
            }
        }
        let pure_idle = segments.iter().all(|&(_, idle)| idle);
        if segments.is_empty() {
            segments.push((hyper_us as f64 * US_TO_S, true));
        }
        Ok(IdleTable {
            segments,
            hyper_s: hyper_us as f64 * US_TO_S,
            pure_idle,
        })
    }

    /// The cyclic `(length_s, idle)` segments over one hyperperiod.
    pub fn segments(&self) -> &[(f64, bool)] {
        &self.segments
    }

    /// Hyperperiod length in seconds.
    pub fn hyper_s(&self) -> f64 {
        self.hyper_s
    }

    /// Whether the steady-state hyperperiod contains no busy time at all
    /// (zero utilization): the window carver's exact-pass-through fast
    /// path.
    pub fn pure_idle(&self) -> bool {
        self.pure_idle
    }

    /// Locates the cyclic phase `phase_s ∈ [0, hyper_s)` as a `(segment
    /// index, offset into segment)` cursor. Out-of-range phases clamp to
    /// the table boundaries.
    pub(crate) fn locate(&self, phase_s: f64) -> (usize, f64) {
        let mut remaining = if phase_s.is_finite() && phase_s > 0.0 {
            phase_s
        } else {
            0.0
        };
        for (i, &(len, _)) in self.segments.iter().enumerate() {
            if remaining < len {
                return (i, remaining);
            }
            remaining -= len;
        }
        (0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{PeriodicTask, TaskSetConfig};

    fn set(periodic: Vec<PeriodicTask>) -> TaskSet {
        TaskSet::from_config(&TaskSetConfig {
            periodic,
            ..TaskSetConfig::default()
        })
        .expect("valid task set")
    }

    fn task(period_us: u64, offset_us: u64, wcet_us: u64, priority: u32) -> PeriodicTask {
        PeriodicTask {
            period_us,
            offset_us,
            wcet_us,
            priority,
        }
    }

    #[test]
    fn timeline_covers_horizon_gap_free() {
        let s = set(vec![task(10, 2, 3, 0), task(20, 0, 4, 1)]);
        let tl = s.timeline(60).expect("schedulable");
        let mut t = 0;
        for sl in tl.slices() {
            assert_eq!(sl.start_us, t, "slices are gap-free and ordered");
            assert!(sl.end_us > sl.start_us);
            t = sl.end_us;
        }
        assert_eq!(t, 60);
        assert_eq!(tl.idle_us() + tl.busy_us(), 60);
        // Utilization 0.3 + 0.2 = 0.5 → exactly half of each hyperperiod
        // is busy in steady state.
        assert_eq!(tl.busy_us(), 30);
    }

    #[test]
    fn priority_preempts_and_ties_break_by_index() {
        // Low-priority long task released at 0; high-priority task at 2
        // must preempt it.
        let s = set(vec![task(20, 0, 8, 1), task(10, 2, 3, 0)]);
        let tl = s.timeline(20).expect("schedulable");
        let first: Vec<_> = tl.slices().iter().take(3).collect();
        assert_eq!(first[0].task, Some(0));
        assert_eq!((first[0].start_us, first[0].end_us), (0, 2));
        assert_eq!(first[1].task, Some(1), "priority 0 preempts at its release");
        assert_eq!((first[1].start_us, first[1].end_us), (2, 5));
        assert_eq!(first[2].task, Some(0), "preempted job resumes");
    }

    #[test]
    fn fixed_priority_deadline_miss_is_detected_under_full_load() {
        // Classic rate-monotonic-schedulable-but-tight pair pushed over:
        // T0 (C=3,T=6), T1 (C=4,T=9): U = 0.944 yet T1's first job only
        // has 3 us left before its t=9 release window closes after T0's
        // second job — it finishes at 10 > 9 under strict accounting.
        let s = set(vec![task(6, 0, 3, 0), task(9, 0, 4, 1)]);
        assert_eq!(
            s.timeline(18),
            Err(SchedError::DeadlineMiss { task: 1, at_us: 9 })
        );
    }

    #[test]
    fn zero_wcet_tasks_leave_the_timeline_idle() {
        let s = set(vec![task(10, 0, 0, 0)]);
        let tl = s.timeline(30).expect("schedulable");
        assert_eq!(tl.idle_us(), 30);
        let table = IdleTable::build(&s).expect("builds");
        assert!(table.pure_idle());
        assert_eq!(table.segments(), &[(10.0 * 1e-6, true)]);
    }

    #[test]
    fn idle_table_matches_steady_state_utilization() {
        let s = set(vec![task(10, 2, 3, 0), task(20, 0, 4, 1)]);
        let table = IdleTable::build(&s).expect("builds");
        assert!(!table.pure_idle());
        assert!((table.hyper_s() - 20.0 * 1e-6).abs() < 1e-18);
        let idle: f64 = table
            .segments()
            .iter()
            .filter(|&&(_, idle)| idle)
            .map(|&(len, _)| len)
            .sum();
        let total: f64 = table.segments().iter().map(|&(len, _)| len).sum();
        assert!((total - table.hyper_s()).abs() < 1e-15);
        assert!((idle / total - 0.5).abs() < 1e-9, "steady state is half idle");
        // Alternating busy/idle segments, never adjacent same-kind.
        for pair in table.segments().windows(2) {
            assert_ne!(pair[0].1, pair[1].1, "segments are coalesced");
        }
    }

    #[test]
    fn locate_walks_the_cyclic_table() {
        let s = set(vec![task(10, 0, 4, 0)]);
        let table = IdleTable::build(&s).expect("builds");
        // Steady state: [busy 4us][idle 6us].
        assert_eq!(table.locate(0.0), (0, 0.0));
        let (seg, off) = table.locate(5.0 * 1e-6);
        assert_eq!(seg, 1);
        assert!((off - 1e-6).abs() < 1e-18);
        assert_eq!(table.locate(1.0), (0, 0.0), "past-the-end clamps");
        assert_eq!(table.locate(f64::NAN), (0, 0.0));
    }
}
