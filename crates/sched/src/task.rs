//! Task-set configuration and validation.
//!
//! Time is integer microseconds throughout: hyperperiods are exact LCMs
//! and the executive simulation never accumulates float error. Seconds
//! only appear at the boundary to the fleet simulation
//! ([`crate::IdleTable`] / [`crate::TaskSchedule`]), converted once.

/// One cyclic task: released every `period_us` starting at `offset_us`,
/// runs for `wcet_us` at fixed `priority` (0 = highest, ties broken by
/// declaration order). Implicit deadline: each job must complete before
/// the task's next release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicTask {
    /// Release period in microseconds (must be positive).
    pub period_us: u64,
    /// First-release offset in microseconds (must be `< period_us`).
    pub offset_us: u64,
    /// Worst-case execution time in microseconds (must be `<= period_us`;
    /// zero models a registered-but-idle task).
    pub wcet_us: u64,
    /// Fixed priority, 0 = highest.
    pub priority: u32,
}

/// One sporadic event-triggered task: arrivals at least
/// `min_interarrival_us` apart, each consuming `wcet_us`. Sporadic load
/// is stochastic per vehicle — [`crate::TaskSchedule`] draws actual
/// inter-arrivals from the per-vehicle SplitMix64 stream — so it never
/// enters the deterministic [`crate::ScheduleTimeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SporadicTask {
    /// Minimum inter-arrival time in microseconds (must be positive).
    pub min_interarrival_us: u64,
    /// Worst-case execution time per arrival in microseconds (must be
    /// `<= min_interarrival_us`).
    pub wcet_us: u64,
    /// Fixed priority, 0 = highest (informational; sporadic steal is
    /// applied to idle time regardless of priority).
    pub priority: u32,
}

/// Declarative task-set description, carried by blueprints and
/// `DseConfig`. Validated into a [`TaskSet`] via [`TaskSet::from_config`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSetConfig {
    /// Cyclic tasks.
    pub periodic: Vec<PeriodicTask>,
    /// Sporadic event-triggered tasks.
    pub sporadic: Vec<SporadicTask>,
    /// Minimum usable BIST slice in seconds: idle fragments shorter than
    /// this are not worth a BIST resume and count as gap time.
    pub min_slice_s: f64,
}

impl Default for TaskSetConfig {
    /// An empty task set: no tasks, no minimum slice — the schedule is
    /// pure idle and [`crate::TaskSchedule`] degenerates to
    /// [`crate::FlatBudget`] exactly.
    fn default() -> Self {
        TaskSetConfig {
            periodic: Vec::new(),
            sporadic: Vec::new(),
            min_slice_s: 0.0,
        }
    }
}

/// Typed errors of the task executive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedError {
    /// A periodic task declared a zero period.
    ZeroPeriod {
        /// Index into [`TaskSetConfig::periodic`].
        task: usize,
    },
    /// A periodic task's WCET exceeds its period (structurally
    /// unschedulable).
    WcetExceedsPeriod {
        /// Index into [`TaskSetConfig::periodic`].
        task: usize,
    },
    /// A periodic task's offset is not smaller than its period.
    OffsetExceedsPeriod {
        /// Index into [`TaskSetConfig::periodic`].
        task: usize,
    },
    /// A sporadic task declared a zero minimum inter-arrival.
    ZeroInterarrival {
        /// Index into [`TaskSetConfig::sporadic`].
        task: usize,
    },
    /// A sporadic task's WCET exceeds its minimum inter-arrival.
    SporadicWcetExceedsInterarrival {
        /// Index into [`TaskSetConfig::sporadic`].
        task: usize,
    },
    /// Worst-case utilization (periodic + sporadic) exceeds 1.
    Overutilized {
        /// The offending utilization.
        utilization: f64,
    },
    /// The period LCM overflows the supported hyperperiod range.
    HyperperiodOverflow,
    /// The task set releases more jobs per hyperperiod than the executive
    /// simulation is willing to expand (pathological period spreads).
    TimelineTooDense,
    /// `min_slice_s` is negative or not finite.
    InvalidMinSlice,
    /// A job was still running when its task's next release arrived.
    DeadlineMiss {
        /// Index into [`TaskSetConfig::periodic`].
        task: usize,
        /// Absolute time of the missed deadline in microseconds.
        at_us: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ZeroPeriod { task } => {
                write!(f, "periodic task {task}: period must be positive")
            }
            SchedError::WcetExceedsPeriod { task } => {
                write!(f, "periodic task {task}: WCET exceeds the period")
            }
            SchedError::OffsetExceedsPeriod { task } => {
                write!(f, "periodic task {task}: offset must be smaller than the period")
            }
            SchedError::ZeroInterarrival { task } => {
                write!(f, "sporadic task {task}: minimum inter-arrival must be positive")
            }
            SchedError::SporadicWcetExceedsInterarrival { task } => {
                write!(f, "sporadic task {task}: WCET exceeds the minimum inter-arrival")
            }
            SchedError::Overutilized { utilization } => {
                write!(f, "task set is overutilized: worst-case utilization {utilization:.3} > 1")
            }
            SchedError::HyperperiodOverflow => {
                write!(f, "period LCM exceeds the supported hyperperiod range")
            }
            SchedError::TimelineTooDense => {
                write!(f, "task set releases too many jobs per hyperperiod to simulate")
            }
            SchedError::InvalidMinSlice => {
                write!(f, "minimum BIST slice must be finite and non-negative")
            }
            SchedError::DeadlineMiss { task, at_us } => {
                write!(f, "periodic task {task} missed its deadline at t = {at_us} us")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Hyperperiods past ~12.7 days of microseconds are rejected: the
/// executive simulates two of them, and nothing in the fleet model runs
/// task periods that long.
const MAX_HYPERPERIOD_US: u64 = 1 << 40;

/// Job releases the executive will expand over two hyperperiods before
/// declaring the config pathological ([`SchedError::TimelineTooDense`]).
const MAX_TIMELINE_JOBS: u64 = 1 << 22;

/// A validated task set: the config plus its exact hyperperiod.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    pub(crate) periodic: Vec<PeriodicTask>,
    pub(crate) sporadic: Vec<SporadicTask>,
    pub(crate) min_slice_s: f64,
    hyperperiod_us: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl TaskSet {
    /// Validates `config` into an executable task set.
    ///
    /// # Errors
    ///
    /// Any structural [`SchedError`] listed on the variants above
    /// (everything except `DeadlineMiss`, which is dynamic and surfaces
    /// from [`TaskSet::timeline`]).
    pub fn from_config(config: &TaskSetConfig) -> Result<Self, SchedError> {
        if !config.min_slice_s.is_finite() || config.min_slice_s < 0.0 {
            return Err(SchedError::InvalidMinSlice);
        }
        for (task, t) in config.periodic.iter().enumerate() {
            if t.period_us == 0 {
                return Err(SchedError::ZeroPeriod { task });
            }
            if t.wcet_us > t.period_us {
                return Err(SchedError::WcetExceedsPeriod { task });
            }
            if t.offset_us >= t.period_us {
                return Err(SchedError::OffsetExceedsPeriod { task });
            }
        }
        for (task, t) in config.sporadic.iter().enumerate() {
            if t.min_interarrival_us == 0 {
                return Err(SchedError::ZeroInterarrival { task });
            }
            if t.wcet_us > t.min_interarrival_us {
                return Err(SchedError::SporadicWcetExceedsInterarrival { task });
            }
        }
        // Exact LCM over the integer periods; an empty periodic set gets
        // a nominal 1 s hyperperiod (the table is a single idle segment).
        let mut hyper = 1_000_000u64;
        if !config.periodic.is_empty() {
            hyper = 1;
            for t in &config.periodic {
                hyper = hyper
                    .checked_mul(t.period_us / gcd(hyper, t.period_us))
                    .filter(|&h| h <= MAX_HYPERPERIOD_US)
                    .ok_or(SchedError::HyperperiodOverflow)?;
            }
        }
        let jobs: u64 = config
            .periodic
            .iter()
            .map(|t| 2 * hyper / t.period_us)
            .sum();
        if jobs > MAX_TIMELINE_JOBS {
            return Err(SchedError::TimelineTooDense);
        }
        let set = TaskSet {
            periodic: config.periodic.clone(),
            sporadic: config.sporadic.clone(),
            min_slice_s: config.min_slice_s,
            hyperperiod_us: hyper,
        };
        let u = set.utilization();
        if u > 1.0 {
            return Err(SchedError::Overutilized { utilization: u });
        }
        Ok(set)
    }

    /// The exact LCM of the periodic task periods, in microseconds (a
    /// nominal 1 s for an empty periodic set).
    pub fn hyperperiod_us(&self) -> u64 {
        self.hyperperiod_us
    }

    /// Worst-case utilization: periodic `Σ wcet/period` plus sporadic
    /// `Σ wcet/min_interarrival`.
    pub fn utilization(&self) -> f64 {
        let periodic: f64 = self
            .periodic
            .iter()
            .map(|t| t.wcet_us as f64 / t.period_us as f64)
            .sum();
        let sporadic: f64 = self
            .sporadic
            .iter()
            .map(|t| t.wcet_us as f64 / t.min_interarrival_us as f64)
            .sum();
        periodic + sporadic
    }

    /// The cyclic tasks.
    pub fn periodic(&self) -> &[PeriodicTask] {
        &self.periodic
    }

    /// The sporadic event-triggered tasks.
    pub fn sporadic(&self) -> &[SporadicTask] {
        &self.sporadic
    }

    /// Minimum usable BIST slice in seconds.
    pub fn min_slice_s(&self) -> f64 {
        self.min_slice_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period_us: u64, offset_us: u64, wcet_us: u64, priority: u32) -> PeriodicTask {
        PeriodicTask {
            period_us,
            offset_us,
            wcet_us,
            priority,
        }
    }

    #[test]
    fn hyperperiod_is_exact_lcm() {
        let cfg = TaskSetConfig {
            periodic: vec![periodic(6, 0, 1, 0), periodic(9, 0, 1, 1), periodic(4, 0, 1, 2)],
            ..TaskSetConfig::default()
        };
        let set = TaskSet::from_config(&cfg).expect("valid set");
        assert_eq!(set.hyperperiod_us(), 36);
    }

    #[test]
    fn empty_set_is_pure_idle_with_nominal_hyperperiod() {
        let set = TaskSet::from_config(&TaskSetConfig::default()).expect("empty set valid");
        assert_eq!(set.hyperperiod_us(), 1_000_000);
        assert_eq!(set.utilization(), 0.0);
    }

    #[test]
    fn validation_rejects_degenerate_tasks() {
        let bad = |cfg: TaskSetConfig, want: SchedError| {
            assert_eq!(TaskSet::from_config(&cfg), Err(want));
        };
        bad(
            TaskSetConfig {
                periodic: vec![periodic(0, 0, 0, 0)],
                ..TaskSetConfig::default()
            },
            SchedError::ZeroPeriod { task: 0 },
        );
        bad(
            TaskSetConfig {
                periodic: vec![periodic(10, 0, 11, 0)],
                ..TaskSetConfig::default()
            },
            SchedError::WcetExceedsPeriod { task: 0 },
        );
        bad(
            TaskSetConfig {
                periodic: vec![periodic(10, 10, 1, 0)],
                ..TaskSetConfig::default()
            },
            SchedError::OffsetExceedsPeriod { task: 0 },
        );
        bad(
            TaskSetConfig {
                sporadic: vec![SporadicTask {
                    min_interarrival_us: 0,
                    wcet_us: 0,
                    priority: 0,
                }],
                ..TaskSetConfig::default()
            },
            SchedError::ZeroInterarrival { task: 0 },
        );
        bad(
            TaskSetConfig {
                sporadic: vec![SporadicTask {
                    min_interarrival_us: 5,
                    wcet_us: 6,
                    priority: 0,
                }],
                ..TaskSetConfig::default()
            },
            SchedError::SporadicWcetExceedsInterarrival { task: 0 },
        );
        bad(
            TaskSetConfig {
                min_slice_s: f64::NAN,
                ..TaskSetConfig::default()
            },
            SchedError::InvalidMinSlice,
        );
    }

    #[test]
    fn overutilization_is_rejected_across_task_kinds() {
        let cfg = TaskSetConfig {
            periodic: vec![periodic(10, 0, 6, 0)],
            sporadic: vec![SporadicTask {
                min_interarrival_us: 10,
                wcet_us: 5,
                priority: 1,
            }],
            min_slice_s: 0.0,
        };
        match TaskSet::from_config(&cfg) {
            Err(SchedError::Overutilized { utilization }) => {
                assert!((utilization - 1.1).abs() < 1e-12);
            }
            other => panic!("expected Overutilized, got {other:?}"),
        }
    }

    #[test]
    fn hyperperiod_overflow_is_typed() {
        // Pairwise-coprime large periods push the LCM past the cap.
        let cfg = TaskSetConfig {
            periodic: vec![
                periodic((1 << 25) - 1, 0, 0, 0),
                periodic(1 << 25, 0, 0, 1),
                periodic((1 << 25) + 1, 0, 0, 2),
            ],
            ..TaskSetConfig::default()
        };
        assert_eq!(
            TaskSet::from_config(&cfg),
            Err(SchedError::HyperperiodOverflow)
        );
    }

    #[test]
    fn dense_timelines_are_rejected() {
        // 1 us period against a 1 s hyperperiod partner: 2M+ releases.
        let cfg = TaskSetConfig {
            periodic: vec![periodic(1, 0, 0, 0), periodic(10_000_000, 0, 0, 1)],
            ..TaskSetConfig::default()
        };
        assert_eq!(TaskSet::from_config(&cfg), Err(SchedError::TimelineTooDense));
    }

    #[test]
    fn errors_render() {
        let e = SchedError::DeadlineMiss { task: 3, at_us: 900 };
        assert!(e.to_string().contains("task 3"));
        assert!(e.to_string().contains("900"));
    }
}
