//! Shut-off window sources: where per-vehicle `(gap, window)` pairs come
//! from.
//!
//! The fleet's window loop consumes a stream of `(gap_s, window_s)`
//! pairs: wall time advances by `gap`, then a window of `window` seconds
//! of BIST time opens. [`FlatBudget`] reproduces the historical
//! `ShutoffModel` stream bit-for-bit — two uniform draws per pair, in
//! gap-then-window order — and the frozen 100k campaign digests pin that
//! contract. [`TaskSchedule`] derives the stream from a task set
//! instead: each flat macro window is aligned at a random phase of the
//! steady-state hyperperiod and carved into the idle intervals the
//! schedule leaves open, with sporadic task arrivals (drawn from the
//! same per-vehicle SplitMix64 stream) stealing idle time before BIST
//! sees it.

use eea_moea::Rng;

use crate::task::{SchedError, TaskSet, TaskSetConfig};
use crate::timeline::IdleTable;

/// A deterministic source of `(gap_s, window_s)` pairs, driven by the
/// per-vehicle RNG.
pub trait WindowSource {
    /// Draws the next `(gap, window)` pair. The fleet's window loop adds
    /// `gap` to wall time, breaks when the window start crosses the
    /// campaign horizon, and otherwise opens a window of `window`
    /// seconds.
    fn next_window(&mut self, rng: &mut Rng) -> (f64, f64);
}

/// The historical flat-budget window source: gap and window drawn
/// uniformly from fixed ranges, two [`Rng::unit`] draws per pair. The
/// float expressions are evaluated exactly as `ShutoffModel::next_event`
/// always has (`min + unit()·range`, gap first) — bit-for-bit the frozen
/// fleet digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatBudget {
    /// Minimum gap between windows, seconds.
    pub min_gap_s: f64,
    /// `max_gap_s - min_gap_s`, precomputed once per campaign.
    pub gap_range_s: f64,
    /// Minimum window length, seconds.
    pub min_window_s: f64,
    /// `max_window_s - min_window_s`, precomputed once per campaign.
    pub window_range_s: f64,
}

impl FlatBudget {
    /// Builds the source from `[min, max]` bounds, precomputing the
    /// ranges — the identical subtraction the per-window draw used to
    /// evaluate, hoisted.
    pub fn from_bounds(min_gap_s: f64, max_gap_s: f64, min_window_s: f64, max_window_s: f64) -> Self {
        FlatBudget {
            min_gap_s,
            gap_range_s: max_gap_s - min_gap_s,
            min_window_s,
            window_range_s: max_window_s - min_window_s,
        }
    }
}

impl WindowSource for FlatBudget {
    #[inline]
    fn next_window(&mut self, rng: &mut Rng) -> (f64, f64) {
        let gap = self.min_gap_s + rng.unit() * self.gap_range_s;
        let window = self.min_window_s + rng.unit() * self.window_range_s;
        (gap, window)
    }
}

/// Sporadic load in seconds, precomputed from the integer config.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SporadicLoad {
    min_interarrival_s: f64,
    wcet_s: f64,
}

/// A validated, campaign-shareable schedule plan: the steady-state
/// [`IdleTable`] plus the sporadic load and minimum-slice policy. Built
/// once per blueprint ([`SchedPlan::build`] validates the config and
/// surfaces [`SchedError::DeadlineMiss`] at campaign construction, not
/// mid-simulation) and borrowed read-only by every vehicle's
/// [`TaskSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPlan {
    table: IdleTable,
    sporadic: Vec<SporadicLoad>,
    min_slice_s: f64,
}

impl SchedPlan {
    /// Validates `config` and folds its steady-state schedule.
    ///
    /// # Errors
    ///
    /// Any structural [`SchedError`] from [`TaskSet::from_config`], or
    /// [`SchedError::DeadlineMiss`] from the executive simulation.
    pub fn build(config: &TaskSetConfig) -> Result<Self, SchedError> {
        let set = TaskSet::from_config(config)?;
        let table = IdleTable::build(&set)?;
        Ok(SchedPlan {
            table,
            sporadic: set
                .sporadic()
                .iter()
                .map(|t| SporadicLoad {
                    min_interarrival_s: t.min_interarrival_us as f64 * 1e-6,
                    wcet_s: t.wcet_us as f64 * 1e-6,
                })
                .collect(),
            min_slice_s: set.min_slice_s(),
        })
    }

    /// The steady-state busy/idle table.
    pub fn table(&self) -> &IdleTable {
        &self.table
    }

    /// Whether the plan degenerates to the flat budget exactly: no busy
    /// time in steady state and no sporadic load to steal idle time.
    pub fn is_pass_through(&self) -> bool {
        self.table.pure_idle() && self.sporadic.is_empty()
    }
}

/// Hard cap on macro windows consumed inside a single `next_window`
/// call: a backstop against degenerate flat configs (zero-length macro
/// windows against a fully busy table) that could otherwise spin. The
/// fleet validates its shut-off model (positive window lengths), so real
/// campaigns terminate via the gap bailout long before this.
const MAX_MACRO_DRAWS: u32 = 1 << 20;

/// Schedule-derived window source. Each flat macro window (same two
/// draws as [`FlatBudget`]) is placed at a uniformly drawn phase of the
/// steady-state hyperperiod and carved along the cyclic busy/idle table:
///
/// - busy segments and idle fragments shorter than the minimum BIST
///   slice accumulate into the pending gap;
/// - each idle slice first loses time to sporadic arrivals (per sporadic
///   task, one inter-arrival draw `min·(1 + unit())`; the implied
///   arrival count times WCET is stolen, saturating at the slice);
/// - what remains, if at least `min_slice_s`, is emitted as a window.
///
/// When the accumulated gap reaches the campaign horizon with nothing
/// emitted, a `(gap, 0)` pair is returned — the fleet's window loop
/// breaks on the horizon check before reading the zero window, so a
/// fully-busy schedule (or an unreachable minimum slice) terminates
/// cleanly with zero windows.
///
/// Whole macro windows of a pass-through plan ([`SchedPlan::is_pass_through`])
/// are forwarded verbatim with no extra draws and no minimum-slice
/// filtering — the degenerate zero-utilization task set reproduces
/// [`FlatBudget`] exactly, which the equivalence-oracle proptest pins.
#[derive(Debug, Clone)]
pub struct TaskSchedule<'a> {
    flat: FlatBudget,
    plan: &'a SchedPlan,
    horizon_s: f64,
    /// Macro-window seconds still to carve.
    remaining_s: f64,
    /// Cursor: current segment and offset into it.
    segment: usize,
    offset_s: f64,
    /// Gap seconds accumulated since the last emitted window.
    pending_gap_s: f64,
}

impl<'a> TaskSchedule<'a> {
    /// A carver over `plan`, drawing macro windows from `flat`, bailing
    /// out once the pending gap crosses `horizon_s` (the campaign
    /// horizon — nothing past it is observable).
    pub fn new(flat: FlatBudget, plan: &'a SchedPlan, horizon_s: f64) -> Self {
        TaskSchedule {
            flat,
            plan,
            horizon_s,
            remaining_s: 0.0,
            segment: 0,
            offset_s: 0.0,
            pending_gap_s: 0.0,
        }
    }
}

impl WindowSource for TaskSchedule<'_> {
    fn next_window(&mut self, rng: &mut Rng) -> (f64, f64) {
        let segments = self.plan.table.segments();
        let mut draws = 0u32;
        loop {
            if self.remaining_s <= 0.0 {
                let (gap, window) = self.flat.next_window(rng);
                if self.plan.is_pass_through() {
                    return (gap, window);
                }
                draws += 1;
                if draws > MAX_MACRO_DRAWS {
                    return (self.pending_gap_s.max(self.horizon_s), 0.0);
                }
                self.pending_gap_s += gap;
                self.remaining_s = window;
                // Vehicles are not phase-locked to their ECU's schedule:
                // each macro window lands at a uniform hyperperiod phase.
                let phase = rng.unit() * self.plan.table.hyper_s();
                (self.segment, self.offset_s) = self.plan.table.locate(phase);
            }
            let (seg_len, idle) = segments[self.segment % segments.len()];
            let seg_left = seg_len - self.offset_s;
            let take = if seg_left <= self.remaining_s {
                self.segment = (self.segment + 1) % segments.len();
                self.offset_s = 0.0;
                seg_left
            } else {
                self.offset_s += self.remaining_s;
                self.remaining_s
            };
            self.remaining_s -= take;
            if take <= 0.0 {
                continue;
            }
            if !idle {
                self.pending_gap_s += take;
            } else {
                let mut stolen = 0.0f64;
                for load in &self.plan.sporadic {
                    let interarrival = load.min_interarrival_s * (1.0 + rng.unit());
                    stolen += (take / interarrival).floor() * load.wcet_s;
                }
                let stolen = stolen.min(take);
                let usable = take - stolen;
                if usable > 0.0 && usable >= self.plan.min_slice_s {
                    let gap = self.pending_gap_s;
                    // Sporadic steal is accounted at the slice tail: it
                    // seeds the next pair's gap.
                    self.pending_gap_s = stolen;
                    return (gap, usable);
                }
                self.pending_gap_s += take;
            }
            if self.pending_gap_s >= self.horizon_s {
                // Nothing usable before the horizon: emit a zero window
                // the caller's horizon check consumes as "done".
                return (self.pending_gap_s, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{PeriodicTask, SporadicTask};

    fn flat() -> FlatBudget {
        FlatBudget::from_bounds(3_600.0, 10_800.0, 600.0, 1_800.0)
    }

    fn plan(config: &TaskSetConfig) -> SchedPlan {
        SchedPlan::build(config).expect("valid plan")
    }

    #[test]
    fn flat_budget_is_two_unit_draws_gap_first() {
        let mut src = flat();
        let mut rng = Rng::new(7);
        let mut oracle = Rng::new(7);
        for _ in 0..100 {
            let (gap, window) = src.next_window(&mut rng);
            assert_eq!(gap, 3_600.0 + oracle.unit() * (10_800.0 - 3_600.0));
            assert_eq!(window, 600.0 + oracle.unit() * (1_800.0 - 600.0));
        }
    }

    #[test]
    fn degenerate_task_set_passes_flat_stream_through() {
        // Single registered-but-idle task: zero utilization.
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 0,
                priority: 0,
            }],
            ..TaskSetConfig::default()
        };
        let p = plan(&cfg);
        assert!(p.is_pass_through());
        let mut sched = TaskSchedule::new(flat(), &p, 1e9);
        let mut reference = flat();
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..200 {
            assert_eq!(sched.next_window(&mut a), reference.next_window(&mut b));
        }
    }

    #[test]
    fn busy_schedule_emits_idle_slices_only() {
        // 40% busy: 8 s of every 20 s hyperperiod.
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 8_000_000,
                priority: 0,
            }],
            min_slice_s: 1.0,
            ..TaskSetConfig::default()
        };
        let p = plan(&cfg);
        assert!(!p.is_pass_through());
        let mut sched = TaskSchedule::new(flat(), &p, 1e9);
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let (gap, window) = sched.next_window(&mut rng);
            assert!(gap > 0.0);
            assert!(window >= 1.0, "slices respect the minimum");
            assert!(window <= 12.0 + 1e-9, "no window exceeds the idle segment");
        }
    }

    #[test]
    fn carving_conserves_wall_time() {
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 10_000_000,
                offset_us: 0,
                wcet_us: 3_000_000,
                priority: 0,
            }],
            min_slice_s: 0.5,
            ..TaskSetConfig::default()
        };
        let p = plan(&cfg);
        let mut sched = TaskSchedule::new(flat(), &p, 1e12);
        let mut reference = flat();
        let mut rng = Rng::new(99);
        let mut shadow = Rng::new(99);
        let mut carved = 0.0f64;
        let mut macro_total = 0.0f64;
        // Walk both streams: every macro window's wall time (gap+window)
        // must reappear in the carved stream's (gap+window) totals; the
        // carver may hold back a pending tail, bounded by one hyperperiod
        // plus the in-flight macro window.
        for _ in 0..300 {
            let (g, w) = sched.next_window(&mut rng);
            carved += g + w;
        }
        // Re-derive how many macro draws the carver consumed by counting
        // the RNG distance: 2 draws per macro window + 1 phase draw (no
        // sporadic tasks configured).
        let mut draws = 0usize;
        while shadow.clone().next_u64() != rng.clone().next_u64() {
            let (g, w) = reference.next_window(&mut shadow);
            macro_total += g + w;
            let _phase = shadow.unit();
            draws += 1;
            assert!(draws < 10_000, "carver must stay in sync with the flat stream");
        }
        assert!(draws > 0);
        assert!(
            macro_total >= carved,
            "carved wall time cannot exceed the macro budget"
        );
        assert!(
            macro_total - carved <= p.table().hyper_s() + 10_800.0 + 1_800.0,
            "held-back tail is bounded: macro {macro_total}, carved {carved}"
        );
    }

    #[test]
    fn sporadic_load_steals_idle_time() {
        let base = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 2_000_000,
                priority: 0,
            }],
            min_slice_s: 0.0,
            ..TaskSetConfig::default()
        };
        let with_sporadic = TaskSetConfig {
            sporadic: vec![SporadicTask {
                min_interarrival_us: 1_000_000,
                wcet_us: 200_000,
                priority: 1,
            }],
            ..base.clone()
        };
        let quiet = plan(&base);
        let noisy = plan(&with_sporadic);
        let sum = |p: &SchedPlan| {
            let mut sched = TaskSchedule::new(flat(), p, 1e9);
            let mut rng = Rng::new(11);
            let mut total = 0.0;
            for _ in 0..300 {
                total += sched.next_window(&mut rng).1;
            }
            total
        };
        let quiet_total = sum(&quiet);
        let noisy_total = sum(&noisy);
        assert!(
            noisy_total < quiet_total,
            "sporadic arrivals must cost BIST time: {noisy_total} vs {quiet_total}"
        );
    }

    #[test]
    fn unreachable_slice_bails_out_at_the_horizon() {
        // Minimum slice larger than any idle segment: nothing ever
        // qualifies, so the source must emit a horizon-crossing gap.
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 1_000_000,
                offset_us: 0,
                wcet_us: 500_000,
                priority: 0,
            }],
            min_slice_s: 10.0,
            ..TaskSetConfig::default()
        };
        let p = plan(&cfg);
        let horizon = 50_000.0;
        let mut sched = TaskSchedule::new(flat(), &p, horizon);
        let mut rng = Rng::new(1);
        let (gap, window) = sched.next_window(&mut rng);
        assert!(gap >= horizon);
        assert_eq!(window, 0.0);
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 30_000_000,
                offset_us: 5_000_000,
                wcet_us: 9_000_000,
                priority: 0,
            }],
            sporadic: vec![SporadicTask {
                min_interarrival_us: 45_000_000,
                wcet_us: 2_000_000,
                priority: 1,
            }],
            min_slice_s: 2.0,
        };
        let p = plan(&cfg);
        let mut a = TaskSchedule::new(flat(), &p, 1e9);
        let mut b = TaskSchedule::new(flat(), &p, 1e9);
        let mut ra = Rng::new(123);
        let mut rb = Rng::new(123);
        for _ in 0..200 {
            let (ga, wa) = a.next_window(&mut ra);
            let (gb, wb) = b.next_window(&mut rb);
            assert_eq!(ga.to_bits(), gb.to_bits());
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }
}
