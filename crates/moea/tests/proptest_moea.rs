//! Property tests of the MOEA primitives: non-dominated sorting, crowding
//! distance, archive invariants and hypervolume monotonicity.

use eea_moea::{
    additive_epsilon, crowding_distances, dominates, hypervolume, non_dominated_ranks,
    ParetoArchive,
};
use proptest::prelude::*;

fn objective_vectors(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(0.0f64..10.0, m..=m),
        1..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank 0 is exactly the non-dominated set, and ranks respect
    /// dominance (a dominating point never has a larger rank).
    #[test]
    fn ranks_characterise_dominance(objs in objective_vectors(24, 3)) {
        let ranks = non_dominated_ranks(&objs);
        for (i, a) in objs.iter().enumerate() {
            let dominated = objs.iter().any(|b| dominates(b, a));
            prop_assert_eq!(ranks[i] == 0, !dominated);
            for (j, b) in objs.iter().enumerate() {
                if dominates(a, b) {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    /// Crowding distances within a front: extreme points are infinite and
    /// all distances are non-negative.
    #[test]
    fn crowding_properties(objs in objective_vectors(16, 2)) {
        let ranks = non_dominated_ranks(&objs);
        let d = crowding_distances(&objs, &ranks);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        // In each front of size >= 3, at least two infinite entries
        // (the per-objective extremes).
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        for r in 0..=max_rank {
            let front: Vec<usize> = (0..objs.len()).filter(|&i| ranks[i] == r).collect();
            if front.len() >= 3 {
                let inf = front.iter().filter(|&&i| d[i].is_infinite()).count();
                prop_assert!(inf >= 2, "front {r} has {inf} infinite distances");
            }
        }
    }

    /// The archive accepts a vector iff it is not dominated by (nor equal
    /// to) the current content, and stays mutually non-dominated.
    #[test]
    fn archive_invariants(objs in objective_vectors(40, 3)) {
        let mut archive = ParetoArchive::new();
        for (k, o) in objs.iter().enumerate() {
            let dominated_or_dup = archive
                .entries()
                .iter()
                .any(|e| dominates(&e.objectives, o) || e.objectives == *o);
            let admitted = archive.offer(o.clone(), k);
            prop_assert_eq!(admitted, !dominated_or_dup);
        }
        for a in archive.entries() {
            for b in archive.entries() {
                prop_assert!(!dominates(&a.objectives, &b.objectives)
                    || std::ptr::eq(a, b));
            }
        }
    }

    /// Hypervolume grows (weakly) when a point is added and is invariant
    /// under adding dominated points.
    #[test]
    fn hypervolume_monotone(objs in objective_vectors(8, 2)) {
        let reference = vec![11.0, 11.0];
        let mut front: Vec<Vec<f64>> = Vec::new();
        let mut last = 0.0;
        for o in objs {
            front.push(o);
            let hv = hypervolume(&front, &reference);
            prop_assert!(hv >= last - 1e-9, "hv shrank: {hv} < {last}");
            last = hv;
        }
        // Adding a clearly dominated point changes nothing.
        front.push(vec![10.99, 10.99]);
        let hv = hypervolume(&front, &reference);
        prop_assert!((hv - last).abs() < 1e-9);
    }

    /// The additive epsilon indicator of a front against itself is zero,
    /// and against a translated copy equals the translation.
    #[test]
    fn epsilon_translation(objs in objective_vectors(6, 3), shift in 0.0f64..2.0) {
        prop_assert!(additive_epsilon(&objs, &objs).abs() < 1e-12);
        let shifted: Vec<Vec<f64>> = objs
            .iter()
            .map(|o| o.iter().map(|&v| v + shift).collect())
            .collect();
        let eps = additive_epsilon(&shifted, &objs);
        prop_assert!((eps - shift).abs() < 1e-9);
    }
}
