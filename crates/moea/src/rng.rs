//! Small deterministic RNG (xoshiro-free SplitMix64) shared by the
//! evolutionary operators and downstream exploration drivers.

/// Deterministic 64-bit RNG (SplitMix64). Equal seeds yield equal streams,
/// making every exploration run exactly reproducible.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::scramble(self.0)
    }

    /// One SplitMix64 output step over `seed` without constructing an
    /// intermediate RNG: `Rng::mix(s)` equals `Rng::new(s).next_u64()`
    /// bit-for-bit. Hot paths that derive one value per item (e.g.
    /// per-vehicle seeds in `eea-fleet`) use this directly.
    #[inline]
    #[must_use]
    pub fn mix(seed: u64) -> u64 {
        Self::scramble(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// The SplitMix64 output function (state already advanced).
    #[inline]
    fn scramble(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_in_range_and_uniform_ish() {
        let mut r = Rng::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn mix_matches_one_rng_step() {
        for seed in [0u64, 1, 7, 0xF1EE7CA4, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_eq!(Rng::mix(seed), Rng::new(seed).next_u64());
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng::new(2);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
