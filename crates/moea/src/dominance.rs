//! Pareto dominance for minimisation problems.

/// Whether objective vector `a` Pareto-dominates `b` (all objectives are
/// minimised): `a` is no worse everywhere and strictly better somewhere.
///
/// # Panics
///
/// Panics (in debug builds) if the vectors differ in length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Pairwise dominance relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// First vector dominates.
    Dominates,
    /// Second vector dominates.
    DominatedBy,
    /// Mutually non-dominated (or equal).
    Incomparable,
}

/// Classifies the dominance relation between `a` and `b`.
pub fn relation(a: &[f64], b: &[f64]) -> Relation {
    if dominates(a, b) {
        Relation::Dominates
    } else if dominates(b, a) {
        Relation::DominatedBy
    } else {
        Relation::Incomparable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_dominance() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]), "equal is not strict");
    }

    #[test]
    fn relations() {
        assert_eq!(relation(&[0.0], &[1.0]), Relation::Dominates);
        assert_eq!(relation(&[1.0], &[0.0]), Relation::DominatedBy);
        assert_eq!(
            relation(&[0.0, 1.0], &[1.0, 0.0]),
            Relation::Incomparable
        );
        assert_eq!(relation(&[1.0], &[1.0]), Relation::Incomparable);
    }
}
