//! Quality indicators for Pareto front approximations.

use crate::dominance::dominates;

/// Hypervolume (minimisation) of `front` with respect to `reference`
/// (which must be dominated by every front point). Computed by the WFG-style
/// recursive slicing algorithm — exact for any dimension, efficient for the
/// small fronts (≤ a few hundred points) of this workspace.
///
/// # Panics
///
/// Panics if dimensions mismatch or a point does not dominate the
/// reference.
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    let m = reference.len();
    for p in front {
        assert_eq!(p.len(), m, "dimension mismatch");
        assert!(
            p.iter().zip(reference).all(|(&x, &r)| x <= r),
            "front point must weakly dominate the reference"
        );
    }
    // Keep only the non-dominated subset (duplicates removed).
    let mut points: Vec<Vec<f64>> = Vec::new();
    for p in front {
        if points.iter().any(|q| dominates(q, p) || q == p) {
            continue;
        }
        points.retain(|q| !dominates(p, q));
        points.push(p.clone());
    }
    hv_recursive(&mut points, reference)
}

fn hv_recursive(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    let m = reference.len();
    if points.is_empty() {
        return 0.0;
    }
    if m == 1 {
        let best = points
            .iter()
            .map(|p| p[0])
            .fold(f64::INFINITY, f64::min);
        return reference[0] - best;
    }
    // Slice along the last objective.
    points.sort_by(|a, b| a[m - 1].total_cmp(&b[m - 1]));
    let mut volume = 0.0;
    let mut i = 0;
    while i < points.len() {
        let z = points[i][m - 1];
        let next_z = if i + 1 < points.len() {
            points[i + 1][m - 1]
        } else {
            reference[m - 1]
        };
        let depth = next_z - z;
        if depth > 0.0 {
            // Project all points with last coordinate <= z.
            let mut projected: Vec<Vec<f64>> = points[..=i]
                .iter()
                .map(|p| p[..m - 1].to_vec())
                .collect();
            // Filter dominated projections.
            let mut kept: Vec<Vec<f64>> = Vec::new();
            for p in projected.drain(..) {
                if kept.iter().any(|q| dominates(q, &p) || *q == p) {
                    continue;
                }
                kept.retain(|q| !dominates(&p, q));
                kept.push(p);
            }
            volume += depth * hv_recursive(&mut kept, &reference[..m - 1]);
        }
        i += 1;
    }
    volume
}

/// Additive epsilon indicator: the smallest `eps` such that every point of
/// `reference_front` is weakly dominated by some point of `front` shifted
/// by `eps` (smaller is better; 0 means `front` covers the reference).
pub fn additive_epsilon(front: &[Vec<f64>], reference_front: &[Vec<f64>]) -> f64 {
    let mut eps = f64::NEG_INFINITY;
    for r in reference_front {
        let mut best = f64::INFINITY;
        for p in front {
            let worst_gap = p
                .iter()
                .zip(r)
                .map(|(&a, &b)| a - b)
                .fold(f64::NEG_INFINITY, f64::max);
            best = best.min(worst_gap);
        }
        eps = eps.max(best);
    }
    eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_single_point_2d() {
        let front = vec![vec![1.0, 1.0]];
        assert!((hypervolume(&front, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_two_points_2d() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        // Union of [1,3]x[2,3] and [2,3]x[1,3]: 2 + 2 - 1 = 3.
        assert!((hypervolume(&front, &[3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_box_union() {
        let front = vec![vec![0.0, 0.0, 0.0]];
        assert!((hypervolume(&front, &[1.0, 2.0, 3.0]) - 6.0).abs() < 1e-12);
        let front2 = vec![vec![0.0, 0.0, 1.0], vec![0.5, 0.5, 0.0]];
        // box1: 1*1*(2-1)=... reference [1,1,2]:
        // p1 box: [0,1]x[0,1]x[1,2] vol 1; p2 box: [0.5,1]x[0.5,1]x[0,2]
        // vol 0.5*0.5*2 = 0.5; overlap: [0.5,1]x[0.5,1]x[1,2] = 0.25.
        let hv = hypervolume(&front2, &[1.0, 1.0, 2.0]);
        assert!((hv - 1.25).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hv_dominated_point_ignored() {
        let a = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let b = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn hv_monotone_in_front_quality() {
        let worse = hypervolume(&[vec![2.0, 2.0]], &[4.0, 4.0]);
        let better = hypervolume(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        assert!(better > worse);
    }

    #[test]
    #[should_panic(expected = "weakly dominate")]
    fn hv_rejects_bad_reference() {
        hypervolume(&[vec![5.0, 1.0]], &[3.0, 3.0]);
    }

    #[test]
    fn epsilon_zero_for_self() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(additive_epsilon(&front, &front).abs() < 1e-12);
    }

    #[test]
    fn epsilon_positive_for_worse_front() {
        let reference = vec![vec![0.0, 0.0]];
        let front = vec![vec![1.0, 0.5]];
        assert!((additive_epsilon(&front, &reference) - 1.0).abs() < 1e-12);
    }
}
