//! Unbounded Pareto archive.
//!
//! The paper reports "176 not Pareto-dominated implementations" out of
//! 100,000 evaluated ones: every evaluated solution streams through an
//! archive like this one, which keeps exactly the non-dominated set.

use crate::dominance::dominates;

/// An entry of the archive: objectives plus a caller-supplied payload
/// (typically the genotype or a decoded implementation handle).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry<P> {
    /// Objective vector (minimised).
    pub objectives: Vec<f64>,
    /// Caller payload.
    pub payload: P,
}

/// Unbounded archive of mutually non-dominated solutions.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive<P> {
    entries: Vec<ArchiveEntry<P>>,
}

impl<P> ParetoArchive<P> {
    /// Creates an empty archive.
    pub fn new() -> Self {
        ParetoArchive {
            entries: Vec::new(),
        }
    }

    /// Offers a solution. Returns `true` if it was admitted (i.e. it is not
    /// dominated by any archived solution); dominated incumbents are
    /// evicted. Duplicate objective vectors are rejected to keep the
    /// archive a set.
    pub fn offer(&mut self, objectives: Vec<f64>, payload: P) -> bool {
        for e in &self.entries {
            if dominates(&e.objectives, &objectives) || e.objectives == objectives {
                return false;
            }
        }
        self.entries
            .retain(|e| !dominates(&objectives, &e.objectives));
        self.entries.push(ArchiveEntry {
            objectives,
            payload,
        });
        true
    }

    /// Archived entries (mutually non-dominated).
    pub fn entries(&self) -> &[ArchiveEntry<P>] {
        &self.entries
    }

    /// Number of archived solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the archive and returns its entries.
    pub fn into_entries(self) -> Vec<ArchiveEntry<P>> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_non_dominated_only() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(vec![2.0, 2.0], "b"));
        assert!(a.offer(vec![1.0, 3.0], "a"));
        assert!(a.offer(vec![3.0, 1.0], "c"));
        assert_eq!(a.len(), 3);
        // Dominates "b": evicts it.
        assert!(a.offer(vec![1.5, 1.5], "d"));
        assert_eq!(a.len(), 3);
        assert!(!a.entries().iter().any(|e| e.payload == "b"));
        // Dominated: rejected.
        assert!(!a.offer(vec![4.0, 4.0], "e"));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn rejects_duplicates() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(vec![1.0, 1.0], ()));
        assert!(!a.offer(vec![1.0, 1.0], ()));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn archive_invariant_random_stream() {
        // Property: after any stream of offers, entries are mutually
        // non-dominated.
        let mut rng = crate::rng::Rng::new(99);
        let mut a = ParetoArchive::new();
        for _ in 0..500 {
            let v = vec![rng.unit(), rng.unit(), rng.unit()];
            a.offer(v, ());
        }
        for i in 0..a.len() {
            for j in 0..a.len() {
                if i != j {
                    assert!(!dominates(
                        &a.entries()[i].objectives,
                        &a.entries()[j].objectives
                    ));
                }
            }
        }
    }
}
