//! SPEA2 (Strength Pareto Evolutionary Algorithm 2).
//!
//! A second multi-objective optimiser next to [`nsga2`](crate::run): the
//! paper's DSE framework (Opt4J) ships several MOEAs, and which one drives
//! the SAT decoder is a design choice worth ablating. SPEA2 differs from
//! NSGA-II in its fitness assignment (dominance *strength* plus a
//! k-nearest-neighbour density term) and in maintaining a fixed-size
//! environmental archive with distance-based truncation.

use crate::archive::ParetoArchive;
use crate::dominance::dominates;
use crate::nsga2::{Individual, Nsga2Config, Problem};
use crate::rng::Rng;

/// Result of a SPEA2 run (same shape as the NSGA-II result).
#[derive(Debug, Clone)]
pub struct Spea2Result {
    /// The final environmental archive (the working population of SPEA2).
    pub population: Vec<Individual>,
    /// All-time Pareto archive over every evaluated individual.
    pub archive: ParetoArchive<Vec<f64>>,
    /// Number of evaluations performed.
    pub evaluations: usize,
    /// Number of infeasible decodes encountered.
    pub infeasible: usize,
}

/// SPEA2 fitness: raw dominance fitness plus density (smaller is better).
fn fitness(objectives: &[Vec<f64>]) -> Vec<f64> {
    let n = objectives.len();
    // Strength: how many solutions each individual dominates.
    let mut strength = vec![0u32; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&objectives[i], &objectives[j]) {
                strength[i] += 1;
            }
        }
    }
    // Raw fitness: sum of strengths of dominators.
    let mut raw = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&objectives[j], &objectives[i]) {
                raw[i] += f64::from(strength[j]);
            }
        }
    }
    // Density: 1 / (distance to k-th nearest neighbour + 2), k = sqrt(n).
    let k = (n as f64).sqrt() as usize;
    let mut fit = vec![0.0f64; n];
    for i in 0..n {
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                objectives[i]
                    .iter()
                    .zip(&objectives[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let kd = dists.get(k.min(dists.len().saturating_sub(1))).copied().unwrap_or(0.0);
        fit[i] = raw[i] + 1.0 / (kd + 2.0);
    }
    fit
}

/// Environmental selection: keep the non-dominated set, truncating by
/// nearest-neighbour distance when oversized, padding with the best
/// dominated individuals when undersized.
fn environmental_selection(
    pool: &[Individual],
    fit: &[f64],
    size: usize,
) -> Vec<Individual> {
    let mut selected: Vec<usize> = (0..pool.len()).filter(|&i| fit[i] < 1.0).collect();
    if selected.len() < size {
        // Pad with the best dominated individuals.
        let mut rest: Vec<usize> = (0..pool.len()).filter(|&i| fit[i] >= 1.0).collect();
        rest.sort_by(|&a, &b| fit[a].total_cmp(&fit[b]));
        selected.extend(rest.into_iter().take(size - selected.len()));
    } else {
        // Truncate by iteratively removing the individual with the
        // smallest nearest-neighbour distance.
        while selected.len() > size {
            let mut worst = 0usize;
            let mut worst_dist = f64::INFINITY;
            for (si, &i) in selected.iter().enumerate() {
                let nearest = selected
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| {
                        pool[i]
                            .objectives
                            .iter()
                            .zip(&pool[j].objectives)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                    })
                    .fold(f64::INFINITY, f64::min);
                if nearest < worst_dist {
                    worst_dist = nearest;
                    worst = si;
                }
            }
            selected.swap_remove(worst);
        }
    }
    selected.into_iter().map(|i| pool[i].clone()).collect()
}

/// Runs SPEA2 on `problem`, reusing [`Nsga2Config`] for the shared
/// parameters (population = environmental archive size).
pub fn run_spea2<P: Problem>(
    problem: &mut P,
    cfg: &Nsga2Config,
    mut progress: impl FnMut(usize, usize),
) -> Spea2Result {
    assert!(cfg.population >= 2, "population of at least 2");
    let n = problem.genotype_len();
    let mutation_prob = cfg.mutation_prob.unwrap_or(1.0 / n.max(1) as f64);
    let mut rng = Rng::new(cfg.seed);
    let mut archive: ParetoArchive<Vec<f64>> = ParetoArchive::new();
    let mut evaluations = 0usize;
    let mut infeasible = 0usize;

    let eval = |problem: &mut P,
                    genotype: Vec<f64>,
                    evaluations: &mut usize,
                    infeasible: &mut usize,
                    archive: &mut ParetoArchive<Vec<f64>>|
     -> Option<Individual> {
        *evaluations += 1;
        match problem.evaluate(&genotype) {
            Some(objectives) => {
                archive.offer(objectives.clone(), genotype.clone());
                Some(Individual {
                    genotype,
                    objectives,
                })
            }
            None => {
                *infeasible += 1;
                None
            }
        }
    };

    let mut population: Vec<Individual> = Vec::new();
    for genotype in cfg.seeds.iter().cloned() {
        if let Some(ind) = eval(problem, genotype, &mut evaluations, &mut infeasible, &mut archive)
        {
            population.push(ind);
        }
    }
    while population.len() < cfg.population && evaluations < cfg.evaluations.max(cfg.population) {
        let genotype: Vec<f64> = (0..n).map(|_| rng.unit()).collect();
        if let Some(ind) = eval(problem, genotype, &mut evaluations, &mut infeasible, &mut archive)
        {
            population.push(ind);
        }
    }
    if population.is_empty() {
        return Spea2Result {
            population,
            archive,
            evaluations,
            infeasible,
        };
    }

    while evaluations < cfg.evaluations {
        let objectives: Vec<Vec<f64>> =
            population.iter().map(|i| i.objectives.clone()).collect();
        let fit = fitness(&objectives);

        // Mating selection: binary tournaments on fitness.
        let mut offspring = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population && evaluations < cfg.evaluations {
            let pick = |rng: &mut Rng| {
                let a = rng.below(population.len());
                let b = rng.below(population.len());
                if fit[a] <= fit[b] {
                    a
                } else {
                    b
                }
            };
            let (a, b) = (pick(&mut rng), pick(&mut rng));
            let mut child = crossover_uniform(
                &mut rng,
                &population[a].genotype,
                &population[b].genotype,
                cfg.crossover_prob,
            );
            mutate(&mut rng, &mut child, mutation_prob, cfg.eta_mutation);
            if let Some(ind) = eval(problem, child, &mut evaluations, &mut infeasible, &mut archive)
            {
                offspring.push(ind);
            }
        }

        // Environmental selection over union.
        population.extend(offspring);
        let objectives: Vec<Vec<f64>> =
            population.iter().map(|i| i.objectives.clone()).collect();
        let fit = fitness(&objectives);
        population = environmental_selection(&population, &fit, cfg.population);
        progress(evaluations, archive.len());
    }

    Spea2Result {
        population,
        archive,
        evaluations,
        infeasible,
    }
}

fn crossover_uniform(rng: &mut Rng, a: &[f64], b: &[f64], prob: f64) -> Vec<f64> {
    if !rng.chance(prob) {
        return a.to_vec();
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| if rng.chance(0.5) { x } else { y })
        .collect()
}

fn mutate(rng: &mut Rng, genotype: &mut [f64], prob: f64, eta: f64) {
    for g in genotype.iter_mut() {
        if !rng.chance(prob) {
            continue;
        }
        let u = rng.unit();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        *g = (*g + delta).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zdt1 {
        n: usize,
    }

    impl Problem for Zdt1 {
        fn genotype_len(&self) -> usize {
            self.n
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, x: &[f64]) -> Option<Vec<f64>> {
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.n - 1) as f64;
            Some(vec![f1, g * (1.0 - (f1 / g).sqrt())])
        }
    }

    #[test]
    fn fitness_zero_for_unique_nondominated() {
        let objs = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0], vec![3.0, 3.0]];
        let f = fitness(&objs);
        // The three front points have raw fitness 0 (fitness < 1); the
        // dominated one is >= 1 (sum of strengths of its dominators).
        assert!(f[0] < 1.0 && f[1] < 1.0 && f[2] < 1.0);
        assert!(f[3] >= 1.0);
    }

    #[test]
    fn environmental_selection_respects_size() {
        let pool: Vec<Individual> = (0..10)
            .map(|i| Individual {
                genotype: vec![i as f64],
                objectives: vec![i as f64, 10.0 - i as f64],
            })
            .collect();
        let objs: Vec<Vec<f64>> = pool.iter().map(|p| p.objectives.clone()).collect();
        let fit = fitness(&objs);
        for size in [3, 5, 10] {
            assert_eq!(environmental_selection(&pool, &fit, size).len(), size);
        }
    }

    #[test]
    fn spea2_converges_on_zdt1() {
        let cfg = Nsga2Config {
            population: 30,
            evaluations: 3000,
            seed: 21,
            ..Nsga2Config::default()
        };
        let res = run_spea2(&mut Zdt1 { n: 8 }, &cfg, |_, _| {});
        assert_eq!(res.evaluations, 3000);
        let mean_dev: f64 = res
            .archive
            .entries()
            .iter()
            .map(|e| (e.objectives[1] - (1.0 - e.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / res.archive.len() as f64;
        assert!(mean_dev < 0.6, "mean deviation from front = {mean_dev}");
    }

    #[test]
    fn spea2_deterministic() {
        let cfg = Nsga2Config {
            population: 12,
            evaluations: 300,
            seed: 5,
            ..Nsga2Config::default()
        };
        let a = run_spea2(&mut Zdt1 { n: 5 }, &cfg, |_, _| {});
        let b = run_spea2(&mut Zdt1 { n: 5 }, &cfg, |_, _| {});
        assert_eq!(a.population, b.population);
    }
}
