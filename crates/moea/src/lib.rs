// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Multi-objective evolutionary optimisation: NSGA-II, Pareto archive and
//! quality indicators.
//!
//! Together with the `eea-sat` feasibility solver this forms the
//! SAT-decoding optimisation loop of the paper (Section III-C): NSGA-II
//! evolves real-vector genotypes that the problem decodes — via
//! priority-directed SAT solving — into feasible E/E-architecture
//! implementations, evaluated on the three design objectives (cost, test
//! quality, shut-off time).
//!
//! # Example
//!
//! ```
//! use eea_moea::{run, Nsga2Config, Problem};
//!
//! struct Sphere;
//! impl Problem for Sphere {
//!     fn genotype_len(&self) -> usize { 4 }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&mut self, x: &[f64]) -> Option<Vec<f64>> {
//!         let near0: f64 = x.iter().map(|v| v * v).sum();
//!         let near1: f64 = x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum();
//!         Some(vec![near0, near1])
//!     }
//! }
//! let res = run(&mut Sphere, &Nsga2Config { population: 16, evaluations: 400, ..Default::default() }, |_, _| {});
//! assert!(!res.archive.is_empty());
//! ```

mod archive;
mod dominance;
mod epsilon;
mod indicators;
mod nsga2;
mod rng;
mod spea2;

pub use archive::{ArchiveEntry, ParetoArchive};
pub use dominance::{dominates, relation, Relation};
pub use epsilon::{EpsilonArchive, EpsilonEntry};
pub use indicators::{additive_epsilon, hypervolume};
pub use nsga2::{
    crowding_distances, non_dominated_ranks, run, Individual, Nsga2Config, Nsga2Result, Problem,
};
pub use rng::Rng;
pub use spea2::{run_spea2, Spea2Result};
