//! ε-dominance archive: a bounded Pareto archive with convergence and
//! diversity guarantees.
//!
//! The unbounded [`ParetoArchive`](crate::ParetoArchive) can grow with the
//! evaluation count (the paper's 100,000-evaluation run archives hundreds
//! of points). The classic remedy (Laumanns et al.) partitions objective
//! space into ε-boxes and keeps at most one representative per box:
//! archive size is bounded by the box grid, and every archived point
//! ε-dominates its region.

use crate::dominance::dominates;

/// An entry of the ε-archive.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonEntry<P> {
    /// Objective vector (minimised).
    pub objectives: Vec<f64>,
    /// Caller payload.
    pub payload: P,
    box_index: Vec<i64>,
}

/// Bounded archive with ε-dominance acceptance.
#[derive(Debug, Clone)]
pub struct EpsilonArchive<P> {
    epsilons: Vec<f64>,
    entries: Vec<EpsilonEntry<P>>,
}

impl<P> EpsilonArchive<P> {
    /// Creates an archive with per-objective box sizes `epsilons`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilons` is empty or contains a non-positive value.
    pub fn new(epsilons: Vec<f64>) -> Self {
        assert!(!epsilons.is_empty(), "need at least one objective");
        assert!(
            epsilons.iter().all(|&e| e > 0.0),
            "epsilon box sizes must be positive"
        );
        EpsilonArchive {
            epsilons,
            entries: Vec::new(),
        }
    }

    fn box_of(&self, objectives: &[f64]) -> Vec<i64> {
        objectives
            .iter()
            .zip(&self.epsilons)
            .map(|(&v, &e)| (v / e).floor() as i64)
            .collect()
    }

    /// Offers a solution; returns `true` if archived.
    ///
    /// Acceptance: rejected if any archived entry's *box* dominates the
    /// candidate's box (ε-dominance); within the same box, the candidate
    /// replaces the incumbent only if it plainly dominates it; entries in
    /// box-dominated boxes are evicted.
    ///
    /// # Panics
    ///
    /// Panics if the objective dimension does not match the epsilons.
    pub fn offer(&mut self, objectives: Vec<f64>, payload: P) -> bool {
        assert_eq!(
            objectives.len(),
            self.epsilons.len(),
            "objective dimension mismatch"
        );
        let bx = self.box_of(&objectives);
        let box_f: Vec<f64> = bx.iter().map(|&b| b as f64).collect();
        for e in &self.entries {
            if e.box_index == bx {
                // Same box: keep the dominating one.
                if dominates(&objectives, &e.objectives) {
                    continue; // incumbent evicted below
                }
                return false;
            }
            let other_f: Vec<f64> = e.box_index.iter().map(|&b| b as f64).collect();
            if dominates(&other_f, &box_f) || other_f == box_f {
                return false;
            }
        }
        self.entries.retain(|e| {
            if e.box_index == bx {
                // Acceptance only falls through for a same-box candidate
                // that dominates the incumbent: evict it (one per box).
                return false;
            }
            let other_f: Vec<f64> = e.box_index.iter().map(|&b| b as f64).collect();
            !dominates(&box_f, &other_f)
        });
        self.entries.push(EpsilonEntry {
            objectives,
            payload,
            box_index: bx,
        });
        true
    }

    /// Archived entries.
    pub fn entries(&self) -> &[EpsilonEntry<P>] {
        &self.entries
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn one_entry_per_box() {
        let mut a = EpsilonArchive::new(vec![1.0, 1.0]);
        assert!(a.offer(vec![0.5, 0.5], "x"));
        // Same box, not dominating: rejected.
        assert!(!a.offer(vec![0.6, 0.4], "y"));
        // Same box, dominating: replaces.
        assert!(a.offer(vec![0.4, 0.4], "z"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].payload, "z");
    }

    #[test]
    fn box_dominance_rejects_and_evicts() {
        let mut a = EpsilonArchive::new(vec![1.0, 1.0]);
        assert!(a.offer(vec![5.5, 5.5], "far"));
        // Box (0,0) dominates box (5,5): evicts it.
        assert!(a.offer(vec![0.5, 0.5], "near"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].payload, "near");
        // Box-dominated candidate rejected.
        assert!(!a.offer(vec![3.5, 3.5], "mid"));
    }

    #[test]
    fn bounded_size_under_random_stream() {
        let mut a = EpsilonArchive::new(vec![0.25, 0.25]);
        let mut rng = Rng::new(12);
        for _ in 0..5_000 {
            a.offer(vec![rng.unit(), rng.unit()], ());
        }
        // At epsilon 0.25 on [0,1]^2, the front crosses at most ~2/0.25
        // boxes; the bound is loose but must be tiny versus 5000 offers.
        assert!(a.len() <= 16, "archive grew to {}", a.len());
        // Entries are mutually non-box-dominated.
        for x in a.entries() {
            for y in a.entries() {
                if x.objectives != y.objectives {
                    let bx: Vec<f64> = x.box_index.iter().map(|&b| b as f64).collect();
                    let by: Vec<f64> = y.box_index.iter().map(|&b| b as f64).collect();
                    assert!(!dominates(&bx, &by) || bx == by);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_epsilon() {
        let _ = EpsilonArchive::<()>::new(vec![0.0]);
    }
}
