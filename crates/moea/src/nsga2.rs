//! NSGA-II: fast non-dominated sorting, crowding distance, binary
//! tournament selection, SBX crossover and polynomial mutation on
//! real-vector genotypes in `[0, 1]^n`.
//!
//! This is the MOEA half of the paper's SAT-decoding optimisation: the
//! genotype is interpreted by the problem (in `eea-dse`: branching
//! priorities and polarities for the feasibility solver), so every
//! individual decodes to a *feasible* implementation and NSGA-II optimises
//! over the feasible space only.

use crate::archive::ParetoArchive;
use crate::dominance::dominates;
use crate::rng::Rng;

/// A problem exposing evaluation of real-vector genotypes. Objectives are
/// minimised.
pub trait Problem {
    /// Genotype length `n` (vectors live in `[0, 1]^n`).
    fn genotype_len(&self) -> usize;

    /// Number of objectives.
    fn num_objectives(&self) -> usize;

    /// Evaluates a genotype; `None` marks an infeasible decode (rare under
    /// SAT-decoding — only when the whole formula is unsatisfiable).
    fn evaluate(&mut self, genotype: &[f64]) -> Option<Vec<f64>>;

    /// Evaluates a whole generation of genotypes, returning results in
    /// input order. The default forwards serially to
    /// [`evaluate`](Self::evaluate); problems with thread-safe evaluation
    /// override this to fan a batch out across workers.
    ///
    /// [`run`] performs *every* evaluation through this hook and merges by
    /// input index, so an override whose per-genotype results do not depend
    /// on how the batch is split (see `eea-dse`'s lane scheme) makes the
    /// whole evolution trajectory independent of the worker count.
    fn evaluate_batch(&mut self, genotypes: &[Vec<f64>]) -> Vec<Option<Vec<f64>>> {
        genotypes.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// NSGA-II configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (µ = λ).
    pub population: usize,
    /// Total evaluation budget (the paper's case study uses 100,000).
    pub evaluations: usize,
    /// SBX crossover probability per pair.
    pub crossover_prob: f64,
    /// SBX distribution index (typical: 15).
    pub eta_crossover: f64,
    /// Mutation probability per gene (typical: 1/n, set automatically when
    /// `None`).
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index (typical: 20).
    pub eta_mutation: f64,
    /// RNG seed.
    pub seed: u64,
    /// Genotypes injected into the initial population (evaluated first,
    /// counted against the budget). Useful for anchoring the search with
    /// known corner designs.
    pub seeds: Vec<Vec<f64>>,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 100,
            evaluations: 10_000,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: None,
            eta_mutation: 20.0,
            seed: 0x5EED,
            seeds: Vec::new(),
        }
    }
}

/// One evaluated individual.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Genotype in `[0, 1]^n`.
    pub genotype: Vec<f64>,
    /// Objective vector (minimised).
    pub objectives: Vec<f64>,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// The final population.
    pub population: Vec<Individual>,
    /// All-time Pareto archive over every evaluated individual.
    pub archive: ParetoArchive<Vec<f64>>,
    /// Number of evaluations actually performed.
    pub evaluations: usize,
    /// Number of infeasible decodes encountered.
    pub infeasible: usize,
}

/// Fast non-dominated sort; returns the front index (rank) of each
/// individual (0 = best front).
pub fn non_dominated_ranks(objectives: &[Vec<f64>]) -> Vec<u32> {
    let n = objectives.len();
    let mut dominated_by: Vec<u32> = vec![0; n];
    let mut dominates_list: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objectives[i], &objectives[j]) {
                dominates_list[i].push(j as u32);
                dominated_by[j] += 1;
            } else if dominates(&objectives[j], &objectives[i]) {
                dominates_list[j].push(i as u32);
                dominated_by[i] += 1;
            }
        }
    }
    let mut rank = vec![0u32; n];
    let mut current: Vec<u32> = (0..n as u32).filter(|&i| dominated_by[i as usize] == 0).collect();
    let mut level = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i as usize] = level;
            for &j in &dominates_list[i as usize] {
                dominated_by[j as usize] -= 1;
                if dominated_by[j as usize] == 0 {
                    next.push(j);
                }
            }
        }
        level += 1;
        current = next;
    }
    rank
}

/// Crowding distance of each individual within its front.
pub fn crowding_distances(objectives: &[Vec<f64>], ranks: &[u32]) -> Vec<f64> {
    let n = objectives.len();
    let mut distance = vec![0.0f64; n];
    if n == 0 {
        return distance;
    }
    let m = objectives[0].len();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for r in 0..=max_rank {
        let front: Vec<usize> = (0..n).filter(|&i| ranks[i] == r).collect();
        if front.len() <= 2 {
            for &i in &front {
                distance[i] = f64::INFINITY;
            }
            continue;
        }
        #[allow(clippy::needless_range_loop)] // `obj` also indexes inside the closure
        for obj in 0..m {
            let mut sorted = front.clone();
            sorted.sort_by(|&a, &b| objectives[a][obj].total_cmp(&objectives[b][obj]));
            let last = sorted[sorted.len() - 1];
            let lo = objectives[sorted[0]][obj];
            let hi = objectives[last][obj];
            distance[sorted[0]] = f64::INFINITY;
            distance[last] = f64::INFINITY;
            let span = hi - lo;
            if span <= 0.0 {
                continue;
            }
            for w in sorted.windows(3) {
                let (prev, mid, next) = (w[0], w[1], w[2]);
                distance[mid] += (objectives[next][obj] - objectives[prev][obj]) / span;
            }
        }
    }
    distance
}

fn tournament(rng: &mut Rng, ranks: &[u32], crowding: &[f64]) -> usize {
    let a = rng.below(ranks.len());
    let b = rng.below(ranks.len());
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

/// SBX crossover of two parents (returns two children).
fn sbx(rng: &mut Rng, p1: &[f64], p2: &[f64], prob: f64, eta: f64) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if !rng.chance(prob) {
        return (c1, c2);
    }
    for i in 0..c1.len() {
        if !rng.chance(0.5) {
            continue;
        }
        let (x1, x2) = (p1[i], p2[i]);
        if (x1 - x2).abs() < 1e-14 {
            continue;
        }
        let u = rng.unit();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        let v1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
        let v2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
        c1[i] = v1.clamp(0.0, 1.0);
        c2[i] = v2.clamp(0.0, 1.0);
    }
    (c1, c2)
}

/// Polynomial mutation in place.
fn polynomial_mutation(rng: &mut Rng, genotype: &mut [f64], prob: f64, eta: f64) {
    for g in genotype.iter_mut() {
        if !rng.chance(prob) {
            continue;
        }
        let u = rng.unit();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        *g = (*g + delta).clamp(0.0, 1.0);
    }
}

/// Runs NSGA-II on `problem`. The `progress` callback receives
/// `(evaluations_done, archive_size)` after each generation and may be a
/// no-op closure.
///
/// All evaluation happens in generation-sized batches through
/// [`Problem::evaluate_batch`], merged by input index. Batch boundaries
/// depend only on result *counts* (never on objective values), and the RNG
/// is consumed exclusively while generating genotypes — so a batch
/// override that is split-invariant keeps the run bit-identical to serial
/// evaluation at any worker count.
pub fn run<P: Problem>(
    problem: &mut P,
    cfg: &Nsga2Config,
    mut progress: impl FnMut(usize, usize),
) -> Nsga2Result {
    assert!(cfg.population >= 2, "population of at least 2");
    let n = problem.genotype_len();
    let mutation_prob = cfg.mutation_prob.unwrap_or(1.0 / n.max(1) as f64);
    let mut rng = Rng::new(cfg.seed);
    let mut archive: ParetoArchive<Vec<f64>> = ParetoArchive::new();
    let mut evaluations = 0usize;
    let mut infeasible = 0usize;

    let absorb = |problem: &mut P,
                  batch: Vec<Vec<f64>>,
                  evaluations: &mut usize,
                  infeasible: &mut usize,
                  archive: &mut ParetoArchive<Vec<f64>>|
     -> Vec<Individual> {
        let results = problem.evaluate_batch(&batch);
        debug_assert_eq!(results.len(), batch.len());
        *evaluations += batch.len();
        batch
            .into_iter()
            .zip(results)
            .filter_map(|(genotype, result)| match result {
                Some(objectives) => {
                    archive.offer(objectives.clone(), genotype.clone());
                    Some(Individual {
                        genotype,
                        objectives,
                    })
                }
                None => {
                    *infeasible += 1;
                    None
                }
            })
            .collect()
    };

    // Initial population: injected seeds first, then uniform random.
    let init_budget = cfg.evaluations.max(cfg.population);
    let mut population: Vec<Individual> = Vec::with_capacity(cfg.population);
    let seed_batch: Vec<Vec<f64>> = cfg.seeds.iter().take(init_budget).cloned().collect();
    for genotype in &seed_batch {
        assert_eq!(genotype.len(), n, "seed genotype length mismatch");
    }
    population.extend(absorb(
        problem,
        seed_batch,
        &mut evaluations,
        &mut infeasible,
        &mut archive,
    ));
    while population.len() < cfg.population && evaluations < init_budget {
        let need = (cfg.population - population.len()).min(init_budget - evaluations);
        let batch: Vec<Vec<f64>> = (0..need)
            .map(|_| (0..n).map(|_| rng.unit()).collect())
            .collect();
        population.extend(absorb(
            problem,
            batch,
            &mut evaluations,
            &mut infeasible,
            &mut archive,
        ));
    }
    if population.is_empty() {
        return Nsga2Result {
            population,
            archive,
            evaluations,
            infeasible,
        };
    }
    while population.len() < cfg.population {
        // Pad with clones if infeasible decodes ate the budget.
        let clone = population[rng.below(population.len())].clone();
        population.push(clone);
    }

    while evaluations < cfg.evaluations {
        let objectives: Vec<Vec<f64>> =
            population.iter().map(|i| i.objectives.clone()).collect();
        let ranks = non_dominated_ranks(&objectives);
        let crowding = crowding_distances(&objectives, &ranks);

        // Offspring, generated a batch at a time. The batch size depends
        // only on how many feasible offspring earlier batches produced, so
        // the RNG stream (consumed only here, during variation) is
        // independent of how `evaluate_batch` schedules its work.
        let mut offspring: Vec<Individual> = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population && evaluations < cfg.evaluations {
            let need =
                (cfg.population - offspring.len()).min(cfg.evaluations - evaluations);
            let mut batch: Vec<Vec<f64>> = Vec::with_capacity(need);
            while batch.len() < need {
                let a = tournament(&mut rng, &ranks, &crowding);
                let b = tournament(&mut rng, &ranks, &crowding);
                let (mut c1, mut c2) = sbx(
                    &mut rng,
                    &population[a].genotype,
                    &population[b].genotype,
                    cfg.crossover_prob,
                    cfg.eta_crossover,
                );
                polynomial_mutation(&mut rng, &mut c1, mutation_prob, cfg.eta_mutation);
                polynomial_mutation(&mut rng, &mut c2, mutation_prob, cfg.eta_mutation);
                batch.push(c1);
                if batch.len() < need {
                    batch.push(c2);
                }
            }
            offspring.extend(absorb(
                problem,
                batch,
                &mut evaluations,
                &mut infeasible,
                &mut archive,
            ));
        }

        // Environmental selection over µ + λ.
        population.extend(offspring);
        let objectives: Vec<Vec<f64>> =
            population.iter().map(|i| i.objectives.clone()).collect();
        let ranks = non_dominated_ranks(&objectives);
        let crowding = crowding_distances(&objectives, &ranks);
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&x, &y| ranks[x].cmp(&ranks[y]).then(crowding[y].total_cmp(&crowding[x])));
        order.truncate(cfg.population);
        let mut selected: Vec<Individual> = Vec::with_capacity(cfg.population);
        for idx in order {
            selected.push(population[idx].clone());
        }
        population = selected;
        progress(evaluations, archive.len());
    }

    Nsga2Result {
        population,
        archive,
        evaluations,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ZDT1-like 2-objective benchmark on [0,1]^n.
    struct Zdt1 {
        n: usize,
    }

    impl Problem for Zdt1 {
        fn genotype_len(&self) -> usize {
            self.n
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, x: &[f64]) -> Option<Vec<f64>> {
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (self.n - 1) as f64;
            let f2 = g * (1.0 - (f1 / g).sqrt());
            Some(vec![f1, f2])
        }
    }

    #[test]
    fn ranks_simple() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // dominated by 0 -> front 1
            vec![0.5, 3.0], // front 0
            vec![3.0, 3.0], // front 2
        ];
        let ranks = non_dominated_ranks(&objs);
        assert_eq!(ranks, vec![0, 1, 0, 2]);
    }

    #[test]
    fn crowding_extremes_infinite() {
        let objs = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let ranks = vec![0, 0, 0, 0];
        let d = crowding_distances(&objs, &ranks);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn zdt1_converges_towards_front() {
        let mut problem = Zdt1 { n: 10 };
        let cfg = Nsga2Config {
            population: 40,
            evaluations: 4000,
            seed: 42,
            ..Nsga2Config::default()
        };
        let res = run(&mut problem, &cfg, |_, _| {});
        assert_eq!(res.evaluations, 4000);
        assert_eq!(res.infeasible, 0);
        // On the true front g = 1; check the archive got close.
        let mean_g: f64 = res
            .archive
            .entries()
            .iter()
            .map(|e| {
                // Reconstruct g from f1, f2: f2 = g(1 - sqrt(f1/g)) — instead
                // evaluate distance from the ideal relation f2 ~ 1 - sqrt(f1).
                let f1 = e.objectives[0];
                let f2 = e.objectives[1];
                (f2 - (1.0 - f1.sqrt())).abs()
            })
            .sum::<f64>()
            / res.archive.len() as f64;
        assert!(mean_g < 0.35, "mean deviation from front = {mean_g}");
        // Random search baseline for the same budget is much worse; verify
        // NSGA-II actually improved over the initial random population.
        assert!(res.archive.len() > 10);
    }

    /// Evaluates like Zdt1 but services batches back-to-front internally,
    /// mimicking an arbitrary parallel schedule; results are still returned
    /// in input order.
    struct Zdt1Scrambled {
        inner: Zdt1,
    }

    impl Problem for Zdt1Scrambled {
        fn genotype_len(&self) -> usize {
            self.inner.genotype_len()
        }
        fn num_objectives(&self) -> usize {
            self.inner.num_objectives()
        }
        fn evaluate(&mut self, x: &[f64]) -> Option<Vec<f64>> {
            self.inner.evaluate(x)
        }
        fn evaluate_batch(&mut self, genotypes: &[Vec<f64>]) -> Vec<Option<Vec<f64>>> {
            let mut results: Vec<Option<Vec<f64>>> = vec![None; genotypes.len()];
            for i in (0..genotypes.len()).rev() {
                results[i] = self.inner.evaluate(&genotypes[i]);
            }
            results
        }
    }

    #[test]
    fn batch_schedule_does_not_change_the_run() {
        let cfg = Nsga2Config {
            population: 20,
            evaluations: 600,
            seed: 11,
            ..Nsga2Config::default()
        };
        let serial = run(&mut Zdt1 { n: 6 }, &cfg, |_, _| {});
        let scrambled = run(&mut Zdt1Scrambled { inner: Zdt1 { n: 6 } }, &cfg, |_, _| {});
        assert_eq!(serial.population, scrambled.population);
        assert_eq!(serial.evaluations, scrambled.evaluations);
        assert_eq!(serial.archive.entries().len(), scrambled.archive.entries().len());
    }

    #[test]
    fn deterministic_runs() {
        let cfg = Nsga2Config {
            population: 20,
            evaluations: 500,
            seed: 7,
            ..Nsga2Config::default()
        };
        let a = run(&mut Zdt1 { n: 6 }, &cfg, |_, _| {});
        let b = run(&mut Zdt1 { n: 6 }, &cfg, |_, _| {});
        assert_eq!(a.population, b.population);
    }

    #[test]
    fn infeasible_decodes_counted() {
        struct HalfFeasible;
        impl Problem for HalfFeasible {
            fn genotype_len(&self) -> usize {
                3
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&mut self, x: &[f64]) -> Option<Vec<f64>> {
                if x[0] < 0.5 {
                    None
                } else {
                    Some(vec![x[1], x[2]])
                }
            }
        }
        let cfg = Nsga2Config {
            population: 10,
            evaluations: 300,
            seed: 3,
            ..Nsga2Config::default()
        };
        let res = run(&mut HalfFeasible, &cfg, |_, _| {});
        assert!(res.infeasible > 0);
        assert!(res
            .population
            .iter()
            .all(|i| i.genotype[0] >= 0.5));
    }

    #[test]
    fn progress_callback_fires() {
        let mut calls = 0;
        let cfg = Nsga2Config {
            population: 10,
            evaluations: 200,
            seed: 1,
            ..Nsga2Config::default()
        };
        run(&mut Zdt1 { n: 4 }, &cfg, |_, _| calls += 1);
        assert!(calls > 0);
    }
}
