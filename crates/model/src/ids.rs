use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a dense index. Only meaningful for
            /// indices handed out by the owning container.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a task (functional or diagnostic) in an
    /// [`Application`](crate::Application).
    TaskId,
    "t"
);
id_type!(
    /// Identifier of a message (data dependency) in an
    /// [`Application`](crate::Application).
    MessageId,
    "c"
);
id_type!(
    /// Identifier of a resource (ECU, bus, sensor, ...) in an
    /// [`Architecture`](crate::Architecture).
    ResourceId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let t = TaskId::from_index(4);
        assert_eq!(t.index(), 4);
        assert_eq!(t.to_string(), "t4");
        assert_eq!(MessageId::from_index(1).to_string(), "c1");
        assert_eq!(ResourceId::from_index(9).to_string(), "r9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TaskId::from_index(1) < TaskId::from_index(2));
    }
}
