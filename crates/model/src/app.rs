//! The bipartite application graph `g_T = (T ∪ C, E_T)` of the paper:
//! task vertices and message (data-dependency) vertices.

use std::fmt;

use crate::ids::{MessageId, TaskId};

/// Role of a diagnostic task (Section III-A / Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiagRole {
    /// BIST test task `b^T`: executes the session on its ECU. Carries the
    /// selected profile's characteristics.
    Test {
        /// Fault coverage `c(b)` in `[0, 1]`.
        coverage: f64,
        /// Session runtime `l(b)` in milliseconds.
        runtime_ms: f64,
        /// Encoded deterministic + response data size `s(b)` in bytes.
        data_bytes: u64,
    },
    /// BIST data task `b^D`: owns the permanent memory holding the encoded
    /// deterministic test data and response data.
    Data {
        /// Stored bytes (same as the matching test task's `data_bytes`).
        data_bytes: u64,
    },
    /// Collection task `b^R` on the gateway, gathering the fail data of all
    /// ECUs. Mandatory once diagnosis is deployed.
    Collect,
}

/// Classification of a task vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskKind {
    /// A functional application task — always mapped.
    Functional,
    /// An optional diagnostic task.
    Diagnostic(DiagRole),
}

impl TaskKind {
    /// Whether this is a diagnostic task (`d ∈ D ⊂ T`).
    pub fn is_diagnostic(self) -> bool {
        matches!(self, TaskKind::Diagnostic(_))
    }
}

/// A task vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Functional or diagnostic classification.
    pub kind: TaskKind,
}

/// A message vertex: one sender, one or more receivers, with the
/// communication attributes the CAN layer needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Human-readable name.
    pub name: String,
    /// Sending task.
    pub sender: TaskId,
    /// Receiving tasks (at least one).
    pub receivers: Vec<TaskId>,
    /// Payload size in bytes (1..=8 for a single CAN frame; larger values
    /// model segmented transfers).
    pub size_bytes: u64,
    /// Period in microseconds.
    pub period_us: u64,
}

/// The application graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Application {
    tasks: Vec<Task>,
    messages: Vec<Message>,
}

impl Application {
    /// Creates an empty application graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: &str, kind: TaskKind) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(Task {
            name: name.to_owned(),
            kind,
        });
        id
    }

    /// Adds a message and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `receivers` is empty or an endpoint id is out of range.
    pub fn add_message(
        &mut self,
        name: &str,
        sender: TaskId,
        receivers: &[TaskId],
        size_bytes: u64,
        period_us: u64,
    ) -> MessageId {
        assert!(!receivers.is_empty(), "a message needs at least one receiver");
        assert!(sender.index() < self.tasks.len(), "unknown sender {sender}");
        for r in receivers {
            assert!(r.index() < self.tasks.len(), "unknown receiver {r}");
        }
        let id = MessageId::from_index(self.messages.len());
        self.messages.push(Message {
            name: name.to_owned(),
            sender,
            receivers: receivers.to_vec(),
            size_bytes,
            period_us,
        });
        id
    }

    /// Task lookup.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Message lookup.
    #[inline]
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.index()]
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of messages.
    #[inline]
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Iterator over all task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// Iterator over all message ids.
    pub fn message_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        (0..self.messages.len()).map(MessageId::from_index)
    }

    /// Ids of all functional tasks (`F ⊂ T`).
    pub fn functional_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids()
            .filter(|&t| !self.task(t).kind.is_diagnostic())
    }

    /// Ids of all diagnostic tasks (`D ⊂ T`).
    pub fn diagnostic_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids()
            .filter(|&t| self.task(t).kind.is_diagnostic())
    }

    /// Messages sent by `task`.
    pub fn messages_from(&self, task: TaskId) -> impl Iterator<Item = MessageId> + '_ {
        self.message_ids()
            .filter(move |&m| self.message(m).sender == task)
    }

    /// Messages received by `task`.
    pub fn messages_to(&self, task: TaskId) -> impl Iterator<Item = MessageId> + '_ {
        self.message_ids()
            .filter(move |&m| self.message(m).receivers.contains(&task))
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "application: {} tasks ({} diagnostic), {} messages",
            self.num_tasks(),
            self.diagnostic_tasks().count(),
            self.num_messages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut app = Application::new();
        let a = app.add_task("sense", TaskKind::Functional);
        let b = app.add_task("ctl", TaskKind::Functional);
        let d = app.add_task("bist", TaskKind::Diagnostic(DiagRole::Collect));
        let m = app.add_message("m", a, &[b], 4, 10_000);
        assert_eq!(app.num_tasks(), 3);
        assert_eq!(app.message(m).sender, a);
        assert_eq!(app.functional_tasks().count(), 2);
        assert_eq!(app.diagnostic_tasks().collect::<Vec<_>>(), vec![d]);
        assert_eq!(app.messages_from(a).count(), 1);
        assert_eq!(app.messages_to(b).count(), 1);
        assert_eq!(app.messages_to(a).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn rejects_receiverless_message() {
        let mut app = Application::new();
        let a = app.add_task("a", TaskKind::Functional);
        app.add_message("m", a, &[], 1, 1000);
    }

    #[test]
    fn display_counts() {
        let mut app = Application::new();
        app.add_task("a", TaskKind::Functional);
        assert!(app.to_string().contains("1 tasks"));
    }

    #[test]
    fn diag_role_carries_profile() {
        let role = DiagRole::Test {
            coverage: 0.99,
            runtime_ms: 4.87,
            data_bytes: 2_399_185,
        };
        if let DiagRole::Test { coverage, .. } = role {
            assert!((coverage - 0.99).abs() < 1e-12);
        } else {
            panic!("wrong role");
        }
    }
}
