//! The paper's industrial case study, rebuilt deterministically.
//!
//! Section IV: "Four control-centric applications with 45 tasks and 41
//! messages have to be implemented. For the architecture, 15 ECUs, 9
//! sensors, and 5 actuators connected with three distinct CAN buses are
//! available." The concrete graphs are unpublished; this module
//! reconstructs a specification with exactly those counts and the control
//! structure the paper's domain implies (sense → preprocess → fuse →
//! control → postprocess → actuate pipelines, one cross-domain application
//! spanning two buses through the central gateway).
//!
//! Everything is deterministic for a given [`CaseStudyConfig`], so the DSE
//! experiments are exactly reproducible.

use crate::app::{Application, TaskKind};
use crate::arch::{Architecture, Resource, ResourceKind};
use crate::ids::{ResourceId, TaskId};
use crate::spec::Specification;

/// Configuration of the case-study generator. The default reproduces the
/// paper's counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyConfig {
    /// ECUs per bus (3 buses): paper total is 15.
    pub ecus_per_bus: [usize; 3],
    /// Sensors per bus: paper total is 9.
    pub sensors_per_bus: [usize; 3],
    /// Actuators per bus: paper total is 5.
    pub actuators_per_bus: [usize; 3],
    /// Base cost of the gateway.
    pub gateway_cost: f64,
    /// Cost range of an ECU (deterministically varied within).
    pub ecu_cost_range: (f64, f64),
    /// Cost per byte of permanent ECU memory (distributed test-data
    /// storage).
    pub ecu_memory_cost_per_byte: f64,
    /// Cost per byte of gateway memory (cheaper; shared storage).
    pub gateway_memory_cost_per_byte: f64,
    /// Seed for the deterministic structure generation.
    pub seed: u64,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            ecus_per_bus: [5, 5, 5],
            sensors_per_bus: [3, 3, 3],
            actuators_per_bus: [2, 2, 1],
            gateway_cost: 80.0,
            ecu_cost_range: (18.0, 42.0),
            // Distributed ECU flash is an order of magnitude pricier per
            // byte than the gateway's bulk memory — this asymmetry is what
            // creates the paper's central storage-placement tradeoff.
            ecu_memory_cost_per_byte: 4e-6,
            gateway_memory_cost_per_byte: 4e-7,
            seed: 0xCA5E_57D1,
        }
    }
}

/// The generated case study: the specification plus convenient handles to
/// the architecture's structure.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The full specification (functional part only; BIST augmentation is
    /// done by `eea-dse`).
    pub spec: Specification,
    /// The central gateway.
    pub gateway: ResourceId,
    /// The three CAN buses.
    pub buses: Vec<ResourceId>,
    /// All ECUs, grouped by bus.
    pub ecus_by_bus: Vec<Vec<ResourceId>>,
    /// Task ids grouped by application.
    pub app_tasks: Vec<Vec<TaskId>>,
}

impl CaseStudy {
    /// All ECU ids (flattened).
    pub fn ecus(&self) -> Vec<ResourceId> {
        self.ecus_by_bus.iter().flatten().copied().collect()
    }

    /// The bus an ECU is attached to, or `None` if `ecu` is not one of the
    /// case study's ECUs.
    pub fn bus_of(&self, ecu: ResourceId) -> Option<ResourceId> {
        for (bi, group) in self.ecus_by_bus.iter().enumerate() {
            if group.contains(&ecu) {
                return self.buses.get(bi).copied();
            }
        }
        None
    }
}

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// Builds the paper's case study with default parameters: 45 tasks, 41
/// messages, 4 applications, 15 ECUs, 9 sensors, 5 actuators, 3 CAN buses
/// and a central gateway.
pub fn paper_case_study() -> CaseStudy {
    build_case_study(&CaseStudyConfig::default())
}

/// Builds a case study per `cfg`. See [`paper_case_study`] for the paper's
/// instantiation.
pub fn build_case_study(cfg: &CaseStudyConfig) -> CaseStudy {
    let mut rng = Mix(cfg.seed);
    let mut arch = Architecture::new();

    let gateway = arch.add_resource(Resource {
        name: "gateway".into(),
        kind: ResourceKind::Gateway,
        cost: cfg.gateway_cost,
        memory_cost_per_byte: cfg.gateway_memory_cost_per_byte,
        bist_capable: false,
    });
    let mut buses = Vec::new();
    let mut ecus_by_bus = Vec::new();
    let mut sensors_by_bus = Vec::new();
    let mut actuators_by_bus = Vec::new();
    for b in 0..3 {
        let bus = arch.add_resource(Resource {
            name: format!("can{b}"),
            kind: ResourceKind::CanBus,
            cost: 5.0,
            memory_cost_per_byte: 0.0,
            bist_capable: false,
        });
        arch.connect(gateway, bus);
        buses.push(bus);
        let mut ecus = Vec::new();
        for e in 0..cfg.ecus_per_bus[b] {
            let (lo, hi) = cfg.ecu_cost_range;
            let ecu = arch.add_resource(Resource {
                name: format!("ecu{b}_{e}"),
                kind: ResourceKind::Ecu,
                cost: rng.in_range(lo, hi).round(),
                memory_cost_per_byte: cfg.ecu_memory_cost_per_byte,
                bist_capable: true,
            });
            arch.connect(ecu, bus);
            ecus.push(ecu);
        }
        ecus_by_bus.push(ecus);
        let mut sensors = Vec::new();
        for s in 0..cfg.sensors_per_bus[b] {
            let sensor = arch.add_resource(Resource {
                name: format!("sensor{b}_{s}"),
                kind: ResourceKind::Sensor,
                cost: 3.0,
                memory_cost_per_byte: 0.0,
                bist_capable: false,
            });
            arch.connect(sensor, bus);
            sensors.push(sensor);
        }
        sensors_by_bus.push(sensors);
        let mut actuators = Vec::new();
        for a in 0..cfg.actuators_per_bus[b] {
            let act = arch.add_resource(Resource {
                name: format!("act{b}_{a}"),
                kind: ResourceKind::Actuator,
                cost: 4.0,
                memory_cost_per_byte: 0.0,
                bist_capable: false,
            });
            arch.connect(act, bus);
            actuators.push(act);
        }
        actuators_by_bus.push(actuators);
    }

    let mut app = Application::new();
    let mut pending_mappings: Vec<(TaskId, Vec<ResourceId>)> = Vec::new();
    let mut app_tasks: Vec<Vec<TaskId>> = Vec::new();

    // Helper closures cannot borrow `app` mutably twice, so use functions.
    struct Ctx<'a> {
        app: &'a mut Application,
        pending: &'a mut Vec<(TaskId, Vec<ResourceId>)>,
        rng: &'a mut Mix,
    }
    impl Ctx<'_> {
        fn fixed_task(&mut self, name: &str, host: ResourceId) -> TaskId {
            let t = self.app.add_task(name, TaskKind::Functional);
            self.pending.push((t, vec![host]));
            t
        }
        /// Processing task mappable to 2-4 of the given ECU pool.
        fn proc_task(&mut self, name: &str, pool: &[ResourceId]) -> TaskId {
            let t = self.app.add_task(name, TaskKind::Functional);
            let k = (2 + self.rng.below(3)).min(pool.len());
            let mut opts = Vec::new();
            let start = self.rng.below(pool.len());
            for i in 0..pool.len() {
                if opts.len() == k {
                    break;
                }
                opts.push(pool[(start + i) % pool.len()]);
            }
            self.pending.push((t, opts));
            t
        }
    }

    // Applications 1 and 2: full 12-task pipelines on bus 0 and bus 1.
    // Application 3: 11 tasks on bus 2 (single actuator, convergent
    // control). Application 4: 10 tasks spanning buses 0 and 1 through the
    // gateway, with one multicast message.
    let periods = [10_000u64, 20_000, 50_000, 100_000];
    for (ai, &bus_idx) in [0usize, 1].iter().enumerate() {
        let mut ctx = Ctx {
            app: &mut app,
            pending: &mut pending_mappings,
            rng: &mut rng,
        };
        let ecus = &ecus_by_bus[bus_idx];
        let sensors = &sensors_by_bus[bus_idx];
        let acts = &actuators_by_bus[bus_idx];
        let p = |i: usize| periods[i % periods.len()];
        let n = format!("a{ai}");
        let s0 = ctx.fixed_task(&format!("{n}_sense0"), sensors[0]);
        let s1 = ctx.fixed_task(&format!("{n}_sense1"), sensors[1]);
        let s2 = ctx.fixed_task(&format!("{n}_sense2"), sensors[2]);
        let pre0 = ctx.proc_task(&format!("{n}_pre0"), ecus);
        let pre1 = ctx.proc_task(&format!("{n}_pre1"), ecus);
        let fus = ctx.proc_task(&format!("{n}_fusion"), ecus);
        let ctl0 = ctx.proc_task(&format!("{n}_ctl0"), ecus);
        let ctl1 = ctx.proc_task(&format!("{n}_ctl1"), ecus);
        let post0 = ctx.proc_task(&format!("{n}_post0"), ecus);
        let post1 = ctx.proc_task(&format!("{n}_post1"), ecus);
        let act0 = ctx.fixed_task(&format!("{n}_act0"), acts[0]);
        let act1 = ctx.fixed_task(&format!("{n}_act1"), acts[1]);
        app_tasks.push(vec![
            s0, s1, s2, pre0, pre1, fus, ctl0, ctl1, post0, post1, act0, act1,
        ]);
        let m = |app: &mut Application, nm: &str, s, r, sz, per| {
            app.add_message(nm, s, &[r], sz, per);
        };
        m(&mut app, &format!("{n}_m0"), s0, pre0, 2, p(0));
        m(&mut app, &format!("{n}_m1"), s1, pre0, 2, p(0));
        m(&mut app, &format!("{n}_m2"), s2, pre1, 4, p(1));
        m(&mut app, &format!("{n}_m3"), pre0, fus, 6, p(0));
        m(&mut app, &format!("{n}_m4"), pre1, fus, 6, p(1));
        m(&mut app, &format!("{n}_m5"), fus, ctl0, 8, p(0));
        m(&mut app, &format!("{n}_m6"), fus, ctl1, 8, p(1));
        m(&mut app, &format!("{n}_m7"), ctl0, post0, 4, p(0));
        m(&mut app, &format!("{n}_m8"), ctl1, post1, 4, p(1));
        m(&mut app, &format!("{n}_m9"), post0, act0, 2, p(0));
        m(&mut app, &format!("{n}_m10"), post1, act1, 2, p(1));
    }

    // Application 3 (bus 2): 11 tasks, 11 messages (convergent actuation).
    {
        let mut ctx = Ctx {
            app: &mut app,
            pending: &mut pending_mappings,
            rng: &mut rng,
        };
        let ecus = &ecus_by_bus[2];
        let sensors = &sensors_by_bus[2];
        let acts = &actuators_by_bus[2];
        let s0 = ctx.fixed_task("a2_sense0", sensors[0]);
        let s1 = ctx.fixed_task("a2_sense1", sensors[1]);
        let s2 = ctx.fixed_task("a2_sense2", sensors[2]);
        let pre0 = ctx.proc_task("a2_pre0", ecus);
        let pre1 = ctx.proc_task("a2_pre1", ecus);
        let fus = ctx.proc_task("a2_fusion", ecus);
        let ctl0 = ctx.proc_task("a2_ctl0", ecus);
        let ctl1 = ctx.proc_task("a2_ctl1", ecus);
        let post0 = ctx.proc_task("a2_post0", ecus);
        let post1 = ctx.proc_task("a2_post1", ecus);
        let act = ctx.fixed_task("a2_act0", acts[0]);
        app_tasks.push(vec![s0, s1, s2, pre0, pre1, fus, ctl0, ctl1, post0, post1, act]);
        app.add_message("a2_m0", s0, &[pre0], 2, 20_000);
        app.add_message("a2_m1", s1, &[pre0], 2, 20_000);
        app.add_message("a2_m2", s2, &[pre1], 4, 50_000);
        app.add_message("a2_m3", pre0, &[fus], 6, 20_000);
        app.add_message("a2_m4", pre1, &[fus], 6, 50_000);
        app.add_message("a2_m5", fus, &[ctl0], 8, 20_000);
        app.add_message("a2_m6", fus, &[ctl1], 8, 50_000);
        app.add_message("a2_m7", ctl0, &[post0], 4, 20_000);
        app.add_message("a2_m8", ctl1, &[post1], 4, 50_000);
        app.add_message("a2_m9", post0, &[act], 2, 20_000);
        app.add_message("a2_m10", post1, &[act], 2, 50_000);
    }

    // Application 4: cross-domain, 10 tasks, 8 messages, one multicast.
    {
        let mut ctx = Ctx {
            app: &mut app,
            pending: &mut pending_mappings,
            rng: &mut rng,
        };
        // Processing pool: ECUs of bus 0 and bus 1 plus the gateway.
        let mut pool: Vec<ResourceId> = Vec::new();
        pool.extend(&ecus_by_bus[0]);
        pool.extend(&ecus_by_bus[1]);
        pool.push(gateway);
        let s0 = ctx.fixed_task("a3_sense0", sensors_by_bus[0][0]);
        let s1 = ctx.fixed_task("a3_sense1", sensors_by_bus[1][0]);
        let p0 = ctx.proc_task("a3_pre0", &ecus_by_bus[0].clone());
        let p1 = ctx.proc_task("a3_pre1", &ecus_by_bus[1].clone());
        let fus = ctx.proc_task("a3_fusion", &pool);
        let c0 = ctx.proc_task("a3_ctl0", &pool);
        let mon = ctx.proc_task("a3_monitor", &pool);
        let c1 = ctx.proc_task("a3_ctl1", &pool);
        let a0 = ctx.fixed_task("a3_act0", actuators_by_bus[0][0]);
        let a1 = ctx.fixed_task("a3_act1", actuators_by_bus[1][0]);
        app_tasks.push(vec![s0, s1, p0, p1, fus, c0, mon, c1, a0, a1]);
        app.add_message("a3_m0", s0, &[p0], 4, 10_000);
        app.add_message("a3_m1", s1, &[p1], 4, 10_000);
        app.add_message("a3_m2", p0, &[fus], 8, 10_000);
        app.add_message("a3_m3", p1, &[fus], 8, 10_000);
        app.add_message("a3_m4", fus, &[c0, mon], 8, 10_000); // multicast
        app.add_message("a3_m5", c0, &[c1], 6, 10_000);
        app.add_message("a3_m6", c1, &[a0], 2, 10_000);
        app.add_message("a3_m7", c1, &[a1], 2, 10_000);
    }

    let mut spec = Specification::new(app, arch);
    for (t, opts) in pending_mappings {
        for r in opts {
            spec.add_mapping(t, r);
        }
    }
    // The deterministic generator always yields a valid specification;
    // checked in debug builds and re-asserted by the crate's tests.
    debug_assert!(
        spec.validate().is_ok(),
        "generated case study is valid: {:?}",
        spec.validate()
    );

    CaseStudy {
        spec,
        gateway,
        buses,
        ecus_by_bus,
        app_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ResourceKind;

    #[test]
    fn paper_counts() {
        let cs = paper_case_study();
        let app = &cs.spec.application;
        let arch = &cs.spec.architecture;
        assert_eq!(app.num_tasks(), 45, "paper: 45 tasks");
        assert_eq!(app.num_messages(), 41, "paper: 41 messages");
        assert_eq!(cs.app_tasks.len(), 4, "paper: 4 applications");
        assert_eq!(arch.of_kind(ResourceKind::Ecu).count(), 15);
        assert_eq!(arch.of_kind(ResourceKind::Sensor).count(), 9);
        assert_eq!(arch.of_kind(ResourceKind::Actuator).count(), 5);
        assert_eq!(arch.of_kind(ResourceKind::CanBus).count(), 3);
        assert_eq!(arch.of_kind(ResourceKind::Gateway).count(), 1);
    }

    #[test]
    fn deterministic() {
        let a = paper_case_study();
        let b = paper_case_study();
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn every_task_mappable() {
        let cs = paper_case_study();
        for t in cs.spec.application.task_ids() {
            assert!(
                !cs.spec.mapping_options(t).is_empty(),
                "task {t} has no mapping option"
            );
        }
    }

    #[test]
    fn processing_tasks_have_choices() {
        let cs = paper_case_study();
        let multi = cs
            .spec
            .application
            .task_ids()
            .filter(|&t| cs.spec.mapping_options(t).len() >= 2)
            .count();
        // All 22 processing tasks have at least two options.
        assert!(multi >= 20, "{multi} tasks with choices");
    }

    #[test]
    fn architecture_is_connected() {
        let cs = paper_case_study();
        let arch = &cs.spec.architecture;
        let first = arch.resource_ids().next().unwrap();
        for r in arch.resource_ids() {
            assert!(arch.hop_distance(first, r).is_some(), "{r} unreachable");
        }
        // Longest path: node on bus i -> bus i -> gateway -> bus j -> node.
        assert_eq!(arch.diameter(), 4);
    }

    #[test]
    fn bus_of_every_ecu_resolves() {
        let cs = paper_case_study();
        for ecu in cs.ecus() {
            let bus = cs.bus_of(ecu).expect("every ECU sits on a bus");
            assert!(cs.buses.contains(&bus));
            assert!(cs.spec.architecture.connected(ecu, bus));
        }
        // A non-ECU resource (the gateway) resolves to no bus.
        assert_eq!(cs.bus_of(cs.gateway), None);
    }

    #[test]
    fn multicast_message_exists() {
        let cs = paper_case_study();
        let app = &cs.spec.application;
        assert!(app
            .message_ids()
            .any(|m| app.message(m).receivers.len() == 2));
    }

    #[test]
    fn custom_config_scales() {
        let cfg = CaseStudyConfig {
            ecus_per_bus: [2, 2, 2],
            ..CaseStudyConfig::default()
        };
        let cs = build_case_study(&cfg);
        assert_eq!(
            cs.spec
                .architecture
                .of_kind(ResourceKind::Ecu)
                .count(),
            6
        );
        assert_eq!(cs.spec.application.num_tasks(), 45);
    }
}
