//! The architecture graph `g_A = (R, E_A)`: available resources and their
//! interconnect.

use std::fmt;

use crate::ids::ResourceId;

/// Kind of a resource vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Electronic control unit — executes tasks; may support BIST.
    Ecu,
    /// The central gateway: interconnects buses, stores shared test data,
    /// hosts the fail-data collection task.
    Gateway,
    /// Smart sensor node.
    Sensor,
    /// Smart actuator node.
    Actuator,
    /// CAN field bus (communication-only resource).
    CanBus,
}

impl ResourceKind {
    /// Whether tasks can be bound to this resource (everything except a
    /// bus).
    pub fn is_computational(self) -> bool {
        !matches!(self, ResourceKind::CanBus)
    }
}

/// A resource vertex with its cost attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Human-readable name.
    pub name: String,
    /// Kind of resource.
    pub kind: ResourceKind,
    /// Base monetary cost of allocating the resource (virtual cost units).
    pub cost: f64,
    /// Cost per byte of permanent memory placed on this resource (the
    /// encoded test data storage of the paper's cost objective).
    pub memory_cost_per_byte: f64,
    /// Whether the ECU variant has BIST support (only meaningful for ECUs;
    /// BIST-capable variants may carry a higher base cost).
    pub bist_capable: bool,
}

/// The architecture graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Architecture {
    resources: Vec<Resource>,
    adjacency: Vec<Vec<ResourceId>>,
}

impl Architecture {
    /// Creates an empty architecture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource and returns its id.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId::from_index(self.resources.len());
        self.resources.push(resource);
        self.adjacency.push(Vec::new());
        id
    }

    /// Connects two resources bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if an id is unknown, `a == b`, or the edge already exists.
    pub fn connect(&mut self, a: ResourceId, b: ResourceId) {
        assert!(a.index() < self.resources.len(), "unknown resource {a}");
        assert!(b.index() < self.resources.len(), "unknown resource {b}");
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            !self.adjacency[a.index()].contains(&b),
            "edge {a}-{b} already exists"
        );
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
    }

    /// Resource lookup.
    #[inline]
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Number of resources.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Neighbours of a resource.
    #[inline]
    pub fn neighbors(&self, id: ResourceId) -> &[ResourceId] {
        &self.adjacency[id.index()]
    }

    /// Whether `a` and `b` are directly connected.
    pub fn connected(&self, a: ResourceId, b: ResourceId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Iterator over all resource ids.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.resources.len()).map(ResourceId::from_index)
    }

    /// Ids of resources of the given kind.
    pub fn of_kind(&self, kind: ResourceKind) -> impl Iterator<Item = ResourceId> + '_ {
        self.resource_ids()
            .filter(move |&r| self.resource(r).kind == kind)
    }

    /// Shortest hop distance between two resources (`None` if unreachable).
    pub fn hop_distance(&self, from: ResourceId, to: ResourceId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.resources.len()];
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(r) = queue.pop_front() {
            for &n in self.neighbors(r) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = dist[r.index()] + 1;
                    if n == to {
                        return Some(dist[n.index()]);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Diameter of the graph (longest shortest path), useful for sizing the
    /// time-indexed routing encoding `T` of the DSE.
    pub fn diameter(&self) -> u32 {
        let mut best = 0;
        for a in self.resource_ids() {
            for b in self.resource_ids() {
                if let Some(d) = self.hop_distance(a, b) {
                    best = best.max(d);
                }
            }
        }
        best
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = |k: ResourceKind| self.of_kind(k).count();
        write!(
            f,
            "architecture: {} ECUs, {} sensors, {} actuators, {} buses, {} gateways",
            count(ResourceKind::Ecu),
            count(ResourceKind::Sensor),
            count(ResourceKind::Actuator),
            count(ResourceKind::CanBus),
            count(ResourceKind::Gateway)
        )
    }
}

/// Convenience constructor for a [`Resource`].
pub fn resource(name: &str, kind: ResourceKind, cost: f64) -> Resource {
    Resource {
        name: name.to_owned(),
        kind,
        cost,
        memory_cost_per_byte: 0.0,
        bist_capable: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Architecture, ResourceId, ResourceId, ResourceId) {
        let mut a = Architecture::new();
        let e1 = a.add_resource(resource("e1", ResourceKind::Ecu, 10.0));
        let bus = a.add_resource(resource("bus", ResourceKind::CanBus, 5.0));
        let e2 = a.add_resource(resource("e2", ResourceKind::Ecu, 12.0));
        a.connect(e1, bus);
        a.connect(bus, e2);
        (a, e1, bus, e2)
    }

    #[test]
    fn connectivity() {
        let (a, e1, bus, e2) = tiny();
        assert!(a.connected(e1, bus));
        assert!(a.connected(bus, e1));
        assert!(!a.connected(e1, e2));
        assert_eq!(a.hop_distance(e1, e2), Some(2));
        assert_eq!(a.diameter(), 2);
    }

    #[test]
    fn kind_filters() {
        let (a, ..) = tiny();
        assert_eq!(a.of_kind(ResourceKind::Ecu).count(), 2);
        assert_eq!(a.of_kind(ResourceKind::CanBus).count(), 1);
        assert!(ResourceKind::Ecu.is_computational());
        assert!(!ResourceKind::CanBus.is_computational());
    }

    #[test]
    fn unreachable_distance() {
        let mut a = Architecture::new();
        let x = a.add_resource(resource("x", ResourceKind::Ecu, 1.0));
        let y = a.add_resource(resource("y", ResourceKind::Ecu, 1.0));
        assert_eq!(a.hop_distance(x, y), None);
        assert_eq!(a.hop_distance(x, x), Some(0));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_edge_rejected() {
        let (mut a, e1, bus, _) = tiny();
        a.connect(e1, bus);
    }

    #[test]
    fn display_counts() {
        let (a, ..) = tiny();
        assert!(a.to_string().contains("2 ECUs"));
    }
}
