//! Graphviz (dot) export of specifications and implementations — the
//! visual counterparts of the paper's Figs. 3 and 4.

use std::fmt::Write as _;

use crate::arch::ResourceKind;
use crate::ids::ResourceId;
use crate::spec::{Implementation, Specification};

fn sanitize(name: &str) -> String {
    name.replace(['"', '\\'], "_")
}

fn resource_attrs(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Ecu => "shape=box,style=filled,fillcolor=lightblue",
        ResourceKind::Gateway => "shape=box3d,style=filled,fillcolor=gold",
        ResourceKind::Sensor => "shape=ellipse,style=filled,fillcolor=palegreen",
        ResourceKind::Actuator => "shape=ellipse,style=filled,fillcolor=salmon",
        ResourceKind::CanBus => "shape=hexagon,style=filled,fillcolor=lightgrey",
    }
}

/// Renders the architecture graph `g_A` as Graphviz dot.
pub fn architecture_dot(spec: &Specification) -> String {
    let arch = &spec.architecture;
    let mut out = String::from("graph architecture {\n  layout=neato;\n");
    for r in arch.resource_ids() {
        let res = arch.resource(r);
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\ncost {:.0}\",{}];",
            r.index(),
            sanitize(&res.name),
            res.cost,
            resource_attrs(res.kind)
        );
    }
    for a in arch.resource_ids() {
        for &b in arch.neighbors(a) {
            if a < b {
                let _ = writeln!(out, "  {} -- {};", a.index(), b.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the application graph `g_T` (tasks and message vertices) as
/// Graphviz dot. Diagnostic tasks are drawn dashed, as in the paper's
/// Fig. 3.
pub fn application_dot(spec: &Specification) -> String {
    let app = &spec.application;
    let mut out = String::from("digraph application {\n  rankdir=LR;\n");
    for t in app.task_ids() {
        let task = app.task(t);
        let style = if task.kind.is_diagnostic() {
            "shape=box,style=dashed"
        } else {
            "shape=box"
        };
        let _ = writeln!(
            out,
            "  t{} [label=\"{}\",{}];",
            t.index(),
            sanitize(&task.name),
            style
        );
    }
    for m in app.message_ids() {
        let msg = app.message(m);
        let _ = writeln!(
            out,
            "  c{} [label=\"{}\\n{}B @{}ms\",shape=circle,fontsize=9];",
            m.index(),
            sanitize(&msg.name),
            msg.size_bytes,
            msg.period_us / 1000
        );
        let _ = writeln!(out, "  t{} -> c{};", msg.sender.index(), m.index());
        for r in &msg.receivers {
            let _ = writeln!(out, "  c{} -> t{};", m.index(), r.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an implementation: allocated resources with their bound tasks,
/// plus the message routes.
pub fn implementation_dot(spec: &Specification, x: &Implementation) -> String {
    let arch = &spec.architecture;
    let app = &spec.application;
    let mut out = String::from("graph implementation {\n");
    for r in arch.resource_ids() {
        if !x.allocation.contains(&r) {
            continue;
        }
        let res = arch.resource(r);
        let tasks: Vec<String> = x
            .tasks_on(r)
            .map(|t| sanitize(&app.task(t).name))
            .collect();
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}\",{}];",
            r.index(),
            sanitize(&res.name),
            tasks.join("\\n"),
            resource_attrs(res.kind)
        );
    }
    let allocated = |r: ResourceId| x.allocation.contains(&r);
    for a in arch.resource_ids() {
        for &b in arch.neighbors(a) {
            if a < b && allocated(a) && allocated(b) {
                let _ = writeln!(out, "  {} -- {};", a.index(), b.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::paper_case_study;

    #[test]
    fn architecture_dot_lists_all_resources() {
        let cs = paper_case_study();
        let dot = architecture_dot(&cs.spec);
        assert!(dot.starts_with("graph architecture {"));
        assert!(dot.ends_with("}\n"));
        for r in cs.spec.architecture.resource_ids() {
            assert!(dot.contains(&cs.spec.architecture.resource(r).name));
        }
        // 24 resources -> 24 node lines; edges between gateway/buses/leaves.
        assert!(dot.matches(" -- ").count() >= 23);
    }

    #[test]
    fn application_dot_draws_tasks_and_messages() {
        let cs = paper_case_study();
        let dot = application_dot(&cs.spec);
        assert_eq!(dot.matches("shape=circle").count(), 41);
        assert!(dot.contains("a0_fusion"));
        // Functional tasks are not dashed.
        assert!(!dot.contains("style=dashed"));
    }

    #[test]
    fn implementation_dot_only_allocated() {
        let cs = paper_case_study();
        let spec = &cs.spec;
        let mut x = Implementation::new();
        // Bind one task somewhere legal.
        let t = spec
            .application
            .task_ids()
            .find(|&t| !spec.mapping_options(t).is_empty())
            .expect("some task");
        x.bind(t, spec.mapping_options(t)[0]);
        let dot = implementation_dot(spec, &x);
        // Exactly one node (the bound resource), no edges.
        assert_eq!(dot.matches("label=").count(), 1);
        assert_eq!(dot.matches(" -- ").count(), 0);
    }
}
