//! Holistic E/E-architecture system model.
//!
//! Implements the graph-based specification `g_S(g_T, g_A, M)` of the paper
//! (Section III-A, following Lukasiewycz et al. DATE'09):
//!
//! * [`Application`] — the bipartite application graph `g_T = (T ∪ C, E_T)`
//!   of task and message vertices, with functional (`F`) and diagnostic
//!   (`D`) task kinds,
//! * [`Architecture`] — the architecture graph `g_A = (R, E_A)` of ECUs,
//!   sensors, actuators, CAN buses and the central gateway,
//! * [`Specification`] — both graphs plus the mapping edges `M ⊆ T × R`,
//! * [`Implementation`] — a solution `x = (A, B, W)` with allocation,
//!   binding and routing, and structural validation,
//! * [`paper_case_study`] — the paper's industrial case study (45 tasks,
//!   41 messages, 4 applications, 15 ECUs, 9 sensors, 5 actuators, 3 CAN
//!   buses), rebuilt deterministically.
//!
//! # Example
//!
//! ```
//! use eea_model::paper_case_study;
//!
//! let cs = paper_case_study();
//! assert_eq!(cs.spec.application.num_tasks(), 45);
//! assert_eq!(cs.spec.application.num_messages(), 41);
//! assert_eq!(cs.ecus().len(), 15);
//! ```

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod app;
mod arch;
mod case_study;
pub mod dot;
mod ids;
mod spec;

pub use app::{Application, DiagRole, Message, Task, TaskKind};
pub use arch::{resource, Architecture, Resource, ResourceKind};
pub use case_study::{build_case_study, paper_case_study, CaseStudy, CaseStudyConfig};
pub use ids::{MessageId, ResourceId, TaskId};
pub use spec::{Implementation, Specification, ValidateError};
