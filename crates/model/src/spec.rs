//! The graph-based specification `g_S(g_T, g_A, M)` and implementation
//! `x = (A, B, W)` of the paper (following Lukasiewycz et al., DATE'09).

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::app::Application;
use crate::arch::Architecture;
use crate::ids::{MessageId, ResourceId, TaskId};

/// A complete design-space-exploration specification: application graph,
/// architecture graph, and the mapping edges `M ⊆ T × R`.
#[derive(Debug, Clone, PartialEq)]
pub struct Specification {
    /// The application graph `g_T`.
    pub application: Application,
    /// The architecture graph `g_A`.
    pub architecture: Architecture,
    /// Mapping options: `mappings[t]` lists the resources task `t` may be
    /// bound to.
    mappings: Vec<Vec<ResourceId>>,
}

/// Validation error of a [`Specification`] or [`Implementation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A functional task has no mapping option.
    UnmappableTask(TaskId),
    /// A mapping targets a non-computational resource (e.g. a bus).
    MapToBus(TaskId, ResourceId),
    /// A task in the implementation is bound to a resource that is not
    /// among its mapping options.
    IllegalBinding(TaskId, ResourceId),
    /// A mandatory (functional) task is unbound.
    UnboundTask(TaskId),
    /// A message of two bound endpoint tasks has no route.
    UnroutedMessage(MessageId),
    /// A message route is not a connected path over architecture edges
    /// containing sender and all receivers.
    BrokenRoute(MessageId),
    /// A bound task's resource is missing from the allocation.
    AllocationMissing(ResourceId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnmappableTask(t) => write!(f, "task {t} has no mapping option"),
            ValidateError::MapToBus(t, r) => {
                write!(f, "task {t} may not map to communication resource {r}")
            }
            ValidateError::IllegalBinding(t, r) => {
                write!(f, "task {t} bound to {r} which is not a mapping option")
            }
            ValidateError::UnboundTask(t) => write!(f, "mandatory task {t} is unbound"),
            ValidateError::UnroutedMessage(m) => write!(f, "message {m} has no route"),
            ValidateError::BrokenRoute(m) => write!(f, "message {m} has a disconnected route"),
            ValidateError::AllocationMissing(r) => {
                write!(f, "resource {r} is used but not allocated")
            }
        }
    }
}

impl Error for ValidateError {}

impl Specification {
    /// Creates a specification without mapping options (add them with
    /// [`add_mapping`](Self::add_mapping)).
    pub fn new(application: Application, architecture: Architecture) -> Self {
        let n = application.num_tasks();
        Specification {
            application,
            architecture,
            mappings: vec![Vec::new(); n],
        }
    }

    /// Adds a mapping option `m = (t, r)`.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range or the option already exists.
    pub fn add_mapping(&mut self, task: TaskId, resource: ResourceId) {
        assert!(task.index() < self.application.num_tasks(), "unknown {task}");
        assert!(
            resource.index() < self.architecture.num_resources(),
            "unknown {resource}"
        );
        // The application graph is a public field and may have grown since
        // construction; keep the mapping table in sync.
        if self.mappings.len() < self.application.num_tasks() {
            self.mappings.resize(self.application.num_tasks(), Vec::new());
        }
        let opts = &mut self.mappings[task.index()];
        assert!(
            !opts.contains(&resource),
            "mapping ({task}, {resource}) already exists"
        );
        opts.push(resource);
    }

    /// Mapping options of a task.
    #[inline]
    pub fn mapping_options(&self, task: TaskId) -> &[ResourceId] {
        self.mappings
            .get(task.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of mapping edges `|M|`.
    pub fn num_mappings(&self) -> usize {
        self.mappings.iter().map(Vec::len).sum()
    }

    /// Validates the static structure: every functional task has at least
    /// one mapping option and no option targets a bus.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for t in self.application.task_ids() {
            let opts = self.mapping_options(t);
            if !self.application.task(t).kind.is_diagnostic() && opts.is_empty() {
                return Err(ValidateError::UnmappableTask(t));
            }
            for &r in opts {
                if !self.architecture.resource(r).kind.is_computational() {
                    return Err(ValidateError::MapToBus(t, r));
                }
            }
        }
        Ok(())
    }

    /// Validates an implementation against this specification:
    /// all functional tasks bound, bindings legal, every message between
    /// bound endpoints routed over a connected path, allocation consistent.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate_implementation(&self, x: &Implementation) -> Result<(), ValidateError> {
        for t in self.application.task_ids() {
            let diag = self.application.task(t).kind.is_diagnostic();
            match x.binding.get(&t) {
                None if !diag => return Err(ValidateError::UnboundTask(t)),
                None => {}
                Some(&r) => {
                    if !self.mapping_options(t).contains(&r) {
                        return Err(ValidateError::IllegalBinding(t, r));
                    }
                    if !x.allocation.contains(&r) {
                        return Err(ValidateError::AllocationMissing(r));
                    }
                }
            }
        }
        for m in self.application.message_ids() {
            let msg = self.application.message(m);
            let sender_bound = x.binding.get(&msg.sender);
            // A message is active iff its sender is bound.
            let Some(&src) = sender_bound else { continue };
            let route = match x.routing.get(&m) {
                Some(r) if !r.is_empty() => r,
                _ => return Err(ValidateError::UnroutedMessage(m)),
            };
            // The route is a resource set (a routing tree for multicast):
            // it must contain the sender's resource, be connected as a
            // subgraph, and contain every bound receiver's resource.
            if !route.contains(&src) {
                return Err(ValidateError::BrokenRoute(m));
            }
            let mut reach: Vec<ResourceId> = vec![src];
            let mut seen: std::collections::BTreeSet<ResourceId> =
                std::iter::once(src).collect();
            while let Some(r) = reach.pop() {
                for &n in self.architecture.neighbors(r) {
                    if route.contains(&n) && seen.insert(n) {
                        reach.push(n);
                    }
                }
            }
            if seen.len() != route.iter().collect::<std::collections::BTreeSet<_>>().len() {
                return Err(ValidateError::BrokenRoute(m));
            }
            for rec in &msg.receivers {
                if let Some(&dst) = x.binding.get(rec) {
                    if !route.contains(&dst) {
                        return Err(ValidateError::BrokenRoute(m));
                    }
                }
            }
            for r in route {
                if !x.allocation.contains(r) {
                    return Err(ValidateError::AllocationMissing(*r));
                }
            }
        }
        Ok(())
    }
}

/// An implementation `x = (A, B, W)`: allocation, binding and routing.
///
/// A route `W_c` is the *set* of resources a message is routed over (the
/// paper's formulation); for multicast it forms a routing tree. Validation
/// checks that the set contains the sender's resource, is connected in the
/// architecture graph, and covers every bound receiver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Implementation {
    /// Allocated resources `A ⊆ R`.
    pub allocation: BTreeSet<ResourceId>,
    /// Task bindings `B ⊆ M` (one resource per bound task).
    pub binding: BTreeMap<TaskId, ResourceId>,
    /// Message routes `W` (resource sequence per active message).
    pub routing: BTreeMap<MessageId, Vec<ResourceId>>,
}

impl Implementation {
    /// Creates an empty implementation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a task, allocating the resource implicitly.
    pub fn bind(&mut self, task: TaskId, resource: ResourceId) {
        self.binding.insert(task, resource);
        self.allocation.insert(resource);
    }

    /// Sets a message route, allocating all hops implicitly.
    pub fn route(&mut self, message: MessageId, path: Vec<ResourceId>) {
        for &r in &path {
            self.allocation.insert(r);
        }
        self.routing.insert(message, path);
    }

    /// The resource a task is bound to, if any.
    pub fn binding_of(&self, task: TaskId) -> Option<ResourceId> {
        self.binding.get(&task).copied()
    }

    /// Tasks bound to `resource`.
    pub fn tasks_on(&self, resource: ResourceId) -> impl Iterator<Item = TaskId> + '_ {
        self.binding
            .iter()
            .filter(move |&(_, &r)| r == resource)
            .map(|(&t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TaskKind;
    use crate::arch::{resource, ResourceKind};

    fn spec() -> (Specification, TaskId, TaskId, MessageId, ResourceId, ResourceId, ResourceId) {
        let mut app = Application::new();
        let s = app.add_task("send", TaskKind::Functional);
        let t = app.add_task("recv", TaskKind::Functional);
        let m = app.add_message("m", s, &[t], 4, 10_000);
        let mut arch = Architecture::new();
        let e1 = arch.add_resource(resource("e1", ResourceKind::Ecu, 10.0));
        let bus = arch.add_resource(resource("bus", ResourceKind::CanBus, 5.0));
        let e2 = arch.add_resource(resource("e2", ResourceKind::Ecu, 10.0));
        arch.connect(e1, bus);
        arch.connect(bus, e2);
        let mut spec = Specification::new(app, arch);
        spec.add_mapping(s, e1);
        spec.add_mapping(t, e2);
        (spec, s, t, m, e1, bus, e2)
    }

    #[test]
    fn valid_implementation_passes() {
        let (spec, s, t, m, e1, bus, e2) = spec();
        spec.validate().unwrap();
        let mut x = Implementation::new();
        x.bind(s, e1);
        x.bind(t, e2);
        x.route(m, vec![e1, bus, e2]);
        spec.validate_implementation(&x).unwrap();
        assert_eq!(x.binding_of(s), Some(e1));
        assert_eq!(x.tasks_on(e1).count(), 1);
    }

    #[test]
    fn detects_unbound_task() {
        let (spec, s, _, _, e1, ..) = spec();
        let mut x = Implementation::new();
        x.bind(s, e1);
        assert!(matches!(
            spec.validate_implementation(&x),
            Err(ValidateError::UnboundTask(_))
        ));
    }

    #[test]
    fn detects_unrouted_message() {
        let (spec, s, t, _, e1, _, e2) = spec();
        let mut x = Implementation::new();
        x.bind(s, e1);
        x.bind(t, e2);
        assert_eq!(
            spec.validate_implementation(&x),
            Err(ValidateError::UnroutedMessage(MessageId::from_index(0)))
        );
    }

    #[test]
    fn detects_broken_route() {
        let (spec, s, t, m, e1, _, e2) = spec();
        let mut x = Implementation::new();
        x.bind(s, e1);
        x.bind(t, e2);
        x.route(m, vec![e1, e2]); // not adjacent
        assert_eq!(
            spec.validate_implementation(&x),
            Err(ValidateError::BrokenRoute(m))
        );
    }

    #[test]
    fn detects_illegal_binding() {
        let (spec, s, t, m, e1, bus, e2) = spec();
        let mut x = Implementation::new();
        x.bind(s, e2); // e2 is not a mapping option of s
        x.bind(t, e2);
        x.route(m, vec![e2]);
        assert!(matches!(
            spec.validate_implementation(&x),
            Err(ValidateError::IllegalBinding(..))
        ));
        let _ = (e1, bus);
    }

    #[test]
    fn spec_validation_catches_bus_mapping() {
        let (mut spec, s, ..) = spec();
        let bus = spec
            .architecture
            .of_kind(ResourceKind::CanBus)
            .next()
            .unwrap();
        spec.add_mapping(s, bus);
        assert!(matches!(
            spec.validate(),
            Err(ValidateError::MapToBus(..))
        ));
    }

    #[test]
    fn num_mappings_counts_edges() {
        let (spec, ..) = spec();
        assert_eq!(spec.num_mappings(), 2);
    }
}
