// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # eea-fleet — deterministic fleet-scale diagnosis campaign engine
//!
//! End-to-end simulation of the diagnosis lifecycle the paper motivates
//! but never scales: a vehicle **fleet** whose E/E-architectures carry the
//! BIST infrastructure selected by the design-space exploration, running
//! sessions in shut-off windows, streaming fail data over mirrored CAN
//! schedules, and converging on fault candidates at a central gateway.
//!
//! The pipeline (DESIGN.md §8):
//!
//! 1. [`CutModel`] — the shared circuit-under-test: golden session, per-
//!    collapsed-fault fail data (computed through
//!    [`eea_bist::ResumableRun`], the shut-off discipline in miniature)
//!    and the diagnosis dictionary, all precomputed once,
//! 2. [`blueprints_from_front`] — Pareto-front implementations flattened
//!    into per-vehicle session plans with *constructed* mirror schedules
//!    (Eq. (1) transfer and upload bandwidth from
//!    [`eea_can::mirror_messages_auto`], not assumed);
//!    [`blueprints_from_front_with`] re-prices the same plans over any
//!    [`Transport`](eea_can::Transport) backend (classic mirrored CAN,
//!    CAN FD, FlexRay static slots — DESIGN.md §9),
//! 3. [`ShutoffModel`] — per-vehicle driving/parked alternation,
//! 4. [`Campaign`] — seeded fleet generation and the **streaming, sharded
//!    pipeline** (DESIGN.md §10): worker threads fold contiguous
//!    vehicle-index blocks straight into [`FleetShards`] (simulation
//!    fused with pre-aggregation, peak memory O(detections + shards)),
//!    per-shard sorted upload runs k-way merge deterministically, and
//!    the diagnosis stage shards the pure per-fault dictionary lookups,
//! 5. [`FleetReport`] — detection-latency distribution, per-ECU candidate
//!    rankings, campaign coverage over time; bit-identical at any thread
//!    count *and* any shard count,
//! 6. [`GatewayService`] — the long-lived ingest face of the same engine
//!    (DESIGN.md §12): vehicles upload [`VehicleArrival`]s over simulated
//!    wall-clock time through a bounded queue (typed
//!    [`FleetError::Overloaded`] shed policy), arrivals fold
//!    incrementally, and [`GatewayService::snapshot_at`] yields a
//!    point-in-time [`GatewaySnapshot`] mid-campaign — bit-identical
//!    regardless of arrival interleaving. [`Campaign::run`] is a thin
//!    wrapper over feed-everything-then-snapshot.
//!
//! # Example
//!
//! ```
//! use eea_fleet::{
//!     blueprints_from_front, Campaign, CampaignConfig, CutConfig, CutModel,
//! };
//!
//! # fn main() -> Result<(), eea_dse::EeaError> {
//! let cut = CutModel::build(CutConfig::default())?;
//! let case = eea_model::paper_case_study();
//! let diag = eea_dse::augment::augment(&case, &eea_bist::paper_table1()[..4])?;
//! let mut dse = eea_dse::explore::DseConfig::default();
//! dse.nsga2.population = 16;
//! dse.nsga2.evaluations = 160;
//! let front = eea_dse::explore::explore(&diag, &dse, |_, _| {}).front;
//! let blueprints = blueprints_from_front(&diag, &front)?;
//!
//! let mut cfg = CampaignConfig::default();
//! cfg.vehicles = 100;
//! cfg.threads = 1;
//! let report = Campaign::new(&cut, &blueprints, cfg)?.run();
//! assert_eq!(report.vehicles, 100);
//! # Ok(())
//! # }
//! ```

mod blueprint;
mod campaign;
mod cut;
mod error;
mod gateway;
mod report;
mod shutoff;
mod vehicle;

pub use blueprint::{
    blueprints_from_front, blueprints_from_front_configured, blueprints_from_front_with,
    EcuSessionPlan, VehicleBlueprint,
};
// The CUT-family axis (logic vs SRAM March test) and the in-ECU schedule
// axis are part of the campaign surface; re-exported so drivers need not
// name `eea_bist`/`eea_sched`.
pub use eea_bist::{CutFamily, MarchTest, SramConfig};
pub use eea_sched::{
    FlatBudget, PeriodicTask, SchedError, SchedPlan, SporadicTask, TaskSchedule, TaskSetConfig,
    WindowSource,
};
// The transport and channel-impairment axes are part of the blueprint
// surface; re-exported so campaign drivers need not name `eea_can`.
pub use campaign::{Arrivals, Campaign, CampaignConfig, FleetShards, StageTimings};
pub use cut::{CutConfig, CutModel};
pub use eea_can::{
    ChannelConfig, ChannelError, ChannelModel, Impairment, ImpairmentKind, NoisyChannel,
    TransportConfig, TransportError, TransportKind,
};
pub use error::{FleetError, MalformedKind};
pub use gateway::{
    GatewayConfig, GatewayService, GatewaySnapshot, VehicleArrival, DEFAULT_QUEUE_CAPACITY,
};
pub use report::{
    DefectFinding, EcuReport, FamilyReport, FleetReport, LatencyStats, RankCdfPoint,
    RobustnessReport,
};
pub use shutoff::ShutoffModel;
pub use vehicle::{DefectSeed, Upload, VehicleOutcome};
