//! The long-lived **gateway ingest service**: the streaming face of the
//! fleet campaign engine.
//!
//! Where [`Campaign::run`](crate::Campaign::run) answers "what does the
//! whole campaign look like at the horizon", a [`GatewayService`] answers
//! the production question: vehicles upload fail data over (simulated)
//! wall-clock time, the service folds arrivals incrementally, and a
//! [`FleetReport`] is a **point-in-time snapshot** queryable mid-campaign
//! via [`GatewayService::snapshot_at`]. Ingest is a real service
//! boundary: a bounded queue ([`GatewayConfig::queue_capacity`]) sheds
//! arrivals with a typed [`FleetError::Overloaded`] when full, unknown
//! vehicle indices are rejected ([`FleetError::UnknownVehicle`]), and
//! duplicate arrivals are dropped and counted — every drop is visible in
//! the snapshot's counters, nothing is silent.
//!
//! # Snapshot-under-load determinism
//!
//! The contract: **a snapshot is a pure function of the *set* of folded
//! arrivals and the snapshot time `t`** — independent of thread count,
//! shard count, queue capacity, drain cadence, and arrival interleaving.
//! Four mechanisms make the fold order-free:
//!
//! 1. **Content-based shard routing.** An upload lands in shard
//!    `vehicle % shards` — a function of the arrival, not of which worker
//!    or drain cycle folded it. Shards only bucket storage; the snapshot
//!    re-sorts globally, so even the shard count cannot show through.
//! 2. **Commutative integer census.** Defective/session/window counters
//!    are exact integer adds; per-ECU seeded counts merge into a
//!    `BTreeMap`. Integer addition commutes — arrival order is invisible.
//! 3. **A position-keyed block ledger for the one floating-point sum.**
//!    f64 addition commutes but does not associate, so `bist_time_s` is
//!    *not* folded in arrival order. Each vehicle's BIST time is parked
//!    in its slot of a [`SIM_BLOCK`]-sized block buffer; a block's sum is
//!    the left-fold over its slots **in vehicle-index order**, and the
//!    total is the left-fold over block sums **in block order** — exactly
//!    the reduction tree DESIGN.md §10 fixed for the one-shot pipeline,
//!    reproduced here arrival-order-independently. Full blocks collapse
//!    to one f64 (the open buffer is freed), so steady-state memory stays
//!    O(detections + blocks).
//! 4. **Sort-at-snapshot under a total order.** The snapshot gathers the
//!    time-filtered uploads and sorts by `(time_s, vehicle)` — a total
//!    order with unique keys (one upload per vehicle), so the globally
//!    sorted sequence equals the one-shot pipeline's k-way merge output
//!    no matter how arrivals were interleaved. Diagnosis is pure per
//!    fault index (cached across snapshots) and the final fold is the
//!    *same function* ([`fold_report`]) the one-shot path runs.
//!
//! Consequence: ingesting the whole fleet and snapshotting at the horizon
//! is bit-identical to `Campaign::run` — the frozen 100k digest in
//! `tests/fleet_frozen_report.rs` now pins both pipelines, and
//! `tests/fleet_determinism.rs` proptests snapshots across
//! interleaving × thread × shard × capacity sweeps.

use std::collections::BTreeMap;
use std::time::Instant;

use eea_bist::{CutFamily, MarchTest, FAIL_DATA_BYTES};
use eea_faultsim::resolve_threads;
use eea_model::ResourceId;

use crate::campaign::{
    diagnose_faults, fold_report, upload_order, DiagEntry, DiagKey, FleetTotals, StageTimings,
    SIM_BLOCK,
};
use crate::cut::CutModel;
use crate::error::{FleetError, MalformedKind};
use crate::report::FleetReport;
use crate::vehicle::{Upload, VehicleOutcome};

/// Default bound of the ingest queue: deep enough that the one-shot
/// wrapper's 4096-arrival feed batches never shed, small enough that a
/// stalled consumer surfaces as backpressure instead of unbounded memory.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8_192;

/// One vehicle's complete contribution to the campaign, as uploaded to
/// the gateway: the (optional) fail-data upload plus the census counters
/// the fleet report aggregates. `Copy` and a few dozen bytes — cheap to
/// batch through channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleArrival {
    /// The reporting vehicle (index into the provisioned fleet).
    pub vehicle: u32,
    /// ECU of this vehicle's seeded defect, if any.
    pub defect_ecu: Option<ResourceId>,
    /// BIST sessions the vehicle completed within the horizon.
    pub sessions_completed: u32,
    /// Shut-off windows in which its BIST made progress.
    pub windows_used: u32,
    /// Total BIST time the vehicle consumed (seconds).
    pub bist_time_s: f64,
    /// The fail-data upload, when the seeded defect was detected and the
    /// payload reached the gateway within the horizon.
    pub upload: Option<Upload>,
}

impl VehicleArrival {
    /// Packages a simulated vehicle outcome as a gateway arrival.
    pub(crate) fn from_outcome(o: &VehicleOutcome) -> Self {
        VehicleArrival {
            vehicle: o.vehicle,
            defect_ecu: o.defect.map(|d| d.ecu),
            sessions_completed: o.sessions_completed,
            windows_used: o.windows_used,
            bist_time_s: o.bist_time_s,
            upload: o.upload,
        }
    }
}

/// Configuration of a [`GatewayService`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Provisioned fleet size; arrivals must carry `vehicle < vehicles`.
    pub vehicles: u32,
    /// Campaign horizon in seconds — the coverage grid spans it and the
    /// final snapshot is taken at it.
    pub horizon_s: f64,
    /// Gateway aggregation batch size (uploads per batch) for the
    /// snapshot's batch ordinals.
    pub batch_size: usize,
    /// Ingest queue bound: once this many arrivals are pending, further
    /// [`ingest`](GatewayService::ingest) calls shed with
    /// [`FleetError::Overloaded`] until a [`drain`](GatewayService::drain).
    pub queue_capacity: usize,
    /// Storage shards uploads are routed into (`vehicle % shards`) and
    /// diagnosis-stage parallelism; `0` = auto. Snapshots are
    /// bit-identical at any value.
    pub shards: usize,
    /// Worker threads for the snapshot's diagnosis stage; `0` = auto.
    /// Snapshots are bit-identical at any value.
    pub threads: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            vehicles: 1_000,
            horizon_s: 30.0 * 86_400.0,
            batch_size: 64,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            shards: 0,
            threads: 0,
        }
    }
}

/// A point-in-time view of the campaign, produced by
/// [`GatewayService::snapshot_at`]. Wraps the [`FleetReport`] (unchanged
/// shape — the frozen digest pins it) with the service-side counters:
/// everything the ingest boundary shed, dropped or clamped is accounted
/// here, never silently.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewaySnapshot {
    /// The campaign time the report is evaluated at.
    pub at_s: f64,
    /// Arrivals folded into the service state so far (valid, non-duplicate).
    pub ingested: u64,
    /// Fail-data uploads among them.
    pub uploads_ingested: u64,
    /// Arrivals shed at the full queue ([`FleetError::Overloaded`]).
    pub shed: u64,
    /// Duplicate arrivals dropped by the ledger (a vehicle reported twice).
    pub duplicates: u64,
    /// Structurally malformed upload frames rejected at ingest
    /// ([`FleetError::MalformedUpload`]) — also surfaced as
    /// `rejected_uploads` in the report's robustness block.
    pub malformed: u64,
    /// Uploads in this snapshot's report whose fail data overflowed the
    /// bounded fail memory ([`eea_bist::FAIL_DATA_BYTES`]) — their
    /// diagnosis ran on a clamped window prefix.
    pub truncated_uploads: u64,
    /// The point-in-time fleet report: uploads with `time_s <= at_s`,
    /// census counters over everything ingested.
    pub report: FleetReport,
}

/// The long-lived gateway ingest service. See the module docs for the
/// determinism contract; see [`Campaign::gateway`](crate::Campaign::gateway)
/// for provisioning one from a campaign.
#[derive(Debug)]
pub struct GatewayService<'a> {
    cut: &'a CutModel,
    /// The SRAM CUT model for March-test uploads; `None` for pure-logic
    /// fleets (an SRAM upload then diagnoses to a typed zero entry).
    sram: Option<&'a MarchTest>,
    config: GatewayConfig,
    shard_count: usize,
    /// Pending arrivals, bounded by `config.queue_capacity`.
    queue: Vec<VehicleArrival>,
    /// Per-shard upload buckets, routed by `vehicle % shard_count`.
    /// Unsorted — the snapshot sorts globally.
    shards: Vec<Vec<Upload>>,
    /// Exact integer census counters (commutative folds).
    totals_defective: u32,
    totals_sessions: u64,
    totals_windows: u64,
    seeded: BTreeMap<ResourceId, u32>,
    /// Completed-block BIST-time sums, one per [`SIM_BLOCK`] of the fleet.
    block_sums: Vec<f64>,
    /// Per-block presence masks (bit `v % SIM_BLOCK` of block
    /// `v / SIM_BLOCK`); doubles as the duplicate detector.
    block_masks: Vec<u64>,
    /// Slot buffers of blocks still missing vehicles; freed on completion.
    open_blocks: Vec<Option<Box<[f64; SIM_BLOCK]>>>,
    /// Pure per-key diagnosis results, cached across snapshots and keyed
    /// by `(fault, impairment)` — fault indices are only unique within
    /// their CUT family, and the channel impairment changes the observed
    /// payload (every impaired key is cached alongside its clean twin).
    diag_cache: BTreeMap<DiagKey, DiagEntry>,
    ingested: u64,
    uploads_ingested: u64,
    shed: u64,
    duplicates: u64,
    /// Structurally malformed upload frames rejected at the ingest
    /// boundary ([`FleetError::MalformedUpload`]).
    malformed: u64,
}

impl<'a> GatewayService<'a> {
    /// Provisions a gateway for a fleet over the shared CUT model.
    ///
    /// # Errors
    ///
    /// * [`FleetError::EmptyFleet`] for zero vehicles,
    /// * [`FleetError::InvalidHorizon`] for a non-positive or non-finite
    ///   horizon,
    /// * [`FleetError::ZeroBatchSize`] for a zero batch size,
    /// * [`FleetError::ZeroQueueCapacity`] for a zero queue bound.
    pub fn new(cut: &'a CutModel, config: GatewayConfig) -> Result<Self, FleetError> {
        GatewayService::with_models(cut, None, config)
    }

    /// Like [`new`](Self::new), additionally wiring the March-test SRAM
    /// model so uploads of [`CutFamily::Sram`](eea_bist::CutFamily)
    /// faults diagnose against the memory dictionary.
    ///
    /// # Errors
    ///
    /// The same errors as [`new`](Self::new).
    pub fn with_models(
        cut: &'a CutModel,
        sram: Option<&'a MarchTest>,
        config: GatewayConfig,
    ) -> Result<Self, FleetError> {
        if config.vehicles == 0 {
            return Err(FleetError::EmptyFleet);
        }
        if !config.horizon_s.is_finite() || config.horizon_s <= 0.0 {
            return Err(FleetError::InvalidHorizon(config.horizon_s));
        }
        if config.batch_size == 0 {
            return Err(FleetError::ZeroBatchSize);
        }
        if config.queue_capacity == 0 {
            return Err(FleetError::ZeroQueueCapacity);
        }
        let shard_count = if config.shards == 0 {
            resolve_threads(config.threads)
        } else {
            config.shards
        }
        .max(1);
        let blocks = (config.vehicles as usize).div_ceil(SIM_BLOCK);
        Ok(GatewayService {
            cut,
            sram,
            shard_count,
            queue: Vec::new(),
            shards: vec![Vec::new(); shard_count],
            totals_defective: 0,
            totals_sessions: 0,
            totals_windows: 0,
            seeded: BTreeMap::new(),
            block_sums: vec![0.0; blocks],
            block_masks: vec![0; blocks],
            open_blocks: (0..blocks).map(|_| None).collect(),
            diag_cache: BTreeMap::new(),
            ingested: 0,
            uploads_ingested: 0,
            shed: 0,
            duplicates: 0,
            malformed: 0,
            config,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Pending (ingested but not yet folded) arrivals.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The configured queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity
    }

    /// Arrivals shed at the full queue so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Arrivals folded into the service state so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Malformed upload frames rejected at the ingest boundary so far.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Enqueues one arrival. The queue is the abuse-tolerant service
    /// boundary: full queue → typed shed, out-of-range vehicle → typed
    /// rejection, structurally malformed frame → typed rejection, counted
    /// in [`malformed`](Self::malformed). Folding happens at the next
    /// [`drain`](Self::drain) (or snapshot, which drains first).
    ///
    /// # Errors
    ///
    /// * [`FleetError::UnknownVehicle`] — `arrival.vehicle` is outside
    ///   the provisioned fleet; not counted as shed.
    /// * [`FleetError::MalformedUpload`] — the frame fails a structural
    ///   check ([`MalformedKind`]); counted in the snapshot's `malformed`
    ///   field and the report's robustness block, never folded.
    /// * [`FleetError::Overloaded`] — the queue is at capacity; counted
    ///   in [`shed`](Self::shed) and the snapshot's `shed` field.
    pub fn ingest(&mut self, arrival: VehicleArrival) -> Result<(), FleetError> {
        if arrival.vehicle >= self.config.vehicles {
            return Err(FleetError::UnknownVehicle {
                vehicle: arrival.vehicle,
                fleet: self.config.vehicles,
            });
        }
        if let Some(kind) = self.malformed_kind(&arrival) {
            self.malformed += 1;
            return Err(FleetError::MalformedUpload {
                vehicle: arrival.vehicle,
                kind,
            });
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.shed += 1;
            return Err(FleetError::Overloaded {
                capacity: self.config.queue_capacity,
            });
        }
        self.queue.push(arrival);
        Ok(())
    }

    /// Structural validation of one in-range arrival: which
    /// [`MalformedKind`] it exhibits, if any. Pure — counting and the
    /// typed rejection happen in [`ingest`](Self::ingest). Simulated
    /// arrivals always pass; only hand-built (or corrupted) frames can
    /// fail.
    fn malformed_kind(&self, a: &VehicleArrival) -> Option<MalformedKind> {
        if !a.bist_time_s.is_finite() || a.bist_time_s < 0.0 {
            return Some(MalformedKind::NonFiniteBistTime);
        }
        let Some(up) = &a.upload else {
            return None;
        };
        if up.vehicle != a.vehicle {
            return Some(MalformedKind::VehicleMismatch);
        }
        if !up.time_s.is_finite() || up.time_s < 0.0 {
            return Some(MalformedKind::NonFiniteUploadTime);
        }
        if up.fail_bytes > FAIL_DATA_BYTES {
            return Some(MalformedKind::OversizedFailData);
        }
        if !up.retransmit_s.is_finite() || up.retransmit_s < 0.0 {
            return Some(MalformedKind::NegativeRetransmit);
        }
        // The diagnosis dictionaries index by fault number; an index past
        // the family's model would panic in the snapshot stage, so it is
        // an ingest-boundary rejection. An SRAM upload without a wired
        // March model diagnoses to a typed zero entry and needs no bound.
        let faults = match up.family {
            CutFamily::Logic => Some(self.cut.num_faults()),
            CutFamily::Sram => self.sram.map(MarchTest::num_faults),
        };
        if let Some(n) = faults {
            if usize::try_from(up.fault_index).map_or(true, |i| i >= n) {
                return Some(MalformedKind::UnknownFault);
            }
        }
        None
    }

    /// The trusted-producer path: like [`ingest`](Self::ingest), but a
    /// full queue drains instead of shedding — in-process backpressure by
    /// folding now rather than dropping data.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownVehicle`] as for `ingest`; never `Overloaded`.
    pub fn accept(&mut self, arrival: VehicleArrival) -> Result<(), FleetError> {
        if self.queue.len() >= self.config.queue_capacity {
            self.drain();
        }
        self.ingest(arrival)
    }

    /// Folds every pending arrival into the service state and returns how
    /// many were folded. Duplicates (a vehicle already in the ledger) are
    /// dropped and counted, not folded.
    pub fn drain(&mut self) -> usize {
        let mut pending = std::mem::take(&mut self.queue);
        let n = pending.len();
        for arrival in pending.drain(..) {
            self.fold(arrival);
        }
        // Hand the (empty, still-allocated) buffer back: steady-state
        // drains allocate nothing.
        self.queue = pending;
        n
    }

    /// Order-free fold of one arrival; see the module docs.
    fn fold(&mut self, a: VehicleArrival) {
        let block = (a.vehicle as usize) / SIM_BLOCK;
        let slot = (a.vehicle as usize) % SIM_BLOCK;
        let bit = 1u64 << slot;
        if self.block_masks[block] & bit != 0 {
            self.duplicates += 1;
            return;
        }
        self.block_masks[block] |= bit;
        let buf = self.open_blocks[block].get_or_insert_with(|| Box::new([0.0; SIM_BLOCK]));
        buf[slot] = a.bist_time_s;
        if self.block_masks[block] == self.full_mask(block) {
            // Block complete: collapse to its canonical left-fold sum
            // (vehicle-index order) and free the slot buffer.
            if let Some(buf) = self.open_blocks[block].take() {
                let len = self.block_len(block);
                let mut sum = 0.0f64;
                for &v in buf.iter().take(len) {
                    sum += v;
                }
                self.block_sums[block] = sum;
            }
        }
        if let Some(ecu) = a.defect_ecu {
            self.totals_defective += 1;
            *self.seeded.entry(ecu).or_insert(0) += 1;
        }
        self.totals_sessions += u64::from(a.sessions_completed);
        self.totals_windows += u64::from(a.windows_used);
        if let Some(up) = a.upload {
            self.uploads_ingested += 1;
            let shard = (a.vehicle as usize) % self.shard_count;
            self.shards[shard].push(up);
        }
        self.ingested += 1;
    }

    /// Vehicles in block `block` (the last block may be partial).
    fn block_len(&self, block: usize) -> usize {
        let n = self.config.vehicles as usize;
        SIM_BLOCK.min(n - block * SIM_BLOCK)
    }

    fn full_mask(&self, block: usize) -> u64 {
        let len = self.block_len(block);
        if len >= 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        }
    }

    /// The deterministic fleet-wide BIST-time sum over everything folded
    /// so far: left-fold over block sums in block order, partial blocks
    /// folded over their present slots in vehicle-index order. For a
    /// complete census this is exactly the one-shot pipeline's reduction
    /// tree.
    fn bist_time_total(&self) -> f64 {
        let mut total = 0.0f64;
        for block in 0..self.block_sums.len() {
            if let Some(buf) = &self.open_blocks[block] {
                let mask = self.block_masks[block];
                let mut sum = 0.0f64;
                for (slot, &v) in buf.iter().enumerate().take(self.block_len(block)) {
                    if mask & (1u64 << slot) != 0 {
                        sum += v;
                    }
                }
                total += sum;
            } else {
                total += self.block_sums[block];
            }
        }
        total
    }

    /// Takes a point-in-time snapshot: drains the queue, then evaluates
    /// the fleet report over every folded upload with `time_s <= at_s`.
    /// Census counters (defective, sessions, windows, BIST time, per-ECU
    /// seeded counts) cover everything ingested — they are campaign
    /// facts, not arrival events. Pure in the folded-arrival *set* and
    /// `at_s`: bit-identical at any thread/shard/capacity/interleaving,
    /// and monotone in `at_s` for a fixed set.
    pub fn snapshot_at(&mut self, at_s: f64) -> GatewaySnapshot {
        self.snapshot_at_timed(at_s).0
    }

    /// Like [`snapshot_at`](Self::snapshot_at), with per-stage timings
    /// (merge / diagnose / fold; `simulate_s` stays 0 — simulation
    /// happens producer-side).
    pub fn snapshot_at_timed(&mut self, at_s: f64) -> (GatewaySnapshot, StageTimings) {
        self.drain();

        let t = Instant::now();
        let mut uploads: Vec<Upload> = self
            .shards
            .iter()
            .flatten()
            .filter(|u| u.time_s <= at_s)
            .copied()
            .collect();
        // Total order with unique keys (one upload per vehicle): the
        // global sort is *the* gateway-arrival order, equal to the
        // one-shot pipeline's k-way merge.
        uploads.sort_unstable_by(upload_order);
        let merge_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let missing: Vec<DiagKey> = {
            // Every impaired key drags its clean twin into the cache, so
            // the fold can price localization against the clean baseline.
            let mut m: Vec<DiagKey> = uploads
                .iter()
                .flat_map(|u| {
                    let key = DiagKey::of(u);
                    [key, key.clean_twin()]
                })
                .filter(|key| !self.diag_cache.contains_key(key))
                .collect();
            m.sort_unstable();
            m.dedup();
            m
        };
        let threads = resolve_threads(self.config.threads).max(1);
        let tl = Instant::now();
        self.diag_cache
            .extend(diagnose_faults(self.cut, self.sram, &missing, threads));
        let diagnose_lookup_s = tl.elapsed().as_secs_f64();
        let diagnose_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let totals = FleetTotals {
            defective: self.totals_defective,
            sessions_completed: self.totals_sessions,
            windows_used: self.totals_windows,
            bist_time_s: self.bist_time_total(),
            seeded: self.seeded.clone(),
            rejected_uploads: self.malformed,
        };
        // Truncation is an on-chip fact of the original payload, so the
        // precomputed per-fault bitset answers in O(1) per upload — no
        // diagnosis-cache lookup on this counting path.
        let truncated_uploads = u64::try_from(
            uploads
                .iter()
                .filter(|u| match u.family {
                    CutFamily::Logic => self.cut.fault_truncated(u.fault_index),
                    CutFamily::Sram => self
                        .sram
                        .is_some_and(|m| m.fail_data(u.fault_index).is_truncated()),
                })
                .count(),
        )
        .unwrap_or(u64::MAX);
        let report = fold_report(
            self.config.vehicles,
            self.config.batch_size,
            self.config.horizon_s,
            &uploads,
            &totals,
            &self.diag_cache,
        );
        let fold_s = t.elapsed().as_secs_f64();

        (
            GatewaySnapshot {
                at_s,
                ingested: self.ingested,
                uploads_ingested: self.uploads_ingested,
                shed: self.shed,
                duplicates: self.duplicates,
                malformed: self.malformed,
                truncated_uploads,
                report,
            },
            StageTimings {
                simulate_s: 0.0,
                merge_s,
                diagnose_s,
                fold_s,
                dict_build_s: self.cut.dict_build_seconds(),
                diagnose_lookup_s,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::EcuSessionPlan;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::cut::CutConfig;
    use crate::VehicleBlueprint;

    fn small_cut() -> CutModel {
        CutModel::build(CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        })
        .expect("substrate builds")
    }

    fn capable_blueprint() -> VehicleBlueprint {
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: eea_model::ResourceId::from_index(2),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 900.0,
                local_storage: false,
                upload_bandwidth_bytes_per_s: 200.0,
                family: eea_bist::CutFamily::Logic,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
            channel: eea_can::ChannelConfig::Clean,
            task_set: None,
        }
    }

    fn small_campaign<'a>(
        cut: &'a CutModel,
        bp: &'a [VehicleBlueprint],
        vehicles: u32,
        seed: u64,
    ) -> Campaign<'a> {
        Campaign::new(
            cut,
            bp,
            CampaignConfig {
                vehicles,
                defect_fraction: 0.3,
                horizon_s: 14.0 * 86_400.0,
                seed,
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .expect("valid campaign")
    }

    #[test]
    fn provisioning_validates_bounds() {
        let cut = small_cut();
        let bad = |f: fn(&mut GatewayConfig)| {
            let mut cfg = GatewayConfig::default();
            f(&mut cfg);
            GatewayService::new(&cut, cfg).err()
        };
        assert_eq!(bad(|c| c.vehicles = 0), Some(FleetError::EmptyFleet));
        assert_eq!(
            bad(|c| c.horizon_s = f64::NAN).map(|e| matches!(e, FleetError::InvalidHorizon(_))),
            Some(true)
        );
        assert_eq!(bad(|c| c.batch_size = 0), Some(FleetError::ZeroBatchSize));
        assert_eq!(
            bad(|c| c.queue_capacity = 0),
            Some(FleetError::ZeroQueueCapacity)
        );
    }

    #[test]
    fn unknown_vehicles_are_rejected_not_shed() {
        let cut = small_cut();
        let mut svc = GatewayService::new(
            &cut,
            GatewayConfig {
                vehicles: 4,
                ..GatewayConfig::default()
            },
        )
        .expect("provision");
        let stranger = VehicleArrival {
            vehicle: 9,
            defect_ecu: None,
            sessions_completed: 0,
            windows_used: 0,
            bist_time_s: 0.0,
            upload: None,
        };
        assert_eq!(
            svc.ingest(stranger),
            Err(FleetError::UnknownVehicle {
                vehicle: 9,
                fleet: 4
            })
        );
        assert_eq!(svc.shed(), 0, "rejection is not shedding");
        assert_eq!(svc.queue_len(), 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_overload_and_counts() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let campaign = small_campaign(&cut, &bp, 64, 7);
        let mut svc = GatewayService::new(
            &cut,
            GatewayConfig {
                vehicles: 64,
                queue_capacity: 4,
                ..GatewayConfig::default()
            },
        )
        .expect("provision");
        let arrivals: Vec<VehicleArrival> = campaign.arrivals().collect();
        let mut shed = 0u64;
        for &a in &arrivals[..8] {
            match svc.ingest(a) {
                Ok(()) => {}
                Err(FleetError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 4);
                    shed += 1;
                }
                Err(e) => unreachable!("unexpected ingest error: {e}"),
            }
        }
        assert_eq!(shed, 4, "capacity 4, offered 8");
        assert_eq!(svc.shed(), 4);
        // After a drain the queue accepts again, and the snapshot
        // reports the shed count.
        assert_eq!(svc.drain(), 4);
        for &a in &arrivals[8..12] {
            svc.ingest(a).expect("drained queue has room");
        }
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        assert_eq!(snap.shed, 4);
        assert_eq!(snap.ingested, 8);
    }

    /// The ingest boundary rejects structurally malformed frames with a
    /// typed error per field check, counts them, and surfaces the count
    /// in both the snapshot and the report's robustness block.
    #[test]
    fn malformed_frames_are_rejected_typed_and_counted() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let campaign = small_campaign(&cut, &bp, 64, 17);
        let mut svc = campaign.gateway().expect("provision");
        let good = campaign
            .arrivals()
            .find(|a| a.upload.is_some())
            .expect("defect fraction 0.3 of 64 produces uploads");
        let mutate = |f: fn(&mut VehicleArrival)| {
            let mut a = good;
            f(&mut a);
            a
        };
        let cases = [
            (
                mutate(|a| a.bist_time_s = f64::NAN),
                MalformedKind::NonFiniteBistTime,
            ),
            (
                mutate(|a| {
                    if let Some(up) = &mut a.upload {
                        up.vehicle = a.vehicle + 1;
                    }
                }),
                MalformedKind::VehicleMismatch,
            ),
            (
                mutate(|a| {
                    if let Some(up) = &mut a.upload {
                        up.time_s = -1.0;
                    }
                }),
                MalformedKind::NonFiniteUploadTime,
            ),
            (
                mutate(|a| {
                    if let Some(up) = &mut a.upload {
                        up.fail_bytes = FAIL_DATA_BYTES + 1;
                    }
                }),
                MalformedKind::OversizedFailData,
            ),
            (
                mutate(|a| {
                    if let Some(up) = &mut a.upload {
                        up.retransmit_s = -0.5;
                    }
                }),
                MalformedKind::NegativeRetransmit,
            ),
        ];
        for (frame, want) in cases {
            assert_eq!(
                svc.ingest(frame),
                Err(FleetError::MalformedUpload {
                    vehicle: frame.vehicle,
                    kind: want,
                })
            );
        }
        assert_eq!(svc.malformed(), 5);
        assert_eq!(svc.queue_len(), 0, "rejected frames are never queued");
        assert_eq!(svc.shed(), 0, "rejection is not shedding");
        svc.accept(good).expect("the pristine frame folds");
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        assert_eq!(snap.malformed, 5);
        assert_eq!(snap.ingested, 1);
        let rob = snap
            .report
            .robustness
            .expect("ingest rejects populate the robustness block");
        assert_eq!(rob.rejected_uploads, 5);
        assert_eq!(rob.impaired_uploads, 0);
        assert_eq!(rob.retransmitted_frames, 0);
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let campaign = small_campaign(&cut, &bp, 64, 13);
        let mut svc = campaign.gateway().expect("provision");
        let arrivals: Vec<VehicleArrival> = campaign.arrivals().collect();
        for &a in &arrivals {
            svc.accept(a).expect("in range");
        }
        // Replay the first half — every one is a duplicate.
        for &a in &arrivals[..32] {
            svc.accept(a).expect("duplicates are accepted then dropped");
        }
        let baseline = campaign.run();
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        assert_eq!(snap.duplicates, 32);
        assert_eq!(snap.ingested, 64, "duplicates are not folded");
        assert_eq!(snap.report, baseline, "replay does not perturb the report");
    }

    /// Satellite: snapshot edge cases — zero uploads ingested.
    #[test]
    fn empty_snapshot_has_zeroed_stats_and_full_grid() {
        let cut = small_cut();
        let mut svc = GatewayService::new(&cut, GatewayConfig::default()).expect("provision");
        let snap = svc.snapshot_at(1_000.0);
        assert_eq!(snap.ingested, 0);
        assert_eq!(snap.uploads_ingested, 0);
        assert_eq!(snap.truncated_uploads, 0);
        let r = &snap.report;
        assert_eq!(r.detected, 0);
        assert_eq!(r.localized, 0);
        assert_eq!(r.batches, 0);
        assert_eq!(r.latency.count, 0);
        assert_eq!(r.latency.min_s, 0.0);
        assert_eq!(r.latency.p99_s, 0.0);
        assert!(r.findings.is_empty());
        assert!(r.per_ecu.is_empty());
        // The coverage grid always spans the configured horizon.
        assert_eq!(r.coverage_over_time.len(), 32);
        assert!(r.coverage_over_time.iter().all(|&(_, f)| f == 0.0));
        let last = r.coverage_over_time.last().expect("non-empty grid");
        assert!((last.0 - svc.config().horizon_s).abs() < 1e-9);
    }

    /// Satellite: snapshot edge cases — exactly one upload.
    #[test]
    fn single_upload_snapshot_degenerate_stats() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let campaign = small_campaign(&cut, &bp, 256, 7);
        let mut svc = campaign.gateway().expect("provision");
        let first = campaign
            .arrivals()
            .find(|a| a.upload.is_some())
            .expect("defect fraction 0.3 of 256 produces uploads");
        svc.accept(first).expect("in range");
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        let r = &snap.report;
        assert_eq!(snap.uploads_ingested, 1);
        assert_eq!(r.detected, 1);
        assert_eq!(r.latency.count, 1);
        let t = first.upload.expect("chosen for its upload").time_s;
        assert_eq!(r.latency.min_s, t);
        assert_eq!(r.latency.max_s, t);
        assert_eq!(r.latency.mean_s, t);
        assert_eq!(r.latency.p50_s, t);
        assert_eq!(r.latency.p99_s, t);
        assert_eq!(r.batches, 1);
        assert_eq!(r.findings.len(), 1);
        // Coverage: defective census is 1, so the curve steps 0 → 1 at
        // the upload time.
        for &(grid_t, frac) in &r.coverage_over_time {
            assert_eq!(frac, if grid_t >= t { 1.0 } else { 0.0 });
        }
    }

    /// Satellite: `snapshot_at(t)` is monotone in detections as t grows,
    /// and the horizon snapshot equals the one-shot report.
    #[test]
    fn snapshot_at_is_monotone_in_time() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let campaign = small_campaign(&cut, &bp, 300, 41);
        let mut svc = campaign.gateway().expect("provision");
        for a in campaign.arrivals() {
            svc.accept(a).expect("in range");
        }
        let horizon = campaign.config().horizon_s;
        let mut last_detected = 0u64;
        let mut last_coverage = 0.0f64;
        for step in 1..=10 {
            let snap = svc.snapshot_at(horizon * f64::from(step) / 10.0);
            assert!(
                snap.report.detected >= last_detected,
                "detections are cumulative"
            );
            let cov = snap
                .report
                .coverage_over_time
                .last()
                .expect("non-empty grid")
                .1;
            assert!(cov >= last_coverage, "coverage is cumulative");
            // Census facts don't depend on t.
            assert_eq!(snap.report.defective, campaign.run().defective);
            last_detected = snap.report.detected;
            last_coverage = cov;
        }
        let final_snap = svc.snapshot_at(horizon);
        assert_eq!(final_snap.report, campaign.run());
        assert!(final_snap.report.detected > 0);
    }

    /// Truncated-upload accounting is consistent with the CUT's fail
    /// data, and a single-pattern-window CUT actually produces truncated
    /// payloads (>53 failing windows overflow the 638-byte fail memory).
    #[test]
    fn truncated_uploads_are_counted() {
        let cut = CutModel::build(CutConfig {
            gates: 80,
            patterns: 256,
            window: 1,
            ..CutConfig::default()
        })
        .expect("substrate builds");
        assert!(
            cut.detectable_faults()
                .iter()
                .any(|&fi| cut.fail_data(fi).is_truncated()),
            "window=1 × 256 patterns: some fault fails >53 windows"
        );
        let bp = [capable_blueprint()];
        let campaign = Campaign::new(
            &cut,
            &bp,
            CampaignConfig {
                vehicles: 300,
                defect_fraction: 0.5,
                horizon_s: 14.0 * 86_400.0,
                seed: 29,
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .expect("valid campaign");
        let mut svc = campaign.gateway().expect("provision");
        for a in campaign.arrivals() {
            svc.accept(a).expect("in range");
        }
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        let expect = snap
            .report
            .findings
            .iter()
            .filter(|f| cut.fail_data(f.fault_index).is_truncated())
            .count() as u64;
        assert_eq!(snap.truncated_uploads, expect);
        assert!(
            snap.truncated_uploads > 0,
            "the truncating CUT shows up in the snapshot counter"
        );
    }
}
