//! The shared circuit-under-test substrate of a campaign.
//!
//! The paper's case study binds the *same* CUT (an automotive
//! microprocessor) into every ECU, so fleet-scale simulation does not need
//! gate-level work per vehicle: [`CutModel::build`] synthesizes one
//! substrate circuit, runs the golden STUMPS session once, and precomputes
//! the [`FailData`] of **every collapsed stuck-at fault** through the
//! resumable-session hook ([`eea_bist::ResumableRun`]) — deliberately
//! advancing in uneven chunks, exactly the way a vehicle's shut-off
//! windows slice a session. Per-pattern independence of the full-scan
//! STUMPS architecture makes the result bit-identical to an uninterrupted
//! run, so the table is valid for *any* window schedule a vehicle draws.
//!
//! A campaign over 100k vehicles then only consults this table: seeding a
//! defect picks a detectable fault index, the upload carries the
//! precomputed fail-data size, and gateway-side diagnosis reuses one
//! [`Diagnoser`] dictionary.

use eea_bist::{Candidate, Diagnoser, FailData, StumpsSession};
use eea_faultsim::{Fault, FaultUniverse};
use eea_netlist::{synthesize, Circuit, ScanChains, SynthConfig};

use crate::error::FleetError;

/// Configuration of the substrate CUT and its BIST session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutConfig {
    /// Number of logic gates of the synthesized substrate.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of scan flip-flops.
    pub dffs: usize,
    /// Number of balanced scan chains (STUMPS parallelism).
    pub chains: usize,
    /// Synthesis seed; equal seeds produce identical substrates.
    pub seed: u64,
    /// LFSR seed of the pseudo-random session.
    pub lfsr_seed: u64,
    /// Patterns per intermediate-signature window.
    pub window: u64,
    /// Session length in patterns.
    pub patterns: u64,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            gates: 150,
            inputs: 10,
            dffs: 12,
            chains: 4,
            seed: 0xF1EE7,
            lfsr_seed: 0xACE1,
            window: 16,
            patterns: 256,
        }
    }
}

/// Precomputed per-fault behaviour of the shared CUT under the campaign's
/// BIST session: fail data, detectability and the diagnosis dictionary.
#[derive(Debug)]
pub struct CutModel {
    config: CutConfig,
    circuit: Circuit,
    faults: Vec<Fault>,
    fail_table: Vec<FailData>,
    detectable: Vec<u32>,
    diagnoser: Diagnoser,
}

impl CutModel {
    /// Synthesizes the substrate, runs the golden session and fills the
    /// per-fault fail-data table by driving [`eea_bist::ResumableRun`] in
    /// uneven chunks (the shut-off discipline vehicles will apply).
    ///
    /// # Errors
    ///
    /// [`FleetError::Synth`] / [`FleetError::Scan`] when the substrate
    /// cannot be built, [`FleetError::NoDetectableFault`] when the session
    /// detects no fault at all (nothing could ever be seeded).
    pub fn build(config: CutConfig) -> Result<Self, FleetError> {
        let circuit = synthesize(&SynthConfig {
            gates: config.gates,
            inputs: config.inputs,
            dffs: config.dffs,
            seed: config.seed,
            ..SynthConfig::default()
        })?;
        let chains = ScanChains::balanced(&circuit, config.chains)?;
        let session = StumpsSession::new(&circuit, &chains, config.lfsr_seed, config.window);

        // Golden run through the resumable hook, paused at uneven points.
        let mut run = session.resume_golden(config.patterns);
        while !run.is_complete() {
            run.advance(run.remaining().clamp(1, 48));
        }
        let golden = run.into_golden();

        let universe = FaultUniverse::collapsed(&circuit);
        let faults: Vec<Fault> = (0..universe.num_faults())
            .map(|i| universe.fault(i))
            .collect();
        let mut fail_table = Vec::with_capacity(faults.len());
        let mut detectable = Vec::new();
        for (i, &fault) in faults.iter().enumerate() {
            let mut run = session.resume_with_fault(fault, &golden);
            // Chunk sizes cycle through a small irregular pattern so the
            // resume path is exercised at many window offsets.
            let chunks = [7u64, 64, 13, 48, 96];
            let mut k = 0usize;
            while !run.is_complete() {
                run.advance(chunks[k % chunks.len()]);
                k += 1;
            }
            let fail = run.into_fail_data();
            if !fail.is_pass() {
                detectable.push(i as u32);
            }
            fail_table.push(fail);
        }
        if detectable.is_empty() {
            return Err(FleetError::NoDetectableFault);
        }

        let diagnoser = Diagnoser::new(
            &circuit,
            &chains,
            config.lfsr_seed,
            config.window,
            config.patterns,
        );

        Ok(CutModel {
            config,
            circuit,
            faults,
            fail_table,
            detectable,
            diagnoser,
        })
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &CutConfig {
        &self.config
    }

    /// The synthesized substrate circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of collapsed stuck-at faults of the substrate.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The `i`-th collapsed fault.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fault(&self, i: u32) -> Fault {
        self.faults[i as usize]
    }

    /// The precomputed fail data of fault `i` under the campaign session.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_data(&self, i: u32) -> &FailData {
        &self.fail_table[i as usize]
    }

    /// Encoded fail-data size (bytes) a defective ECU uploads for fault
    /// `i` — zero when the session passes (nothing to upload).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_bytes(&self, i: u32) -> u64 {
        self.fail_table[i as usize].byte_size()
    }

    /// Indices of faults the session detects — the pool defects are
    /// seeded from. Non-empty by construction.
    pub fn detectable_faults(&self) -> &[u32] {
        &self.detectable
    }

    /// Session-level stuck-at coverage of the substrate: detected /
    /// collapsed.
    pub fn coverage(&self) -> f64 {
        self.detectable.len() as f64 / self.faults.len().max(1) as f64
    }

    /// Runs window-based logic diagnosis on uploaded fail data, returning
    /// scored candidates (best first).
    pub fn diagnose(&self, observed: &FailData) -> Vec<Candidate> {
        self.diagnoser.diagnose(observed)
    }

    /// Whether diagnosis of fault `i`'s own fail data ranks fault `i` in
    /// the top-scoring equivalence class — the paper's localization
    /// criterion.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes(&self, i: u32) -> bool {
        self.localizes_observed(i, &self.fail_table[i as usize])
    }

    /// [`localizes`](Self::localizes) against an explicit observed
    /// payload — the partial-fail-memory hook: the payload may be a
    /// truncated, window-lost or corrupted variant of fault `i`'s fail
    /// data, and diagnosis ranks from whatever survived instead of
    /// erroring.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes_observed(&self, i: u32, observed: &FailData) -> bool {
        let candidates = self.diagnoser.diagnose(observed);
        let Some(top) = candidates.first() else {
            return false;
        };
        let fault = self.faults[i as usize];
        candidates
            .iter()
            .take_while(|c| c.score == top.score)
            .any(|c| c.fault == fault)
    }

    /// Rank (1-based) of fault `i` in the diagnosis of its own fail data,
    /// counting equivalence classes by score; `None` when absent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank(&self, i: u32) -> Option<usize> {
        self.true_fault_rank_observed(i, &self.fail_table[i as usize])
    }

    /// [`true_fault_rank`](Self::true_fault_rank) against an explicit
    /// observed payload — how far localization degrades when diagnosis
    /// sees a partial or corrupted fail memory.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank_observed(&self, i: u32, observed: &FailData) -> Option<usize> {
        let candidates = self.diagnoser.diagnose(observed);
        let fault = self.faults[i as usize];
        let pos = candidates.iter().position(|c| c.fault == fault)?;
        let score = candidates[pos].score;
        // Candidates are sorted by score descending; the class rank is one
        // plus the number of distinct scores strictly above the fault's.
        let mut rank = 1usize;
        let mut prev = f64::INFINITY;
        for c in candidates.iter().take_while(|c| c.score > score) {
            if c.score < prev {
                rank += 1;
                prev = c.score;
            }
        }
        Some(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_detectable_faults() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        assert!(cut.num_faults() > 0);
        assert!(!cut.detectable_faults().is_empty());
        assert!(cut.coverage() > 0.5, "random session detects most faults");
    }

    #[test]
    fn fail_table_matches_uninterrupted_runs() {
        let cfg = CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        };
        let cut = CutModel::build(cfg).expect("substrate builds");
        let chains = ScanChains::balanced(&cut.circuit, cfg.chains).expect("chains");
        let session = StumpsSession::new(&cut.circuit, &chains, cfg.lfsr_seed, cfg.window);
        let golden = session.run_golden(cfg.patterns);
        for i in 0..cut.num_faults() as u32 {
            let direct = session.run_with_fault(cut.fault(i), &golden);
            assert_eq!(direct.entries(), cut.fail_data(i).entries());
        }
    }

    #[test]
    fn detectable_faults_localize_mostly() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let localized = cut
            .detectable_faults()
            .iter()
            .filter(|&&i| cut.localizes(i))
            .count();
        // Window-based diagnosis always ranks the true fault in the top
        // equivalence class of its own response (Jaccard similarity 1).
        assert_eq!(localized, cut.detectable_faults().len());
    }

    #[test]
    fn seeding_pool_excludes_passing_faults() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        for &i in cut.detectable_faults() {
            assert!(!cut.fail_data(i).is_pass());
            assert!(cut.fail_bytes(i) > 0);
        }
    }
}
