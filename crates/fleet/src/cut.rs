//! The shared circuit-under-test substrate of a campaign.
//!
//! The paper's case study binds the *same* CUT (an automotive
//! microprocessor) into every ECU, so fleet-scale simulation does not need
//! gate-level work per vehicle: [`CutModel::build`] synthesizes one
//! substrate circuit and derives the [`FailData`] of **every collapsed
//! stuck-at fault** plus the diagnosis dictionary from a single one-pass
//! [`SessionTable`] sweep of the session's pattern stream (DESIGN.md §15)
//! — one wide-word walk replaces the historical full-session replay per
//! fault, and the sweep is computed **once**, shared between the fail
//! table and the [`Diagnoser`]. The result is bit-identical to
//! uninterrupted per-fault session runs (equivalence tests below and the
//! proptest oracle in eea-bist), so the table remains valid for *any*
//! shut-off window schedule a vehicle draws: per-pattern independence of
//! the full-scan STUMPS architecture makes session chopping invisible.
//!
//! A campaign over 100k vehicles then only consults this table: seeding a
//! defect picks a detectable fault index, the upload carries the
//! precomputed fail-data size, and gateway-side diagnosis reuses one
//! [`Diagnoser`] dictionary.

use std::time::Instant;

use eea_bist::{Candidate, Diagnoser, DiagnosisSummary, FailData, SessionTable};
use eea_faultsim::Fault;
use eea_netlist::{synthesize, Circuit, ScanChains, SynthConfig};

use crate::error::FleetError;

/// Configuration of the substrate CUT and its BIST session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutConfig {
    /// Number of logic gates of the synthesized substrate.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of scan flip-flops.
    pub dffs: usize,
    /// Number of balanced scan chains (STUMPS parallelism).
    pub chains: usize,
    /// Synthesis seed; equal seeds produce identical substrates.
    pub seed: u64,
    /// LFSR seed of the pseudo-random session.
    pub lfsr_seed: u64,
    /// Patterns per intermediate-signature window.
    pub window: u64,
    /// Session length in patterns.
    pub patterns: u64,
    /// Worker threads for the one-pass dictionary sweep (`0` = all
    /// available, honouring `EEA_THREADS`); the result is bit-identical
    /// at any thread count.
    pub threads: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            gates: 150,
            inputs: 10,
            dffs: 12,
            chains: 4,
            seed: 0xF1EE7,
            lfsr_seed: 0xACE1,
            window: 16,
            patterns: 256,
            threads: 0,
        }
    }
}

/// Precomputed per-fault behaviour of the shared CUT under the campaign's
/// BIST session: fail data, detectability and the diagnosis dictionary.
#[derive(Debug)]
pub struct CutModel {
    config: CutConfig,
    circuit: Circuit,
    faults: Vec<Fault>,
    fail_table: Vec<FailData>,
    detectable: Vec<u32>,
    /// Bit `i` set ⇔ fault `i`'s fail data overflows the fail memory —
    /// precomputed so per-upload truncation checks are one shift away.
    truncated: Vec<u64>,
    diagnoser: Diagnoser,
    /// Wall-clock seconds the one-pass dictionary sweep took at build
    /// time — surfaced through [`StageTimings`](crate::StageTimings) so
    /// benchmarks can report the amortized build cost next to per-lookup
    /// cost. Never part of a [`FleetReport`](crate::FleetReport).
    dict_build_s: f64,
}

impl CutModel {
    /// Synthesizes the substrate and fills the per-fault fail-data table
    /// and the diagnosis dictionary from one shared [`SessionTable`]
    /// sweep.
    ///
    /// # Errors
    ///
    /// [`FleetError::Synth`] / [`FleetError::Scan`] when the substrate
    /// cannot be built, [`FleetError::NoDetectableFault`] when the session
    /// detects no fault at all (nothing could ever be seeded).
    pub fn build(config: CutConfig) -> Result<Self, FleetError> {
        let circuit = synthesize(&SynthConfig {
            gates: config.gates,
            inputs: config.inputs,
            dffs: config.dffs,
            seed: config.seed,
            ..SynthConfig::default()
        })?;
        let chains = ScanChains::balanced(&circuit, config.chains)?;
        if config.patterns == 0 {
            // A zero-length session detects nothing; report it as the
            // seeding-pool error rather than asserting in the sweep.
            return Err(FleetError::NoDetectableFault);
        }

        let t = Instant::now();
        let table = SessionTable::build(
            &circuit,
            &chains,
            config.lfsr_seed,
            config.window,
            config.patterns,
            config.threads,
        );
        let diagnoser = Diagnoser::from_table(&table);
        let dict_build_s = t.elapsed().as_secs_f64();
        let (faults, fail_table, _detect_windows, _windows) = table.into_parts();

        let mut detectable = Vec::new();
        let mut truncated = vec![0u64; fail_table.len().div_ceil(64)];
        for (i, fail) in fail_table.iter().enumerate() {
            if !fail.is_pass() {
                detectable.push(i as u32);
            }
            if fail.is_truncated() {
                truncated[i / 64] |= 1u64 << (i % 64);
            }
        }
        if detectable.is_empty() {
            return Err(FleetError::NoDetectableFault);
        }

        Ok(CutModel {
            config,
            circuit,
            faults,
            fail_table,
            detectable,
            truncated,
            diagnoser,
            dict_build_s,
        })
    }

    /// Wall-clock seconds the one-pass sweep (fail table + dictionary +
    /// index) took when this model was built.
    pub fn dict_build_seconds(&self) -> f64 {
        self.dict_build_s
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &CutConfig {
        &self.config
    }

    /// The synthesized substrate circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of collapsed stuck-at faults of the substrate.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The `i`-th collapsed fault.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fault(&self, i: u32) -> Fault {
        self.faults[i as usize]
    }

    /// The precomputed fail data of fault `i` under the campaign session.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_data(&self, i: u32) -> &FailData {
        &self.fail_table[i as usize]
    }

    /// Encoded fail-data size (bytes) a defective ECU uploads for fault
    /// `i` — zero when the session passes (nothing to upload).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_bytes(&self, i: u32) -> u64 {
        self.fail_table[i as usize].byte_size()
    }

    /// Whether fault `i`'s fail data overflows the modeled fail memory —
    /// the precomputed equivalent of `fail_data(i).is_truncated()`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fault_truncated(&self, i: u32) -> bool {
        assert!((i as usize) < self.fail_table.len(), "fault out of range");
        self.truncated[i as usize / 64] >> (i % 64) & 1 == 1
    }

    /// Indices of faults the session detects — the pool defects are
    /// seeded from. Non-empty by construction.
    pub fn detectable_faults(&self) -> &[u32] {
        &self.detectable
    }

    /// Session-level stuck-at coverage of the substrate: detected /
    /// collapsed.
    pub fn coverage(&self) -> f64 {
        self.detectable.len() as f64 / self.faults.len().max(1) as f64
    }

    /// Runs window-based logic diagnosis on uploaded fail data, returning
    /// scored candidates (best first).
    pub fn diagnose(&self, observed: &FailData) -> Vec<Candidate> {
        self.diagnoser.diagnose(observed)
    }

    /// Diagnoses `observed` once and condenses fault `i`'s placement —
    /// candidate count, rank class and localization — into a
    /// [`DiagnosisSummary`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn diagnose_summary(&self, i: u32, observed: &FailData) -> DiagnosisSummary {
        self.diagnoser
            .diagnose_summary(self.faults[i as usize], observed)
    }

    /// Whether diagnosis of fault `i`'s own fail data ranks fault `i` in
    /// the top-scoring equivalence class — the paper's localization
    /// criterion.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes(&self, i: u32) -> bool {
        self.localizes_observed(i, &self.fail_table[i as usize])
    }

    /// [`localizes`](Self::localizes) against an explicit observed
    /// payload — the partial-fail-memory hook: the payload may be a
    /// truncated, window-lost or corrupted variant of fault `i`'s fail
    /// data, and diagnosis ranks from whatever survived instead of
    /// erroring.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes_observed(&self, i: u32, observed: &FailData) -> bool {
        self.diagnose_summary(i, observed).localized
    }

    /// Rank (1-based) of fault `i` in the diagnosis of its own fail data,
    /// counting equivalence classes by score; `None` when absent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank(&self, i: u32) -> Option<usize> {
        self.true_fault_rank_observed(i, &self.fail_table[i as usize])
    }

    /// [`true_fault_rank`](Self::true_fault_rank) against an explicit
    /// observed payload — how far localization degrades when diagnosis
    /// sees a partial or corrupted fail memory.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank_observed(&self, i: u32, observed: &FailData) -> Option<usize> {
        self.diagnose_summary(i, observed).rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_bist::StumpsSession;

    #[test]
    fn builds_with_detectable_faults() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        assert!(cut.num_faults() > 0);
        assert!(!cut.detectable_faults().is_empty());
        assert!(cut.coverage() > 0.5, "random session detects most faults");
    }

    #[test]
    fn fail_table_matches_uninterrupted_runs() {
        let cfg = CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        };
        let cut = CutModel::build(cfg).expect("substrate builds");
        let chains = ScanChains::balanced(&cut.circuit, cfg.chains).expect("chains");
        let session = StumpsSession::new(&cut.circuit, &chains, cfg.lfsr_seed, cfg.window);
        let golden = session.run_golden(cfg.patterns);
        for i in 0..cut.num_faults() as u32 {
            let direct = session.run_with_fault(cut.fault(i), &golden);
            assert_eq!(direct.entries(), cut.fail_data(i).entries());
        }
    }

    #[test]
    fn fail_table_is_thread_count_invariant() {
        let cfg = CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            threads: 1,
            ..CutConfig::default()
        };
        let serial = CutModel::build(cfg).expect("substrate builds");
        let parallel = CutModel::build(CutConfig { threads: 5, ..cfg }).expect("substrate builds");
        assert_eq!(serial.num_faults(), parallel.num_faults());
        for i in 0..serial.num_faults() as u32 {
            assert_eq!(serial.fail_data(i), parallel.fail_data(i));
            assert_eq!(serial.fault_truncated(i), parallel.fault_truncated(i));
        }
        assert_eq!(serial.detectable_faults(), parallel.detectable_faults());
    }

    #[test]
    fn detectable_faults_localize_mostly() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let localized = cut
            .detectable_faults()
            .iter()
            .filter(|&&i| cut.localizes(i))
            .count();
        // Window-based diagnosis always ranks the true fault in the top
        // equivalence class of its own response (Jaccard similarity 1).
        assert_eq!(localized, cut.detectable_faults().len());
    }

    #[test]
    fn seeding_pool_excludes_passing_faults() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        for &i in cut.detectable_faults() {
            assert!(!cut.fail_data(i).is_pass());
            assert!(cut.fail_bytes(i) > 0);
        }
    }

    #[test]
    fn truncated_bitset_matches_fail_table() {
        // A 2-pattern window over 256 patterns yields up to 128 entries —
        // far past the fail-memory capacity — so truncated faults exist.
        let cfg = CutConfig {
            window: 2,
            ..CutConfig::default()
        };
        let cut = CutModel::build(cfg).expect("substrate builds");
        let mut saw_truncated = false;
        for i in 0..cut.num_faults() as u32 {
            assert_eq!(cut.fault_truncated(i), cut.fail_data(i).is_truncated());
            saw_truncated |= cut.fault_truncated(i);
        }
        assert!(saw_truncated, "config must produce a truncated fail memory");
    }

    #[test]
    fn empty_session_is_a_typed_error() {
        let cfg = CutConfig {
            patterns: 0,
            ..CutConfig::default()
        };
        assert!(matches!(
            CutModel::build(cfg),
            Err(FleetError::NoDetectableFault)
        ));
    }
}
