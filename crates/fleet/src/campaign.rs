//! The deterministic fleet campaign engine — a **streaming, sharded
//! pipeline** from vehicle simulation to the gateway report.
//!
//! [`Campaign::run`] never materializes a per-vehicle outcome vector.
//! Worker threads fold contiguous vehicle-index ranges directly into
//! [`ShardAccumulator`]s (simulation fused with pre-aggregation), the
//! per-shard sorted upload runs are k-way merged into gateway-arrival
//! order, the diagnosis stage shards the pure per-fault dictionary
//! lookups, and a final serial scan folds batches, latency statistics and
//! the coverage curve. Peak memory is O(detections + shard state), not
//! O(fleet) — a 10M-vehicle campaign carries only its uploads plus a few
//! hundred kB of per-block partials.
//!
//! Every stage keeps the determinism contract of `eea_faultsim`'s
//! parallel engine (DESIGN.md §10): each vehicle's outcome is a pure
//! function of the campaign seed and its index, floating-point folds run
//! over fixed [`SIM_BLOCK`]-sized blocks so the reduction tree is
//! independent of the worker count, the upload merge key `(time_s,
//! vehicle)` is a total order, and diagnosis shards merge by fault index
//! — so the [`FleetReport`] is **bit-identical at any thread count and
//! any shard count**.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;
use std::time::Instant;

use eea_bist::{CutFamily, FailData, MarchTest, FAIL_ENTRY_BYTES};
use eea_can::{Impairment, ImpairmentKind};
use eea_faultsim::resolve_threads;
use eea_model::ResourceId;
use eea_moea::Rng;
use eea_sched::SchedPlan;

use crate::blueprint::VehicleBlueprint;
use crate::cut::CutModel;
use crate::error::FleetError;
use crate::gateway::{GatewayConfig, GatewayService, VehicleArrival, DEFAULT_QUEUE_CAPACITY};
use crate::report::{
    DefectFinding, EcuReport, FamilyReport, FleetReport, LatencyStats, RankCdfPoint,
    RobustnessReport,
};
use crate::shutoff::ShutoffModel;
use crate::vehicle::{simulate_vehicle, SimContext, Upload};

/// Number of points of the coverage-over-time curve.
pub(crate) const COVERAGE_POINTS: usize = 32;

/// Vehicles per fold block — the unit the simulation stage's deterministic
/// floating-point reduction is built from. Worker chunks are whole block
/// ranges, so every per-block partial (the BIST-time sums) covers the same
/// vehicles regardless of thread count, and the serial left-fold over
/// block sums in block order *is the definition* of the fleet-wide value.
/// Small enough that modest fleets still split across workers; at 10M
/// vehicles the per-block partials total ~1.25 MB. The gateway's block
/// ledger (`gateway.rs`) reuses the same block geometry so its snapshot
/// fold reproduces this reduction tree bit for bit; its one-`u64`
/// presence mask per block requires `SIM_BLOCK <= 64`.
pub(crate) const SIM_BLOCK: usize = 64;
const _: () = assert!(SIM_BLOCK <= 64, "gateway block masks are single u64 words");

/// Configuration of a fleet campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Fleet size.
    pub vehicles: u32,
    /// Fraction of vehicles a defect is seeded into (subject to the drawn
    /// blueprint offering a diagnosable session).
    pub defect_fraction: f64,
    /// Campaign horizon in seconds.
    pub horizon_s: f64,
    /// Campaign seed; per-vehicle seeds derive from it.
    pub seed: u64,
    /// Worker threads; `0` = auto (all cores, `EEA_THREADS` overrides).
    pub threads: usize,
    /// Diagnosis-stage shards; `0` = auto (the worker-thread resolution
    /// above). The per-fault diagnosis cache is pure — every vehicle
    /// carries the same CUT — so shards diagnose disjoint fault-index
    /// ranges and merge by fault index: the report is bit-identical at
    /// any shard count.
    pub shards: usize,
    /// Shut-off event model vehicles draw their schedules from.
    pub shutoff: ShutoffModel,
    /// Gateway aggregation batch size (uploads per batch).
    pub batch_size: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vehicles: 1_000,
            defect_fraction: 0.02,
            horizon_s: 30.0 * 86_400.0,
            seed: 0xF1EE7CA4,
            threads: 0,
            shards: 0,
            shutoff: ShutoffModel::default(),
            batch_size: 64,
        }
    }
}

/// Total upload order at the gateway: arrival time, then vehicle index.
/// Each vehicle uploads at most once, so the key is strictly increasing
/// along the merged sequence — no ties, which is why an unstable sort and
/// any run partitioning of the k-way merge yield the same sequence.
pub(crate) fn upload_order(a: &Upload, b: &Upload) -> Ordering {
    a.time_s
        .total_cmp(&b.time_s)
        .then(a.vehicle.cmp(&b.vehicle))
}

/// Deterministic per-vehicle seed: one SplitMix64 output step over the
/// campaign seed mixed with the vehicle index ([`Rng::mix`], no
/// intermediate RNG state on the hot path). A pure function of
/// `(campaign_seed, index)` — independent of thread count, chunking, and
/// of whether the vehicle is simulated by [`Campaign::simulate`], fed
/// through [`Campaign::feed`], or drawn from [`Campaign::arrivals`].
pub(crate) fn vehicle_seed(campaign_seed: u64, index: u32) -> u64 {
    Rng::mix(campaign_seed.wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Partial aggregation state one simulation worker folds its contiguous
/// block range into — the streaming replacement for the old per-vehicle
/// outcome vector. Holds O(shard detections + shard blocks) memory.
#[derive(Debug, Clone, Default)]
struct ShardAccumulator {
    /// This shard's uploads, sorted by [`upload_order`].
    uploads: Vec<Upload>,
    /// Vehicles of this shard carrying a seeded defect.
    defective: u32,
    /// BIST sessions completed in this shard.
    sessions_completed: u64,
    /// Shut-off windows in which BIST made progress.
    windows_used: u64,
    /// Per-[`SIM_BLOCK`] left-fold sums of vehicle BIST time, in block
    /// order — the shard-count-independent reduction tree for the one
    /// floating-point fleet counter.
    block_bist_s: Vec<f64>,
    /// Seeded-defect counts per ECU (exact integer merge).
    seeded: BTreeMap<ResourceId, u32>,
}

/// The simulation stage's output: per-worker shard accumulators in
/// vehicle-index order. Opaque — produce it with [`Campaign::simulate`]
/// and feed it to [`Campaign::aggregate`] (possibly repeatedly: the
/// aggregation borrows the shards immutably, which is what the
/// aggregation-only benches exploit).
#[derive(Debug, Clone)]
pub struct FleetShards {
    shards: Vec<ShardAccumulator>,
}

impl FleetShards {
    /// Number of shards the fleet was folded into (= simulation workers
    /// that received at least one block).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Fleet-wide number of fail-data uploads (= detections).
    pub fn detections(&self) -> usize {
        self.shards.iter().map(|s| s.uploads.len()).sum()
    }
}

/// Wall-clock seconds of the pipeline stages, as measured by
/// [`Campaign::run_timed`]. Kept **out** of [`FleetReport`] so reports
/// stay comparable bit-for-bit across machines and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Parallel vehicle simulation fused with per-shard pre-aggregation.
    pub simulate_s: f64,
    /// K-way merge of per-shard sorted upload runs + counter folds.
    pub merge_s: f64,
    /// Sharded per-fault diagnosis of the distinct uploaded fault set.
    pub diagnose_s: f64,
    /// Final serial scan: findings, batches, latency stats, coverage
    /// curve, per-ECU aggregation.
    pub fold_s: f64,
    /// One-pass fault-dictionary sweep inside [`CutModel::build`] —
    /// amortized once per model, not per campaign run (copied from
    /// [`CutModel::dict_build_seconds`], identical across runs sharing a
    /// model).
    pub dict_build_s: f64,
    /// Pure dictionary-lookup portion of the diagnose stage: the sharded
    /// [`diagnose_faults`] call, excluding distinct-key set construction.
    pub diagnose_lookup_s: f64,
}

/// Census-side fleet counters — everything a [`FleetReport`] carries that
/// is *not* derived from the upload sequence. Folded exactly (integer
/// adds, plus the fixed per-block reduction tree for the one
/// floating-point sum), so both producers — the k-way shard merge here
/// and the gateway's incremental ledger — arrive at bit-identical values.
#[derive(Debug, Clone, Default)]
pub(crate) struct FleetTotals {
    pub defective: u32,
    pub sessions_completed: u64,
    pub windows_used: u64,
    pub bist_time_s: f64,
    pub seeded: BTreeMap<ResourceId, u32>,
    /// Malformed upload frames the ingest boundary rejected (typed
    /// [`FleetError::MalformedUpload`], counted never folded). Always `0`
    /// on the one-shot pipeline — only a gateway fed untrusted arrivals
    /// can see rejects.
    pub rejected_uploads: u64,
}

/// Everything the k-way merge produces: the globally ordered upload
/// sequence plus the exactly merged fleet counters.
struct MergedFleet {
    uploads: Vec<Upload>,
    totals: FleetTotals,
}

/// The fault half of a diagnosis key in a heterogeneous fleet: fault
/// indices are only unique *within* a CUT family's model, so every
/// dictionary lookup is keyed by `(family, index)`. `Ord` (family first)
/// keeps the sharded diagnosis merge and the gateway's cache
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct FaultKey {
    pub family: CutFamily,
    pub index: u32,
}

impl FaultKey {
    pub(crate) fn of(u: &Upload) -> Self {
        FaultKey {
            family: u.family,
            index: u.fault_index,
        }
    }
}

/// The full diagnosis key: which fault, and what the channel did to its
/// payload in transit. Two uploads of the same fault over the same
/// impairment see the identical observed payload (the fleet shares one
/// CUT), so diagnosis stays pure per key — the caching argument of the
/// old fault-only key, extended by the small discrete impairment space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct DiagKey {
    pub fault: FaultKey,
    pub impairment: Impairment,
}

impl DiagKey {
    pub(crate) fn of(u: &Upload) -> Self {
        DiagKey {
            fault: FaultKey::of(u),
            impairment: u.impairment,
        }
    }

    /// The same fault seen over a clean channel — the baseline the
    /// robustness axis measures localization degradation against.
    pub(crate) fn clean_twin(self) -> Self {
        DiagKey {
            fault: self.fault,
            impairment: Impairment::NONE,
        }
    }
}

/// Cached diagnosis of one `(fault, impairment)` key against its family's
/// dictionary. Pure per key (every vehicle carries the same CUT models
/// and the impairment transform is deterministic), which is what lets the
/// gateway cache entries across snapshots.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DiagEntry {
    pub candidates: usize,
    pub rank: usize,
    pub localized: bool,
    /// Whether the key's channel byte cap actually clipped entries off
    /// this fault's payload (always `false` for an unimpaired key).
    ///
    /// On-chip fail-memory overflow of the *original* payload is NOT
    /// cached here: it is independent of any channel impairment, and the
    /// snapshot's `truncated_uploads` counter reads it straight from the
    /// `CutModel`'s precomputed per-fault bitset
    /// ([`CutModel::fault_truncated`]).
    pub cap_truncated: bool,
}

/// A validated, ready-to-run campaign over a CUT model and a blueprint
/// set.
#[derive(Debug)]
pub struct Campaign<'a> {
    cut: &'a CutModel,
    sram: Option<&'a MarchTest>,
    blueprints: &'a [VehicleBlueprint],
    /// Per-blueprint schedule plans, built once at validation; `None`
    /// entries keep the flat-budget window source.
    sched_plans: Vec<Option<SchedPlan>>,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Validates the configuration against the CUT model and blueprints.
    /// Equivalent to [`with_models`](Self::with_models) without an SRAM
    /// model — blueprints selecting SRAM sessions are rejected.
    ///
    /// # Errors
    ///
    /// * [`FleetError::EmptyFleet`] for zero vehicles,
    /// * [`FleetError::InvalidHorizon`] for a non-positive or non-finite
    ///   horizon,
    /// * [`FleetError::InvalidDefectFraction`] outside `[0, 1]`,
    /// * [`FleetError::InvalidShutoffModel`] for degenerate window/gap
    ///   bounds,
    /// * [`FleetError::ZeroBatchSize`] for a zero gateway batch size,
    /// * [`FleetError::NoDiagnosableBlueprint`] when no blueprint could
    ///   ever deliver fail data,
    /// * [`FleetError::Sched`] when a blueprint's task set is invalid or
    ///   misses a deadline,
    /// * [`FleetError::MissingSramModel`] when a blueprint carries a
    ///   diagnosable SRAM session.
    pub fn new(
        cut: &'a CutModel,
        blueprints: &'a [VehicleBlueprint],
        config: CampaignConfig,
    ) -> Result<Self, FleetError> {
        Campaign::with_models(cut, None, blueprints, config)
    }

    /// Validates a campaign over heterogeneous CUT families: the logic
    /// model plus an optional March-test SRAM model. Per-blueprint task
    /// sets are folded into [`SchedPlan`]s here, so every schedulability
    /// problem ([`eea_sched::SchedError::DeadlineMiss`] included)
    /// surfaces as a typed error at construction, never mid-simulation.
    ///
    /// # Errors
    ///
    /// The same errors as [`new`](Self::new); `MissingSramModel` only
    /// when `sram` is `None` and a blueprint needs it.
    pub fn with_models(
        cut: &'a CutModel,
        sram: Option<&'a MarchTest>,
        blueprints: &'a [VehicleBlueprint],
        config: CampaignConfig,
    ) -> Result<Self, FleetError> {
        if config.vehicles == 0 {
            return Err(FleetError::EmptyFleet);
        }
        if !config.horizon_s.is_finite() || config.horizon_s <= 0.0 {
            return Err(FleetError::InvalidHorizon(config.horizon_s));
        }
        if !(0.0..=1.0).contains(&config.defect_fraction) {
            return Err(FleetError::InvalidDefectFraction(config.defect_fraction));
        }
        config.shutoff.validate()?;
        if config.batch_size == 0 {
            return Err(FleetError::ZeroBatchSize);
        }
        if !blueprints.iter().any(VehicleBlueprint::is_campaign_capable) {
            return Err(FleetError::NoDiagnosableBlueprint);
        }
        // Degenerate channel knobs surface at construction, never
        // mid-simulation — the same policy as schedules and transports.
        for b in blueprints {
            b.channel.validate()?;
        }
        if sram.is_none()
            && blueprints.iter().any(|b| {
                b.sessions
                    .iter()
                    .any(|p| p.is_diagnosable() && p.family == CutFamily::Sram)
            })
        {
            return Err(FleetError::MissingSramModel);
        }
        let sched_plans = blueprints
            .iter()
            .map(|b| b.task_set.as_ref().map(SchedPlan::build).transpose())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Campaign {
            cut,
            sram,
            blueprints,
            sched_plans,
            config,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign and aggregates the fleet report.
    pub fn run(&self) -> FleetReport {
        self.run_timed().0
    }

    /// Like [`run`](Self::run), but also reports per-stage wall-clock
    /// timings (simulate / merge / diagnose / fold). The report itself
    /// carries no timing fields, so it stays bit-comparable.
    ///
    /// Since the gateway ingest service landed, the one-shot run is a
    /// thin wrapper over it: simulate-and-[`feed`](Self::feed) every
    /// vehicle into a [`GatewayService`], then take the horizon snapshot.
    /// The snapshot fold is bit-identical to the direct sharded
    /// [`simulate`](Self::simulate)+[`aggregate`](Self::aggregate) path
    /// (same reduction trees, same total upload order — proven by the
    /// frozen 100k digest and the cross-pipeline unit test), which is
    /// kept both as the borrow-only bench surface and as the typed
    /// fallback should gateway provisioning ever fail.
    pub fn run_timed(&self) -> (FleetReport, StageTimings) {
        match self.run_gateway_timed() {
            Ok(done) => done,
            // Unreachable for a validated campaign — the gateway
            // re-validates the same bounds — but the policy is a typed
            // fallback, never a panic: degrade to the direct path.
            Err(_) => {
                let t = Instant::now();
                let shards = self.simulate();
                let simulate_s = t.elapsed().as_secs_f64();
                let (report, mut timings) = self.aggregate_timed(&shards);
                timings.simulate_s = simulate_s;
                (report, timings)
            }
        }
    }

    fn run_gateway_timed(&self) -> Result<(FleetReport, StageTimings), FleetError> {
        let t = Instant::now();
        let mut svc = self.gateway()?;
        self.feed(&mut svc)?;
        let simulate_s = t.elapsed().as_secs_f64();
        let (snapshot, mut timings) = svc.snapshot_at_timed(self.config.horizon_s);
        timings.simulate_s = simulate_s;
        Ok((snapshot.report, timings))
    }

    /// Provisions a [`GatewayService`] for this campaign's fleet: same
    /// CUT, fleet size, horizon, batch size and shard/thread counts, with
    /// the default ingest-queue bound. The service is independent of the
    /// campaign object afterwards — ingest arrivals from
    /// [`arrivals`](Self::arrivals), from [`feed`](Self::feed), or build
    /// [`VehicleArrival`]s yourself.
    ///
    /// # Errors
    ///
    /// Propagates [`GatewayService::new`] validation errors (none are
    /// reachable from a validated campaign configuration).
    pub fn gateway(&self) -> Result<GatewayService<'a>, FleetError> {
        GatewayService::with_models(
            self.cut,
            self.sram,
            GatewayConfig {
                vehicles: self.config.vehicles,
                horizon_s: self.config.horizon_s,
                batch_size: self.config.batch_size,
                queue_capacity: DEFAULT_QUEUE_CAPACITY,
                shards: self.config.shards,
                threads: self.config.threads,
            },
        )
    }

    /// Streams the whole fleet into `svc` under backpressure: simulation
    /// workers produce [`VehicleArrival`] batches over contiguous
    /// [`SIM_BLOCK`]-aligned index ranges and a bounded channel, the
    /// calling thread folds them via [`GatewayService::accept`] (drain on
    /// a full queue — the trusted producer blocks instead of shedding).
    /// Arrival *interleaving* across workers is nondeterministic; the
    /// snapshot taken afterwards is not, by the gateway's set-purity
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates ingest errors — [`FleetError::UnknownVehicle`] if `svc`
    /// was provisioned for a smaller fleet than this campaign simulates.
    pub fn feed(&self, svc: &mut GatewayService<'_>) -> Result<(), FleetError> {
        /// Blocks per channel send: batches amortize channel and fold
        /// bookkeeping over 64 × 64 = 4096 vehicles without growing the
        /// in-flight footprint past a few MB at any thread count.
        const FEED_BATCH_BLOCKS: usize = 64;
        let n = self.config.vehicles as usize;
        let blocks = n.div_ceil(SIM_BLOCK);
        let threads = resolve_threads(self.config.threads).clamp(1, blocks);
        let ctx = SimContext::new(
            self.blueprints,
            self.cut,
            self.sram,
            &self.sched_plans,
            self.config.shutoff,
            self.config.defect_fraction,
            self.config.horizon_s,
            self.config.seed,
        );
        if threads == 1 {
            for i in 0..self.config.vehicles {
                let o = simulate_vehicle(i, &ctx, vehicle_seed(self.config.seed, i));
                svc.accept(VehicleArrival::from_outcome(&o))?;
            }
            return Ok(());
        }
        let chunk = blocks.div_ceil(threads);
        std::thread::scope(|scope| -> Result<(), FleetError> {
            let (tx, rx) = mpsc::sync_channel::<Vec<VehicleArrival>>(2 * threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(blocks);
                if lo >= hi {
                    break;
                }
                let tx = tx.clone();
                let ctx = &ctx;
                let this = &*self;
                scope.spawn(move || {
                    let mut next = lo;
                    while next < hi {
                        let end = (next + FEED_BATCH_BLOCKS).min(hi);
                        let mut batch = Vec::with_capacity((end - next) * SIM_BLOCK);
                        for b in next..end {
                            // In-bounds by construction (see fold_blocks);
                            // saturate rather than wrap if that invariant
                            // is ever broken.
                            let vlo = u32::try_from(b * SIM_BLOCK).unwrap_or(u32::MAX);
                            let vhi =
                                u32::try_from(((b + 1) * SIM_BLOCK).min(n)).unwrap_or(u32::MAX);
                            for i in vlo..vhi {
                                let o = simulate_vehicle(i, ctx, vehicle_seed(this.config.seed, i));
                                batch.push(VehicleArrival::from_outcome(&o));
                            }
                        }
                        // A closed channel means the consumer bailed on an
                        // ingest error; stop producing — the error is
                        // already surfacing from the recv loop.
                        if tx.send(batch).is_err() {
                            return;
                        }
                        next = end;
                    }
                });
            }
            drop(tx);
            for batch in rx {
                for arrival in batch {
                    svc.accept(arrival)?;
                }
            }
            Ok(())
        })
    }

    /// A serial iterator over the fleet's [`VehicleArrival`]s in vehicle
    /// index order — the soak bench's and tests' handle for driving a
    /// [`GatewayService`] at a controlled cadence. Each item is the same
    /// pure per-vehicle outcome the parallel paths compute; O(1) memory.
    /// Borrows the campaign (the per-blueprint schedule plans live in
    /// it), so the iterator cannot outlive `self`.
    pub fn arrivals(&self) -> Arrivals<'_> {
        Arrivals {
            ctx: SimContext::new(
                self.blueprints,
                self.cut,
                self.sram,
                &self.sched_plans,
                self.config.shutoff,
                self.config.defect_fraction,
                self.config.horizon_s,
                self.config.seed,
            ),
            seed: self.config.seed,
            next: 0,
            vehicles: self.config.vehicles,
        }
    }

    /// Simulation stage: folds every vehicle into per-worker
    /// [`FleetShards`], worklist-parallel over contiguous
    /// [`SIM_BLOCK`]-aligned index ranges. No per-vehicle state survives
    /// the fold — peak memory is O(detections + blocks).
    pub fn simulate(&self) -> FleetShards {
        let n = self.config.vehicles as usize;
        let blocks = n.div_ceil(SIM_BLOCK);
        let threads = resolve_threads(self.config.threads).clamp(1, blocks);
        // Campaign-invariant context (blueprint work templates, fast
        // blueprint divisor, campaign scalars), derived once for the whole
        // fleet and shared read-only by every worker.
        let ctx = SimContext::new(
            self.blueprints,
            self.cut,
            self.sram,
            &self.sched_plans,
            self.config.shutoff,
            self.config.defect_fraction,
            self.config.horizon_s,
            self.config.seed,
        );
        if threads == 1 {
            return FleetShards {
                shards: vec![self.fold_blocks(&ctx, 0, blocks)],
            };
        }
        let chunk = blocks.div_ceil(threads);
        let mut shards = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(blocks);
                if lo >= hi {
                    break;
                }
                let this = &*self;
                let ctx = &ctx;
                handles.push(scope.spawn(move || this.fold_blocks(ctx, lo, hi)));
            }
            for h in handles {
                match h.join() {
                    Ok(acc) => shards.push(acc),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        FleetShards { shards }
    }

    /// Aggregation stage over simulated shards: deterministic k-way merge,
    /// sharded diagnosis, serial final fold. Borrow-only, so the same
    /// [`FleetShards`] can be aggregated repeatedly (e.g. at different
    /// shard counts — the result is identical).
    pub fn aggregate(&self, shards: &FleetShards) -> FleetReport {
        self.aggregate_timed(shards).0
    }

    fn aggregate_timed(&self, shards: &FleetShards) -> (FleetReport, StageTimings) {
        let t = Instant::now();
        let merged = merge_shards(&shards.shards);
        let merge_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (table, diagnose_lookup_s) = self.diagnosis_table(&merged.uploads);
        let diagnose_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let report = fold_report(
            self.config.vehicles,
            self.config.batch_size,
            self.config.horizon_s,
            &merged.uploads,
            &merged.totals,
            &table,
        );
        let fold_s = t.elapsed().as_secs_f64();

        (
            report,
            StageTimings {
                simulate_s: 0.0,
                merge_s,
                diagnose_s,
                fold_s,
                dict_build_s: self.cut.dict_build_seconds(),
                diagnose_lookup_s,
            },
        )
    }

    /// Folds the vehicles of blocks `[block_lo, block_hi)` into one shard
    /// accumulator. BIST time is folded per block so the floating-point
    /// reduction tree does not depend on how blocks are distributed over
    /// workers.
    fn fold_blocks(
        &self,
        ctx: &SimContext<'_>,
        block_lo: usize,
        block_hi: usize,
    ) -> ShardAccumulator {
        let n = self.config.vehicles as usize;
        let mut acc = ShardAccumulator::default();
        acc.block_bist_s.reserve(block_hi - block_lo);
        for b in block_lo..block_hi {
            // Checked, not `as`: `hi <= n = config.vehicles as usize`
            // always fits u32, but a silent wrap here would quietly
            // simulate the wrong index range — saturate instead if the
            // invariant is ever broken by a future refactor.
            let lo = u32::try_from(b * SIM_BLOCK).unwrap_or(u32::MAX);
            let hi = u32::try_from(((b + 1) * SIM_BLOCK).min(n)).unwrap_or(u32::MAX);
            let mut block_bist = 0.0f64;
            for i in lo..hi {
                let o = simulate_vehicle(i, ctx, vehicle_seed(self.config.seed, i));
                if let Some(d) = o.defect {
                    acc.defective += 1;
                    *acc.seeded.entry(d.ecu).or_insert(0) += 1;
                }
                acc.sessions_completed += u64::from(o.sessions_completed);
                acc.windows_used += u64::from(o.windows_used);
                block_bist += o.bist_time_s;
                if let Some(up) = o.upload {
                    acc.uploads.push(up);
                }
            }
            acc.block_bist_s.push(block_bist);
        }
        // `(time_s, vehicle)` is a total order — at most one upload per
        // vehicle — so stability buys nothing over `sort_unstable_by`.
        acc.uploads.sort_unstable_by(upload_order);
        acc
    }

    /// Diagnoses every distinct uploaded diagnosis key against its
    /// family's dictionary, sharded over disjoint contiguous key ranges.
    /// Sound because the lookup is pure (the same CUT models fleet-wide:
    /// two uploads of one key see identical observed payloads), and
    /// deterministic because the merge is keyed by `(fault, impairment)`.
    /// Every impaired key also diagnoses its clean twin, so the fold can
    /// price localization degradation against the clean-channel baseline.
    /// Returns the table plus the wall-clock seconds of the pure lookup
    /// call (for [`StageTimings::diagnose_lookup_s`]).
    fn diagnosis_table(&self, uploads: &[Upload]) -> (BTreeMap<DiagKey, DiagEntry>, f64) {
        let mut set = BTreeSet::new();
        for u in uploads {
            let key = DiagKey::of(u);
            set.insert(key);
            set.insert(key.clean_twin());
        }
        let distinct: Vec<DiagKey> = set.into_iter().collect();
        let t = Instant::now();
        let table = diagnose_faults(self.cut, self.sram, &distinct, self.resolve_shards())
            .into_iter()
            .collect();
        (table, t.elapsed().as_secs_f64())
    }

    fn resolve_shards(&self) -> usize {
        if self.config.shards == 0 {
            resolve_threads(0)
        } else {
            self.config.shards
        }
    }
}

/// The serial arrival stream behind [`Campaign::arrivals`].
pub struct Arrivals<'a> {
    ctx: SimContext<'a>,
    seed: u64,
    next: u32,
    vehicles: u32,
}

impl Iterator for Arrivals<'_> {
    type Item = VehicleArrival;

    fn next(&mut self) -> Option<VehicleArrival> {
        if self.next >= self.vehicles {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let o = simulate_vehicle(i, &self.ctx, vehicle_seed(self.seed, i));
        Some(VehicleArrival::from_outcome(&o))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Checked, not `as`: u32 → usize only narrows on exotic 16-bit
        // targets, but the cast sweep leaves no silent truncation behind.
        let left = usize::try_from(self.vehicles - self.next).unwrap_or(usize::MAX);
        (left, Some(left))
    }
}

impl ExactSizeIterator for Arrivals<'_> {}

/// Diagnoses the given distinct diagnosis keys against their family's
/// dictionary, sharded over disjoint contiguous ranges of the input.
/// Sound because the lookup is pure (the same CUT models fleet-wide: two
/// uploads of one key see identical observed payloads), and deterministic
/// because the output is keyed by `(fault, impairment)` — callers merge
/// into a `BTreeMap`. Shared by [`Campaign::aggregate`] and the gateway's
/// snapshot stage.
pub(crate) fn diagnose_faults(
    cut: &CutModel,
    sram: Option<&MarchTest>,
    distinct: &[DiagKey],
    shards: usize,
) -> Vec<(DiagKey, DiagEntry)> {
    if distinct.is_empty() {
        return Vec::new();
    }
    let shards = shards.max(1).min(distinct.len());
    if shards == 1 {
        return distinct
            .iter()
            .map(|&key| (key, diagnose_fault(cut, sram, key)))
            .collect();
    }
    let chunk = distinct.len().div_ceil(shards);
    let mut table = Vec::with_capacity(distinct.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for part in distinct.chunks(chunk) {
            handles.push(scope.spawn(move || {
                part.iter()
                    .map(|&key| (key, diagnose_fault(cut, sram, key)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            match h.join() {
                Ok(entries) => table.extend(entries),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    table
}

/// The payload diagnosis actually sees for `fail` under `imp`: the
/// original fail memory for an unimpaired key (zero-copy — the clean
/// path is byte-for-byte the historical one), else the channel cap and
/// content transform applied in transfer order (truncate what did not
/// fit, then lose/corrupt one entry of what arrived).
fn observed_payload(fail: &FailData, imp: Impairment) -> Option<FailData> {
    if imp.is_none() {
        return None;
    }
    let capped = fail.truncated_to(u64::from(imp.cap_entries) * FAIL_ENTRY_BYTES);
    Some(match imp.kind {
        ImpairmentKind::Intact => capped,
        ImpairmentKind::WindowLost { slot } => capped.without_window_slot(usize::from(slot)),
        ImpairmentKind::CorruptedSyndrome { salt } => capped.with_corrupted_window(salt),
    })
}

fn diagnose_fault(cut: &CutModel, sram: Option<&MarchTest>, key: DiagKey) -> DiagEntry {
    let imp = key.impairment;
    let index = key.fault.index;
    match key.fault.family {
        CutFamily::Logic => {
            let fail = cut.fail_data(index);
            let observed = observed_payload(fail, imp);
            let seen = observed.as_ref().unwrap_or(fail);
            // One ranking per key: the summary carries candidate count,
            // rank class and localization together (the historical code
            // diagnosed the same payload three times over).
            let s = cut.diagnose_summary(index, seen);
            DiagEntry {
                candidates: s.candidates,
                rank: s.rank.unwrap_or(0),
                localized: s.localized,
                cap_truncated: usize::from(imp.cap_entries) < fail.entries().len(),
            }
        }
        CutFamily::Sram => match sram {
            Some(m) => {
                let fail = m.fail_data(index);
                let observed = observed_payload(fail, imp);
                let seen = observed.as_ref().unwrap_or(fail);
                let s = m.diagnose_summary(index, seen);
                DiagEntry {
                    candidates: s.candidates,
                    rank: s.rank.unwrap_or(0),
                    localized: s.localized,
                    cap_truncated: usize::from(imp.cap_entries) < fail.entries().len(),
                }
            }
            // Unreachable for a validated campaign (`MissingSramModel`
            // gates construction); a typed zero entry, never a panic.
            None => DiagEntry {
                candidates: 0,
                rank: 0,
                localized: false,
                cap_truncated: false,
            },
        },
    }
}

/// Final serial scan over a globally ordered upload sequence:
/// arrival-order batches, latency statistics, the coverage curve and the
/// per-ECU aggregation — exactly the pre-sharding semantics. A pure
/// function of its inputs, shared by [`Campaign::aggregate`] and
/// [`GatewayService::snapshot_at`]: that sharing *is* the argument that
/// the one-shot report and the horizon snapshot agree bit for bit.
pub(crate) fn fold_report(
    vehicles: u32,
    batch_size: usize,
    horizon_s: f64,
    uploads: &[Upload],
    totals: &FleetTotals,
    table: &BTreeMap<DiagKey, DiagEntry>,
) -> FleetReport {
    // The per-family split only materializes for heterogeneous fleets:
    // pure-logic campaigns leave `per_family` empty so the report (and
    // its frozen `Debug` digest) is unchanged from the pre-family engine.
    let mixed = uploads.iter().any(|u| u.family != CutFamily::Logic);
    let mut fam_map: BTreeMap<CutFamily, FamilyAcc> = BTreeMap::new();
    let mut findings = Vec::with_capacity(uploads.len());
    // Robustness-axis accumulators: only impaired uploads (plus ingest
    // rejects) populate them, so a clean campaign reports `None` and its
    // frozen `Debug` digest is untouched.
    let mut rob = RobustnessAcc::default();
    for (k, up) in uploads.iter().enumerate() {
        // The table covers every uploaded diagnosis key by construction.
        let Some(e) = table.get(&DiagKey::of(up)) else {
            continue;
        };
        rob.retransmitted_frames += u64::from(up.retransmitted_frames);
        // Uploads are globally time-sorted, so this f64 left-fold has a
        // fixed order at any thread/shard count.
        rob.retransmit_overhead_s += up.retransmit_s;
        if !up.impairment.is_none() {
            rob.fold_impaired(up, e, table.get(&DiagKey::of(up).clean_twin()));
        }
        if mixed {
            let acc = fam_map.entry(up.family).or_default();
            acc.detected += 1;
            acc.localized += u64::from(e.localized);
            // Uploads are globally time-sorted, so each family's latency
            // list collects already sorted.
            acc.latencies.push(up.time_s);
        }
        findings.push(DefectFinding {
            vehicle: up.vehicle,
            ecu: up.ecu,
            fault_index: up.fault_index,
            detected_at_s: up.time_s,
            // Checked, not `as`: the widened u64 field means no batch
            // ordinal can wrap (the old `as u32` wrapped silently past
            // ~4.29G ordinals), and `try_from` keeps even a hypothetical
            // 128-bit-usize target honest by saturating.
            batch: u64::try_from(k / batch_size).unwrap_or(u64::MAX),
            candidates: e.candidates,
            true_fault_rank: e.rank,
            localized: e.localized,
        });
    }
    let batches = u64::try_from(uploads.len().div_ceil(batch_size)).unwrap_or(u64::MAX);

    let detected = u64::try_from(findings.len()).unwrap_or(u64::MAX);
    let localized =
        u64::try_from(findings.iter().filter(|f| f.localized).count()).unwrap_or(u64::MAX);

    let latencies: Vec<f64> = findings.iter().map(|f| f.detected_at_s).collect();
    let latency = LatencyStats::from_sorted(&latencies);

    // Coverage over time at fixed horizon fractions; the uploads are
    // time-sorted, so one forward scan suffices. The grid always spans
    // the full campaign horizon — a mid-campaign snapshot reports the
    // same grid with the not-yet-reached points at the current fraction,
    // which is what makes `snapshot_at` monotone in t.
    let mut coverage_over_time = Vec::with_capacity(COVERAGE_POINTS);
    let mut seen = 0usize;
    for p in 1..=COVERAGE_POINTS {
        let t = horizon_s * p as f64 / COVERAGE_POINTS as f64;
        while seen < latencies.len() && latencies[seen] <= t {
            seen += 1;
        }
        let frac = if totals.defective == 0 {
            0.0
        } else {
            seen as f64 / f64::from(totals.defective)
        };
        coverage_over_time.push((t, frac));
    }

    // Per-ECU aggregation: seeded counts come exactly merged from the
    // census; detections fold from the findings scan.
    let mut per_ecu_map: BTreeMap<ResourceId, EcuAcc> = BTreeMap::new();
    for (&ecu, &seeded) in &totals.seeded {
        per_ecu_map.entry(ecu).or_default().seeded = seeded;
    }
    for f in &findings {
        let acc = per_ecu_map.entry(f.ecu).or_default();
        acc.detected += 1;
        acc.localized += u32::from(f.localized);
        acc.latency_sum += f.detected_at_s;
        *acc.fault_counts.entry(f.fault_index).or_insert(0) += 1;
    }
    let per_ecu = per_ecu_map
        .into_iter()
        .map(|(ecu, acc)| {
            let mut top_faults: Vec<(u32, u32)> = acc.fault_counts.into_iter().collect();
            top_faults.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            EcuReport {
                ecu,
                seeded: acc.seeded,
                detected: acc.detected,
                localized: acc.localized,
                mean_latency_s: if acc.detected == 0 {
                    0.0
                } else {
                    acc.latency_sum / f64::from(acc.detected)
                },
                top_faults,
            }
        })
        .collect();

    let per_family = fam_map
        .into_iter()
        .map(|(family, acc)| FamilyReport {
            family,
            detected: acc.detected,
            localized: acc.localized,
            latency: LatencyStats::from_sorted(&acc.latencies),
        })
        .collect();

    let robustness = rob.into_report(totals.rejected_uploads);

    FleetReport {
        vehicles,
        defective: totals.defective,
        detected,
        localized,
        sessions_completed: totals.sessions_completed,
        windows_used: totals.windows_used,
        bist_time_s: totals.bist_time_s,
        batches,
        latency,
        coverage_over_time,
        per_ecu,
        findings,
        per_family,
        robustness,
    }
}

#[derive(Default)]
struct FamilyAcc {
    detected: u64,
    localized: u64,
    latencies: Vec<f64>,
}

/// Candidate-rank bounds of the robustness block's localization CDF —
/// powers of two up to the "diagnosis is hopeless past here" tail.
const RANK_CDF_BOUNDS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Accumulator behind [`RobustnessReport`]. Folded in global upload
/// order (the one f64 sum included), so every field is bit-identical at
/// any thread and shard count.
#[derive(Default)]
struct RobustnessAcc {
    retransmitted_frames: u64,
    retransmit_overhead_s: f64,
    impaired_uploads: u64,
    window_lost_uploads: u64,
    corrupted_uploads: u64,
    cap_truncated_uploads: u64,
    rank_degraded: u64,
    rank_improved: u64,
    delocalized: u64,
    impaired_le: [u64; RANK_CDF_BOUNDS.len()],
    clean_le: [u64; RANK_CDF_BOUNDS.len()],
}

impl RobustnessAcc {
    /// Folds one impaired upload, pricing its localization against the
    /// clean-twin baseline entry.
    fn fold_impaired(&mut self, up: &Upload, e: &DiagEntry, clean: Option<&DiagEntry>) {
        self.impaired_uploads += 1;
        match up.impairment.kind {
            ImpairmentKind::Intact => {}
            ImpairmentKind::WindowLost { .. } => self.window_lost_uploads += 1,
            ImpairmentKind::CorruptedSyndrome { .. } => self.corrupted_uploads += 1,
        }
        self.cap_truncated_uploads += u64::from(e.cap_truncated);
        // The clean twin is always in the table (`diagnosis_table`
        // inserts it alongside every key); degrade to zeros if that
        // invariant is ever broken, never panic.
        let Some(c) = clean else { return };
        // Rank 0 encodes "true fault not even a candidate" — strictly
        // worse than any positive rank.
        if c.rank > 0 && (e.rank == 0 || e.rank > c.rank) {
            self.rank_degraded += 1;
        }
        if e.rank > 0 && (c.rank == 0 || e.rank < c.rank) {
            self.rank_improved += 1;
        }
        if c.localized && !e.localized {
            self.delocalized += 1;
        }
        for (slot, &bound) in RANK_CDF_BOUNDS.iter().enumerate() {
            self.impaired_le[slot] += u64::from(e.rank > 0 && e.rank <= bound);
            self.clean_le[slot] += u64::from(c.rank > 0 && c.rank <= bound);
        }
    }

    /// The report block, or `None` when the campaign saw no channel
    /// effects at all — a clean campaign's report (and frozen `Debug`
    /// digest) carries no robustness axis.
    fn into_report(self, rejected_uploads: u64) -> Option<RobustnessReport> {
        if self.impaired_uploads == 0 && self.retransmitted_frames == 0 && rejected_uploads == 0 {
            return None;
        }
        Some(RobustnessReport {
            impaired_uploads: self.impaired_uploads,
            retransmitted_frames: self.retransmitted_frames,
            retransmit_overhead_s: self.retransmit_overhead_s,
            window_lost_uploads: self.window_lost_uploads,
            corrupted_uploads: self.corrupted_uploads,
            cap_truncated_uploads: self.cap_truncated_uploads,
            rejected_uploads,
            rank_degraded: self.rank_degraded,
            rank_improved: self.rank_improved,
            delocalized: self.delocalized,
            rank_cdf: RANK_CDF_BOUNDS
                .iter()
                .zip(self.impaired_le.iter().zip(self.clean_le.iter()))
                .map(|(&bound, (&impaired_le, &clean_le))| RankCdfPoint {
                    bound,
                    impaired_le,
                    clean_le,
                })
                .collect(),
        })
    }
}

/// Merges shard accumulators: a deterministic k-way merge of the
/// per-shard sorted upload runs (the merge key is a total order, so the
/// result is *the* sorted sequence regardless of run partitioning),
/// exact integer folds for the counters, and the fixed per-block
/// left-fold for the one floating-point counter.
fn merge_shards(shards: &[ShardAccumulator]) -> MergedFleet {
    let total: usize = shards.iter().map(|s| s.uploads.len()).sum();
    let mut uploads = Vec::with_capacity(total);
    let mut heads = vec![0usize; shards.len()];
    loop {
        let mut best: Option<(usize, &Upload)> = None;
        for (s, shard) in shards.iter().enumerate() {
            if let Some(u) = shard.uploads.get(heads[s]) {
                let better = match best {
                    None => true,
                    Some((_, bu)) => upload_order(u, bu) == Ordering::Less,
                };
                if better {
                    best = Some((s, u));
                }
            }
        }
        let Some((s, &u)) = best else {
            break;
        };
        uploads.push(u);
        heads[s] += 1;
    }

    let mut totals = FleetTotals::default();
    for s in shards {
        totals.defective += s.defective;
        totals.sessions_completed += s.sessions_completed;
        totals.windows_used += s.windows_used;
        for &b in &s.block_bist_s {
            totals.bist_time_s += b;
        }
        for (&ecu, &count) in &s.seeded {
            *totals.seeded.entry(ecu).or_insert(0) += count;
        }
    }
    MergedFleet { uploads, totals }
}

#[derive(Default)]
struct EcuAcc {
    seeded: u32,
    detected: u32,
    localized: u32,
    latency_sum: f64,
    fault_counts: BTreeMap<u32, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::EcuSessionPlan;
    use crate::cut::CutConfig;
    use eea_model::ResourceId;

    fn small_cut() -> CutModel {
        CutModel::build(CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        })
        .expect("substrate builds")
    }

    fn capable_blueprint() -> VehicleBlueprint {
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: ResourceId::from_index(2),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 900.0,
                local_storage: false,
                upload_bandwidth_bytes_per_s: 200.0,
                family: CutFamily::Logic,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
            channel: eea_can::ChannelConfig::Clean,
            task_set: None,
        }
    }

    #[test]
    fn config_validation_catches_degenerate_campaigns() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let bad = |f: fn(&mut CampaignConfig)| {
            let mut cfg = CampaignConfig::default();
            f(&mut cfg);
            Campaign::new(&cut, &bp, cfg).err()
        };
        assert_eq!(bad(|c| c.vehicles = 0), Some(FleetError::EmptyFleet));
        assert_eq!(
            bad(|c| c.horizon_s = -1.0),
            Some(FleetError::InvalidHorizon(-1.0))
        );
        assert_eq!(
            bad(|c| c.defect_fraction = 1.5),
            Some(FleetError::InvalidDefectFraction(1.5))
        );
        assert_eq!(bad(|c| c.batch_size = 0), Some(FleetError::ZeroBatchSize));
        let mut incapable = capable_blueprint();
        incapable.sessions[0].upload_bandwidth_bytes_per_s = 0.0;
        assert_eq!(
            Campaign::new(&cut, &[incapable], CampaignConfig::default()).err(),
            Some(FleetError::NoDiagnosableBlueprint)
        );
    }

    #[test]
    fn seeded_defects_are_detected_and_localized() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 200,
            defect_fraction: 0.25,
            horizon_s: 14.0 * 86_400.0,
            seed: 11,
            threads: 1,
            ..CampaignConfig::default()
        };
        let report = Campaign::new(&cut, &bp, cfg).expect("valid").run();
        assert!(report.defective > 0, "fraction 0.25 of 200 seeds defects");
        assert_eq!(
            report.detected,
            u64::from(report.defective),
            "horizon is generous"
        );
        assert_eq!(report.localized, report.detected);
        assert_eq!(report.latency.count, report.detected);
        assert!(report.latency.min_s > 0.0);
        let last = report.coverage_over_time.last().expect("curve non-empty");
        assert!((last.1 - 1.0).abs() < 1e-12);
        assert_eq!(report.per_ecu.len(), 1);
        assert_eq!(report.per_ecu[0].seeded, report.defective);
        assert!(
            report.robustness.is_none(),
            "clean-channel campaign reports no robustness axis"
        );
    }

    #[test]
    fn window_lost_then_retransmitted_sessions_diagnose() {
        // Sessions whose upload both lost a fail-memory window in transit
        // *and* had frames retransmitted — the satellite boundary case —
        // must flow through the diagnosis path as degraded entries, never
        // as errors or drops.
        let cut = small_cut();
        let mut noisy = capable_blueprint();
        noisy.channel = eea_can::ChannelConfig::Noisy(eea_can::NoisyChannel {
            frame_error_rate: 0.3,
            corruption_rate: 0.0,
            window_loss_rate: 0.5,
            truncation_cap_bytes: u64::MAX,
            seed: 3,
        });
        let bp = [noisy];
        let cfg = CampaignConfig {
            vehicles: 200,
            defect_fraction: 1.0,
            horizon_s: 14.0 * 86_400.0,
            seed: 11,
            threads: 1,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&cut, &bp, cfg.clone()).expect("valid");
        let uploads: Vec<Upload> = campaign.arrivals().filter_map(|a| a.upload).collect();
        let lost_and_resent = uploads
            .iter()
            .filter(|u| {
                matches!(u.impairment.kind, ImpairmentKind::WindowLost { .. })
                    && u.retransmitted_frames > 0
            })
            .count();
        assert!(
            lost_and_resent > 0,
            "aggressive rates must produce window-lost uploads on retransmitting sessions"
        );
        let window_lost = uploads
            .iter()
            .filter(|u| matches!(u.impairment.kind, ImpairmentKind::WindowLost { .. }))
            .count();

        let report = Campaign::new(&cut, &bp, cfg).expect("valid").run();
        assert_eq!(
            report.detected,
            u64::from(report.defective),
            "partial fail memories degrade ranks, they never drop detections"
        );
        let rob = report
            .robustness
            .expect("impaired campaign reports the robustness axis");
        assert_eq!(
            rob.window_lost_uploads,
            u64::try_from(window_lost).expect("fits"),
            "every window-lost upload is accounted"
        );
        assert!(rob.retransmitted_frames > 0, "30 % frame errors retransmit");
        assert!(rob.retransmit_overhead_s > 0.0, "retransmissions cost time");
        assert_eq!(rob.corrupted_uploads, 0, "corruption disabled");
        assert_eq!(rob.rejected_uploads, 0, "simulated frames are well-formed");
        for point in &rob.rank_cdf {
            assert!(point.impaired_le <= rob.impaired_uploads);
            assert!(
                point.impaired_le <= point.clean_le,
                "losing a window never sharpens rank at bound {}",
                point.bound
            );
        }
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let mut cfg = CampaignConfig {
            vehicles: 300,
            defect_fraction: 0.1,
            horizon_s: 7.0 * 86_400.0,
            seed: 5,
            threads: 1,
            ..CampaignConfig::default()
        };
        let baseline = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
        for threads in [2, 3, 8] {
            cfg.threads = threads;
            let report = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
            assert_eq!(report, baseline, "threads={threads}");
        }
    }

    #[test]
    fn report_is_bit_identical_across_shard_counts() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let mut cfg = CampaignConfig {
            vehicles: 300,
            defect_fraction: 0.2,
            horizon_s: 7.0 * 86_400.0,
            seed: 9,
            threads: 2,
            shards: 1,
            ..CampaignConfig::default()
        };
        let serial = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
        for shards in [2, 3, 8] {
            cfg.shards = shards;
            let sharded = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
            assert_eq!(sharded, serial, "shards={shards}");
        }
    }

    #[test]
    fn simulate_then_aggregate_equals_run() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 260,
            defect_fraction: 0.3,
            horizon_s: 14.0 * 86_400.0,
            seed: 3,
            threads: 3,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&cut, &bp, cfg).expect("valid");
        let shards = campaign.simulate();
        // 260 vehicles = 5 blocks over 3 workers: every worker got blocks.
        assert_eq!(shards.shard_count(), 3);
        let report = campaign.aggregate(&shards);
        assert_eq!(report.detected as usize, shards.detections());
        assert_eq!(report, campaign.run());
        // Aggregation is borrow-only: a second pass is identical.
        assert_eq!(campaign.aggregate(&shards), report);
    }

    /// Regression for the silent `as u32` wraps in the report counters:
    /// the derived counters are u64 now — the `let _: u64` bindings pin
    /// the widths at the type level, so a narrowing refactor fails to
    /// compile — and batch ordinals are exact at batch size 1 (the old
    /// cast wrapped past ~4.29G ordinals).
    #[test]
    fn report_counters_are_wide_and_batch_ordinals_exact() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 150,
            defect_fraction: 0.4,
            horizon_s: 14.0 * 86_400.0,
            seed: 21,
            threads: 1,
            batch_size: 1,
            ..CampaignConfig::default()
        };
        let report = Campaign::new(&cut, &bp, cfg).expect("valid").run();
        let _: u64 = report.detected;
        let _: u64 = report.localized;
        let _: u64 = report.batches;
        let _: u64 = report.latency.count;
        assert!(report.detected > 1);
        for (k, f) in report.findings.iter().enumerate() {
            assert_eq!(f.batch, k as u64, "batch_size 1: ordinal == index");
        }
        assert_eq!(report.batches, report.detected);
    }

    /// The one-shot run is now a thin wrapper over the gateway: feeding
    /// every arrival by hand and snapshotting at the horizon must equal
    /// both `run()` and the direct sharded simulate+aggregate path.
    #[test]
    fn one_shot_run_is_the_gateway_wrapper() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 260,
            defect_fraction: 0.3,
            horizon_s: 14.0 * 86_400.0,
            seed: 3,
            threads: 2,
            shards: 2,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&cut, &bp, cfg).expect("valid");
        let direct = campaign.aggregate(&campaign.simulate());
        let run = campaign.run();
        assert_eq!(run, direct, "gateway wrapper == direct sharded path");

        let mut svc = campaign.gateway().expect("provision");
        for arrival in campaign.arrivals() {
            svc.accept(arrival)
                .expect("trusted path drains, never sheds");
        }
        let snap = svc.snapshot_at(campaign.config().horizon_s);
        assert_eq!(snap.report, run, "manual ingest == run()");
        assert_eq!(snap.ingested, u64::from(campaign.config().vehicles));
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.duplicates, 0);
    }

    #[test]
    fn stage_timings_cover_every_stage() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 100,
            defect_fraction: 0.5,
            threads: 1,
            ..CampaignConfig::default()
        };
        let (report, timings) = Campaign::new(&cut, &bp, cfg).expect("valid").run_timed();
        assert!(report.detected > 0);
        assert!(timings.simulate_s >= 0.0);
        assert!(timings.merge_s >= 0.0);
        assert!(timings.diagnose_s >= 0.0);
        assert!(timings.fold_s >= 0.0);
    }
}
