//! The deterministic fleet campaign engine.
//!
//! [`Campaign::run`] simulates every vehicle's shut-off timeline
//! worklist-parallel over contiguous index chunks with
//! [`std::thread::scope`], then feeds the resulting fail-data uploads
//! through a serial gateway aggregation pipeline (sorted by arrival time,
//! processed in batches, diagnosed with the shared [`CutModel`]
//! dictionary). Each vehicle's outcome is a pure function of the campaign
//! seed and its index — the same discipline as `eea_faultsim::ParFaultSim`
//! — so the [`FleetReport`] is **bit-identical at any thread count**.

use std::collections::BTreeMap;

use eea_faultsim::resolve_threads;
use eea_moea::Rng;

use crate::blueprint::VehicleBlueprint;
use crate::cut::CutModel;
use crate::error::FleetError;
use crate::report::{DefectFinding, EcuReport, FleetReport, LatencyStats};
use crate::shutoff::ShutoffModel;
use crate::vehicle::{simulate_vehicle, Upload, VehicleOutcome};

/// Number of points of the coverage-over-time curve.
const COVERAGE_POINTS: usize = 32;

/// Configuration of a fleet campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Fleet size.
    pub vehicles: u32,
    /// Fraction of vehicles a defect is seeded into (subject to the drawn
    /// blueprint offering a diagnosable session).
    pub defect_fraction: f64,
    /// Campaign horizon in seconds.
    pub horizon_s: f64,
    /// Campaign seed; per-vehicle seeds derive from it.
    pub seed: u64,
    /// Worker threads; `0` = auto (all cores, `EEA_THREADS` overrides).
    pub threads: usize,
    /// Shut-off event model vehicles draw their schedules from.
    pub shutoff: ShutoffModel,
    /// Gateway aggregation batch size (uploads per batch).
    pub batch_size: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vehicles: 1_000,
            defect_fraction: 0.02,
            horizon_s: 30.0 * 86_400.0,
            seed: 0xF1EE7CA4,
            threads: 0,
            shutoff: ShutoffModel::default(),
            batch_size: 64,
        }
    }
}

/// A validated, ready-to-run campaign over a CUT model and a blueprint
/// set.
#[derive(Debug)]
pub struct Campaign<'a> {
    cut: &'a CutModel,
    blueprints: &'a [VehicleBlueprint],
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Validates the configuration against the CUT model and blueprints.
    ///
    /// # Errors
    ///
    /// * [`FleetError::EmptyFleet`] for zero vehicles,
    /// * [`FleetError::InvalidHorizon`] for a non-positive or non-finite
    ///   horizon,
    /// * [`FleetError::InvalidDefectFraction`] outside `[0, 1]`,
    /// * [`FleetError::InvalidShutoffModel`] for degenerate window/gap
    ///   bounds,
    /// * [`FleetError::ZeroBatchSize`] for a zero gateway batch size,
    /// * [`FleetError::NoDiagnosableBlueprint`] when no blueprint could
    ///   ever deliver fail data.
    pub fn new(
        cut: &'a CutModel,
        blueprints: &'a [VehicleBlueprint],
        config: CampaignConfig,
    ) -> Result<Self, FleetError> {
        if config.vehicles == 0 {
            return Err(FleetError::EmptyFleet);
        }
        if !config.horizon_s.is_finite() || config.horizon_s <= 0.0 {
            return Err(FleetError::InvalidHorizon(config.horizon_s));
        }
        if !(0.0..=1.0).contains(&config.defect_fraction) {
            return Err(FleetError::InvalidDefectFraction(config.defect_fraction));
        }
        config.shutoff.validate()?;
        if config.batch_size == 0 {
            return Err(FleetError::ZeroBatchSize);
        }
        if !blueprints.iter().any(VehicleBlueprint::is_campaign_capable) {
            return Err(FleetError::NoDiagnosableBlueprint);
        }
        Ok(Campaign {
            cut,
            blueprints,
            config,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Deterministic per-vehicle seed: one SplitMix64 step over the
    /// campaign seed mixed with the vehicle index. Independent of thread
    /// count and chunking by construction.
    fn vehicle_seed(&self, index: u32) -> u64 {
        let mixed = self
            .config
            .seed
            .wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng::new(mixed).next_u64()
    }

    /// Runs the campaign and aggregates the fleet report.
    pub fn run(&self) -> FleetReport {
        let outcomes = self.simulate_fleet();
        self.aggregate(&outcomes)
    }

    /// Simulates all vehicles, worklist-parallel over contiguous index
    /// chunks; outcomes are merged back in vehicle-index order.
    fn simulate_fleet(&self) -> Vec<VehicleOutcome> {
        let n = self.config.vehicles as usize;
        let threads = resolve_threads(self.config.threads).min(n).max(1);
        let sim_one = |i: u32| {
            simulate_vehicle(
                i,
                self.blueprints,
                self.cut,
                &self.config.shutoff,
                self.config.defect_fraction,
                self.config.horizon_s,
                self.vehicle_seed(i),
            )
        };
        if threads == 1 {
            return (0..self.config.vehicles).map(sim_one).collect();
        }
        let chunk = n.div_ceil(threads);
        let sim_ref = &sim_one;
        let mut merged: Vec<VehicleOutcome> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || {
                    (lo as u32..hi as u32).map(sim_ref).collect::<Vec<_>>()
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => merged.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        merged
    }

    /// Serial gateway-side aggregation: sort uploads by arrival, process
    /// in batches, diagnose each against the shared dictionary (cached
    /// per fault index), then fold the fleet statistics.
    fn aggregate(&self, outcomes: &[VehicleOutcome]) -> FleetReport {
        let mut uploads: Vec<Upload> = outcomes.iter().filter_map(|o| o.upload).collect();
        uploads.sort_by(|a, b| {
            a.time_s
                .total_cmp(&b.time_s)
                .then(a.vehicle.cmp(&b.vehicle))
        });

        // Diagnosis cache: every vehicle carries the same CUT, so two
        // uploads of the same fault produce identical fail data.
        let mut rank_of: BTreeMap<u32, (usize, usize, bool)> = BTreeMap::new();
        let mut findings = Vec::with_capacity(uploads.len());
        for (k, up) in uploads.iter().enumerate() {
            let (candidates, rank, localized) =
                *rank_of.entry(up.fault_index).or_insert_with(|| {
                    let cands = self.cut.diagnose(self.cut.fail_data(up.fault_index));
                    let rank = self.cut.true_fault_rank(up.fault_index).unwrap_or(0);
                    let localized = self.cut.localizes(up.fault_index);
                    (cands.len(), rank, localized)
                });
            findings.push(DefectFinding {
                vehicle: up.vehicle,
                ecu: up.ecu,
                fault_index: up.fault_index,
                detected_at_s: up.time_s,
                batch: (k / self.config.batch_size) as u32,
                candidates,
                true_fault_rank: rank,
                localized,
            });
        }
        let batches = uploads.len().div_ceil(self.config.batch_size) as u32;

        let defective = outcomes.iter().filter(|o| o.defect.is_some()).count() as u32;
        let detected = findings.len() as u32;
        let localized = findings.iter().filter(|f| f.localized).count() as u32;

        let latencies: Vec<f64> = findings.iter().map(|f| f.detected_at_s).collect();
        let latency = LatencyStats::from_sorted(&latencies);

        // Coverage over time at fixed horizon fractions; uploads are
        // already time-sorted, so one forward scan suffices.
        let mut coverage_over_time = Vec::with_capacity(COVERAGE_POINTS);
        let mut seen = 0usize;
        for p in 1..=COVERAGE_POINTS {
            let t = self.config.horizon_s * p as f64 / COVERAGE_POINTS as f64;
            while seen < latencies.len() && latencies[seen] <= t {
                seen += 1;
            }
            let frac = if defective == 0 {
                0.0
            } else {
                seen as f64 / f64::from(defective)
            };
            coverage_over_time.push((t, frac));
        }

        // Per-ECU aggregation.
        let mut per_ecu_map: BTreeMap<eea_model::ResourceId, EcuAcc> = BTreeMap::new();
        for o in outcomes {
            if let Some(d) = o.defect {
                per_ecu_map.entry(d.ecu).or_default().seeded += 1;
            }
        }
        for f in &findings {
            let acc = per_ecu_map.entry(f.ecu).or_default();
            acc.detected += 1;
            acc.localized += u32::from(f.localized);
            acc.latency_sum += f.detected_at_s;
            *acc.fault_counts.entry(f.fault_index).or_insert(0) += 1;
        }
        let per_ecu = per_ecu_map
            .into_iter()
            .map(|(ecu, acc)| {
                let mut top_faults: Vec<(u32, u32)> = acc.fault_counts.into_iter().collect();
                top_faults.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                EcuReport {
                    ecu,
                    seeded: acc.seeded,
                    detected: acc.detected,
                    localized: acc.localized,
                    mean_latency_s: if acc.detected == 0 {
                        0.0
                    } else {
                        acc.latency_sum / f64::from(acc.detected)
                    },
                    top_faults,
                }
            })
            .collect();

        FleetReport {
            vehicles: self.config.vehicles,
            defective,
            detected,
            localized,
            sessions_completed: outcomes.iter().map(|o| u64::from(o.sessions_completed)).sum(),
            windows_used: outcomes.iter().map(|o| u64::from(o.windows_used)).sum(),
            bist_time_s: outcomes.iter().map(|o| o.bist_time_s).sum(),
            batches,
            latency,
            coverage_over_time,
            per_ecu,
            findings,
        }
    }
}

#[derive(Default)]
struct EcuAcc {
    seeded: u32,
    detected: u32,
    localized: u32,
    latency_sum: f64,
    fault_counts: BTreeMap<u32, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::EcuSessionPlan;
    use crate::cut::CutConfig;
    use eea_model::ResourceId;

    fn small_cut() -> CutModel {
        CutModel::build(CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        })
        .expect("substrate builds")
    }

    fn capable_blueprint() -> VehicleBlueprint {
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: ResourceId::from_index(2),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 900.0,
                local_storage: false,
                upload_bandwidth_bytes_per_s: 200.0,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
        }
    }

    #[test]
    fn config_validation_catches_degenerate_campaigns() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let bad = |f: fn(&mut CampaignConfig)| {
            let mut cfg = CampaignConfig::default();
            f(&mut cfg);
            Campaign::new(&cut, &bp, cfg).err()
        };
        assert_eq!(bad(|c| c.vehicles = 0), Some(FleetError::EmptyFleet));
        assert_eq!(
            bad(|c| c.horizon_s = -1.0),
            Some(FleetError::InvalidHorizon(-1.0))
        );
        assert_eq!(
            bad(|c| c.defect_fraction = 1.5),
            Some(FleetError::InvalidDefectFraction(1.5))
        );
        assert_eq!(bad(|c| c.batch_size = 0), Some(FleetError::ZeroBatchSize));
        let mut incapable = capable_blueprint();
        incapable.sessions[0].upload_bandwidth_bytes_per_s = 0.0;
        assert_eq!(
            Campaign::new(&cut, &[incapable], CampaignConfig::default()).err(),
            Some(FleetError::NoDiagnosableBlueprint)
        );
    }

    #[test]
    fn seeded_defects_are_detected_and_localized() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let cfg = CampaignConfig {
            vehicles: 200,
            defect_fraction: 0.25,
            horizon_s: 14.0 * 86_400.0,
            seed: 11,
            threads: 1,
            ..CampaignConfig::default()
        };
        let report = Campaign::new(&cut, &bp, cfg).expect("valid").run();
        assert!(report.defective > 0, "fraction 0.25 of 200 seeds defects");
        assert_eq!(report.detected, report.defective, "horizon is generous");
        assert_eq!(report.localized, report.detected);
        assert_eq!(report.latency.count, report.detected);
        assert!(report.latency.min_s > 0.0);
        let last = report.coverage_over_time.last().expect("curve non-empty");
        assert!((last.1 - 1.0).abs() < 1e-12);
        assert_eq!(report.per_ecu.len(), 1);
        assert_eq!(report.per_ecu[0].seeded, report.defective);
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let cut = small_cut();
        let bp = [capable_blueprint()];
        let mut cfg = CampaignConfig {
            vehicles: 300,
            defect_fraction: 0.1,
            horizon_s: 7.0 * 86_400.0,
            seed: 5,
            threads: 1,
            ..CampaignConfig::default()
        };
        let baseline = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
        for threads in [2, 3, 8] {
            cfg.threads = threads;
            let report = Campaign::new(&cut, &bp, cfg.clone()).expect("valid").run();
            assert_eq!(report, baseline, "threads={threads}");
        }
    }
}
