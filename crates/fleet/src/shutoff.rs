//! Shut-off event model.
//!
//! The paper runs BIST sessions while a vehicle is parked and the ECU
//! would otherwise power down — the *shut-off* events of Eq. (5). A fleet
//! campaign sees each vehicle alternate between driving gaps (no BIST)
//! and shut-off windows (BIST may run, up to the implementation's Eq. (5)
//! shut-off budget per window). Windows and gaps are drawn uniformly from
//! per-vehicle ranges with the vehicle's own seeded RNG, so the schedule
//! is deterministic per vehicle and independent of thread count.

use eea_moea::Rng;

use crate::error::FleetError;

/// Uniform ranges (seconds) the per-vehicle shut-off schedule is drawn
/// from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShutoffModel {
    /// Shortest driving gap between two shut-off events.
    pub min_gap_s: f64,
    /// Longest driving gap between two shut-off events.
    pub max_gap_s: f64,
    /// Shortest shut-off window.
    pub min_window_s: f64,
    /// Longest shut-off window.
    pub max_window_s: f64,
}

impl Default for ShutoffModel {
    fn default() -> Self {
        // A commuter-style duty cycle: parked 10 min – 30 min several
        // times a day, driving 1 h – 3 h in between.
        ShutoffModel {
            min_gap_s: 3_600.0,
            max_gap_s: 10_800.0,
            min_window_s: 600.0,
            max_window_s: 1_800.0,
        }
    }
}

impl ShutoffModel {
    /// Validates the ranges: positive, finite, not inverted.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidShutoffModel`] on degenerate bounds.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bounds = [
            self.min_gap_s,
            self.max_gap_s,
            self.min_window_s,
            self.max_window_s,
        ];
        if bounds.iter().any(|b| !b.is_finite() || *b <= 0.0)
            || self.min_gap_s > self.max_gap_s
            || self.min_window_s > self.max_window_s
        {
            return Err(FleetError::InvalidShutoffModel);
        }
        Ok(())
    }

    /// Draws the next (driving gap, shut-off window) pair.
    pub fn next_event(&self, rng: &mut Rng) -> (f64, f64) {
        let gap = self.min_gap_s + rng.unit() * (self.max_gap_s - self.min_gap_s);
        let window = self.min_window_s + rng.unit() * (self.max_window_s - self.min_window_s);
        (gap, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_valid() {
        assert!(ShutoffModel::default().validate().is_ok());
    }

    #[test]
    fn degenerate_models_are_rejected() {
        let m = ShutoffModel {
            min_window_s: 0.0,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
        let m = ShutoffModel {
            min_gap_s: ShutoffModel::default().max_gap_s + 1.0,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
        let m = ShutoffModel {
            max_window_s: f64::INFINITY,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
    }

    #[test]
    fn draws_stay_in_range_and_are_seed_deterministic() {
        let m = ShutoffModel::default();
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            let (gap, win) = m.next_event(&mut a);
            assert!((m.min_gap_s..=m.max_gap_s).contains(&gap));
            assert!((m.min_window_s..=m.max_window_s).contains(&win));
            assert_eq!((gap, win), m.next_event(&mut b));
        }
    }
}
