//! Shut-off event model.
//!
//! The paper runs BIST sessions while a vehicle is parked and the ECU
//! would otherwise power down — the *shut-off* events of Eq. (5). A fleet
//! campaign sees each vehicle alternate between driving gaps (no BIST)
//! and shut-off windows (BIST may run, up to the implementation's Eq. (5)
//! shut-off budget per window). Windows and gaps are drawn uniformly from
//! per-vehicle ranges with the vehicle's own seeded RNG, so the schedule
//! is deterministic per vehicle and independent of thread count.

use eea_moea::Rng;

use crate::error::FleetError;

/// Uniform ranges (seconds) the per-vehicle shut-off schedule is drawn
/// from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShutoffModel {
    /// Shortest driving gap between two shut-off events.
    pub min_gap_s: f64,
    /// Longest driving gap between two shut-off events.
    pub max_gap_s: f64,
    /// Shortest shut-off window.
    pub min_window_s: f64,
    /// Longest shut-off window.
    pub max_window_s: f64,
}

impl Default for ShutoffModel {
    fn default() -> Self {
        // A commuter-style duty cycle: parked 10 min – 30 min several
        // times a day, driving 1 h – 3 h in between.
        ShutoffModel {
            min_gap_s: 3_600.0,
            max_gap_s: 10_800.0,
            min_window_s: 600.0,
            max_window_s: 1_800.0,
        }
    }
}

impl ShutoffModel {
    /// Validates the ranges: positive, finite, not inverted.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidShutoffModel`] on degenerate bounds.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bounds = [
            self.min_gap_s,
            self.max_gap_s,
            self.min_window_s,
            self.max_window_s,
        ];
        if bounds.iter().any(|b| !b.is_finite() || *b <= 0.0)
            || self.min_gap_s > self.max_gap_s
            || self.min_window_s > self.max_window_s
        {
            return Err(FleetError::InvalidShutoffModel);
        }
        Ok(())
    }

    /// Draws the next (driving gap, shut-off window) pair.
    pub fn next_event(&self, rng: &mut Rng) -> (f64, f64) {
        let gap = self.min_gap_s + rng.unit() * (self.max_gap_s - self.min_gap_s);
        let window = self.min_window_s + rng.unit() * (self.max_window_s - self.min_window_s);
        (gap, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_valid() {
        assert!(ShutoffModel::default().validate().is_ok());
    }

    #[test]
    fn degenerate_models_are_rejected() {
        let m = ShutoffModel {
            min_window_s: 0.0,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
        let m = ShutoffModel {
            min_gap_s: ShutoffModel::default().max_gap_s + 1.0,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
        let m = ShutoffModel {
            max_window_s: f64::INFINITY,
            ..ShutoffModel::default()
        };
        assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
    }

    #[test]
    fn draws_stay_in_range_and_are_seed_deterministic() {
        let m = ShutoffModel::default();
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            let (gap, win) = m.next_event(&mut a);
            assert!((m.min_gap_s..=m.max_gap_s).contains(&gap));
            assert!((m.min_window_s..=m.max_window_s).contains(&win));
            assert_eq!((gap, win), m.next_event(&mut b));
        }
    }

    #[test]
    fn zero_length_windows_and_gaps_are_rejected() {
        // A zero-length window bound — min, max, or both — is degenerate:
        // the campaign could open windows no BIST step fits into.
        for bad in [0.0, -1.0] {
            let m = ShutoffModel {
                min_window_s: bad,
                max_window_s: bad,
                ..ShutoffModel::default()
            };
            assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
            let m = ShutoffModel {
                min_gap_s: bad,
                ..ShutoffModel::default()
            };
            assert_eq!(m.validate(), Err(FleetError::InvalidShutoffModel));
        }
    }

    #[test]
    fn point_ranges_draw_exactly_and_keep_the_stream_contract() {
        // min == max is valid (fixed-length windows) and every draw lands
        // on the point value — while still consuming two RNG draws per
        // event, the stream contract the frozen digests pin.
        let m = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 50.0,
            max_window_s: 50.0,
        };
        assert!(m.validate().is_ok());
        let mut rng = Rng::new(9);
        let mut shadow = Rng::new(9);
        for _ in 0..20 {
            assert_eq!(m.next_event(&mut rng), (100.0, 50.0));
            shadow.unit();
            shadow.unit();
        }
        assert_eq!(rng.next_u64(), shadow.next_u64());
    }

    #[test]
    fn window_exactly_the_minimum_bist_slice_is_emitted() {
        // Schedule-derived windows filter idle slices with an *inclusive*
        // minimum: a 10 s period with 5 s of work leaves idle segments of
        // exactly 5 s, and with `min_slice_s` also 5 s every emitted
        // window must be exactly that boundary value — off-by-one in the
        // filter would silence the schedule entirely.
        use eea_sched::{
            FlatBudget, PeriodicTask, SchedPlan, TaskSchedule, TaskSetConfig, WindowSource,
        };
        let cfg = TaskSetConfig {
            periodic: vec![PeriodicTask {
                period_us: 10_000_000,
                offset_us: 0,
                wcet_us: 5_000_000,
                priority: 0,
            }],
            sporadic: vec![],
            min_slice_s: 5.0,
        };
        let plan = SchedPlan::build(&cfg).expect("valid plan");
        let flat = FlatBudget::from_bounds(100.0, 100.0, 1_000.0, 1_000.0);
        let mut src = TaskSchedule::new(flat, &plan, 1e9);
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let (gap, window) = src.next_window(&mut rng);
            assert!(gap > 0.0);
            assert_eq!(window, 5.0, "boundary slices pass the inclusive filter");
        }
    }

    #[test]
    fn horizon_straddling_windows_respect_the_horizon() {
        // Windows longer than the whole campaign horizon: each opens
        // before the horizon and straddles it. The campaign must accept
        // the model, use those windows, and never report a detection past
        // the horizon (sessions finishing inside the straddling tail are
        // unobservable).
        use crate::blueprint::{EcuSessionPlan, VehicleBlueprint};
        use crate::campaign::{Campaign, CampaignConfig};
        use crate::cut::{CutConfig, CutModel};
        use eea_bist::CutFamily;
        use eea_model::ResourceId;

        let cut = CutModel::build(CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        })
        .expect("substrate builds");
        let bp = [VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: ResourceId::from_index(0),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 0.0,
                local_storage: true,
                upload_bandwidth_bytes_per_s: 400.0,
                family: CutFamily::Logic,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
            channel: eea_can::ChannelConfig::Clean,
            task_set: None,
        }];
        let horizon_s = 1_000.0;
        let cfg = CampaignConfig {
            vehicles: 200,
            defect_fraction: 1.0,
            horizon_s,
            seed: 77,
            threads: 1,
            shutoff: ShutoffModel {
                min_gap_s: 400.0,
                max_gap_s: 600.0,
                min_window_s: 2_000.0,
                max_window_s: 3_000.0,
            },
            ..CampaignConfig::default()
        };
        let report = Campaign::new(&cut, &bp, cfg)
            .expect("straddling windows are a valid model")
            .run();
        assert!(report.windows_used > 0, "pre-horizon starts open windows");
        assert!(report.detected > 0, "work completes inside the straddle");
        for finding in &report.findings {
            assert!(
                finding.detected_at_s <= horizon_s,
                "no detection is observable past the horizon: {}",
                finding.detected_at_s
            );
        }
    }
}
