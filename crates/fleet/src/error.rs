//! The fleet engine's typed error enum, converging into
//! [`eea_dse::EeaError`] like every other layer of the workspace (see
//! DESIGN.md §7/§8).

use std::error::Error;
use std::fmt;

use eea_can::{ChannelError, MirrorError, TransportError};
use eea_dse::EeaError;
use eea_netlist::{ScanError, SynthError};
use eea_sched::SchedError;

/// Error of the fleet campaign engine. Everything a hostile campaign
/// configuration or a degenerate design-space front can trigger surfaces
/// here as a typed value; the library layer never panics (policy header in
/// `lib.rs`).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The campaign requests zero vehicles.
    EmptyFleet,
    /// The campaign horizon is not a positive finite duration.
    InvalidHorizon(f64),
    /// The defect fraction lies outside `[0, 1]`.
    InvalidDefectFraction(f64),
    /// The shut-off window model is degenerate (non-positive or inverted
    /// window/gap bounds).
    InvalidShutoffModel,
    /// The gateway batch size is zero — uploads could never drain.
    ZeroBatchSize,
    /// The gateway ingest queue capacity is zero — every arrival would be
    /// shed before a worker could ever fold it.
    ZeroQueueCapacity,
    /// The gateway ingest queue is full; the arrival was shed (counted in
    /// the next snapshot's `shed` field). Callers under backpressure
    /// should [`drain`](crate::GatewayService::drain) and retry.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// An arrival named a vehicle index outside the fleet the gateway was
    /// provisioned for — an abuse-boundary rejection, not a fold error.
    UnknownVehicle {
        /// The out-of-range vehicle index.
        vehicle: u32,
        /// The provisioned fleet size (valid indices are `0..fleet`).
        fleet: u32,
    },
    /// An arrival carried a structurally malformed upload frame (the
    /// field-level taxonomy is in [`MalformedKind`]). Rejected with this
    /// typed error and counted in the gateway's `malformed` counter —
    /// never folded, never panicking, never silently shed.
    MalformedUpload {
        /// The vehicle index the arrival claimed.
        vehicle: u32,
        /// Which structural check the frame failed.
        kind: MalformedKind,
    },
    /// A blueprint's channel-impairment configuration is degenerate
    /// (rate outside `[0, 1)` or a zero truncation cap) — surfaced at
    /// campaign construction, never mid-simulation.
    Channel(ChannelError),
    /// No blueprint of the exploration front carries a diagnosable BIST
    /// session (finite transfer time and non-zero upload bandwidth), so no
    /// vehicle could ever produce fail data.
    NoDiagnosableBlueprint,
    /// The substrate CUT has no session-detectable fault — seeding defects
    /// would be meaningless.
    NoDetectableFault,
    /// Substrate CUT synthesis failed.
    Synth(SynthError),
    /// Scan-chain insertion on the substrate CUT failed.
    Scan(ScanError),
    /// Schedule mirroring of a blueprint's functional messages failed.
    Mirror(MirrorError),
    /// The campaign's transport configuration is degenerate or a backend
    /// could not be built over a blueprint's message sets.
    Transport(TransportError),
    /// A blueprint's in-ECU task set is structurally invalid or its
    /// fixed-priority schedule misses a deadline — surfaced at campaign
    /// construction, never mid-simulation.
    Sched(SchedError),
    /// A blueprint carries a diagnosable SRAM BIST session, but the
    /// campaign was built without a [`MarchTest`](eea_bist::MarchTest)
    /// model to seed and diagnose memory faults from.
    MissingSramModel,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "campaign needs at least one vehicle"),
            FleetError::InvalidHorizon(h) => {
                write!(f, "campaign horizon must be positive and finite, got {h}")
            }
            FleetError::InvalidDefectFraction(p) => {
                write!(f, "defect fraction must lie in [0, 1], got {p}")
            }
            FleetError::InvalidShutoffModel => {
                write!(f, "shut-off window model has non-positive or inverted bounds")
            }
            FleetError::ZeroBatchSize => write!(f, "gateway upload batch size must be positive"),
            FleetError::ZeroQueueCapacity => {
                write!(f, "gateway ingest queue capacity must be positive")
            }
            FleetError::Overloaded { capacity } => {
                write!(f, "gateway ingest queue full ({capacity} pending), arrival shed")
            }
            FleetError::UnknownVehicle { vehicle, fleet } => {
                write!(f, "arrival from unknown vehicle {vehicle} (fleet size {fleet})")
            }
            FleetError::MalformedUpload { vehicle, kind } => {
                write!(f, "malformed upload frame from vehicle {vehicle}: {kind}")
            }
            FleetError::Channel(e) => write!(f, "blueprint channel: {e}"),
            FleetError::NoDiagnosableBlueprint => write!(
                f,
                "no blueprint carries a diagnosable BIST session (finite transfer, non-zero upload bandwidth)"
            ),
            FleetError::NoDetectableFault => {
                write!(f, "substrate CUT has no session-detectable fault to seed")
            }
            FleetError::Synth(e) => write!(f, "substrate synthesis: {e}"),
            FleetError::Scan(e) => write!(f, "substrate scan insertion: {e}"),
            FleetError::Mirror(e) => write!(f, "blueprint mirroring: {e}"),
            FleetError::Transport(e) => write!(f, "blueprint transport: {e}"),
            FleetError::Sched(e) => write!(f, "blueprint task schedule: {e}"),
            FleetError::MissingSramModel => write!(
                f,
                "blueprint selects SRAM BIST sessions but the campaign has no March-test model"
            ),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Synth(e) => Some(e),
            FleetError::Scan(e) => Some(e),
            FleetError::Mirror(e) => Some(e),
            FleetError::Transport(e) => Some(e),
            FleetError::Sched(e) => Some(e),
            FleetError::Channel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthError> for FleetError {
    fn from(e: SynthError) -> Self {
        FleetError::Synth(e)
    }
}

impl From<ScanError> for FleetError {
    fn from(e: ScanError) -> Self {
        FleetError::Scan(e)
    }
}

impl From<MirrorError> for FleetError {
    fn from(e: MirrorError) -> Self {
        FleetError::Mirror(e)
    }
}

impl From<TransportError> for FleetError {
    fn from(e: TransportError) -> Self {
        FleetError::Transport(e)
    }
}

impl From<SchedError> for FleetError {
    fn from(e: SchedError) -> Self {
        FleetError::Sched(e)
    }
}

impl From<ChannelError> for FleetError {
    fn from(e: ChannelError) -> Self {
        FleetError::Channel(e)
    }
}

/// The ways an upload frame can be structurally malformed — the typed
/// taxonomy behind [`FleetError::MalformedUpload`]. Each variant names
/// one field-level invariant the gateway checks before folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedKind {
    /// The accumulated BIST time is not a finite non-negative duration.
    NonFiniteBistTime,
    /// The embedded upload names a different vehicle than the arrival —
    /// a spliced or replayed frame.
    VehicleMismatch,
    /// The upload timestamp is not a finite non-negative instant.
    NonFiniteUploadTime,
    /// The claimed fail-data payload exceeds the on-chip fail-memory
    /// bound ([`eea_bist::FAIL_DATA_BYTES`]) — no real session produces
    /// it.
    OversizedFailData,
    /// The retransmission accounting is inconsistent (negative or
    /// non-finite overhead).
    NegativeRetransmit,
    /// The claimed fault index is outside the diagnosis dictionary of the
    /// upload's CUT family — diagnosing it would index past the model.
    UnknownFault,
}

impl fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedKind::NonFiniteBistTime => write!(f, "non-finite or negative BIST time"),
            MalformedKind::VehicleMismatch => {
                write!(f, "embedded upload names a different vehicle")
            }
            MalformedKind::NonFiniteUploadTime => {
                write!(f, "non-finite or negative upload timestamp")
            }
            MalformedKind::OversizedFailData => {
                write!(f, "fail-data payload exceeds the fail-memory bound")
            }
            MalformedKind::NegativeRetransmit => {
                write!(f, "negative or non-finite retransmission overhead")
            }
            MalformedKind::UnknownFault => {
                write!(f, "fault index outside the family's diagnosis dictionary")
            }
        }
    }
}

/// Convergence into the workspace-wide taxonomy: the dependency direction
/// (`eea-fleet` builds *on* `eea-dse`) keeps the concrete type out of
/// [`EeaError`], so the conversion renders the message into the dedicated
/// `Fleet` variant. `?` in a `fn main() -> Result<_, EeaError>` binary
/// composes across both layers.
impl From<FleetError> for EeaError {
    fn from(e: FleetError) -> Self {
        EeaError::Fleet(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_into_eea_error() {
        let e: EeaError = FleetError::EmptyFleet.into();
        assert!(matches!(e, EeaError::Fleet(_)));
        assert!(e.to_string().contains("fleet:"));
        assert!(e.to_string().contains("at least one vehicle"));
    }

    #[test]
    fn gateway_variants_render_their_bounds() {
        let e = FleetError::Overloaded { capacity: 64 };
        assert!(e.to_string().contains("64 pending"));
        assert!(e.source().is_none());
        let e = FleetError::UnknownVehicle {
            vehicle: 9,
            fleet: 4,
        };
        assert!(e.to_string().contains("vehicle 9"));
        assert!(e.to_string().contains("fleet size 4"));
        assert!(FleetError::ZeroQueueCapacity
            .to_string()
            .contains("queue capacity"));
    }

    #[test]
    fn sched_and_sram_variants_render() {
        let e = FleetError::Sched(SchedError::InvalidMinSlice);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("task schedule"));
        let e: FleetError = SchedError::InvalidMinSlice.into();
        assert!(matches!(e, FleetError::Sched(_)));
        assert!(FleetError::MissingSramModel
            .to_string()
            .contains("March-test"));
        assert!(FleetError::MissingSramModel.source().is_none());
    }

    #[test]
    fn malformed_and_channel_variants_render() {
        let e = FleetError::MalformedUpload {
            vehicle: 17,
            kind: MalformedKind::VehicleMismatch,
        };
        assert!(e.to_string().contains("vehicle 17"));
        assert!(e.to_string().contains("different vehicle"));
        assert!(e.source().is_none());
        for kind in [
            MalformedKind::NonFiniteBistTime,
            MalformedKind::VehicleMismatch,
            MalformedKind::NonFiniteUploadTime,
            MalformedKind::OversizedFailData,
            MalformedKind::NegativeRetransmit,
            MalformedKind::UnknownFault,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        let e = FleetError::Channel(ChannelError::ZeroTruncationCap);
        assert!(e.to_string().contains("channel"));
        assert!(e.source().is_some());
        let e: FleetError = ChannelError::ZeroTruncationCap.into();
        assert!(matches!(e, FleetError::Channel(_)));
    }

    #[test]
    fn sources_wrap_layers() {
        let e = FleetError::Mirror(MirrorError::NoMessages);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mirroring"));
        assert!(FleetError::EmptyFleet.source().is_none());
    }
}
