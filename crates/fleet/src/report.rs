//! Fleet campaign reports.
//!
//! Everything the gateway-side aggregation produces: detection-latency
//! distribution, per-ECU candidate rankings and the campaign's coverage
//! curve over time. All types derive `PartialEq` and carry **no** timing
//! or thread-count fields, so a report is comparable bit-for-bit across
//! thread counts — the determinism contract tests and benches assert.

use std::fmt;

use eea_bist::CutFamily;
use eea_model::ResourceId;

/// Summary statistics of the detection-latency distribution (seconds from
/// campaign start to fail-data arrival at the gateway).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of detections the statistics cover. `u64` so the counter
    /// can never silently wrap, whatever fleet size feeds it; `Debug`
    /// prints integers width-independently, so the widening from the
    /// original `u32` left every frozen report digest unchanged.
    pub count: u64,
    /// Shortest observed latency.
    pub min_s: f64,
    /// Longest observed latency.
    pub max_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median (50th percentile).
    pub p50_s: f64,
    /// 90th percentile.
    pub p90_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

impl LatencyStats {
    /// Computes the statistics from latencies sorted ascending. Returns
    /// all-zero stats for an empty slice.
    ///
    /// Percentiles use the **nearest-rank (`round`) convention**:
    /// `p(q) = sorted[round((n − 1) · q)]`, the order statistic whose
    /// fractional rank is closest to `q`, with `.5` rounding away from
    /// zero (toward the larger rank, per [`f64::round`]). Consequences
    /// the tests pin: for `n = 2`, p50 is the *larger* value (rank 0.5
    /// rounds to 1); for `n = 3`, p50 is the true median `sorted[1]`;
    /// duplicate timestamps are ordinary order statistics, so the
    /// percentile of a run of equal values is that value. The sharded
    /// pipeline computes percentiles only on the **globally merged**
    /// latency sequence — never per shard — so these semantics cannot
    /// shift with shard boundaries.
    pub(crate) fn from_sorted(sorted: &[f64]) -> Self {
        let n = sorted.len();
        if n == 0 {
            return LatencyStats {
                count: 0,
                min_s: 0.0,
                max_s: 0.0,
                mean_s: 0.0,
                p50_s: 0.0,
                p90_s: 0.0,
                p99_s: 0.0,
            };
        }
        let pick = |q: f64| sorted[(((n - 1) as f64) * q).round() as usize];
        LatencyStats {
            // Checked, not `as`: usize → u64 is lossless on every
            // supported target, and the cast sweep leaves no silent
            // narrowing behind for hypothetical wider-usize ones.
            count: u64::try_from(n).unwrap_or(u64::MAX),
            min_s: sorted[0],
            max_s: sorted[n - 1],
            mean_s: sorted.iter().sum::<f64>() / n as f64,
            p50_s: pick(0.50),
            p90_s: pick(0.90),
            p99_s: pick(0.99),
        }
    }
}

/// One diagnosed defect, as the aggregation pipeline saw it.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectFinding {
    /// The reporting vehicle.
    pub vehicle: u32,
    /// The defective ECU.
    pub ecu: ResourceId,
    /// Index of the seeded fault in the campaign's CUT model.
    pub fault_index: u32,
    /// Absolute campaign time of the fail-data upload.
    pub detected_at_s: f64,
    /// Gateway batch the upload was processed in (0-based). `u64`: the
    /// batch index is `upload ordinal / batch_size` and must not wrap
    /// for any fleet size × batch size combination.
    pub batch: u64,
    /// Number of candidate faults diagnosis returned.
    pub candidates: usize,
    /// Rank (1-based, by score class) of the true fault among the
    /// candidates; `0` when diagnosis missed it entirely.
    pub true_fault_rank: usize,
    /// Whether the true fault sits in the top-scoring equivalence class.
    pub localized: bool,
}

/// Per-ECU aggregation over all findings.
#[derive(Debug, Clone, PartialEq)]
pub struct EcuReport {
    /// The ECU.
    pub ecu: ResourceId,
    /// Defects seeded on this ECU (whether or not detected).
    pub seeded: u32,
    /// Defects whose fail data reached the gateway within the horizon.
    pub detected: u32,
    /// Detected defects whose true fault topped the candidate ranking.
    pub localized: u32,
    /// Mean detection latency of this ECU's detections (0 when none).
    pub mean_latency_s: f64,
    /// Most frequently diagnosed fault indices on this ECU, with counts,
    /// sorted by count descending then fault index — the campaign-level
    /// candidate ranking.
    pub top_faults: Vec<(u32, u32)>,
}

/// Per-CUT-family aggregation over all findings: how detection and
/// localization split between the scan-based logic BIST and the
/// March-test memory BIST in a mixed-family fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyReport {
    /// The CUT family.
    pub family: CutFamily,
    /// Detections whose seeded fault belongs to this family.
    pub detected: u64,
    /// Among them, those whose true fault topped the candidate ranking.
    pub localized: u64,
    /// Detection-latency distribution of this family's detections.
    pub latency: LatencyStats,
}

/// One point of the robustness block's localization-rank CDF: how many
/// impaired uploads diagnosed their true fault within `bound` score
/// classes, against the same uploads' clean-channel baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankCdfPoint {
    /// Inclusive rank bound (1 = top score class).
    pub bound: usize,
    /// Impaired uploads whose observed-payload diagnosis ranked the true
    /// fault within `bound` (rank 0 — true fault missing — never counts).
    pub impaired_le: u64,
    /// The same uploads' count under their clean-channel twin diagnosis.
    pub clean_le: u64,
}

/// The robustness axis of a [`FleetReport`]: what the channel impairment
/// layer did to the campaign's uploads and how much diagnosis quality it
/// cost, priced against each impaired fault's clean-channel twin. Only
/// present when the campaign actually saw channel effects (impairments,
/// retransmissions, or ingest rejects) — a clean campaign's report is
/// bit-identical to the pre-channel engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Uploads whose fail data was impaired in transit (capped, window
    /// lost, or corrupted).
    pub impaired_uploads: u64,
    /// Bus frames retransmitted after error frames, fleet-wide.
    pub retransmitted_frames: u64,
    /// Extra upload seconds those retransmissions cost, fleet-wide
    /// (folded in global upload order — deterministic).
    pub retransmit_overhead_s: f64,
    /// Impaired uploads that lost one failing window in transit.
    pub window_lost_uploads: u64,
    /// Impaired uploads with one corrupted window/syndrome entry.
    pub corrupted_uploads: u64,
    /// Impaired uploads whose channel byte cap actually clipped entries.
    pub cap_truncated_uploads: u64,
    /// Malformed upload frames the gateway ingest boundary rejected.
    pub rejected_uploads: u64,
    /// Impaired uploads whose true-fault rank got strictly worse than
    /// the clean baseline (a vanished true fault counts as worse).
    pub rank_degraded: u64,
    /// Impaired uploads whose rank got strictly better — possible when a
    /// lost/corrupted window prunes a look-alike candidate.
    pub rank_improved: u64,
    /// Impaired uploads localized on the clean channel but not anymore.
    pub delocalized: u64,
    /// Localization-rank CDF at fixed bounds, impaired vs clean baseline.
    pub rank_cdf: Vec<RankCdfPoint>,
}

/// The complete result of a fleet campaign.
///
/// `Debug` is implemented manually: it renders exactly like the derived
/// implementation for every pre-existing field and appends `per_family`
/// (and then `robustness`) only when populated. Pure-logic, clean-channel
/// campaigns leave both empty, so their `Debug` output — and with it the
/// frozen report digests — is byte-identical to the pre-family,
/// pre-channel engine.
#[derive(Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet size.
    pub vehicles: u32,
    /// Vehicles carrying a seeded defect.
    pub defective: u32,
    /// Defective vehicles whose fail data reached the gateway in time.
    /// `u64` (widened from `u32`): derived by counting findings, and
    /// counters derived from collection lengths must never wrap. The
    /// widening is digest-invariant — `Debug` prints integers the same
    /// at any width (see `tests/fleet_frozen_report.rs`).
    pub detected: u64,
    /// Detected defects with the true fault in the top score class.
    /// `u64` for the same no-silent-wrap reason as [`detected`](Self::detected).
    pub localized: u64,
    /// BIST sessions completed fleet-wide (uploads included).
    pub sessions_completed: u64,
    /// Shut-off windows in which BIST made progress, fleet-wide.
    pub windows_used: u64,
    /// Total BIST time consumed fleet-wide (seconds).
    pub bist_time_s: f64,
    /// Gateway batches processed. `u64` so `ceil(uploads / batch_size)`
    /// cannot wrap for tiny batch sizes on huge fleets.
    pub batches: u64,
    /// Detection-latency distribution.
    pub latency: LatencyStats,
    /// Campaign coverage over time: `(time, detected fraction of seeded
    /// defects)` at fixed fractions of the horizon, last point at the
    /// horizon itself.
    pub coverage_over_time: Vec<(f64, f64)>,
    /// Per-ECU aggregation, sorted by ECU id.
    pub per_ecu: Vec<EcuReport>,
    /// Every diagnosed defect, in gateway-arrival order.
    pub findings: Vec<DefectFinding>,
    /// Per-CUT-family split of the findings, sorted by family. Empty for
    /// pure-logic campaigns (every upload is `CutFamily::Logic`), and
    /// omitted from `Debug` in that case — the frozen-digest contract.
    pub per_family: Vec<FamilyReport>,
    /// The channel-robustness axis; `None` (and omitted from `Debug` —
    /// the same frozen-digest contract as `per_family`) when the
    /// campaign saw no impairments, retransmissions or ingest rejects.
    pub robustness: Option<RobustnessReport>,
}

impl fmt::Debug for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("FleetReport");
        d.field("vehicles", &self.vehicles)
            .field("defective", &self.defective)
            .field("detected", &self.detected)
            .field("localized", &self.localized)
            .field("sessions_completed", &self.sessions_completed)
            .field("windows_used", &self.windows_used)
            .field("bist_time_s", &self.bist_time_s)
            .field("batches", &self.batches)
            .field("latency", &self.latency)
            .field("coverage_over_time", &self.coverage_over_time)
            .field("per_ecu", &self.per_ecu)
            .field("findings", &self.findings);
        if !self.per_family.is_empty() {
            d.field("per_family", &self.per_family);
        }
        if let Some(rob) = &self.robustness {
            d.field("robustness", rob);
        }
        d.finish()
    }
}

impl FleetReport {
    /// Fraction of seeded defects detected within the horizon.
    pub fn detection_rate(&self) -> f64 {
        if self.defective == 0 {
            0.0
        } else {
            self.detected as f64 / f64::from(self.defective)
        }
    }

    /// Fraction of detected defects whose true fault topped the ranking.
    pub fn localization_rate(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.localized as f64 / self.detected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_of_empty_and_singleton() {
        let empty = LatencyStats::from_sorted(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean_s, 0.0);
        let one = LatencyStats::from_sorted(&[7.5]);
        assert_eq!(one.count, 1);
        assert_eq!(one.min_s, 7.5);
        assert_eq!(one.max_s, 7.5);
        assert_eq!(one.p99_s, 7.5);
    }

    #[test]
    fn nearest_rank_at_n2_picks_the_larger_value() {
        // rank(p50) = round(1 · 0.5) = 1: the .5 case rounds *up*.
        let s = LatencyStats::from_sorted(&[1.0, 2.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 2.0);
        assert_eq!(s.mean_s, 1.5);
        assert_eq!(s.p50_s, 2.0);
        assert_eq!(s.p90_s, 2.0);
        assert_eq!(s.p99_s, 2.0);
    }

    #[test]
    fn nearest_rank_at_n3_is_the_true_median() {
        // rank(p50) = round(2 · 0.5) = 1; p90/p99 round to the maximum.
        let s = LatencyStats::from_sorted(&[1.0, 2.0, 10.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_s, 2.0);
        assert_eq!(s.p90_s, 10.0);
        assert_eq!(s.p99_s, 10.0);
    }

    #[test]
    fn duplicate_timestamps_are_plain_order_statistics() {
        // A run of equal values: whatever rank a percentile lands on
        // inside the run, the statistic is that value — shard boundaries
        // cutting through the run cannot change it.
        let s = LatencyStats::from_sorted(&[5.0, 5.0, 5.0, 9.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50_s, 5.0); // rank round(3 · 0.5) = 2
        assert_eq!(s.p90_s, 9.0); // rank round(3 · 0.9) = 3
        assert_eq!(s.p99_s, 9.0);
        let all_equal = LatencyStats::from_sorted(&[4.25; 5]);
        assert_eq!(all_equal.p50_s, 4.25);
        assert_eq!(all_equal.p90_s, 4.25);
        assert_eq!(all_equal.p99_s, 4.25);
        assert_eq!(all_equal.mean_s, 4.25);
    }

    /// The frozen-digest contract of the manual `Debug`: a report with no
    /// per-family entries and no robustness block renders byte-identically
    /// to the pre-family derived output; populated optional sections
    /// append after `findings` in a fixed order.
    #[test]
    fn debug_omits_empty_per_family_and_robustness() {
        let mut r = FleetReport {
            vehicles: 1,
            defective: 0,
            detected: 0,
            localized: 0,
            sessions_completed: 0,
            windows_used: 0,
            bist_time_s: 0.0,
            batches: 0,
            latency: LatencyStats::from_sorted(&[]),
            coverage_over_time: vec![],
            per_ecu: vec![],
            findings: vec![],
            per_family: vec![],
            robustness: None,
        };
        let plain = format!("{r:?}");
        assert!(!plain.contains("per_family"));
        assert!(!plain.contains("robustness"));
        assert!(plain.ends_with("findings: [] }"));
        r.per_family.push(FamilyReport {
            family: CutFamily::Sram,
            detected: 1,
            localized: 1,
            latency: LatencyStats::from_sorted(&[5.0]),
        });
        let split = format!("{r:?}");
        assert!(split.contains("per_family: [FamilyReport { family: Sram"));
        let shared = plain.len() - 2;
        assert_eq!(&split[..shared], &plain[..shared], "prefix is unchanged");
        r.robustness = Some(RobustnessReport {
            impaired_uploads: 2,
            retransmitted_frames: 7,
            retransmit_overhead_s: 0.25,
            window_lost_uploads: 1,
            corrupted_uploads: 1,
            cap_truncated_uploads: 0,
            rejected_uploads: 3,
            rank_degraded: 1,
            rank_improved: 0,
            delocalized: 1,
            rank_cdf: vec![RankCdfPoint {
                bound: 1,
                impaired_le: 1,
                clean_le: 2,
            }],
        });
        let full = format!("{r:?}");
        assert!(
            full.contains("robustness: RobustnessReport { impaired_uploads: 2"),
            "robustness block renders after per_family"
        );
        assert_eq!(&full[..shared], &plain[..shared], "prefix is unchanged");
        assert!(full.find("per_family").unwrap() < full.find("robustness").unwrap());
    }

    #[test]
    fn latency_percentiles_are_order_statistics() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::from_sorted(&sorted);
        assert_eq!(s.count, 100);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 100.0);
        assert_eq!(s.p50_s, 51.0);
        assert_eq!(s.p90_s, 90.0);
        assert_eq!(s.p99_s, 99.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }
}
