//! Vehicle blueprints: one per Pareto-front implementation.
//!
//! A campaign binds every vehicle to one implementation decoded from the
//! case-study exploration front. This module flattens an
//! [`ExploredImplementation`] into the quantities the shut-off scheduler
//! needs per BIST session: runtime `l(b)`, the transfer time of the
//! encoded patterns over the blueprint's **transport backend**, and the
//! upload bandwidth available for fail data on the same path.
//!
//! For the CAN-based transports the backend is built over the ECU's
//! **actually mirrored** schedule (not just the bandwidth formula — the
//! mirror identifiers are assigned via [`eea_can::mirror_messages_auto`],
//! so a blueprint only claims an upload path the certified schedule really
//! admits); CAN FD additionally upgrades the mirrored payloads. FlexRay
//! skips mirroring entirely — its static slots are non-intrusive by
//! construction — and rides an even slot assignment over the sending ECUs.

use std::collections::BTreeMap;

use eea_bist::CutFamily;
use eea_can::{
    mirror_messages_auto, CanId, ChannelConfig, Message, TransportConfig, TransportKind,
};
use eea_dse::augment::DiagSpec;
use eea_dse::explore::ExploredImplementation;
use eea_model::{ResourceId, ResourceKind};
use eea_sched::TaskSetConfig;

use crate::error::FleetError;

/// One selected BIST session of a blueprint, reduced to timeline
/// quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct EcuSessionPlan {
    /// The ECU under test.
    pub ecu: ResourceId,
    /// Selected BIST profile (Table I id).
    pub profile_id: u32,
    /// Stuck-at coverage `c(b)` of the profile.
    pub coverage: f64,
    /// Session runtime `l(b)` in seconds.
    pub session_s: f64,
    /// Transfer time of the encoded patterns over the blueprint's
    /// transport (Eq. (1) for mirrored CAN, its analogues for FD/FlexRay);
    /// `0` for ECU-local storage, `+inf` when the transport grants the ECU
    /// no bandwidth (no mirrorable message, no static slot).
    pub transfer_s: f64,
    /// Whether the encoded patterns live in ECU-local memory.
    pub local_storage: bool,
    /// Aggregate payload bandwidth (bytes/s) the transport grants the ECU
    /// — the fail-data upload path; `0` when no path exists.
    pub upload_bandwidth_bytes_per_s: f64,
    /// The CUT family this session tests: the scan-based logic BIST or
    /// the March-test memory BIST. Defect seeding draws the fault from
    /// the matching family's model.
    pub family: CutFamily,
}

impl EcuSessionPlan {
    /// Whether the session can run at all: its pattern source is
    /// reachable in finite time.
    pub fn is_runnable(&self) -> bool {
        self.transfer_s.is_finite() && self.session_s.is_finite()
    }

    /// Whether a defect seeded on this ECU could ever reach the gateway:
    /// the session runs *and* fail data has an upload path.
    pub fn is_diagnosable(&self) -> bool {
        self.is_runnable() && self.upload_bandwidth_bytes_per_s > 0.0
    }

    /// Seconds to upload `bytes` of fail data over the mirrored schedule;
    /// `+inf` without an upload path.
    pub fn upload_s(&self, bytes: u64) -> f64 {
        if self.upload_bandwidth_bytes_per_s > 0.0 {
            bytes as f64 / self.upload_bandwidth_bytes_per_s
        } else {
            f64::INFINITY
        }
    }
}

/// Everything a vehicle inherits from its Pareto-front implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleBlueprint {
    /// Index into the exploration front this blueprint was decoded from.
    pub implementation_index: usize,
    /// Selected BIST sessions, in deterministic option order.
    pub sessions: Vec<EcuSessionPlan>,
    /// The implementation's Eq. (5) shut-off time objective: the awake
    /// budget a single shut-off event may spend on BIST.
    pub shutoff_budget_s: f64,
    /// The transport backend the session transfers and fail-data uploads
    /// of this blueprint ride.
    pub transport: TransportKind,
    /// The in-ECU cyclic task set of this blueprint's ECUs, when the
    /// campaign derives shut-off windows from the schedule's idle
    /// intervals instead of the flat budget. `None` keeps the flat-budget
    /// window source (bit-for-bit the historical path).
    pub task_set: Option<TaskSetConfig>,
    /// The channel-impairment model the blueprint's transfers and
    /// fail-data uploads ride: [`ChannelConfig::Clean`] is the
    /// pass-through identity (bit-for-bit the historical path), a noisy
    /// channel injects deterministic retransmissions and payload
    /// impairment (DESIGN.md §14).
    pub channel: ChannelConfig,
}

impl VehicleBlueprint {
    /// Whether any session could deliver fail data to the gateway — the
    /// precondition for seeding a defect on a vehicle of this blueprint.
    pub fn is_campaign_capable(&self) -> bool {
        self.sessions.iter().any(EcuSessionPlan::is_diagnosable)
    }

    /// Indices (into `sessions`) of the diagnosable plans.
    pub fn diagnosable_plans(&self) -> Vec<usize> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_diagnosable())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total sequential work (seconds) of all runnable sessions, without
    /// fail-data uploads.
    pub fn total_work_s(&self) -> f64 {
        self.sessions
            .iter()
            .filter(|p| p.is_runnable())
            .map(|p| p.transfer_s + p.session_s)
            .sum()
    }
}

/// Flattens an exploration front into vehicle blueprints over the paper's
/// baseline transport, classic-CAN mirroring — equivalent to
/// [`blueprints_from_front_with`] with [`TransportConfig::MirroredCan`]
/// (bit for bit: the trait's bandwidth sums run in the same order as the
/// historical free-function path).
///
/// # Errors
///
/// The same errors as [`blueprints_from_front_with`].
pub fn blueprints_from_front(
    diag: &DiagSpec,
    front: &[ExploredImplementation],
) -> Result<Vec<VehicleBlueprint>, FleetError> {
    blueprints_from_front_with(diag, front, &TransportConfig::MirroredCan)
}

/// Flattens an exploration front into vehicle blueprints whose transfers
/// and fail-data uploads ride `transport`.
///
/// Functional CAN identifiers are assigned deterministically with a
/// spacing of 8, leaving each message a priority gap its mirror identifier
/// is drawn from — the same discipline as Fig. 4 of the paper, but here
/// the mirror set is *constructed*, not assumed, so blueprints only claim
/// upload bandwidth a real mirrored schedule provides. CAN FD blueprints
/// reuse the constructed mirror identifiers and upgrade the mirrored
/// payloads; FlexRay blueprints skip mirroring (TDMA slots are exclusive —
/// non-intrusive by construction) and ride an even static-slot assignment
/// over the sending ECUs.
///
/// # Errors
///
/// * [`FleetError::NoDiagnosableBlueprint`] when `front` is empty,
/// * [`FleetError::Transport`] when the transport configuration is
///   degenerate ([`TransportConfig::validate`]) or a backend cannot be
///   built over a blueprint's message sets,
/// * [`FleetError::Mirror`] when identifier assignment overflows the
///   11-bit space (a specification with more than ~250 bound functional
///   messages).
pub fn blueprints_from_front_with(
    diag: &DiagSpec,
    front: &[ExploredImplementation],
    transport: &TransportConfig,
) -> Result<Vec<VehicleBlueprint>, FleetError> {
    blueprints_from_front_configured(
        diag,
        front,
        transport,
        CutFamily::Logic,
        None,
        ChannelConfig::Clean,
    )
}

/// Like [`blueprints_from_front_with`], additionally stamping every
/// session with `family`, every blueprint with `task_set` and the
/// channel-impairment model `channel` — the campaign-wide CUT-family,
/// in-ECU-schedule and channel selectors a
/// [`DseConfig`](eea_dse::explore::DseConfig) carries. With
/// `CutFamily::Logic`, `None` and [`ChannelConfig::Clean`] this is
/// bit-for-bit [`blueprints_from_front_with`].
///
/// # Errors
///
/// The same errors as [`blueprints_from_front_with`], plus
/// [`FleetError::Channel`] when the channel configuration is degenerate.
pub fn blueprints_from_front_configured(
    diag: &DiagSpec,
    front: &[ExploredImplementation],
    transport: &TransportConfig,
    family: CutFamily,
    task_set: Option<&TaskSetConfig>,
    channel: ChannelConfig,
) -> Result<Vec<VehicleBlueprint>, FleetError> {
    if front.is_empty() {
        return Err(FleetError::NoDiagnosableBlueprint);
    }
    transport.validate()?;
    channel.validate()?;
    let spec = &diag.spec;
    let arch = &spec.architecture;
    let app = &spec.application;

    let mut blueprints = Vec::with_capacity(front.len());
    for (idx, ei) in front.iter().enumerate() {
        let x = &ei.implementation;

        // Functional messages per sending ECU, ids spaced by 8 in global
        // binding order (deterministic for a given implementation).
        let mut sent_by: BTreeMap<ResourceId, Vec<Message>> = BTreeMap::new();
        let mut next_id: u16 = 8;
        for m in app.message_ids() {
            let msg = app.message(m);
            if app.task(msg.sender).kind.is_diagnostic() {
                continue;
            }
            let Some(src) = x.binding_of(msg.sender) else {
                continue;
            };
            if arch.resource(src).kind != ResourceKind::Ecu {
                continue;
            }
            let payload = msg.size_bytes.min(8) as u8;
            let id = CanId::new(next_id)
                .map_err(|e| FleetError::Mirror(eea_can::MirrorError::IdOverflow(e)))?;
            let Ok(message) = Message::new(id, payload, msg.period_us) else {
                continue;
            };
            next_id += 8;
            sent_by.entry(src).or_default().push(message);
        }
        // The transport backend's node map. For the CAN transports every
        // node carries its *constructed mirrored* schedule (identifiers
        // really assigned, priority gaps respected); FlexRay needs only
        // the node keys — slots are assigned evenly in ascending node
        // order, and no mirror is required because TDMA slots are
        // exclusive by construction.
        let nodes: BTreeMap<u32, Vec<Message>> = match transport.kind() {
            TransportKind::MirroredCan | TransportKind::CanFd => {
                let all: Vec<Message> = sent_by.values().flatten().cloned().collect();
                let mut mirrored_of: BTreeMap<u32, Vec<Message>> = BTreeMap::new();
                for (&ecu, msgs) in &sent_by {
                    let other: Vec<Message> = all
                        .iter()
                        .filter(|m| !msgs.iter().any(|own| own.id() == m.id()))
                        .cloned()
                        .collect();
                    match mirror_messages_auto(msgs, &other) {
                        Ok(mirror) => {
                            mirrored_of.insert(ecu.index() as u32, mirror);
                        }
                        Err(eea_can::MirrorError::NoMessages) => {}
                        Err(e) => return Err(FleetError::Mirror(e)),
                    }
                }
                mirrored_of
            }
            TransportKind::FlexRay => sent_by
                .iter()
                .map(|(&ecu, msgs)| (ecu.index() as u32, msgs.clone()))
                .collect(),
        };
        let backend = transport.build(nodes)?;

        let mut sessions = Vec::new();
        for o in &diag.options {
            if x.binding_of(o.test).is_none() {
                continue;
            }
            let Some(data_at) = x.binding_of(o.data) else {
                continue;
            };
            let local = data_at == o.ecu;
            let node = o.ecu.index() as u32;
            let bandwidth = backend.bandwidth_bytes_per_s(node);
            let transfer = if local {
                0.0
            } else {
                backend
                    .transfer_time_s(node, o.profile.data_bytes)
                    .unwrap_or(f64::INFINITY)
            };
            sessions.push(EcuSessionPlan {
                ecu: o.ecu,
                profile_id: o.profile.id,
                coverage: o.profile.coverage,
                session_s: o.profile.runtime_ms / 1e3,
                transfer_s: transfer,
                local_storage: local,
                upload_bandwidth_bytes_per_s: bandwidth,
                family,
            });
        }

        blueprints.push(VehicleBlueprint {
            implementation_index: idx,
            sessions,
            shutoff_budget_s: ei.objectives.shutoff_s,
            transport: transport.kind(),
            task_set: task_set.cloned(),
            channel,
        });
    }
    Ok(blueprints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_front_is_rejected() {
        let case = eea_model::paper_case_study();
        let diag = eea_dse::augment::augment(&case, &eea_bist::paper_table1()[..2])
            .expect("case study has a gateway");
        assert_eq!(
            blueprints_from_front(&diag, &[]),
            Err(FleetError::NoDiagnosableBlueprint)
        );
    }

    #[test]
    fn front_blueprints_carry_upload_paths() {
        let case = eea_model::paper_case_study();
        let diag = eea_dse::augment::augment(&case, &eea_bist::paper_table1()[..4])
            .expect("case study has a gateway");
        let mut cfg = eea_dse::explore::DseConfig::default();
        cfg.nsga2.population = 16;
        cfg.nsga2.evaluations = 160;
        let result = eea_dse::explore::explore(&diag, &cfg, |_, _| {});
        let blueprints = blueprints_from_front(&diag, &result.front).expect("front flattens");
        assert_eq!(blueprints.len(), result.front.len());
        assert!(blueprints.iter().all(|b| b.channel.is_clean()));
        // The configured variant threads a channel through and rejects a
        // degenerate one at construction.
        let noisy = ChannelConfig::Noisy(eea_can::NoisyChannel {
            frame_error_rate: 0.01,
            ..eea_can::NoisyChannel::default()
        });
        let noisy_bps = blueprints_from_front_configured(
            &diag,
            &result.front,
            &TransportConfig::MirroredCan,
            CutFamily::Logic,
            None,
            noisy,
        )
        .expect("noisy front flattens");
        assert!(noisy_bps.iter().all(|b| b.channel == noisy));
        let bad = ChannelConfig::Noisy(eea_can::NoisyChannel {
            frame_error_rate: 2.0,
            ..eea_can::NoisyChannel::default()
        });
        assert!(matches!(
            blueprints_from_front_configured(
                &diag,
                &result.front,
                &TransportConfig::MirroredCan,
                CutFamily::Logic,
                None,
                bad,
            ),
            Err(FleetError::Channel(_))
        ));
        // At least one implementation of any non-trivial front selects a
        // session whose fail data can reach the gateway.
        assert!(blueprints.iter().any(VehicleBlueprint::is_campaign_capable));
        for b in &blueprints {
            for p in &b.sessions {
                assert!(p.session_s > 0.0);
                if p.local_storage {
                    assert_eq!(p.transfer_s, 0.0);
                }
                if p.is_diagnosable() {
                    assert!(p.upload_s(128).is_finite());
                }
            }
        }
    }
}
