//! Per-vehicle campaign timeline.
//!
//! Each vehicle owns a deterministic RNG seeded from the campaign seed and
//! its index, draws a blueprint, possibly a seeded defect, and then runs
//! its BIST sessions as a **sequential work queue** across shut-off
//! windows: pattern transfer (Eq. 1), session runtime `l(b)`, and — when
//! the session fails — the fail-data upload over the same mirrored
//! schedule. A window contributes at most `min(window length, Eq. (5)
//! shut-off budget)` seconds of BIST time; unfinished work resumes in the
//! next window exactly like [`eea_bist::ResumableRun`] resumes the
//! pattern stream (per-pattern independence makes the cut irrelevant to
//! the session result, which is why the precomputed fail data of
//! [`crate::CutModel`] stays valid here).

use eea_bist::{CutFamily, MarchTest, FAIL_ENTRY_BYTES};
use eea_can::{ChannelConfig, ChannelModel, Impairment};
use eea_model::ResourceId;
use eea_moea::Rng;
use eea_sched::{FlatBudget, SchedPlan, TaskSchedule, WindowSource};

use crate::blueprint::VehicleBlueprint;
use crate::cut::CutModel;
use crate::shutoff::ShutoffModel;

/// Payload bytes per classic CAN data frame — the granularity fail-data
/// uploads are framed at on the mirrored schedule, and hence the unit the
/// channel's per-frame error events apply to.
pub(crate) const CAN_FRAME_PAYLOAD_BYTES: u64 = 8;

/// Converts a channel byte cap into the fail-entry granularity of
/// [`Impairment::cap_entries`]; an uncapped channel (`u64::MAX` bytes)
/// saturates to the uncapped sentinel `u16::MAX`.
pub(crate) fn cap_entries(cap_bytes: u64) -> u16 {
    u16::try_from(cap_bytes / FAIL_ENTRY_BYTES).unwrap_or(u16::MAX)
}

/// A defect seeded into a vehicle: one fault of the seeded family's CUT
/// model (a collapsed stuck-at of the logic [`CutModel`] or a cell fault
/// of the SRAM [`MarchTest`]), placed on one diagnosable ECU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectSeed {
    /// Index into the family's fault list (session-detectable by
    /// construction).
    pub fault_index: u32,
    /// The defective ECU.
    pub ecu: ResourceId,
    /// Index of the affected session plan in the blueprint.
    pub plan: usize,
    /// The CUT family the fault belongs to — fault indices are only
    /// meaningful within their family's model.
    pub family: CutFamily,
}

/// A fail-data upload arriving at the gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Upload {
    /// The uploading vehicle.
    pub vehicle: u32,
    /// The defective ECU.
    pub ecu: ResourceId,
    /// The seeded fault (index into the family's CUT model).
    pub fault_index: u32,
    /// The CUT family the fault index refers to.
    pub family: CutFamily,
    /// Absolute campaign time (seconds) the upload completed.
    pub time_s: f64,
    /// Encoded fail-data size in bytes.
    pub fail_bytes: u64,
    /// Frames the channel forced to be re-sent during this upload — `0`
    /// on a clean channel.
    pub retransmitted_frames: u32,
    /// Extra upload seconds the retransmissions cost (already included in
    /// [`time_s`](Self::time_s)) — exactly `0.0` on a clean channel.
    pub retransmit_s: f64,
    /// What the channel did to the fail-data payload in transit;
    /// [`Impairment::NONE`] on a clean channel.
    pub impairment: Impairment,
}

/// What one vehicle did over the campaign horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleOutcome {
    /// Vehicle index.
    pub vehicle: u32,
    /// Index of the blueprint the vehicle was bound to.
    pub blueprint: usize,
    /// The seeded defect, if any.
    pub defect: Option<DefectSeed>,
    /// Sessions fully completed (including upload, where one was due)
    /// within the horizon.
    pub sessions_completed: u32,
    /// Shut-off windows in which BIST made progress.
    pub windows_used: u32,
    /// Total BIST time consumed (seconds).
    pub bist_time_s: f64,
    /// The defect's fail-data upload, when it completed within the
    /// horizon.
    pub upload: Option<Upload>,
}

/// Precomputed per-blueprint work template: everything `simulate_vehicle`
/// would otherwise re-derive from the blueprint for every single vehicle
/// of the fleet. Computed once per campaign (the blueprint set is shared
/// fleet-wide) and read-only on the hot path.
#[derive(Debug, Clone)]
pub(crate) struct BlueprintTemplate {
    /// Runnable session plans in blueprint order, paired with their
    /// defect-free work `transfer_s + session_s` — the fixed work list a
    /// vehicle walks with a cursor instead of materializing a queue.
    runnable: Vec<(usize, f64)>,
    /// Diagnosable plan indices (the defect placement choices).
    diagnosable: Vec<usize>,
    /// Whether every session tests the logic CUT family. Pure-logic
    /// blueprints keep the historical defect-seeding draw order
    /// (fault-then-plan), which is what the frozen digests pin.
    pure_logic: bool,
}

impl BlueprintTemplate {
    pub(crate) fn new(blueprint: &VehicleBlueprint) -> Self {
        let runnable = blueprint
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_runnable())
            .map(|(i, p)| {
                let work = match &blueprint.channel {
                    // The exact same float expression the per-vehicle loop
                    // used to evaluate — precomputing it cannot change any
                    // outcome bit.
                    ChannelConfig::Clean => p.transfer_s + p.session_s,
                    // Eq. (1) re-pricing over a noisy bus: each streamed
                    // pattern frame is sent 1/(1 - p_err) times in
                    // expectation. A zero error rate inflates by exactly
                    // 1.0, and `x * 1.0` is bit-identical to `x` — the
                    // equivalence-oracle contract with `Clean`.
                    noisy => p.transfer_s * noisy.transfer_inflation() + p.session_s,
                };
                (i, work)
            })
            .collect();
        BlueprintTemplate {
            runnable,
            diagnosable: blueprint.diagnosable_plans(),
            pure_logic: blueprint
                .sessions
                .iter()
                .all(|p| p.family == CutFamily::Logic),
        }
    }
}

/// Exact `x % d` for a campaign-invariant divisor, computed with one
/// 128-bit multiply chain instead of a hardware divide (Lemire's fastmod;
/// the hot loop's blueprint draw pays the divide for *every* vehicle
/// otherwise). Bit-identical to `%` — [`Rng::below`] semantics are part of
/// the frozen-report contract, so this must never approximate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastMod {
    d: u64,
    /// `ceil(2^128 / d)`, wrapping to 0 for `d == 1`.
    m: u128,
}

impl FastMod {
    pub(crate) fn new(d: u64) -> Self {
        debug_assert!(d > 0);
        FastMod {
            d,
            m: (u128::MAX / u128::from(d)).wrapping_add(1),
        }
    }

    #[inline]
    pub(crate) fn rem(self, x: u64) -> u64 {
        if self.d == 1 {
            return 0;
        }
        // x mod d = ((M·x mod 2^128) · d) >> 128 with M = ceil(2^128/d).
        let low = self.m.wrapping_mul(u128::from(x));
        // (low · d) >> 128 without 256-bit arithmetic: split low into
        // 64-bit halves; both partial products fit u128 and their carry
        // sum cannot overflow.
        let d = u128::from(self.d);
        let hi = (low >> 64) * d;
        let lo = (low & u128::from(u64::MAX)) * d;
        ((hi + (lo >> 64)) >> 64) as u64
    }
}

/// Everything campaign-invariant the per-vehicle loop reads: the
/// blueprint set with its precomputed work templates and fast blueprint
/// divisor, the shared CUT, the shut-off model, and the campaign scalars.
/// Built once per campaign ([`SimContext::new`]) and shared read-only by
/// every simulation worker.
pub(crate) struct SimContext<'a> {
    pub blueprints: &'a [VehicleBlueprint],
    pub cut: &'a CutModel,
    /// The SRAM CUT model, when the campaign carries one. `None` for
    /// pure-logic fleets — a blueprint with a diagnosable SRAM session is
    /// rejected at campaign validation without it.
    pub sram: Option<&'a MarchTest>,
    /// Per-blueprint schedule plans, indexed like `blueprints`; `None`
    /// entries (and an empty slice) mean the flat-budget window source.
    pub sched: &'a [Option<SchedPlan>],
    pub defect_fraction: f64,
    pub horizon_s: f64,
    /// The campaign seed — the channel layer derives its per-vehicle
    /// sub-streams from it (domain-separated from the simulation streams,
    /// see [`eea_can::NoisyChannel::vehicle_rng`]).
    pub campaign_seed: u64,
    /// The flat-budget window source: the identical hoisted
    /// `min + unit()·range` coefficients the historical `ShutoffRanges`
    /// carried, now shared with `eea-sched` so schedule-derived sources
    /// carve the same macro stream.
    pub(crate) flat: FlatBudget,
    templates: Vec<BlueprintTemplate>,
    blueprint_mod: FastMod,
}

impl<'a> SimContext<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        blueprints: &'a [VehicleBlueprint],
        cut: &'a CutModel,
        sram: Option<&'a MarchTest>,
        sched: &'a [Option<SchedPlan>],
        shutoff: ShutoffModel,
        defect_fraction: f64,
        horizon_s: f64,
        campaign_seed: u64,
    ) -> Self {
        SimContext {
            blueprints,
            cut,
            sram,
            sched,
            defect_fraction,
            horizon_s,
            campaign_seed,
            flat: FlatBudget::from_bounds(
                shutoff.min_gap_s,
                shutoff.max_gap_s,
                shutoff.min_window_s,
                shutoff.max_window_s,
            ),
            templates: blueprints.iter().map(BlueprintTemplate::new).collect(),
            blueprint_mod: FastMod::new(blueprints.len() as u64),
        }
    }
}

/// Simulates one vehicle. `seed` must already mix the campaign seed with
/// the vehicle index so the outcome is a pure function of `(campaign
/// config, index)` — the engine's thread-count independence rests on
/// that. The blueprint template's fixed work list is walked with a
/// cursor, so a vehicle touches no heap at all.
#[inline]
pub(crate) fn simulate_vehicle(index: u32, ctx: &SimContext<'_>, seed: u64) -> VehicleOutcome {
    let SimContext {
        blueprints,
        cut,
        defect_fraction,
        horizon_s,
        flat,
        ..
    } = *ctx;
    let mut rng = Rng::new(seed);
    // `Rng::below(n)` is `next_u64() % n`; the fastmod divisor computes
    // exactly that without the per-vehicle hardware divide.
    let blueprint_idx = ctx.blueprint_mod.rem(rng.next_u64()) as usize;
    let blueprint = &blueprints[blueprint_idx];
    let template = &ctx.templates[blueprint_idx];
    let plan_sched = ctx.sched.get(blueprint_idx).and_then(Option::as_ref);

    // Defect seeding: the fraction draw happens for every vehicle (so the
    // stream of draws is schedule-independent); the seed only lands when
    // the blueprint offers a diagnosable plan to place it on. Pure-logic
    // blueprints keep the historical fault-then-plan draw order (the
    // frozen digests pin it); mixed-family blueprints must draw the plan
    // first — which family's fault pool applies depends on it.
    let wants_defect = rng.chance(defect_fraction);
    let defect = if wants_defect {
        if template.pure_logic {
            let detectable = cut.detectable_faults();
            let fault_index = detectable[rng.below(detectable.len())];
            let plans = &template.diagnosable;
            if plans.is_empty() {
                None
            } else {
                let plan = plans[rng.below(plans.len())];
                Some(DefectSeed {
                    fault_index,
                    ecu: blueprint.sessions[plan].ecu,
                    plan,
                    family: CutFamily::Logic,
                })
            }
        } else {
            let plans = &template.diagnosable;
            if plans.is_empty() {
                None
            } else {
                let plan = plans[rng.below(plans.len())];
                let family = blueprint.sessions[plan].family;
                let pool = match family {
                    CutFamily::Logic => cut.detectable_faults(),
                    CutFamily::Sram => ctx.sram.map_or(&[][..], MarchTest::detectable_faults),
                };
                if pool.is_empty() {
                    None
                } else {
                    let fault_index = pool[rng.below(pool.len())];
                    Some(DefectSeed {
                        fault_index,
                        ecu: blueprint.sessions[plan].ecu,
                        plan,
                        family,
                    })
                }
            }
        }
    } else {
        None
    };

    // A defective plan's work ends with the fail-data upload; passing
    // sessions upload nothing. Diagnosable plans are runnable by
    // definition, so the defective plan is always on the work list.
    let mut fail_bytes = 0u64;
    let mut upload_due: Option<(usize, f64)> = None; // (plan, upload seconds)
    let mut retransmitted_frames = 0u32;
    let mut retransmit_s = 0.0f64;
    let mut impairment = Impairment::NONE;
    if let Some(d) = defect {
        fail_bytes = match d.family {
            CutFamily::Logic => cut.fail_bytes(d.fault_index),
            CutFamily::Sram => ctx.sram.map_or(0, |s| s.fail_bytes(d.fault_index)),
        };
        let mut up = blueprint.sessions[d.plan].upload_s(fail_bytes);
        if let ChannelConfig::Noisy(noisy) = &blueprint.channel {
            // Channel draws come from a dedicated per-vehicle sub-stream
            // (domain-separated from the simulation stream), so threading
            // a noisy channel cannot shift any simulation draw. Pinned
            // order: the per-frame retransmission Bernoullis first, then
            // the payload impairment.
            let mut crng = noisy.vehicle_rng(ctx.campaign_seed, index);
            let frames = fail_bytes.div_ceil(CAN_FRAME_PAYLOAD_BYTES);
            let retx = noisy.retransmitted_frames(&mut crng, frames);
            impairment = noisy.impair(&mut crng, cap_entries(noisy.truncation_cap_bytes));
            if retx > 0 {
                // Each re-sent frame costs one frame payload of upload
                // time over the same mirrored schedule. The zero-
                // retransmission arm adds *nothing*, keeping zero-rate
                // channels bit-identical to `Clean`.
                retransmit_s = blueprint.sessions[d.plan].upload_s(retx * CAN_FRAME_PAYLOAD_BYTES);
                up += retransmit_s;
                retransmitted_frames = u32::try_from(retx).unwrap_or(u32::MAX);
            }
        }
        upload_due = Some((d.plan, up));
    }

    let work = &template.runnable[..];
    let budget_cap = blueprint.shutoff_budget_s;

    // Monomorphize the window loop on defect presence × window source:
    // ~98 % of vehicles carry no defect and run a tight instantiation
    // with no upload checks at all, and flat-budget fleets never touch
    // the schedule-carving state.
    let out = match (upload_due, plan_sched) {
        (None, None) => run_windows::<false, _>(work, None, budget_cap, rng, flat, horizon_s),
        (Some(_), None) => {
            run_windows::<true, _>(work, upload_due, budget_cap, rng, flat, horizon_s)
        }
        (None, Some(plan)) => {
            let source = TaskSchedule::new(flat, plan, horizon_s);
            run_windows::<false, _>(work, None, budget_cap, rng, source, horizon_s)
        }
        (Some(_), Some(plan)) => {
            let source = TaskSchedule::new(flat, plan, horizon_s);
            run_windows::<true, _>(work, upload_due, budget_cap, rng, source, horizon_s)
        }
    };

    let upload = match (defect, out.upload_time_s) {
        (Some(d), Some(time_s)) => Some(Upload {
            vehicle: index,
            ecu: d.ecu,
            fault_index: d.fault_index,
            family: d.family,
            time_s,
            fail_bytes,
            retransmitted_frames,
            retransmit_s,
            impairment,
        }),
        _ => None,
    };

    VehicleOutcome {
        vehicle: index,
        blueprint: blueprint_idx,
        defect,
        sessions_completed: out.sessions_completed,
        windows_used: out.windows_used,
        bist_time_s: out.bist_time_s,
        upload,
    }
}

/// What the shut-off window loop produced for one vehicle.
#[derive(Debug, Clone, Copy)]
struct WindowOutcome {
    sessions_completed: u32,
    windows_used: u32,
    bist_time_s: f64,
    /// Completion time of the defective session (upload included), when
    /// it finished within the horizon. Always `None` for `DEFECTIVE =
    /// false`.
    upload_time_s: Option<f64>,
}

/// The session at work-list position `i` including any upload tail — the
/// same `(transfer_s + session_s) + upload_s` float expression and
/// evaluation order the historical materialized queue used. Adding an
/// upload requires a defect, so the defect-free caller passes `None` and
/// the check folds away.
#[inline(always)]
fn session_work(work: &[(usize, f64)], upload_due: Option<(usize, f64)>, i: usize) -> f64 {
    let (plan, w) = work[i];
    match upload_due {
        Some((p, up)) if p == plan => w + up,
        _ => w,
    }
}

/// The shut-off window loop: pulls (gap, window) pairs from the window
/// source and consumes the work list until the horizon cuts the schedule
/// off or the work runs dry. All loop state lives in locals — the float
/// expressions and their evaluation order are the frozen-report
/// contract, and `DEFECTIVE` only strips the upload bookkeeping from the
/// defect-free instantiation; it never changes an arithmetic op. With
/// [`FlatBudget`] as the source the per-iteration draw sequence is
/// exactly the historical one (gap then window, two `unit()` draws); the
/// final iteration draws the window the historical loop skipped after
/// its horizon check, but the vehicle RNG is private and dies here, so
/// the extra draw cannot change any output bit.
#[inline(always)]
fn run_windows<const DEFECTIVE: bool, W: WindowSource>(
    work: &[(usize, f64)],
    upload_due: Option<(usize, f64)>,
    budget_cap: f64,
    mut rng: Rng,
    mut source: W,
    horizon_s: f64,
) -> WindowOutcome {
    let mut out = WindowOutcome {
        sessions_completed: 0,
        windows_used: 0,
        bist_time_s: 0.0,
        upload_time_s: None,
    };
    if budget_cap <= 0.0 || work.is_empty() {
        return out;
    }
    let mut idx = 0usize;
    let mut rem = session_work(work, upload_due, 0);
    let mut t = 0.0f64;
    loop {
        let (gap, window) = source.next_window(&mut rng);
        let start = t + gap;
        if start >= horizon_s {
            break;
        }
        t = start + window;
        let budget = window.min(budget_cap);
        let mut avail = budget;
        let mut done = false;
        // Inner step, dependency-minimal form of the historical
        // `step = min(avail, rem); rem -= step; avail -= step; rem > 0?`:
        // branching on `rem > avail` first lets each arm do a single
        // subtraction. Bit-identical — in the partial arm the historical
        // `avail - avail` is exactly `+0.0`, in the completion arm the
        // historical `rem - rem` is exactly `+0.0` and never read.
        loop {
            if rem > avail {
                // Window exhausted mid-session; the unfinished remainder
                // carries into the next window.
                rem -= avail;
                avail = 0.0;
                break;
            }
            avail -= rem;
            let finished_at = start + (budget - avail);
            let plan = work[idx].0;
            idx += 1;
            if finished_at <= horizon_s {
                out.sessions_completed += 1;
                if DEFECTIVE {
                    if let Some((upload_plan, _)) = upload_due {
                        if upload_plan == plan {
                            out.upload_time_s = Some(finished_at);
                        }
                    }
                }
            }
            if idx >= work.len() {
                done = true;
                break;
            }
            rem = session_work(work, if DEFECTIVE { upload_due } else { None }, idx);
            if avail <= 0.0 {
                break; // window exhausted exactly at a session boundary
            }
        }
        out.windows_used += 1;
        out.bist_time_s += budget - avail;
        if done {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::EcuSessionPlan;
    use crate::cut::{CutConfig, CutModel};
    use eea_model::ResourceId;

    fn run(
        index: u32,
        blueprints: &[VehicleBlueprint],
        cut: &CutModel,
        shutoff: &ShutoffModel,
        defect_fraction: f64,
        horizon_s: f64,
        seed: u64,
    ) -> VehicleOutcome {
        let ctx = SimContext::new(
            blueprints,
            cut,
            None,
            &[],
            *shutoff,
            defect_fraction,
            horizon_s,
            seed,
        );
        simulate_vehicle(index, &ctx, seed)
    }

    fn test_blueprint() -> VehicleBlueprint {
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: ResourceId::from_index(3),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 1200.0,
                local_storage: false,
                upload_bandwidth_bytes_per_s: 100.0,
                family: CutFamily::Logic,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
            task_set: None,
            channel: ChannelConfig::Clean,
        }
    }

    #[test]
    fn fastmod_matches_hardware_remainder() {
        let edge_xs = [
            0u64,
            1,
            2,
            63,
            64,
            1 << 32,
            u64::MAX - 1,
            u64::MAX,
            0x9E37_79B9_7F4A_7C15,
        ];
        let mut rng = eea_moea::Rng::new(0xFA57);
        let mut divisors: Vec<u64> = vec![1, 2, 3, 5, 7, 10, 63, 64, 65, 1000, 1 << 33, u64::MAX];
        for _ in 0..200 {
            divisors.push(rng.next_u64() | 1);
        }
        for &d in &divisors {
            let fm = FastMod::new(d);
            for &x in &edge_xs {
                assert_eq!(fm.rem(x), x % d, "x={x} d={d}");
            }
            for _ in 0..100 {
                let x = rng.next_u64();
                assert_eq!(fm.rem(x), x % d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn work_resumes_across_windows() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 400.0,
            max_window_s: 400.0,
        };
        // defect_fraction 1.0: every vehicle with a diagnosable plan is
        // seeded; the 1200 s transfer needs three 400 s windows before the
        // 5 ms session and the upload can finish in the fourth.
        let o = run(0, &blueprints, &cut, &shutoff, 1.0, 1e6, 42);
        assert!(o.defect.is_some());
        assert_eq!(o.sessions_completed, 1);
        assert!(o.windows_used >= 4);
        let up = o.upload.expect("defect detected");
        assert!(up.time_s > 3.0 * 400.0, "transfer alone spans 3 windows");
        assert!(up.fail_bytes > 0);
    }

    #[test]
    fn horizon_cuts_off_detection() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 400.0,
            max_window_s: 400.0,
        };
        let o = run(0, &blueprints, &cut, &shutoff, 1.0, 800.0, 42);
        assert!(o.defect.is_some());
        assert_eq!(o.sessions_completed, 0);
        assert!(o.upload.is_none());
    }

    #[test]
    fn same_seed_same_outcome() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel::default();
        let a = run(5, &blueprints, &cut, &shutoff, 0.5, 1e6, 99);
        let b = run(5, &blueprints, &cut, &shutoff, 0.5, 1e6, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_budget_makes_no_progress() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let mut b = test_blueprint();
        b.shutoff_budget_s = 0.0;
        let o = run(0, &[b], &cut, &ShutoffModel::default(), 0.0, 1e6, 1);
        assert_eq!(o.windows_used, 0);
        assert_eq!(o.sessions_completed, 0);
    }

    /// The equivalence oracle at the single-vehicle level: a zero-rate,
    /// uncapped noisy channel produces the bit-identical outcome of the
    /// structurally clean blueprint — upload time, retransmission fields
    /// and impairment descriptor included.
    #[test]
    fn zero_rate_noisy_channel_is_bit_identical_to_clean() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let clean = [test_blueprint()];
        let mut noisy_bp = test_blueprint();
        noisy_bp.channel = ChannelConfig::Noisy(eea_can::NoisyChannel::default());
        let noisy = [noisy_bp];
        let shutoff = ShutoffModel::default();
        for seed in [1u64, 42, 99, 0xF1EE7] {
            let a = run(7, &clean, &cut, &shutoff, 1.0, 1e7, seed);
            let b = run(7, &noisy, &cut, &shutoff, 1.0, 1e7, seed);
            assert_eq!(a, b, "seed {seed}");
            if let Some(up) = a.upload {
                assert_eq!(up.retransmitted_frames, 0);
                assert_eq!(up.retransmit_s, 0.0);
                assert!(up.impairment.is_none());
            }
        }
    }

    /// A lossy channel delays the upload by exactly the retransmission
    /// overhead it reports, and the impairment draw is deterministic per
    /// `(campaign seed, vehicle)`.
    #[test]
    fn retransmissions_delay_the_upload_and_are_priced_exactly() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let mut noisy_bp = test_blueprint();
        noisy_bp.channel = ChannelConfig::Noisy(eea_can::NoisyChannel {
            frame_error_rate: 0.45,
            ..eea_can::NoisyChannel::default()
        });
        let shutoff = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 400.0,
            max_window_s: 400.0,
        };
        // Generous horizon so both variants finish their upload; seed 42
        // seeds a defect (see `work_resumes_across_windows`).
        let clean = run(0, &[test_blueprint()], &cut, &shutoff, 1.0, 1e7, 42);
        let lossy = run(0, &[noisy_bp.clone()], &cut, &shutoff, 1.0, 1e7, 42);
        let cup = clean.upload.expect("clean upload lands");
        let lup = lossy.upload.expect("lossy upload lands");
        assert!(
            lup.retransmitted_frames > 0,
            "45 % frame error rate over {} frames must hit",
            cup.fail_bytes.div_ceil(CAN_FRAME_PAYLOAD_BYTES)
        );
        assert!(lup.retransmit_s > 0.0);
        assert!(
            lup.time_s > cup.time_s,
            "retransmissions push the upload later: {} vs {}",
            lup.time_s,
            cup.time_s
        );
        // Deterministic: the same (campaign seed, vehicle) reproduces the
        // channel outcome bit for bit.
        let again = run(0, &[noisy_bp], &cut, &shutoff, 1.0, 1e7, 42);
        assert_eq!(again, lossy);
    }

    /// The channel byte cap converts to whole fail entries; `u64::MAX`
    /// means uncapped.
    #[test]
    fn cap_entries_rounds_down_and_saturates() {
        assert_eq!(cap_entries(u64::MAX), u16::MAX);
        assert_eq!(cap_entries(96), 8);
        assert_eq!(cap_entries(95), 7);
        assert_eq!(cap_entries(11), 0);
        assert_eq!(cap_entries(eea_bist::FAIL_DATA_BYTES), 53);
    }
}
