//! Per-vehicle campaign timeline.
//!
//! Each vehicle owns a deterministic RNG seeded from the campaign seed and
//! its index, draws a blueprint, possibly a seeded defect, and then runs
//! its BIST sessions as a **sequential work queue** across shut-off
//! windows: pattern transfer (Eq. 1), session runtime `l(b)`, and — when
//! the session fails — the fail-data upload over the same mirrored
//! schedule. A window contributes at most `min(window length, Eq. (5)
//! shut-off budget)` seconds of BIST time; unfinished work resumes in the
//! next window exactly like [`eea_bist::ResumableRun`] resumes the
//! pattern stream (per-pattern independence makes the cut irrelevant to
//! the session result, which is why the precomputed fail data of
//! [`crate::CutModel`] stays valid here).

use eea_model::ResourceId;
use eea_moea::Rng;

use crate::blueprint::VehicleBlueprint;
use crate::cut::CutModel;
use crate::shutoff::ShutoffModel;

/// A defect seeded into a vehicle: one collapsed stuck-at fault of the
/// shared CUT, placed on one diagnosable ECU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectSeed {
    /// Index into the [`CutModel`] fault list (session-detectable by
    /// construction).
    pub fault_index: u32,
    /// The defective ECU.
    pub ecu: ResourceId,
    /// Index of the affected session plan in the blueprint.
    pub plan: usize,
}

/// A fail-data upload arriving at the gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Upload {
    /// The uploading vehicle.
    pub vehicle: u32,
    /// The defective ECU.
    pub ecu: ResourceId,
    /// The seeded fault (index into the [`CutModel`]).
    pub fault_index: u32,
    /// Absolute campaign time (seconds) the upload completed.
    pub time_s: f64,
    /// Encoded fail-data size in bytes.
    pub fail_bytes: u64,
}

/// What one vehicle did over the campaign horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleOutcome {
    /// Vehicle index.
    pub vehicle: u32,
    /// Index of the blueprint the vehicle was bound to.
    pub blueprint: usize,
    /// The seeded defect, if any.
    pub defect: Option<DefectSeed>,
    /// Sessions fully completed (including upload, where one was due)
    /// within the horizon.
    pub sessions_completed: u32,
    /// Shut-off windows in which BIST made progress.
    pub windows_used: u32,
    /// Total BIST time consumed (seconds).
    pub bist_time_s: f64,
    /// The defect's fail-data upload, when it completed within the
    /// horizon.
    pub upload: Option<Upload>,
}

/// Simulates one vehicle. `seed` must already mix the campaign seed with
/// the vehicle index so the outcome is a pure function of `(campaign
/// config, index)` — the engine's thread-count independence rests on
/// that.
pub(crate) fn simulate_vehicle(
    index: u32,
    blueprints: &[VehicleBlueprint],
    cut: &CutModel,
    shutoff: &ShutoffModel,
    defect_fraction: f64,
    horizon_s: f64,
    seed: u64,
) -> VehicleOutcome {
    let mut rng = Rng::new(seed);
    let blueprint_idx = rng.below(blueprints.len());
    let blueprint = &blueprints[blueprint_idx];

    // Defect seeding: the fraction draw happens for every vehicle (so the
    // stream of draws is schedule-independent); the seed only lands when
    // the blueprint offers a diagnosable plan to place it on.
    let wants_defect = rng.chance(defect_fraction);
    let defect = if wants_defect {
        let detectable = cut.detectable_faults();
        let fault_index = detectable[rng.below(detectable.len())];
        let plans = blueprint.diagnosable_plans();
        if plans.is_empty() {
            None
        } else {
            let plan = plans[rng.below(plans.len())];
            Some(DefectSeed {
                fault_index,
                ecu: blueprint.sessions[plan].ecu,
                plan,
            })
        }
    } else {
        None
    };

    // Sequential work queue: (plan index, remaining seconds). A defective
    // plan's work ends with the fail-data upload; passing sessions upload
    // nothing.
    let mut queue: Vec<(usize, f64)> = Vec::with_capacity(blueprint.sessions.len());
    let mut upload_due: Option<(usize, f64)> = None; // (plan, upload seconds)
    for (i, plan) in blueprint.sessions.iter().enumerate() {
        if !plan.is_runnable() {
            continue;
        }
        let mut work = plan.transfer_s + plan.session_s;
        if let Some(d) = defect {
            if d.plan == i {
                let up = plan.upload_s(cut.fail_bytes(d.fault_index));
                work += up;
                upload_due = Some((i, up));
            }
        }
        queue.push((i, work));
    }
    queue.reverse(); // pop from the back = blueprint order

    let budget_cap = blueprint.shutoff_budget_s;
    let mut outcome = VehicleOutcome {
        vehicle: index,
        blueprint: blueprint_idx,
        defect,
        sessions_completed: 0,
        windows_used: 0,
        bist_time_s: 0.0,
        upload: None,
    };
    if budget_cap <= 0.0 {
        return outcome;
    }

    let mut t = 0.0f64;
    while !queue.is_empty() {
        let (gap, window) = shutoff.next_event(&mut rng);
        let start = t + gap;
        if start >= horizon_s {
            break;
        }
        t = start + window;
        let budget = window.min(budget_cap);
        let mut avail = budget;
        let mut used = false;
        while avail > 0.0 {
            let Some(&mut (plan, ref mut remaining)) = queue.last_mut() else {
                break;
            };
            let step = avail.min(*remaining);
            *remaining -= step;
            avail -= step;
            used = true;
            if *remaining <= 0.0 {
                let finished_at = start + (budget - avail);
                queue.pop();
                if finished_at <= horizon_s {
                    outcome.sessions_completed += 1;
                    if let (Some(d), Some((upload_plan, _))) = (defect, upload_due) {
                        if upload_plan == plan {
                            outcome.upload = Some(Upload {
                                vehicle: index,
                                ecu: d.ecu,
                                fault_index: d.fault_index,
                                time_s: finished_at,
                                fail_bytes: cut.fail_bytes(d.fault_index),
                            });
                        }
                    }
                }
            }
        }
        if used {
            outcome.windows_used += 1;
            outcome.bist_time_s += budget - avail;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::EcuSessionPlan;
    use crate::cut::{CutConfig, CutModel};
    use eea_model::ResourceId;

    fn test_blueprint() -> VehicleBlueprint {
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![EcuSessionPlan {
                ecu: ResourceId::from_index(3),
                profile_id: 1,
                coverage: 0.99,
                session_s: 0.005,
                transfer_s: 1200.0,
                local_storage: false,
                upload_bandwidth_bytes_per_s: 100.0,
            }],
            shutoff_budget_s: 2_000.0,
            transport: eea_can::TransportKind::MirroredCan,
        }
    }

    #[test]
    fn work_resumes_across_windows() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 400.0,
            max_window_s: 400.0,
        };
        // defect_fraction 1.0: every vehicle with a diagnosable plan is
        // seeded; the 1200 s transfer needs three 400 s windows before the
        // 5 ms session and the upload can finish in the fourth.
        let o = simulate_vehicle(0, &blueprints, &cut, &shutoff, 1.0, 1e6, 42);
        assert!(o.defect.is_some());
        assert_eq!(o.sessions_completed, 1);
        assert!(o.windows_used >= 4);
        let up = o.upload.expect("defect detected");
        assert!(up.time_s > 3.0 * 400.0, "transfer alone spans 3 windows");
        assert!(up.fail_bytes > 0);
    }

    #[test]
    fn horizon_cuts_off_detection() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel {
            min_gap_s: 100.0,
            max_gap_s: 100.0,
            min_window_s: 400.0,
            max_window_s: 400.0,
        };
        let o = simulate_vehicle(0, &blueprints, &cut, &shutoff, 1.0, 800.0, 42);
        assert!(o.defect.is_some());
        assert_eq!(o.sessions_completed, 0);
        assert!(o.upload.is_none());
    }

    #[test]
    fn same_seed_same_outcome() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let blueprints = [test_blueprint()];
        let shutoff = ShutoffModel::default();
        let a = simulate_vehicle(5, &blueprints, &cut, &shutoff, 0.5, 1e6, 99);
        let b = simulate_vehicle(5, &blueprints, &cut, &shutoff, 0.5, 1e6, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_budget_makes_no_progress() {
        let cut = CutModel::build(CutConfig::default()).expect("substrate builds");
        let mut b = test_blueprint();
        b.shutoff_budget_s = 0.0;
        let o = simulate_vehicle(0, &[b], &cut, &ShutoffModel::default(), 0.0, 1e6, 1);
        assert_eq!(o.windows_used, 0);
        assert_eq!(o.sessions_completed, 0);
    }
}
