//! Deterministic mutation-fuzz harness for the gateway ingest boundary
//! (DESIGN.md §12/§14): thousands of structurally mutated upload frames —
//! out-of-range vehicles, NaN/negative times, oversized payloads, spliced
//! vehicle ids, out-of-dictionary fault indices, scrambled impairment
//! descriptors, duplicates and replays — are pushed through
//! `accept`/`drain`/`snapshot_at`. The service must reject every invalid
//! frame with a *typed* error (`UnknownVehicle` / `MalformedUpload`),
//! never panic, never shed on the `accept` path, and keep its counters
//! consistent with the per-call results.
//!
//! The fuzzer is a plain seeded xorshift64* so every run replays the same
//! frame sequence — a failure here is a deterministic regression, not a
//! flake.

use std::sync::OnceLock;

use eea_bist::FAIL_DATA_BYTES;
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FleetError, GatewayConfig, GatewayService, ImpairmentKind, NoisyChannel, TransportKind,
    VehicleArrival, VehicleBlueprint,
};
use eea_model::ResourceId;

/// Fleet size of the baseline campaign the mutation pool is drawn from.
const FLEET: u32 = 96;
/// Fuzz rounds (one fresh service per round).
const ROUNDS: usize = 40;
/// Frames pushed per round.
const FRAMES_PER_ROUND: usize = 64;
/// Distinct mutation kinds the fuzzer draws from.
const MUTATION_KINDS: u64 = 20;

fn cut() -> &'static CutModel {
    static CUT: OnceLock<CutModel> = OnceLock::new();
    CUT.get_or_init(|| {
        CutModel::build(CutConfig {
            gates: 80,
            patterns: 64,
            window: 8,
            ..CutConfig::default()
        })
        .unwrap_or_else(|e| panic!("substrate builds: {e}"))
    })
}

/// xorshift64* — deliberately a *different* generator family than the
/// SplitMix64 the engine uses, so the fuzzer never accidentally walks in
/// step with the simulation's own streams.
struct Mutator(u64);

impl Mutator {
    fn new(seed: u64) -> Self {
        Mutator(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A valid arrival pool: one noisy campaign over the full fleet, so base
/// frames already carry retransmissions, impairment descriptors and
/// truncation caps — the fuzzer mutates *around* realistic data.
fn arrival_pool() -> (Vec<VehicleArrival>, f64) {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    let channel = ChannelConfig::Noisy(NoisyChannel {
        frame_error_rate: 0.1,
        corruption_rate: 0.25,
        window_loss_rate: 0.2,
        truncation_cap_bytes: 96,
        seed: 0xF0CC_5EED,
    });
    let bp = vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
    ];
    let campaign = Campaign::new(
        cut(),
        &bp,
        CampaignConfig {
            vehicles: FLEET,
            defect_fraction: 1.0,
            seed: 0xFA11_DA7A,
            threads: 1,
            ..CampaignConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("valid campaign: {e}"));
    let horizon_s = campaign.config().horizon_s;
    (campaign.arrivals().collect(), horizon_s)
}

/// Applies mutation `kind` to `a`. Returns `true` when the mutated frame
/// violates an ingest invariant and MUST be rejected with a typed error;
/// `false` means the frame is still well-formed (identity, replay, or a
/// benign impairment-descriptor scramble) and MUST be accepted.
fn apply(a: &mut VehicleArrival, kind: u64, m: &mut Mutator, faults: u32) -> bool {
    match kind {
        // 0..=4: identity — valid frames (and, by sampling the pool with
        // replacement, natural duplicates/replays).
        0..=4 => false,
        // 5..=7: benign impairment-descriptor scrambles. The consumer
        // reduces slots/salts modulo the payload and caps are just
        // counts, so *any* descriptor must diagnose without panicking.
        5 => {
            if let Some(up) = &mut a.upload {
                up.impairment.cap_entries = m.next() as u16;
            }
            false
        }
        6 => {
            if let Some(up) = &mut a.upload {
                up.impairment.kind = ImpairmentKind::WindowLost {
                    slot: m.next() as u8,
                };
            }
            false
        }
        7 => {
            if let Some(up) = &mut a.upload {
                up.impairment.kind = ImpairmentKind::CorruptedSyndrome {
                    salt: m.next() as u8,
                };
            }
            false
        }
        // 8/9: out-of-fleet vehicle index.
        8 => {
            a.vehicle = FLEET + 1 + (m.next() as u32 % 1_000);
            true
        }
        9 => {
            a.vehicle = u32::MAX;
            true
        }
        // 10/11: corrupted BIST-time accounting.
        10 => {
            a.bist_time_s = f64::NAN;
            true
        }
        11 => {
            a.bist_time_s = -1.0 - a.bist_time_s;
            true
        }
        // 12..=18: upload-field corruption (no-ops when the vehicle never
        // uploaded — those frames stay valid).
        12 => a.upload.as_mut().is_some_and(|up| {
            up.vehicle = up.vehicle.wrapping_add(1 + m.next() as u32 % 7);
            true
        }),
        13 => a.upload.as_mut().is_some_and(|up| {
            up.time_s = f64::INFINITY;
            true
        }),
        14 => a.upload.as_mut().is_some_and(|up| {
            up.time_s = -f64::from(1 + m.next() as u32 % 100);
            true
        }),
        15 => a.upload.as_mut().is_some_and(|up| {
            up.fail_bytes = FAIL_DATA_BYTES + 1 + m.next() % 10_000;
            true
        }),
        16 => a.upload.as_mut().is_some_and(|up| {
            up.retransmit_s = f64::NAN;
            true
        }),
        17 => a.upload.as_mut().is_some_and(|up| {
            up.fault_index = u32::MAX;
            true
        }),
        18 => a.upload.as_mut().is_some_and(|up| {
            up.fault_index = faults + m.next() as u32 % 1_000;
            true
        }),
        // 19: re-tag the family as SRAM. The service under test carries no
        // March model, so the dictionary bound is vacuous and diagnosis
        // yields a typed zero entry — the frame must still be *accepted*.
        _ => {
            if let Some(up) = &mut a.upload {
                up.family = CutFamily::Sram;
            }
            false
        }
    }
}

#[test]
fn mutated_frames_never_panic_and_fail_typed() {
    let (pool, horizon_s) = arrival_pool();
    assert!(
        pool.iter().filter(|a| a.upload.is_some()).count() > FLEET as usize / 2,
        "pool must be upload-rich for upload mutations to bite"
    );
    let faults = u32::try_from(cut().num_faults()).unwrap_or(u32::MAX);
    let mut m = Mutator::new(0x5EED_F0CC_FADE_0001);
    let mut total_frames = 0u64;
    let mut total_rejected = 0u64;

    for round in 0..ROUNDS {
        let mut svc = GatewayService::new(
            cut(),
            GatewayConfig {
                vehicles: FLEET,
                horizon_s,
                queue_capacity: 1 + m.below(64) as usize,
                threads: 1 + m.below(4) as usize,
                shards: 1 + m.below(4) as usize,
                ..GatewayConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("provisions: {e}"));

        let (mut ok, mut unknown, mut malformed) = (0u64, 0u64, 0u64);
        for frame in 0..FRAMES_PER_ROUND {
            let mut a = pool[m.below(pool.len() as u64) as usize];
            let kind = m.below(MUTATION_KINDS);
            let must_reject = apply(&mut a, kind, &mut m, faults);
            total_frames += 1;
            match svc.accept(a) {
                Ok(()) => {
                    assert!(
                        !must_reject,
                        "round {round} frame {frame}: invalid frame (kind {kind}) accepted"
                    );
                    ok += 1;
                }
                Err(FleetError::UnknownVehicle { .. }) => {
                    assert!(
                        must_reject,
                        "round {round} frame {frame}: valid frame (kind {kind}) rejected"
                    );
                    unknown += 1;
                }
                Err(FleetError::MalformedUpload { .. }) => {
                    assert!(
                        must_reject,
                        "round {round} frame {frame}: valid frame (kind {kind}) rejected"
                    );
                    malformed += 1;
                }
                Err(other) => {
                    panic!("round {round} frame {frame}: untyped rejection from accept: {other}")
                }
            }
            // Sprinkle mid-stream snapshots: diagnosis over whatever made
            // it past the boundary must never panic, at any time point.
            if frame % 16 == 15 {
                let t = horizon_s * m.below(100) as f64 / 100.0;
                let snap = svc.snapshot_at(t);
                assert_eq!(snap.shed, 0, "accept never sheds");
            }
        }

        // End-of-round ledger: every counter reconciles with the per-call
        // results, and the robustness block surfaces the rejects.
        let snap = svc.snapshot_at(horizon_s);
        assert_eq!(svc.shed(), 0);
        assert_eq!(svc.malformed(), malformed);
        assert_eq!(snap.malformed, malformed);
        assert_eq!(snap.ingested + snap.duplicates, ok);
        assert_eq!(unknown + malformed, (FRAMES_PER_ROUND as u64) - ok);
        if malformed > 0 {
            let rob = snap
                .report
                .robustness
                .as_ref()
                .unwrap_or_else(|| panic!("round {round}: rejects imply a robustness block"));
            assert_eq!(rob.rejected_uploads, malformed);
        }
        total_rejected += unknown + malformed;
    }

    assert!(
        total_frames >= 1_500,
        "fuzz volume contract: {total_frames} < 1500 frames"
    );
    assert!(
        total_rejected > total_frames / 4,
        "mutation mix must actually exercise the rejection paths"
    );
}
