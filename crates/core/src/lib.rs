// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # eea-dse — diagnosis-aware design space exploration
//!
//! Reproduction of *"Non-Intrusive Integration of Advanced Diagnosis
//! Features in Automotive E/E-Architectures"* (DATE 2014): a design space
//! exploration that integrates Built-In Self-Test (BIST) capabilities into
//! an automotive E/E-architecture **non-intrusively** — test-pattern
//! transfers mirror the inactive ECU's certified CAN schedule — while
//! optimising three objectives simultaneously: monetary cost, test quality
//! and shut-off time.
//!
//! The pipeline:
//!
//! 1. [`augment`](augment::augment) a functional [`eea_model`]
//!    specification with BIST test/data/collect tasks per ECU and profile
//!    (Fig. 3 of the paper),
//! 2. [`encode`](encode::encode) the feasibility constraints — Eqs.
//!    (2a)–(2h) and (3a)–(3b) plus the functional binding/routing
//!    constraints — into a SAT formula,
//! 3. [`explore`](explore::explore): NSGA-II evolves branching
//!    priorities/polarities which the [`eea_sat`] solver decodes into
//!    feasible implementations (SAT-decoding); objectives per
//!    [`objectives`],
//! 4. [`report`] extracts the Fig. 5 / Fig. 6 / headline quantities.
//!
//! # Quickstart
//!
//! ```
//! use eea_bist::paper_table1;
//! use eea_dse::augment::augment;
//! use eea_dse::explore::{explore, DseConfig};
//! use eea_model::paper_case_study;
//!
//! let case = paper_case_study();
//! // A reduced profile set and budget keep this example fast.
//! let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
//! let mut cfg = DseConfig::default();
//! cfg.nsga2.population = 16;
//! cfg.nsga2.evaluations = 160;
//! let result = explore(&diag, &cfg, |_, _| {});
//! assert!(!result.front.is_empty());
//! ```

pub mod augment;
pub mod encode;
pub mod error;
pub mod explore;
pub mod objectives;
pub mod report;
pub mod schedule;

pub use augment::{augment, AugmentError, BistOption, DiagSpec};
pub use error::EeaError;
pub use encode::{encode, Encoding};
pub use explore::{
    baseline_cost, explore, resolve_threads, DseConfig, DseProblem, DseResult,
    ExploredImplementation, EVAL_LANES,
};
pub use objectives::{
    evaluate, evaluate_with_transport, MemorySummary, Objectives, MAX_SHUTOFF_S,
};
// The transport axis is part of this crate's public configuration surface
// (`DseConfig::transport`); re-exported so binaries need not name `eea_can`.
pub use eea_can::{Transport, TransportConfig, TransportError, TransportKind};
pub use schedule::{check_schedulability, derive_bus_schedules, BusSchedule, ScheduleError};
pub use report::{
    fig5_ascii, fig5_csv, fig5_points, fig6_csv, fig6_rows, headline, headline_with_budget,
    partial_networking_candidates, Fig5Point, Fig6Row, Headline, SHUTOFF_MARKER_SPLIT_S,
};
