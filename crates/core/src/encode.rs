//! SAT/ILP encoding of the feasibility constraints (Section III-C).
//!
//! Variables, following the paper's characteristic function `Ψ`:
//!
//! * `m` — one Boolean per mapping edge `(t, r) ∈ M`,
//! * `c_r` — message `c` is routed over resource `r`,
//! * `c_{rτ}` — message `c` reaches resource `r` at routing step `τ`.
//!
//! Constraint families (all reduce to clauses + at-most-one):
//!
//! * functional tasks: mapped **exactly once** (the `Ψ_F` part of \[17\]),
//! * (2a) each diagnostic task mapped at most once,
//! * (2b) a message's route starts exactly at its (bound) sender,
//! * (2c) a bound receiver forces the route to reach its resource,
//! * (2d)–(2g) time-indexed, cycle-free, adjacency-respecting routing,
//! * (2h) no resource allocated solely for diagnosis,
//! * (3a) at most one BIST profile per ECU,
//! * (3b) the data task `b^D` is bound iff its test task `b^T` is.
//!
//! Route variables are created only for `(r, τ)` pairs that are both
//! forward-reachable from a sender option and backward-reachable from a
//! receiver option — a standard presolve that keeps the formula compact.

use std::collections::BTreeMap;

use eea_model::{Implementation, MessageId, ResourceId, Specification, TaskId};
use eea_sat::{Solver, Var};

use crate::augment::DiagSpec;

/// The encoded formula plus the variable maps needed for decoding.
#[derive(Debug)]
pub struct Encoding {
    /// The solver holding the formula. Reused (incl. learned clauses)
    /// across decodes.
    pub solver: Solver,
    /// Mapping variables per task: `(resource, var)` pairs.
    pub m_vars: Vec<Vec<(ResourceId, Var)>>,
    /// Route variables `c_r` per message.
    pub c_vars: Vec<BTreeMap<ResourceId, Var>>,
    /// Time-indexed route variables `c_{rτ}` per message.
    pub ct_vars: Vec<BTreeMap<(ResourceId, u32), Var>>,
    /// Routing horizon (architecture diameter).
    pub horizon: u32,
}

impl Encoding {
    /// All mapping variables in deterministic order, with their task and
    /// resource. This is the genotype's decision-variable order.
    pub fn mapping_vars(&self) -> Vec<(TaskId, ResourceId, Var)> {
        let mut out = Vec::new();
        for (ti, opts) in self.m_vars.iter().enumerate() {
            for &(r, v) in opts {
                out.push((TaskId::from_index(ti), r, v));
            }
        }
        out
    }

    /// Extracts the implementation from the solver's current model.
    ///
    /// Only meaningful directly after a satisfiable
    /// [`solve`](eea_sat::Solver::solve).
    pub fn extract(&self, spec: &Specification) -> Implementation {
        self.extract_model(&self.solver, spec)
    }

    /// Like [`extract`](Self::extract), but reads the model of an external
    /// `solver` — a clone of [`solver`](Self::solver) holding the same
    /// formula (and hence the same variable numbering). This is what lets
    /// per-worker solver replicas share one encoding.
    pub fn extract_model(&self, solver: &Solver, spec: &Specification) -> Implementation {
        let mut x = Implementation::new();
        for (ti, opts) in self.m_vars.iter().enumerate() {
            for &(r, v) in opts {
                if solver.value(v) {
                    x.bind(TaskId::from_index(ti), r);
                }
            }
        }
        for mi in 0..self.c_vars.len() {
            let message = MessageId::from_index(mi);
            let sender = spec.application.message(message).sender;
            if x.binding_of(sender).is_none() {
                continue;
            }
            // Order route resources by their earliest active time step so
            // the route reads sender-outward.
            let mut hops: Vec<(u32, ResourceId)> = Vec::new();
            for (&r, &v) in &self.c_vars[mi] {
                if solver.value(v) {
                    let tau = self.ct_vars[mi]
                        .iter()
                        .filter(|&(&(rr, _), &tv)| rr == r && solver.value(tv))
                        .map(|(&(_, tau), _)| tau)
                        .min()
                        .unwrap_or(u32::MAX);
                    hops.push((tau, r));
                }
            }
            hops.sort();
            x.route(message, hops.into_iter().map(|(_, r)| r).collect());
        }
        x
    }
}

/// Builds the complete encoding for an augmented specification.
pub fn encode(diag: &DiagSpec) -> Encoding {
    let spec = &diag.spec;
    let app = &spec.application;
    let arch = &spec.architecture;
    let mut solver = Solver::new();
    let horizon = arch.diameter();

    // Mapping variables.
    let mut m_vars: Vec<Vec<(ResourceId, Var)>> = Vec::with_capacity(app.num_tasks());
    for t in app.task_ids() {
        let opts: Vec<(ResourceId, Var)> = spec
            .mapping_options(t)
            .iter()
            .map(|&r| (r, solver.new_var()))
            .collect();
        m_vars.push(opts);
    }

    // Functional: exactly one; diagnostic: at most one (2a).
    for t in app.task_ids() {
        let lits: Vec<_> = m_vars[t.index()]
            .iter()
            .map(|&(_, v)| v.positive())
            .collect();
        if lits.is_empty() {
            continue;
        }
        if app.task(t).kind.is_diagnostic() {
            solver.add_at_most_one(&lits);
        } else {
            solver.add_exactly_one(&lits);
        }
    }

    // (3a) at most one BIST profile per ECU.
    for ecu in diag.bist_ecus() {
        let lits: Vec<_> = diag
            .options_of(ecu)
            .map(|o| {
                let (r, v) = m_vars[o.test.index()][0];
                debug_assert_eq!(r, ecu);
                v.positive()
            })
            .collect();
        solver.add_at_most_one(&lits);
    }

    // (3b) b^D bound iff b^T bound.
    for o in &diag.options {
        let (_, t_var) = m_vars[o.test.index()][0];
        let d_lits: Vec<_> = m_vars[o.data.index()]
            .iter()
            .map(|&(_, v)| v.positive())
            .collect();
        // b^T -> some b^D binding.
        let mut clause = vec![t_var.negative()];
        clause.extend(d_lits.iter().copied());
        solver.add_clause(&clause);
        // any b^D binding -> b^T.
        for &d in &d_lits {
            solver.add_clause(&[!d, t_var.positive()]);
        }
    }

    // (2h) a diagnostic task may only be mapped to a resource that also
    // hosts a functional task. Precompute functional options per resource.
    let mut functional_on: BTreeMap<ResourceId, Vec<Var>> = BTreeMap::new();
    for t in app.functional_tasks() {
        for &(r, v) in &m_vars[t.index()] {
            functional_on.entry(r).or_default().push(v);
        }
    }
    for t in app.diagnostic_tasks() {
        for &(r, v) in &m_vars[t.index()] {
            let mut clause = vec![v.negative()];
            if let Some(funcs) = functional_on.get(&r) {
                clause.extend(funcs.iter().map(|f| f.positive()));
            }
            solver.add_clause(&clause);
        }
    }

    // Routing constraints per message.
    let mut c_vars: Vec<BTreeMap<ResourceId, Var>> = Vec::with_capacity(app.num_messages());
    let mut ct_vars: Vec<BTreeMap<(ResourceId, u32), Var>> =
        Vec::with_capacity(app.num_messages());
    for m in app.message_ids() {
        let msg = app.message(m);
        let sender_opts: Vec<ResourceId> =
            m_vars[msg.sender.index()].iter().map(|&(r, _)| r).collect();
        let mut receiver_opts: Vec<ResourceId> = Vec::new();
        for t in &msg.receivers {
            for &(r, _) in &m_vars[t.index()] {
                if !receiver_opts.contains(&r) {
                    receiver_opts.push(r);
                }
            }
        }

        // Presolve: forward distance from sender options, backward distance
        // to receiver options.
        let dist_from = multi_source_distances(arch, &sender_opts);
        let dist_to = multi_source_distances(arch, &receiver_opts);
        // Message horizon: longest sender->receiver distance that can occur.
        let mut h = 0;
        for &s in &sender_opts {
            for &t in &receiver_opts {
                if let Some(d) = arch.hop_distance(s, t) {
                    h = h.max(d);
                }
            }
        }
        let h = h.min(horizon);

        let mut c_map: BTreeMap<ResourceId, Var> = BTreeMap::new();
        let mut ct_map: BTreeMap<(ResourceId, u32), Var> = BTreeMap::new();
        for r in arch.resource_ids() {
            let (Some(df), Some(dt)) = (dist_from[r.index()], dist_to[r.index()]) else {
                continue;
            };
            if df + dt > h {
                continue; // cannot lie on any admissible route
            }
            let cv = solver.new_var();
            c_map.insert(r, cv);
            for tau in df..=(h - dt) {
                let tv = solver.new_var();
                ct_map.insert((r, tau), tv);
            }
        }

        // (2b) route starts exactly at the bound sender.
        for &(r, mv) in &m_vars[msg.sender.index()] {
            match ct_map.get(&(r, 0)) {
                Some(&tv) => solver.add_equal(mv.positive(), tv.positive()),
                None => {
                    // Sender option cannot start any admissible route (no
                    // receiver reachable): binding there forbids receivers…
                    // handled by (2c) clauses below, but the mapping itself
                    // must then be excluded to keep routing sound.
                    solver.add_clause(&[mv.negative()]);
                }
            }
        }

        // (2c) a bound receiver pulls the route to its resource.
        for t in &msg.receivers {
            for &(r, recv_v) in &m_vars[t.index()] {
                for &(_, send_v) in &m_vars[msg.sender.index()] {
                    match c_map.get(&r) {
                        Some(&cv) => {
                            solver.add_clause(&[
                                cv.positive(),
                                send_v.negative(),
                                recv_v.negative(),
                            ]);
                        }
                        None => {
                            solver.add_clause(&[send_v.negative(), recv_v.negative()]);
                        }
                    }
                }
            }
        }

        // (2d) at most one active time step per resource;
        // (2e) an active resource has an active step;
        // (2f) an active step activates its resource.
        for (&r, &cv) in &c_map {
            let steps: Vec<_> = ct_map
                .iter()
                .filter(|&(&(rr, _), _)| rr == r)
                .map(|(_, &tv)| tv)
                .collect();
            let step_lits: Vec<_> = steps.iter().map(|v| v.positive()).collect();
            solver.add_at_most_one(&step_lits);
            let mut alo = vec![cv.negative()];
            alo.extend(step_lits.iter().copied());
            solver.add_clause(&alo);
            for &tv in &steps {
                solver.add_implies(tv.positive(), cv.positive());
            }
        }

        // (2g) a step-τ+1 resource needs an adjacent step-τ resource.
        for (&(r, tau), &tv) in &ct_map {
            if tau == 0 {
                continue;
            }
            let mut clause = vec![tv.negative()];
            for &n in arch.neighbors(r) {
                if let Some(&pv) = ct_map.get(&(n, tau - 1)) {
                    clause.push(pv.positive());
                }
            }
            solver.add_clause(&clause);
        }

        c_vars.push(c_map);
        ct_vars.push(ct_map);
    }

    Encoding {
        solver,
        m_vars,
        c_vars,
        ct_vars,
        horizon,
    }
}

fn multi_source_distances(
    arch: &eea_model::Architecture,
    sources: &[ResourceId],
) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; arch.num_resources()];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(r) = queue.pop_front() {
        // Nodes are enqueued only after their distance is set.
        let Some(d) = dist[r.index()] else {
            continue;
        };
        for &n in arch.neighbors(r) {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use eea_bist::paper_table1;
    use eea_model::paper_case_study;
    use eea_sat::SolveResult;

    #[test]
    fn encoding_is_satisfiable() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
        let mut enc = encode(&diag);
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn decoded_solution_validates() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
        let mut enc = encode(&diag);
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        diag.spec
            .validate_implementation(&x)
            .expect("decoded implementation is structurally valid");
    }

    #[test]
    fn at_most_one_profile_selected_per_ecu() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..6]).expect("gateway present");
        let mut enc = encode(&diag);
        // Push the solver towards selecting BIST tasks.
        for o in &diag.options {
            let (_, v) = enc.m_vars[o.test.index()][0];
            enc.solver.set_polarity(v, true);
            enc.solver.set_priority(v, 1.0);
        }
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        for ecu in diag.bist_ecus() {
            let selected = diag
                .options_of(ecu)
                .filter(|o| x.binding_of(o.test).is_some())
                .count();
            assert!(selected <= 1, "ECU {ecu} selected {selected} profiles");
        }
        // With positive polarity on every test task, at least one ECU
        // actually runs BIST.
        let total: usize = diag
            .bist_ecus()
            .iter()
            .map(|&e| {
                diag.options_of(e)
                    .filter(|o| x.binding_of(o.test).is_some())
                    .count()
            })
            .sum();
        assert!(total > 0, "no BIST selected despite positive polarity");
    }

    #[test]
    fn data_task_follows_test_task() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..3]).expect("gateway present");
        let mut enc = encode(&diag);
        for o in &diag.options {
            let (_, v) = enc.m_vars[o.test.index()][0];
            enc.solver.set_polarity(v, true);
            enc.solver.set_priority(v, 1.0);
        }
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        for o in &diag.options {
            let test_bound = x.binding_of(o.test).is_some();
            let data_bound = x.binding_of(o.data).is_some();
            assert_eq!(test_bound, data_bound, "(3b) violated for {:?}", o.test);
        }
    }

    #[test]
    fn no_diag_only_resource() {
        // (2h): every resource hosting a diagnostic task also hosts a
        // functional task.
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..3]).expect("gateway present");
        let mut enc = encode(&diag);
        for o in &diag.options {
            let (_, v) = enc.m_vars[o.test.index()][0];
            enc.solver.set_polarity(v, true);
            enc.solver.set_priority(v, 1.0);
        }
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        let app = &diag.spec.application;
        for o in &diag.options {
            for task in [o.test, o.data] {
                if let Some(r) = x.binding_of(task) {
                    let has_functional = x.tasks_on(r).any(|t| !app.task(t).kind.is_diagnostic());
                    assert!(has_functional, "resource {r} hosts only diagnosis");
                }
            }
        }
    }

    #[test]
    fn routes_are_cycle_free_and_short() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..2]).expect("gateway present");
        let mut enc = encode(&diag);
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        for (m, route) in &x.routing {
            // (2d) ensures each resource appears at one step only; route
            // length is bounded by the horizon.
            let unique: std::collections::BTreeSet<_> = route.iter().collect();
            assert_eq!(unique.len(), route.len(), "cycle in route of {m}");
            assert!(route.len() as u32 <= enc.horizon + 1);
        }
    }
}
