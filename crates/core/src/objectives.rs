//! The three design objectives of Section III-D.
//!
//! * **Monetary cost** — allocated hardware plus permanent memory for the
//!   encoded test data. Gateway-stored pattern sets are shared: since every
//!   ECU of the case study carries the same CUT, two ECUs selecting the
//!   same profile reuse one gateway copy (the paper: "the same encoded
//!   patterns can be used for different ECUs").
//! * **Test quality** (Eq. 4) — average stuck-at coverage of the selected
//!   BIST sessions over all allocated ECUs; ECUs without a session
//!   contribute zero coverage.
//! * **Shut-off time** (Eq. 5) — the maximum extra awake time any ECU needs
//!   to finish its session: the session runtime `l(b)`, plus the Eq. (1)
//!   transfer time `q(b^D)` when the patterns are stored remotely and must
//!   be streamed over the mirrored CAN schedule first.

use std::collections::BTreeMap;

use eea_can::{CanId, Message, TransportConfig};
use eea_model::{DiagRole, Implementation, ResourceId, ResourceKind, TaskKind};

use crate::augment::DiagSpec;

/// Shut-off times are clamped here (seconds) when an ECU has no payload
/// bandwidth on the selected transport (no functional message whose
/// schedule could be mirrored, no FlexRay slot) — the transport layer then
/// reports [`eea_can::TransportError::NoBandwidth`], which this layer maps
/// to an unbounded transfer time; the clamp keeps the objective finite so
/// it cannot poison crowding-distance computations downstream.
pub const MAX_SHUTOFF_S: f64 = 86_400.0;

/// The paper's three objectives, in natural units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Monetary cost (virtual cost units; hardware + test-data memory).
    pub cost: f64,
    /// Test quality in `[0, 1]` (Eq. 4); higher is better.
    pub test_quality: f64,
    /// Shut-off time in seconds (Eq. 5); lower is better.
    pub shutoff_s: f64,
}

impl Objectives {
    /// The minimisation vector handed to the MOEA:
    /// `[cost, -quality, shutoff]`.
    pub fn to_minimized(self) -> Vec<f64> {
        vec![self.cost, -self.test_quality, self.shutoff_s]
    }

    /// Reconstructs natural-unit objectives from a minimisation vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not have exactly three entries.
    pub fn from_minimized(v: &[f64]) -> Self {
        assert_eq!(v.len(), 3, "objective vector has three entries");
        Objectives {
            cost: v[0],
            test_quality: -v[1],
            shutoff_s: v[2],
        }
    }
}

/// Memory-placement summary of an implementation (the Fig. 6 quantities).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySummary {
    /// Bytes of encoded test data stored centrally at the gateway
    /// (distinct profiles counted once).
    pub gateway_bytes: u64,
    /// Bytes stored distributed in ECU-local memory.
    pub distributed_bytes: u64,
    /// Selected sessions: `(ecu, profile id, stored locally?)`.
    pub selected: Vec<(ResourceId, u32, bool)>,
}

/// Evaluates all three objectives (plus the memory summary) of a decoded
/// implementation over the paper's baseline transport, classic-CAN
/// mirroring — equivalent to
/// [`evaluate_with_transport`] with [`TransportConfig::MirroredCan`]
/// (bit for bit: the trait's Eq. (1) arithmetic is the historical free
/// function's).
pub fn evaluate(diag: &DiagSpec, x: &Implementation) -> (Objectives, MemorySummary) {
    evaluate_with_transport(diag, x, &TransportConfig::MirroredCan)
}

/// Evaluates all three objectives of a decoded implementation with the
/// test-data transfers of Eq. (5) riding `transport` — classic-CAN
/// mirroring, CAN FD, or FlexRay static slots (see
/// [`eea_can::TransportConfig`]). Transport nodes are keyed by
/// [`ResourceId::index`].
///
/// A transport configuration that cannot be built (degenerate parameters —
/// zero bit rates, a non-finite payload multiplier; see
/// [`TransportConfig::validate`]) grants no bandwidth to any node: every
/// remote transfer is then unbounded and the shut-off objective saturates
/// at [`MAX_SHUTOFF_S`], keeping this function total for the MOEA.
/// Callers wanting a hard failure validate the configuration up front.
pub fn evaluate_with_transport(
    diag: &DiagSpec,
    x: &Implementation,
    transport: &TransportConfig,
) -> (Objectives, MemorySummary) {
    let spec = &diag.spec;
    let arch = &spec.architecture;
    let app = &spec.application;

    // ---- Monetary cost: allocated hardware.
    let mut cost: f64 = x
        .allocation
        .iter()
        .map(|&r| arch.resource(r).cost)
        .sum();

    // Functional messages sent per ECU (for Eq. (1) mirrored bandwidth).
    let mut sent_by: BTreeMap<ResourceId, Vec<Message>> = BTreeMap::new();
    let mut next_id = 0u16;
    for m in app.message_ids() {
        let msg = app.message(m);
        if app.task(msg.sender).kind.is_diagnostic() {
            continue;
        }
        // Diagnosis-infrastructure messages (c^R from the collect task
        // side) do not exist; the collect task only receives.
        let Some(src) = x.binding_of(msg.sender) else {
            continue;
        };
        if arch.resource(src).kind != ResourceKind::Ecu {
            continue;
        }
        let payload = msg.size_bytes.min(8) as u8;
        // next_id wraps below 0x7FF and the payload is clamped to 8, so
        // both constructors succeed; a zero-period functional message (an
        // invalid specification) is skipped rather than panicking.
        let Ok(id) = CanId::new(next_id) else {
            continue;
        };
        let Ok(message) = Message::new(id, payload, msg.period_us) else {
            continue;
        };
        next_id = (next_id + 1) % 0x7FF;
        sent_by.entry(src).or_default().push(message);
    }

    // The transport backend for this implementation: nodes keyed by
    // resource index, message sets in the construction order above (the
    // bandwidth sums of the MirroredCan backend are then bit-identical to
    // the historical free-function path).
    let backend = transport
        .build(
            sent_by
                .into_iter()
                .map(|(r, msgs)| (r.index() as u32, msgs))
                .collect(),
        )
        .ok();

    // ---- Selected BIST sessions.
    let mut memory = MemorySummary::default();
    let mut quality_sum = 0.0;
    let mut shutoff: f64 = 0.0;
    let mut gateway_profiles: BTreeMap<u32, u64> = BTreeMap::new();
    let mut any_selected = false;
    for o in &diag.options {
        if x.binding_of(o.test).is_none() {
            continue;
        }
        any_selected = true;
        // Eq. (3b) couples the data task's binding to the test task's, so
        // a decoded implementation always binds both; a hand-built one
        // that does not is treated as "no session" rather than a panic.
        let Some(data_at) = x.binding_of(o.data) else {
            continue;
        };
        let local = data_at == o.ecu;
        memory
            .selected
            .push((o.ecu, o.profile.id, local));
        quality_sum += o.profile.coverage;

        let l_s = o.profile.runtime_ms / 1e3;
        let session_time = if local {
            memory.distributed_bytes += o.profile.data_bytes;
            cost += o.profile.data_bytes as f64 * arch.resource(o.ecu).memory_cost_per_byte;
            l_s
        } else {
            gateway_profiles
                .entry(o.profile.id)
                .or_insert(o.profile.data_bytes);
            // The transport returns a typed error when the ECU has no
            // payload bandwidth (no mirrored message, no static slot);
            // such an ECU can never finish the transfer, so its shut-off
            // time is unbounded (clamped to MAX_SHUTOFF_S below).
            let q = backend
                .as_ref()
                .and_then(|t| {
                    t.transfer_time_s(o.ecu.index() as u32, o.profile.data_bytes)
                        .ok()
                })
                .unwrap_or(f64::INFINITY);
            l_s + q
        };
        shutoff = shutoff.max(session_time.min(MAX_SHUTOFF_S));
    }
    for (&_profile, &bytes) in &gateway_profiles {
        memory.gateway_bytes += bytes;
        cost += bytes as f64 * arch.resource(diag.gateway).memory_cost_per_byte;
    }
    let _ = any_selected;

    // ---- Test quality (Eq. 4): average over allocated ECUs.
    let allocated_ecus = arch
        .of_kind(ResourceKind::Ecu)
        .filter(|&r| x.tasks_on(r).next().is_some())
        .count();
    let test_quality = if allocated_ecus == 0 {
        0.0
    } else {
        quality_sum / allocated_ecus as f64
    };

    (
        Objectives {
            cost,
            test_quality,
            shutoff_s: shutoff,
        },
        memory,
    )
}

/// Convenience check used by tests and reports: whether an implementation
/// selects any BIST session at all.
pub fn has_diagnosis(diag: &DiagSpec, x: &Implementation) -> bool {
    diag.options
        .iter()
        .any(|o| x.binding_of(o.test).is_some())
}

/// The functional-only baseline cost: allocated hardware of an
/// implementation, ignoring every diagnostic binding and memory cost.
/// Used to compute the paper's "+3.7 % of a design without structural
/// tests" headline.
pub fn functional_hardware_cost(diag: &DiagSpec, x: &Implementation) -> f64 {
    let spec = &diag.spec;
    let mut resources: std::collections::BTreeSet<ResourceId> = std::collections::BTreeSet::new();
    for (t, &r) in &x.binding {
        if !spec.application.task(*t).kind.is_diagnostic() {
            resources.insert(r);
        }
    }
    for m in spec.application.message_ids() {
        let msg = spec.application.message(m);
        if spec.application.task(msg.sender).kind.is_diagnostic()
            || matches!(
                spec.application.task(msg.sender).kind,
                TaskKind::Diagnostic(DiagRole::Test { .. })
            )
        {
            continue;
        }
        if let Some(route) = x.routing.get(&m) {
            resources.extend(route.iter().copied());
        }
    }
    resources
        .iter()
        .map(|&r| spec.architecture.resource(r).cost)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use crate::encode::encode;
    use eea_bist::paper_table1;
    use eea_model::paper_case_study;
    use eea_sat::SolveResult;

    fn decoded(n_profiles: usize, select_bist: bool) -> (DiagSpec, Implementation) {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..n_profiles]).expect("gateway present");
        let mut enc = encode(&diag);
        for o in &diag.options {
            let (_, v) = enc.m_vars[o.test.index()][0];
            enc.solver.set_polarity(v, select_bist);
            enc.solver.set_priority(v, if select_bist { 1.0 } else { 0.0 });
        }
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let x = enc.extract(&diag.spec);
        (diag, x)
    }

    #[test]
    fn no_diagnosis_zero_quality() {
        let (diag, x) = decoded(2, false);
        let (obj, mem) = evaluate(&diag, &x);
        // Nothing forces BIST selection with negative polarity.
        if !has_diagnosis(&diag, &x) {
            assert_eq!(obj.test_quality, 0.0);
            assert_eq!(obj.shutoff_s, 0.0);
            assert_eq!(mem.gateway_bytes + mem.distributed_bytes, 0);
        }
        assert!(obj.cost > 0.0);
    }

    #[test]
    fn diagnosis_improves_quality_and_costs_memory() {
        let (diag, x0) = decoded(2, false);
        let (o0, _) = evaluate(&diag, &x0);
        let (diag1, x1) = decoded(2, true);
        let (o1, m1) = evaluate(&diag1, &x1);
        assert!(has_diagnosis(&diag1, &x1));
        assert!(o1.test_quality > o0.test_quality);
        assert!(o1.shutoff_s > 0.0);
        assert!(m1.gateway_bytes + m1.distributed_bytes > 0);
    }

    #[test]
    fn quality_bounded_by_max_coverage() {
        let (diag, x) = decoded(4, true);
        let (obj, _) = evaluate(&diag, &x);
        let max_cov = diag
            .options
            .iter()
            .map(|o| o.profile.coverage)
            .fold(0.0, f64::max);
        assert!(obj.test_quality <= max_cov + 1e-12);
    }

    #[test]
    fn gateway_storage_is_shared() {
        // If several ECUs select the same profile with gateway storage, the
        // gateway stores one copy.
        let (diag, x) = decoded(1, true);
        let (_, mem) = evaluate(&diag, &x);
        let remote: Vec<_> = mem.selected.iter().filter(|&&(_, _, local)| !local).collect();
        if remote.len() >= 2 {
            // One distinct profile -> one gateway copy.
            assert_eq!(mem.gateway_bytes, diag.options[0].profile.data_bytes);
        }
    }

    #[test]
    fn minimized_roundtrip() {
        let o = Objectives {
            cost: 123.0,
            test_quality: 0.8,
            shutoff_s: 4.2,
        };
        let v = o.to_minimized();
        assert_eq!(v, vec![123.0, -0.8, 4.2]);
        assert_eq!(Objectives::from_minimized(&v), o);
    }

    #[test]
    fn shutoff_uses_eq1_for_remote_storage() {
        let (diag, x) = decoded(1, true);
        let (obj, mem) = evaluate(&diag, &x);
        // With profile 1 (2.4 MB) stored at the gateway for some ECU,
        // shut-off must be dominated by the transfer, i.e. much larger than
        // the 4.87 ms session runtime.
        if mem.selected.iter().any(|&(_, _, local)| !local) {
            assert!(obj.shutoff_s > 1.0, "shutoff = {}", obj.shutoff_s);
        }
    }
}
