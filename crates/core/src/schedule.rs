//! Derivation and verification of the per-bus CAN schedules implied by an
//! implementation.
//!
//! The paper assumes that a *certified* bus schedule exists for the
//! functional messages and shows how to add test traffic without touching
//! it. This module closes the loop inside the reproduction: from a decoded
//! implementation it derives the concrete CAN message set of every bus
//! (rate-monotonic identifier assignment) and verifies schedulability with
//! the worst-case response-time analysis of [`eea_can`]. An implementation
//! whose functional schedule would not certify is not a valid baseline for
//! the non-intrusive argument.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use eea_can::{analyze, CanId, Message as CanMessage};
use eea_model::{Implementation, MessageId, ResourceId, ResourceKind};

use crate::augment::DiagSpec;

/// The derived schedule of one CAN bus.
#[derive(Debug, Clone)]
pub struct BusSchedule {
    /// The bus resource.
    pub bus: ResourceId,
    /// Application message → assigned CAN message (rate-monotonic IDs).
    pub messages: Vec<(MessageId, CanMessage)>,
}

impl BusSchedule {
    /// Total bus utilisation of the schedule at `bitrate_bps`.
    pub fn utilization(&self, bitrate_bps: u64) -> f64 {
        self.messages
            .iter()
            .map(|(_, m)| m.utilization(bitrate_bps))
            .sum()
    }
}

/// Error from [`check_schedulability`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A message on the given bus misses its implicit deadline (= period).
    Unschedulable {
        /// The bus.
        bus: ResourceId,
        /// The offending application message.
        message: MessageId,
    },
    /// More messages on one bus than 11-bit identifiers.
    IdSpaceExhausted(ResourceId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unschedulable { bus, message } => {
                write!(f, "message {message} is unschedulable on bus {bus}")
            }
            ScheduleError::IdSpaceExhausted(bus) => {
                write!(f, "bus {bus} needs more than 2048 identifiers")
            }
        }
    }
}

impl Error for ScheduleError {}

/// Derives the functional CAN schedule of every bus used by `x`.
///
/// Each *functional* message whose route crosses a bus contributes one
/// periodic CAN message to that bus (the first bus on its route; in the
/// tree-shaped case-study topology a route crosses each bus at most once
/// per segment). Identifiers are assigned rate-monotonically: shorter
/// periods get higher priority (smaller IDs), ties broken by message
/// index — a deterministic stand-in for the OEM's ID assignment.
pub fn derive_bus_schedules(diag: &DiagSpec, x: &Implementation) -> Vec<BusSchedule> {
    let spec = &diag.spec;
    let app = &spec.application;
    let arch = &spec.architecture;
    let mut per_bus: BTreeMap<ResourceId, Vec<MessageId>> = BTreeMap::new();
    for m in app.message_ids() {
        if app.task(app.message(m).sender).kind.is_diagnostic() {
            continue;
        }
        let Some(route) = x.routing.get(&m) else {
            continue;
        };
        for &r in route {
            if arch.resource(r).kind == ResourceKind::CanBus {
                per_bus.entry(r).or_default().push(m);
            }
        }
    }
    per_bus
        .into_iter()
        .map(|(bus, mut ids)| {
            // Rate-monotonic priority order.
            ids.sort_by_key(|&m| (app.message(m).period_us, m));
            let messages = ids
                .into_iter()
                .enumerate()
                .filter_map(|(i, m)| {
                    let msg = app.message(m);
                    // The clamp keeps the identifier in range (an
                    // overfull bus is reported by check_schedulability as
                    // IdSpaceExhausted); a zero-period message — an
                    // invalid specification — is dropped, not panicked on.
                    let raw = (0x100usize + i).min(usize::from(CanId::MAX)) as u16;
                    let id = CanId::new(raw).ok()?;
                    let can =
                        CanMessage::new(id, msg.size_bytes.min(8) as u8, msg.period_us).ok()?;
                    Some((m, can))
                })
                .collect();
            BusSchedule { bus, messages }
        })
        .collect()
}

/// Derives and verifies the functional schedules of all buses.
///
/// # Errors
///
/// Returns the first [`ScheduleError`] found: an unschedulable message or
/// an exhausted identifier space.
pub fn check_schedulability(
    diag: &DiagSpec,
    x: &Implementation,
    bitrate_bps: u64,
) -> Result<Vec<BusSchedule>, ScheduleError> {
    let schedules = derive_bus_schedules(diag, x);
    for sched in &schedules {
        if sched.messages.len() > usize::from(CanId::MAX) {
            return Err(ScheduleError::IdSpaceExhausted(sched.bus));
        }
        let msgs: Vec<CanMessage> = sched.messages.iter().map(|(_, m)| *m).collect();
        let results = analyze(&msgs, bitrate_bps);
        for ((mid, _), r) in sched.messages.iter().zip(&results) {
            if r.response_us.is_err() {
                return Err(ScheduleError::Unschedulable {
                    bus: sched.bus,
                    message: *mid,
                });
            }
        }
    }
    Ok(schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use crate::explore::DseProblem;
    use eea_can::BUS_BITRATE_BPS;
    use eea_model::paper_case_study;
    use eea_moea::Problem;

    fn decoded() -> (DiagSpec, Implementation) {
        let case = paper_case_study();
        let diag = augment(&case, &eea_bist::paper_table1()[..2]).expect("gateway present");
        let mut problem = DseProblem::new(&diag);
        let n = problem.genotype_len();
        let x = problem.decode(&vec![0.5; n]).expect("feasible");
        (diag, x)
    }

    #[test]
    fn case_study_schedules_certify() {
        let (diag, x) = decoded();
        let schedules =
            check_schedulability(&diag, &x, BUS_BITRATE_BPS).expect("schedulable");
        assert!(!schedules.is_empty());
        // Low utilisation: a handful of small periodic messages per bus.
        for s in &schedules {
            assert!(
                s.utilization(BUS_BITRATE_BPS) < 0.5,
                "bus {} at {:.0} % load",
                s.bus,
                s.utilization(BUS_BITRATE_BPS) * 100.0
            );
        }
    }

    #[test]
    fn rate_monotonic_id_order() {
        let (diag, x) = decoded();
        let schedules = derive_bus_schedules(&diag, &x);
        for s in &schedules {
            for w in s.messages.windows(2) {
                let (m0, c0) = &w[0];
                let (m1, c1) = &w[1];
                assert!(c0.id().beats(c1.id()));
                let p0 = diag.spec.application.message(*m0).period_us;
                let p1 = diag.spec.application.message(*m1).period_us;
                assert!(p0 <= p1, "rate-monotonic order violated");
            }
        }
    }

    #[test]
    fn diagnostic_messages_excluded() {
        let (diag, x) = decoded();
        let schedules = derive_bus_schedules(&diag, &x);
        for s in &schedules {
            for (mid, _) in &s.messages {
                let sender = diag.spec.application.message(*mid).sender;
                assert!(
                    !diag.spec.application.task(sender).kind.is_diagnostic(),
                    "diagnostic traffic in the certified schedule"
                );
            }
        }
    }

    #[test]
    fn local_messages_do_not_touch_buses() {
        // Messages whose sender and receiver share a resource never appear
        // in any bus schedule.
        let (diag, x) = decoded();
        let schedules = derive_bus_schedules(&diag, &x);
        let on_buses: std::collections::BTreeSet<MessageId> = schedules
            .iter()
            .flat_map(|s| s.messages.iter().map(|(m, _)| *m))
            .collect();
        for m in diag.spec.application.message_ids() {
            let msg = diag.spec.application.message(m);
            if diag.spec.application.task(msg.sender).kind.is_diagnostic() {
                continue;
            }
            let (Some(src), Some(route)) = (x.binding_of(msg.sender), x.routing.get(&m)) else {
                continue;
            };
            let all_local = msg
                .receivers
                .iter()
                .all(|t| x.binding_of(*t) == Some(src));
            if all_local && route.len() == 1 {
                assert!(!on_buses.contains(&m), "local message {m} on a bus");
            }
        }
    }
}
