//! The design-space-exploration driver: SAT-decoding × NSGA-II.
//!
//! The genotype holds two genes per mapping variable: a branching priority
//! and a preferred polarity. The feasibility solver decodes the genotype
//! into an implementation (always feasible — conflicts are repaired by
//! clause learning), the objectives of Section III-D are evaluated, and
//! NSGA-II evolves the genotypes. Every evaluated implementation streams
//! through an unbounded Pareto archive, exactly like the paper's reported
//! "176 not Pareto-dominated implementations" out of 100,000 evaluations.

use std::time::Instant;

use eea_model::Implementation;
use eea_moea::{run, Nsga2Config, ParetoArchive, Problem};
use eea_sat::SolveResult;

use crate::augment::DiagSpec;
use crate::encode::{encode, Encoding};
use crate::objectives::{evaluate, MemorySummary, Objectives};

/// Configuration of [`explore`].
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// MOEA settings; `evaluations` is the total evaluation budget (the
    /// paper's case study uses 100,000).
    pub nsga2: Nsga2Config,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            nsga2: Nsga2Config {
                population: 100,
                evaluations: 10_000,
                ..Nsga2Config::default()
            },
        }
    }
}

/// One Pareto-optimal implementation found by the exploration.
#[derive(Debug, Clone)]
pub struct ExploredImplementation {
    /// The three objectives in natural units.
    pub objectives: Objectives,
    /// The decoded implementation.
    pub implementation: Implementation,
    /// Memory-placement summary (Fig. 6 quantities).
    pub memory: MemorySummary,
}

/// Result of an exploration run.
#[derive(Debug)]
pub struct DseResult {
    /// The non-dominated implementations (re-decoded from the archive).
    pub front: Vec<ExploredImplementation>,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Infeasible decodes (0 unless the specification is over-constrained).
    pub infeasible: usize,
    /// Wall-clock duration of the exploration in seconds.
    pub duration_s: f64,
    /// Archive-growth curve: `(evaluations, archive size)` samples taken
    /// after each generation. The flattening of this curve is the usual
    /// exploration-convergence signal.
    pub convergence: Vec<(usize, usize)>,
}

impl DseResult {
    /// Evaluations per second (the paper: 100,000 in ~29 min ≈ 57/s on an
    /// 8-core machine).
    pub fn evals_per_second(&self) -> f64 {
        self.evaluations as f64 / self.duration_s.max(1e-9)
    }
}

/// The SAT-decoding problem adapter: genotype → feasible implementation →
/// objective vector.
pub struct DseProblem<'d> {
    diag: &'d DiagSpec,
    encoding: Encoding,
    num_decision_vars: usize,
}

impl<'d> DseProblem<'d> {
    /// Builds the problem (encodes the formula once).
    pub fn new(diag: &'d DiagSpec) -> Self {
        let encoding = encode(diag);
        let num_decision_vars = encoding.mapping_vars().len();
        DseProblem {
            diag,
            encoding,
            num_decision_vars,
        }
    }

    /// Decodes a genotype into an implementation without evaluating
    /// objectives; `None` if the formula is unsatisfiable.
    pub fn decode(&mut self, genotype: &[f64]) -> Option<Implementation> {
        let n = self.num_decision_vars;
        assert_eq!(genotype.len(), 2 * n, "genotype length mismatch");
        let mvars = self.encoding.mapping_vars();
        for (i, &(_, _, v)) in mvars.iter().enumerate() {
            // Priorities in (0, 1]; route variables keep priority 0 and
            // polarity false, so routes stay minimal.
            self.encoding.solver.set_priority(v, genotype[i].max(1e-9));
            self.encoding.solver.set_polarity(v, genotype[n + i] > 0.5);
        }
        match self.encoding.solver.solve() {
            SolveResult::Sat => Some(self.encoding.extract(&self.diag.spec)),
            SolveResult::Unsat => None,
        }
    }

    /// Access to the augmented specification.
    pub fn diag(&self) -> &DiagSpec {
        self.diag
    }

    /// Corner genotypes that anchor the Pareto front:
    ///
    /// * no BIST at all (the cheapest, zero-quality, zero-shut-off design),
    /// * one session per ECU with **local** pattern storage (fast shut-off,
    ///   expensive distributed memory),
    /// * one session per ECU with **gateway** storage (cheap shared memory,
    ///   long transfers).
    ///
    /// Injected as NSGA-II seeds so the exploration never misses the
    /// extreme regions of Fig. 5.
    pub fn corner_genotypes(&self) -> Vec<Vec<f64>> {
        let n = self.num_decision_vars;
        let mvars = self.encoding.mapping_vars();
        let mut corners = Vec::new();
        for (select_bist, prefer_local) in [(false, false), (true, true), (true, false)] {
            let mut genotype = vec![0.5; 2 * n];
            for (i, &(task, resource, _)) in mvars.iter().enumerate() {
                let is_test = self
                    .diag
                    .options
                    .iter()
                    .any(|o| o.test == task);
                let data_of = self.diag.options.iter().find(|o| o.data == task);
                if is_test {
                    genotype[i] = 1.0; // decide the profile choice first
                    genotype[n + i] = if select_bist { 1.0 } else { 0.0 };
                } else if let Some(o) = data_of {
                    genotype[i] = 0.9;
                    let wants_local = resource == o.ecu;
                    genotype[n + i] = if wants_local == prefer_local { 1.0 } else { 0.0 };
                }
            }
            corners.push(genotype);
        }
        corners
    }
}

impl Problem for DseProblem<'_> {
    fn genotype_len(&self) -> usize {
        2 * self.num_decision_vars
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, genotype: &[f64]) -> Option<Vec<f64>> {
        let x = self.decode(genotype)?;
        let (objectives, _) = evaluate(self.diag, &x);
        Some(objectives.to_minimized())
    }
}

/// Runs the full exploration: encode once, evolve genotypes, and re-decode
/// the archived non-dominated genotypes into implementations.
///
/// The `progress` callback receives `(evaluations, archive size)` after
/// each generation.
pub fn explore(
    diag: &DiagSpec,
    cfg: &DseConfig,
    mut progress: impl FnMut(usize, usize),
) -> DseResult {
    let start = Instant::now();
    let mut problem = DseProblem::new(diag);
    let mut nsga2 = cfg.nsga2.clone();
    if nsga2.seeds.is_empty() {
        nsga2.seeds = problem.corner_genotypes();
    }
    let mut convergence: Vec<(usize, usize)> = Vec::new();
    let result = run(&mut problem, &nsga2, |evals, archive| {
        convergence.push((evals, archive));
        progress(evals, archive);
    });
    let duration_s = start.elapsed().as_secs_f64();

    // Re-decode archive entries into full implementations. Note: decoding
    // is repeatable but the solver has accumulated learned clauses; a
    // re-decode may produce a different (equally feasible) model, so the
    // archived objective vector is re-evaluated from the fresh decode and
    // re-filtered through a final archive.
    let mut front_archive: ParetoArchive<ExploredImplementation> = ParetoArchive::new();
    for entry in result.archive.entries() {
        if let Some(x) = problem.decode(&entry.payload) {
            let (objectives, memory) = evaluate(diag, &x);
            front_archive.offer(
                objectives.to_minimized(),
                ExploredImplementation {
                    objectives,
                    implementation: x,
                    memory,
                },
            );
        }
    }
    let mut front: Vec<ExploredImplementation> = front_archive
        .into_entries()
        .into_iter()
        .map(|e| e.payload)
        .collect();
    front.sort_by(|a, b| {
        a.objectives
            .cost
            .partial_cmp(&b.objectives.cost)
            .expect("finite costs")
    });

    DseResult {
        front,
        evaluations: result.evaluations,
        infeasible: result.infeasible,
        duration_s,
        convergence,
    }
}

/// Cost of the cheapest *diagnosis-free* design: explores the functional
/// specification (no BIST profiles) and returns the minimum cost found.
/// This is the baseline of the paper's "+3.7 % of a design without
/// structural tests" headline.
pub fn baseline_cost(case: &eea_model::CaseStudy, evaluations: usize, seed: u64) -> f64 {
    let diag = crate::augment::augment(case, &[]);
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 30.min(evaluations.max(2)),
            evaluations,
            seed,
            ..Nsga2Config::default()
        },
    };
    let res = explore(&diag, &cfg, |_, _| {});
    res.front
        .iter()
        .map(|e| e.objectives.cost)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use eea_bist::paper_table1;
    use eea_model::paper_case_study;

    fn quick_diag() -> DiagSpec {
        let case = paper_case_study();
        augment(&case, &paper_table1()[..4])
    }

    #[test]
    fn small_exploration_produces_front() {
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 20,
                evaluations: 400,
                seed: 11,
                ..Nsga2Config::default()
            },
        };
        let res = explore(&diag, &cfg, |_, _| {});
        assert_eq!(res.evaluations, 400);
        assert_eq!(res.infeasible, 0, "SAT-decoding always feasible here");
        assert!(!res.front.is_empty());
        // The convergence curve is sampled per generation; evaluations are
        // monotone (archive size may shrink when one solution evicts
        // several dominated ones).
        assert!(!res.convergence.is_empty());
        assert!(res.convergence.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every front implementation validates structurally.
        for e in &res.front {
            diag.spec
                .validate_implementation(&e.implementation)
                .expect("front implementations are valid");
        }
        // The front is mutually non-dominated on the minimised vectors.
        for a in &res.front {
            for b in &res.front {
                let va = a.objectives.to_minimized();
                let vb = b.objectives.to_minimized();
                if va != vb {
                    assert!(!eea_moea::dominates(&va, &vb) || !eea_moea::dominates(&vb, &va));
                }
            }
        }
    }

    #[test]
    fn exploration_discovers_quality_cost_tradeoff() {
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 30,
                evaluations: 900,
                seed: 5,
                ..Nsga2Config::default()
            },
        };
        let res = explore(&diag, &cfg, |_, _| {});
        let max_q = res
            .front
            .iter()
            .map(|e| e.objectives.test_quality)
            .fold(0.0, f64::max);
        let min_q = res
            .front
            .iter()
            .map(|e| e.objectives.test_quality)
            .fold(1.0, f64::min);
        assert!(max_q > 0.5, "exploration should find high-quality designs");
        assert!(min_q < max_q, "front spans a quality range");
    }

    #[test]
    fn baseline_is_cheaper_than_any_diagnosed_design() {
        let case = paper_case_study();
        let base = baseline_cost(&case, 600, 3);
        assert!(base.is_finite() && base > 0.0);
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 20,
                evaluations: 400,
                seed: 5,
                ..Nsga2Config::default()
            },
        };
        let res = explore(&diag, &cfg, |_, _| {});
        let with_diag_min = res
            .front
            .iter()
            .filter(|e| e.objectives.test_quality > 0.0)
            .map(|e| e.objectives.cost)
            .fold(f64::INFINITY, f64::min);
        // Diagnosis costs at least the stored pattern memory.
        assert!(with_diag_min >= base - 1e-9);
    }

    #[test]
    fn decode_respects_genotype_length() {
        let diag = quick_diag();
        let mut problem = DseProblem::new(&diag);
        let n = problem.genotype_len();
        let genotype = vec![0.5; n];
        assert!(problem.decode(&genotype).is_some());
    }
}
