//! The design-space-exploration driver: SAT-decoding × NSGA-II.
//!
//! The genotype holds two genes per mapping variable: a branching priority
//! and a preferred polarity. The feasibility solver decodes the genotype
//! into an implementation (always feasible — conflicts are repaired by
//! clause learning), the objectives of Section III-D are evaluated, and
//! NSGA-II evolves the genotypes. Every evaluated implementation streams
//! through an unbounded Pareto archive, exactly like the paper's reported
//! "176 not Pareto-dominated implementations" out of 100,000 evaluations.

use std::collections::BTreeMap;
use std::time::Instant;

use eea_model::Implementation;
use eea_moea::{run, Nsga2Config, ParetoArchive, Problem};
use eea_sat::SolveResult;

use eea_bist::CutFamily;
use eea_can::{ChannelConfig, TransportConfig};
use eea_sched::TaskSetConfig;

use crate::augment::DiagSpec;
use crate::encode::{encode, Encoding};
use crate::objectives::{evaluate_with_transport, MemorySummary, Objectives};

/// Configuration of [`explore`].
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// MOEA settings; `evaluations` is the total evaluation budget (the
    /// paper's case study uses 100,000).
    pub nsga2: Nsga2Config,
    /// Worker threads decoding a generation's offspring concurrently.
    /// `0` means one per available CPU; the `EEA_THREADS` environment
    /// variable overrides either setting. Any value produces bit-identical
    /// results for the same seed (see [`DseProblem`]'s lane scheme).
    pub threads: usize,
    /// Test-data transport of the Eq. (5) shut-off objective: classic-CAN
    /// mirroring (the default, the paper's baseline), CAN FD, or FlexRay
    /// static slots. The MOEA then explores fronts *per transport*; run
    /// `explore` once per configuration to compare them.
    pub transport: TransportConfig,
    /// CUT family the downstream fleet campaign instantiates for the
    /// diagnosable sessions of this front: gate-level logic BIST (the
    /// paper's substrate, the default) or a word-addressed SRAM March
    /// test. The exploration itself is family-agnostic — the field rides
    /// on the config so blueprint construction
    /// (`blueprints_from_front_configured` in `eea-fleet`) sees one
    /// coherent campaign description.
    pub cut_family: CutFamily,
    /// Optional in-ECU cyclic-task set: when set, fleet blueprints built
    /// from this front derive their shut-off windows from the schedule's
    /// idle intervals (`eea_sched::TaskSchedule`) instead of the flat
    /// driving/parked budget. `None` (the default) keeps the historical
    /// flat-budget path bit-for-bit.
    pub task_set: Option<TaskSetConfig>,
    /// Channel-impairment model the downstream fleet campaign stamps on
    /// every blueprint built from this front: `Clean` (the default — the
    /// historical ideal-channel path, bit-for-bit) or a `NoisyChannel`
    /// injecting deterministic bus error frames, payload truncation and
    /// fail-data corruption. Like `cut_family`/`task_set`, the
    /// exploration itself ignores it; the field rides along so
    /// `blueprints_from_front_configured` sees one coherent campaign
    /// description.
    pub channel: ChannelConfig,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            nsga2: Nsga2Config {
                population: 100,
                evaluations: 10_000,
                ..Nsga2Config::default()
            },
            threads: 0,
            transport: TransportConfig::MirroredCan,
            cut_family: CutFamily::Logic,
            task_set: None,
            channel: ChannelConfig::Clean,
        }
    }
}

/// Resolves a requested worker count: `0` means one worker per available
/// CPU; the `EEA_THREADS` environment variable overrides the request.
/// (Mirrors `eea_faultsim::resolve_threads`; duplicated because `eea-dse`
/// does not depend on the fault-simulation crate.)
pub fn resolve_threads(requested: usize) -> usize {
    let requested = std::env::var("EEA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(requested);
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// One Pareto-optimal implementation found by the exploration.
#[derive(Debug, Clone)]
pub struct ExploredImplementation {
    /// The three objectives in natural units.
    pub objectives: Objectives,
    /// The decoded implementation.
    pub implementation: Implementation,
    /// Memory-placement summary (Fig. 6 quantities).
    pub memory: MemorySummary,
}

/// Result of an exploration run.
#[derive(Debug)]
pub struct DseResult {
    /// The non-dominated implementations (re-decoded from the archive).
    pub front: Vec<ExploredImplementation>,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Infeasible decodes (0 unless the specification is over-constrained).
    pub infeasible: usize,
    /// Wall-clock duration of the exploration in seconds.
    pub duration_s: f64,
    /// Archive-growth curve: `(evaluations, archive size)` samples taken
    /// after each generation. The flattening of this curve is the usual
    /// exploration-convergence signal.
    pub convergence: Vec<(usize, usize)>,
    /// Worker threads the exploration actually ran with.
    pub threads: usize,
}

impl DseResult {
    /// Evaluations per second (the paper: 100,000 in ~29 min ≈ 57/s on an
    /// 8-core machine).
    pub fn evals_per_second(&self) -> f64 {
        self.evaluations as f64 / self.duration_s.max(1e-9)
    }
}

/// Number of evaluation lanes — persistent solver replicas that batched
/// evaluation cycles through. Fixed (independent of the thread count) so
/// that which solver instance (with which accumulated learned clauses)
/// decodes genotype `i` of a batch depends only on `i`, never on
/// scheduling: genotype `i` always runs on lane `i % EVAL_LANES`. Threads
/// merely split the lanes among workers, so any thread count reproduces
/// the serial results bit for bit.
pub const EVAL_LANES: usize = 8;

/// The SAT-decoding problem adapter: genotype → feasible implementation →
/// objective vector.
///
/// Batched evaluation ([`Problem::evaluate_batch`]) decodes on
/// [`EVAL_LANES`] solver replicas cloned from the freshly encoded formula,
/// optionally fanned out across `threads` workers; learned clauses stay
/// lane-local. [`decode`](Self::decode) keeps using the primary solver of
/// the encoding.
pub struct DseProblem<'d> {
    diag: &'d DiagSpec,
    encoding: Encoding,
    lanes: Vec<eea_sat::Solver>,
    mvars: Vec<(eea_model::TaskId, eea_model::ResourceId, eea_sat::Var)>,
    num_decision_vars: usize,
    /// Length of the functional prefix of `mvars` (everything before the
    /// first BIST test/data mapping; the augmenter appends BIST tasks after
    /// all functional tasks, so the split is a prefix).
    num_functional_vars: usize,
    threads: usize,
    transport: TransportConfig,
}

impl<'d> DseProblem<'d> {
    /// Builds the problem (encodes the formula once) with serial batch
    /// evaluation.
    pub fn new(diag: &'d DiagSpec) -> Self {
        Self::with_threads(diag, 1)
    }

    /// Builds the problem with `threads.max(1)` evaluation workers. Callers
    /// wanting the `0 = auto` / `EEA_THREADS` convention resolve via
    /// [`resolve_threads`] first.
    pub fn with_threads(diag: &'d DiagSpec, threads: usize) -> Self {
        let encoding = encode(diag);
        let mvars = encoding.mapping_vars();
        let bist_tasks: std::collections::BTreeSet<eea_model::TaskId> =
            diag.options.iter().flat_map(|o| [o.test, o.data]).collect();
        let num_functional_vars = mvars
            .iter()
            .take_while(|(t, _, _)| !bist_tasks.contains(t))
            .count();
        debug_assert!(mvars[num_functional_vars..]
            .iter()
            .all(|(t, _, _)| bist_tasks.contains(t)));
        // Lanes are cloned *before* any solve, so every lane starts from
        // the identical pristine formula.
        let lanes = (0..EVAL_LANES).map(|_| encoding.solver.clone()).collect();
        DseProblem {
            diag,
            num_decision_vars: mvars.len(),
            num_functional_vars,
            mvars,
            lanes,
            encoding,
            threads: threads.max(1),
            transport: TransportConfig::MirroredCan,
        }
    }

    /// Selects the test-data transport the objective evaluation rides
    /// (builder style; the default is classic-CAN mirroring).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Number of evaluation workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The test-data transport the objective evaluation rides.
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// Decodes a genotype into an implementation without evaluating
    /// objectives; `None` if the formula is unsatisfiable.
    pub fn decode(&mut self, genotype: &[f64]) -> Option<Implementation> {
        let n = self.num_decision_vars;
        assert_eq!(genotype.len(), 2 * n, "genotype length mismatch");
        for (i, &(_, _, v)) in self.mvars.iter().enumerate() {
            // Priorities in (0, 1]; route variables keep priority 0 and
            // polarity false, so routes stay minimal.
            self.encoding.solver.set_priority(v, genotype[i].max(1e-9));
            self.encoding.solver.set_polarity(v, genotype[n + i] > 0.5);
        }
        match self.encoding.solver.solve() {
            SolveResult::Sat => Some(self.encoding.extract(&self.diag.spec)),
            SolveResult::Unsat => None,
        }
    }

    /// Decodes and evaluates one genotype on a specific lane solver.
    fn lane_evaluate(
        diag: &DiagSpec,
        encoding: &Encoding,
        mvars: &[(eea_model::TaskId, eea_model::ResourceId, eea_sat::Var)],
        solver: &mut eea_sat::Solver,
        transport: &TransportConfig,
        genotype: &[f64],
    ) -> Option<Vec<f64>> {
        let n = mvars.len();
        assert_eq!(genotype.len(), 2 * n, "genotype length mismatch");
        for (i, &(_, _, v)) in mvars.iter().enumerate() {
            solver.set_priority(v, genotype[i].max(1e-9));
            solver.set_polarity(v, genotype[n + i] > 0.5);
        }
        match solver.solve() {
            SolveResult::Sat => {
                let x = encoding.extract_model(solver, &diag.spec);
                let (objectives, _) = evaluate_with_transport(diag, &x, transport);
                Some(objectives.to_minimized())
            }
            SolveResult::Unsat => None,
        }
    }

    /// Access to the augmented specification.
    pub fn diag(&self) -> &DiagSpec {
        self.diag
    }

    /// Corner genotypes that anchor the Pareto front:
    ///
    /// * no BIST at all (the cheapest, zero-quality, zero-shut-off design),
    /// * one session per ECU with **local** pattern storage (fast shut-off,
    ///   expensive distributed memory),
    /// * one session per ECU with **gateway** storage (cheap shared memory,
    ///   long transfers).
    ///
    /// All three corners sit on the [greedy cheap functional
    /// allocation](Self::greedy_functional_prefix), so the no-BIST corner
    /// anchors the cost minimum and the session corners show what quality
    /// costs *relative to that same allocation* — the comparison behind the
    /// paper's "+3.7 %" headline. Injected as NSGA-II seeds so the
    /// exploration never misses the extreme regions of Fig. 5.
    pub fn corner_genotypes(&self) -> Vec<Vec<f64>> {
        self.warm_seeds(&self.greedy_functional_prefix())
    }

    /// A functional-prefix genotype (`2 * num_functional_vars` genes) that
    /// steers the decode toward cheap hardware: every task prefers its
    /// cheapest mapping option (polarity), and cheaper resources are
    /// decided earlier (priority), so tasks consolidate onto the
    /// inexpensive resources first and costly ones are allocated only when
    /// feasibility demands it.
    fn greedy_functional_prefix(&self) -> Vec<f64> {
        let nf = self.num_functional_vars;
        let functional = &self.mvars[..nf];
        let resource_cost = |r: eea_model::ResourceId| self.diag.spec.architecture.resource(r).cost;
        let max_cost = functional
            .iter()
            .map(|&(_, r, _)| resource_cost(r))
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut genotype = vec![0.0; 2 * nf];
        let mut task_opts: BTreeMap<eea_model::TaskId, Vec<usize>> = BTreeMap::new();
        for (i, &(t, _, _)) in functional.iter().enumerate() {
            task_opts.entry(t).or_default().push(i);
        }
        for idxs in task_opts.values() {
            // Entries exist only for tasks with at least one option.
            let Some(cheapest) = idxs.iter().copied().min_by(|&a, &b| {
                resource_cost(functional[a].1).total_cmp(&resource_cost(functional[b].1))
            }) else {
                continue;
            };
            for &i in idxs {
                genotype[i] = 0.95 - 0.9 * resource_cost(functional[i].1) / max_cost;
                genotype[nf + i] = if i == cheapest { 1.0 } else { 0.0 };
            }
        }
        genotype
    }

    /// Expands a functional-prefix genotype (`2 * num_functional_vars`
    /// genes) into a full genotype: BIST genes get priority `bist_priority`
    /// and polarity off, so the solver settles the functional allocation
    /// first and the BIST genes are free for the evolution to flip later.
    fn expand_functional(&self, functional: &[f64]) -> Vec<f64> {
        let n = self.num_decision_vars;
        let nf = self.num_functional_vars;
        assert_eq!(functional.len(), 2 * nf, "functional genotype mismatch");
        let mut full = vec![0.0; 2 * n];
        full[..nf].copy_from_slice(&functional[..nf]);
        full[n..n + nf].copy_from_slice(&functional[nf..]);
        for i in nf..n {
            full[i] = 0.01; // decided after every functional variable
            full[n + i] = 0.0;
        }
        full
    }

    /// Warm-start seeds grown from an evolved functional-prefix genotype:
    /// the same three BIST corners as [`corner_genotypes`]
    /// (Self::corner_genotypes), but grafted onto a *cheap known-good
    /// functional allocation* instead of neutral 0.5 genes. BIST genes keep
    /// priorities below every functional gene so the decode reproduces the
    /// functional allocation first and only then selects sessions — this is
    /// what lets the exploration reach high test quality within a few
    /// percent of the no-diagnosis baseline cost.
    fn warm_seeds(&self, functional: &[f64]) -> Vec<Vec<f64>> {
        let n = self.num_decision_vars;
        let base = self.expand_functional(functional);
        let mut seeds = vec![base.clone()];
        for prefer_local in [false, true] {
            let mut g = base.clone();
            for (i, &(task, resource, _)) in
                self.mvars.iter().enumerate().skip(self.num_functional_vars)
            {
                let is_test = self.diag.options.iter().any(|o| o.test == task);
                let data_of = self.diag.options.iter().find(|o| o.data == task);
                if is_test {
                    g[i] = 0.02; // profile choice first among the BIST genes
                    g[n + i] = 1.0;
                } else if let Some(o) = data_of {
                    g[i] = 0.015;
                    let wants_local = resource == o.ecu;
                    g[n + i] = if wants_local == prefer_local {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            seeds.push(g);
        }
        seeds
    }
}

/// Adapter that exposes only the functional prefix of a [`DseProblem`]
/// genotype to the optimizer; BIST genes are pinned off (and decided last)
/// via [`DseProblem::expand_functional`]. Used by the warm-up phase of
/// [`explore`]. Batches delegate to the inner problem's lane scheme, so the
/// warm-up inherits the bit-identical-at-any-thread-count guarantee.
struct FunctionalPrefix<'p, 'd> {
    inner: &'p mut DseProblem<'d>,
}

impl Problem for FunctionalPrefix<'_, '_> {
    fn genotype_len(&self) -> usize {
        2 * self.inner.num_functional_vars
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, genotype: &[f64]) -> Option<Vec<f64>> {
        let full = self.inner.expand_functional(genotype);
        self.inner.evaluate(&full)
    }

    fn evaluate_batch(&mut self, genotypes: &[Vec<f64>]) -> Vec<Option<Vec<f64>>> {
        let full: Vec<Vec<f64>> = genotypes
            .iter()
            .map(|g| self.inner.expand_functional(g))
            .collect();
        self.inner.evaluate_batch(&full)
    }
}

impl Problem for DseProblem<'_> {
    fn genotype_len(&self) -> usize {
        2 * self.num_decision_vars
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, genotype: &[f64]) -> Option<Vec<f64>> {
        let x = self.decode(genotype)?;
        let (objectives, _) = evaluate_with_transport(self.diag, &x, &self.transport);
        Some(objectives.to_minimized())
    }

    /// Lane-deterministic batch evaluation: genotype `i` always decodes on
    /// lane `i % EVAL_LANES`, and a lane's genotypes run in index order —
    /// regardless of `threads` — so results are bit-identical at any
    /// worker count.
    fn evaluate_batch(&mut self, genotypes: &[Vec<f64>]) -> Vec<Option<Vec<f64>>> {
        let diag = self.diag;
        let encoding = &self.encoding;
        let mvars = &self.mvars;
        let transport = &self.transport;
        let workers = self.threads.min(self.lanes.len()).max(1);
        let lanes_per_worker = self.lanes.len().div_ceil(workers);

        let mut results: Vec<Option<Vec<f64>>> = vec![None; genotypes.len()];
        if workers <= 1 {
            for (i, genotype) in genotypes.iter().enumerate() {
                let lane = i % EVAL_LANES;
                results[i] = Self::lane_evaluate(
                    diag,
                    encoding,
                    mvars,
                    &mut self.lanes[lane],
                    transport,
                    genotype,
                );
            }
            return results;
        }

        let mut merged: Vec<(usize, Option<Vec<f64>>)> = Vec::with_capacity(genotypes.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .lanes
                .chunks_mut(lanes_per_worker)
                .enumerate()
                .map(|(w, lane_chunk)| {
                    let first_lane = w * lanes_per_worker;
                    s.spawn(move || {
                        let mut out: Vec<(usize, Option<Vec<f64>>)> = Vec::new();
                        for (li, solver) in lane_chunk.iter_mut().enumerate() {
                            let mut i = first_lane + li;
                            while i < genotypes.len() {
                                out.push((
                                    i,
                                    Self::lane_evaluate(
                                        diag,
                                        encoding,
                                        mvars,
                                        solver,
                                        transport,
                                        &genotypes[i],
                                    ),
                                ));
                                i += EVAL_LANES;
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                // A worker can only fail by panicking; forward the payload
                // instead of discarding it (or double-panicking via expect).
                match h.join() {
                    Ok(part) => merged.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        for (i, r) in merged {
            results[i] = r;
        }
        results
    }
}

/// Runs the full exploration: encode once, evolve genotypes, and re-decode
/// the archived non-dominated genotypes into implementations.
///
/// The `progress` callback receives `(evaluations, archive size)` after
/// each generation.
pub fn explore(
    diag: &DiagSpec,
    cfg: &DseConfig,
    mut progress: impl FnMut(usize, usize),
) -> DseResult {
    let start = Instant::now();
    let threads = resolve_threads(cfg.threads);
    let mut problem = DseProblem::with_threads(diag, threads).with_transport(cfg.transport.clone());
    let mut nsga2 = cfg.nsga2.clone();
    let user_seeded = !nsga2.seeds.is_empty();
    if !user_seeded {
        nsga2.seeds = problem.corner_genotypes();
    }
    let mut convergence: Vec<(usize, usize)> = Vec::new();

    // Functional-first warm-up: spend a slice of the budget evolving only
    // the functional allocation (BIST pinned off), then graft the BIST
    // corners onto the cheapest allocations found and seed the main run
    // with them. Without this, the main run reliably finds cheap *no-test*
    // designs but its test-enabled designs stay stuck on a more expensive
    // allocation attractor — SAT-decoding offers little phenotypic locality
    // for crossover to combine the two. Skipped when the caller supplies
    // seeds, when there is nothing to warm up (no BIST options), or when
    // the budget slice would be too small to evolve anything.
    let total_evaluations = nsga2.evaluations;
    let mut warm_evaluations =
        (total_evaluations / 5).min(total_evaluations.saturating_sub(nsga2.population));
    if user_seeded || problem.num_functional_vars == problem.num_decision_vars {
        warm_evaluations = 0;
    }
    let mut warm_infeasible = 0;
    if warm_evaluations >= 8 {
        let mut warm_problem =
            DseProblem::with_threads(diag, threads).with_transport(cfg.transport.clone());
        let mut prefix = FunctionalPrefix {
            inner: &mut warm_problem,
        };
        let warm_cfg = Nsga2Config {
            population: 24.min(warm_evaluations),
            evaluations: warm_evaluations,
            seed: nsga2.seed ^ 0x5EED_F00D,
            seeds: vec![problem.greedy_functional_prefix()],
            ..cfg.nsga2.clone()
        };
        let warm = run(&mut prefix, &warm_cfg, |evals, archive| {
            convergence.push((evals, archive));
            progress(evals, archive);
        });
        warm_evaluations = warm.evaluations;
        warm_infeasible = warm.infeasible;
        let mut entries = warm.archive.into_entries();
        // Cheapest-first; minimized objective 0 is the monetary cost.
        entries.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
        for entry in entries.iter().take(2) {
            nsga2.seeds.extend(problem.warm_seeds(&entry.payload));
        }
    } else {
        warm_evaluations = 0;
    }

    nsga2.evaluations = total_evaluations - warm_evaluations;
    let result = run(&mut problem, &nsga2, |evals, archive| {
        convergence.push((warm_evaluations + evals, archive));
        progress(warm_evaluations + evals, archive);
    });
    let duration_s = start.elapsed().as_secs_f64();

    // Re-decode archive entries into full implementations. Note: decoding
    // is repeatable but the solver has accumulated learned clauses; a
    // re-decode may produce a different (equally feasible) model, so the
    // archived objective vector is re-evaluated from the fresh decode and
    // re-filtered through a final archive.
    let mut front_archive: ParetoArchive<ExploredImplementation> = ParetoArchive::new();
    for entry in result.archive.entries() {
        if let Some(x) = problem.decode(&entry.payload) {
            let (objectives, memory) = evaluate_with_transport(diag, &x, &cfg.transport);
            front_archive.offer(
                objectives.to_minimized(),
                ExploredImplementation {
                    objectives,
                    implementation: x,
                    memory,
                },
            );
        }
    }
    let mut front: Vec<ExploredImplementation> = front_archive
        .into_entries()
        .into_iter()
        .map(|e| e.payload)
        .collect();
    // total_cmp: a NaN objective (from a degenerate specification) must
    // never panic the exploration driver.
    front.sort_by(|a, b| a.objectives.cost.total_cmp(&b.objectives.cost));

    DseResult {
        front,
        evaluations: warm_evaluations + result.evaluations,
        infeasible: warm_infeasible + result.infeasible,
        duration_s,
        convergence,
        threads,
    }
}

/// Cost of the cheapest *diagnosis-free* design: explores the functional
/// specification (no BIST profiles) and returns the minimum cost found.
/// This is the baseline of the paper's "+3.7 % of a design without
/// structural tests" headline.
///
/// # Errors
///
/// Returns [`AugmentError`](crate::augment::AugmentError) if the case
/// study's architecture cannot host the collection task (no gateway).
pub fn baseline_cost(
    case: &eea_model::CaseStudy,
    evaluations: usize,
    seed: u64,
    threads: usize,
) -> Result<f64, crate::augment::AugmentError> {
    let diag = crate::augment::augment(case, &[])?;
    let cfg = DseConfig {
        nsga2: Nsga2Config {
            population: 30.min(evaluations.max(2)),
            evaluations,
            seed,
            ..Nsga2Config::default()
        },
        threads,
        transport: TransportConfig::MirroredCan,
        ..DseConfig::default()
    };
    let res = explore(&diag, &cfg, |_, _| {});
    Ok(res
        .front
        .iter()
        .map(|e| e.objectives.cost)
        .fold(f64::INFINITY, f64::min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use eea_bist::paper_table1;
    use eea_model::paper_case_study;

    fn quick_diag() -> DiagSpec {
        let case = paper_case_study();
        augment(&case, &paper_table1()[..4]).expect("gateway present")
    }

    #[test]
    fn small_exploration_produces_front() {
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 20,
                evaluations: 400,
                seed: 11,
                ..Nsga2Config::default()
            },
            threads: 1,
            ..DseConfig::default()
        };
        let res = explore(&diag, &cfg, |_, _| {});
        assert_eq!(res.evaluations, 400);
        assert_eq!(res.infeasible, 0, "SAT-decoding always feasible here");
        assert!(!res.front.is_empty());
        // The convergence curve is sampled per generation; evaluations are
        // monotone (archive size may shrink when one solution evicts
        // several dominated ones).
        assert!(!res.convergence.is_empty());
        assert!(res.convergence.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every front implementation validates structurally.
        for e in &res.front {
            diag.spec
                .validate_implementation(&e.implementation)
                .expect("front implementations are valid");
        }
        // The front is mutually non-dominated on the minimised vectors.
        for a in &res.front {
            for b in &res.front {
                let va = a.objectives.to_minimized();
                let vb = b.objectives.to_minimized();
                if va != vb {
                    assert!(!eea_moea::dominates(&va, &vb) || !eea_moea::dominates(&vb, &va));
                }
            }
        }
    }

    #[test]
    fn exploration_discovers_quality_cost_tradeoff() {
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 30,
                evaluations: 900,
                seed: 5,
                ..Nsga2Config::default()
            },
            threads: 1,
            ..DseConfig::default()
        };
        let res = explore(&diag, &cfg, |_, _| {});
        let max_q = res
            .front
            .iter()
            .map(|e| e.objectives.test_quality)
            .fold(0.0, f64::max);
        let min_q = res
            .front
            .iter()
            .map(|e| e.objectives.test_quality)
            .fold(1.0, f64::min);
        assert!(max_q > 0.5, "exploration should find high-quality designs");
        assert!(min_q < max_q, "front spans a quality range");
    }

    #[test]
    fn baseline_is_cheaper_than_any_diagnosed_design() {
        let case = paper_case_study();
        let base = baseline_cost(&case, 600, 3, 1).expect("gateway present");
        assert!(base.is_finite() && base > 0.0);
        let diag = quick_diag();
        let cfg = DseConfig {
            nsga2: Nsga2Config {
                population: 20,
                evaluations: 400,
                seed: 5,
                ..Nsga2Config::default()
            },
            threads: 1,
            ..DseConfig::default()
        };
        let res = explore(&diag, &cfg, |_, _| {});
        let with_diag_min = res
            .front
            .iter()
            .filter(|e| e.objectives.test_quality > 0.0)
            .map(|e| e.objectives.cost)
            .fold(f64::INFINITY, f64::min);
        // Diagnosis costs at least the stored pattern memory.
        assert!(with_diag_min >= base - 1e-9);
    }

    #[test]
    fn decode_respects_genotype_length() {
        let diag = quick_diag();
        let mut problem = DseProblem::new(&diag);
        let n = problem.genotype_len();
        let genotype = vec![0.5; n];
        assert!(problem.decode(&genotype).is_some());
    }
}
