//! The workspace-wide error taxonomy.
//!
//! Every crate of the workspace defines its own typed error enum close to
//! the code that raises it; [`EeaError`] is the top of that hierarchy.
//! Each per-crate error converts into it via `From`, so a binary driving
//! the full pipeline (parse → augment → encode → explore → report) can
//! propagate any failure with `?` and print one coherent message:
//!
//! ```
//! use eea_dse::EeaError;
//!
//! fn pipeline(src: &str) -> Result<usize, EeaError> {
//!     let circuit = eea_netlist::bench_format::parse(src)?;
//!     Ok(circuit.num_gates())
//! }
//!
//! assert!(pipeline("nonsense").is_err());
//! ```
//!
//! The policy (see DESIGN.md, "Error taxonomy"): **no library layer may
//! panic on data-reachable conditions**. Constructor contracts that are
//! violated only by caller bugs use documented `assert!`s; everything a
//! malformed netlist, a degenerate message set, or a hostile configuration
//! can trigger is a typed `Err` that lands here.

use std::error::Error;
use std::fmt;

use crate::augment::AugmentError;
use crate::schedule::ScheduleError;

/// Top-level error of the reproduction pipeline: one variant per
/// originating layer, each wrapping that layer's own typed error enum.
#[derive(Debug, Clone, PartialEq)]
pub enum EeaError {
    /// Netlist ingestion or transformation (`eea-netlist`): `.bench` /
    /// Verilog parsing, circuit construction, synthesis, scan insertion.
    Netlist(eea_netlist::NetlistError),
    /// CAN layer (`eea-can`): identifiers, messages, Eq. (1) mirroring,
    /// response-time analysis, bus simulation, CAN FD.
    Can(eea_can::CanError),
    /// BIST profile generation (`eea-bist`).
    Profile(eea_bist::ProfileError),
    /// LFSR construction with an unsupported register width (`eea-bist`).
    Lfsr(eea_bist::UnsupportedLfsrWidthError),
    /// Specification or implementation validation (`eea-model`).
    Model(eea_model::ValidateError),
    /// Specification augmentation (this crate).
    Augment(AugmentError),
    /// Derived-schedule certification (this crate).
    Schedule(ScheduleError),
    /// Fleet campaign engine (`eea-fleet`, a *downstream* crate). The
    /// dependency direction — `eea-fleet` builds on this crate — means the
    /// concrete `FleetError` type cannot appear here without a cycle, so
    /// the variant carries its rendered message; `eea-fleet` provides the
    /// `From<FleetError> for EeaError` conversion (orphan-rule-legal since
    /// `FleetError` is local there), keeping `?` composition intact in
    /// binaries that mix both layers.
    Fleet(String),
}

impl fmt::Display for EeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EeaError::Netlist(e) => write!(f, "netlist: {e}"),
            EeaError::Can(e) => write!(f, "can: {e}"),
            EeaError::Profile(e) => write!(f, "bist profile: {e}"),
            EeaError::Lfsr(e) => write!(f, "lfsr: {e}"),
            EeaError::Model(e) => write!(f, "model: {e}"),
            EeaError::Augment(e) => write!(f, "augment: {e}"),
            EeaError::Schedule(e) => write!(f, "schedule: {e}"),
            EeaError::Fleet(msg) => write!(f, "fleet: {msg}"),
        }
    }
}

impl Error for EeaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EeaError::Netlist(e) => Some(e),
            EeaError::Can(e) => Some(e),
            EeaError::Profile(e) => Some(e),
            EeaError::Lfsr(e) => Some(e),
            EeaError::Model(e) => Some(e),
            EeaError::Augment(e) => Some(e),
            EeaError::Schedule(e) => Some(e),
            EeaError::Fleet(_) => None,
        }
    }
}

impl From<eea_netlist::NetlistError> for EeaError {
    fn from(e: eea_netlist::NetlistError) -> Self {
        EeaError::Netlist(e)
    }
}

/// Any error that converts into the netlist crate's own taxonomy (its
/// parse/build/synth/scan enums) also converts into [`EeaError`].
impl From<eea_netlist::ParseBenchError> for EeaError {
    fn from(e: eea_netlist::ParseBenchError) -> Self {
        EeaError::Netlist(e.into())
    }
}

impl From<eea_netlist::ParseVerilogError> for EeaError {
    fn from(e: eea_netlist::ParseVerilogError) -> Self {
        EeaError::Netlist(e.into())
    }
}

impl From<eea_netlist::BuildCircuitError> for EeaError {
    fn from(e: eea_netlist::BuildCircuitError) -> Self {
        EeaError::Netlist(e.into())
    }
}

impl From<eea_netlist::SynthError> for EeaError {
    fn from(e: eea_netlist::SynthError) -> Self {
        EeaError::Netlist(e.into())
    }
}

impl From<eea_netlist::ScanError> for EeaError {
    fn from(e: eea_netlist::ScanError) -> Self {
        EeaError::Netlist(e.into())
    }
}

impl From<eea_can::CanError> for EeaError {
    fn from(e: eea_can::CanError) -> Self {
        EeaError::Can(e)
    }
}

impl From<eea_can::MirrorError> for EeaError {
    fn from(e: eea_can::MirrorError) -> Self {
        EeaError::Can(e.into())
    }
}

impl From<eea_can::RtaError> for EeaError {
    fn from(e: eea_can::RtaError) -> Self {
        EeaError::Can(e.into())
    }
}

impl From<eea_can::BusSimError> for EeaError {
    fn from(e: eea_can::BusSimError) -> Self {
        EeaError::Can(e.into())
    }
}

impl From<eea_can::TransportError> for EeaError {
    fn from(e: eea_can::TransportError) -> Self {
        EeaError::Can(e.into())
    }
}

impl From<eea_bist::ProfileError> for EeaError {
    fn from(e: eea_bist::ProfileError) -> Self {
        EeaError::Profile(e)
    }
}

impl From<eea_bist::UnsupportedLfsrWidthError> for EeaError {
    fn from(e: eea_bist::UnsupportedLfsrWidthError) -> Self {
        EeaError::Lfsr(e)
    }
}

impl From<eea_model::ValidateError> for EeaError {
    fn from(e: eea_model::ValidateError) -> Self {
        EeaError::Model(e)
    }
}

impl From<AugmentError> for EeaError {
    fn from(e: AugmentError) -> Self {
        EeaError::Augment(e)
    }
}

impl From<ScheduleError> for EeaError {
    fn from(e: ScheduleError) -> Self {
        EeaError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_layer() {
        let e: EeaError = AugmentError::NoGateway.into();
        assert!(e.to_string().contains("augment:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn from_can_layers() {
        let e: EeaError = eea_can::MirrorError::NoMessages.into();
        assert!(matches!(e, EeaError::Can(_)));
        let e: EeaError = eea_can::RtaError::DeadlineExceeded.into();
        assert!(matches!(e, EeaError::Can(_)));
        let e: EeaError = eea_can::TransportError::ZeroBandwidth.into();
        assert!(matches!(
            e,
            EeaError::Can(eea_can::CanError::Transport(_))
        ));
    }

    #[test]
    fn from_netlist_layers() {
        let bad = eea_netlist::bench_format::parse("not a netlist").expect_err("must fail");
        let e: EeaError = bad.into();
        assert!(matches!(e, EeaError::Netlist(_)));
    }
}
