//! Augmentation of a functional specification with diagnostic tasks
//! (Section III-A, Fig. 3 of the paper).
//!
//! For every BIST-capable ECU `r` and every available BIST profile `b`:
//!
//! * a BIST **test task** `b^T_r` mappable only to `r`,
//! * a BIST **data task** `b^D_r` holding the encoded deterministic test
//!   data and response data, mappable to `r` (local storage) or to the
//!   central gateway (shared storage),
//! * a message `c^D` carrying the test patterns from `b^D` to `b^T`,
//! * a message `c^R` carrying the fail data from `b^T` to the mandatory
//!   **collection task** `b^R` on the gateway.

use std::error::Error;
use std::fmt;

use eea_bist::{BistProfile, FAIL_DATA_BYTES};
use eea_model::{
    CaseStudy, DiagRole, MessageId, ResourceId, ResourceKind, Specification, TaskId, TaskKind,
};

/// Error from [`augment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugmentError {
    /// The architecture has no gateway resource to host the mandatory
    /// fail-data collection task.
    NoGateway,
}

impl fmt::Display for AugmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugmentError::NoGateway => write!(f, "architecture has no gateway resource"),
        }
    }
}

impl Error for AugmentError {}

/// Bookkeeping for one (ECU, profile) BIST option.
#[derive(Debug, Clone)]
pub struct BistOption {
    /// The ECU under test.
    pub ecu: ResourceId,
    /// The test task `b^T`.
    pub test: TaskId,
    /// The data task `b^D`.
    pub data: TaskId,
    /// The pattern message `c^D` (`b^D -> b^T`).
    pub msg_data: MessageId,
    /// The fail-data message `c^R` (`b^T -> b^R`).
    pub msg_fail: MessageId,
    /// The profile's characteristics.
    pub profile: BistProfile,
}

/// A diagnosis-augmented specification.
#[derive(Debug, Clone)]
pub struct DiagSpec {
    /// The augmented specification (functional + diagnostic parts).
    pub spec: Specification,
    /// All BIST options, grouped by nothing — use
    /// [`options_of`](Self::options_of) for per-ECU access.
    pub options: Vec<BistOption>,
    /// The mandatory fail-data collection task `b^R` on the gateway.
    pub collect: TaskId,
    /// The gateway resource.
    pub gateway: ResourceId,
}

impl DiagSpec {
    /// The BIST options available on one ECU.
    pub fn options_of(&self, ecu: ResourceId) -> impl Iterator<Item = &BistOption> + '_ {
        self.options.iter().filter(move |o| o.ecu == ecu)
    }

    /// ECUs that received BIST options.
    pub fn bist_ecus(&self) -> Vec<ResourceId> {
        let mut out: Vec<ResourceId> = Vec::new();
        for o in &self.options {
            if !out.contains(&o.ecu) {
                out.push(o.ecu);
            }
        }
        out
    }
}

/// Augments the case study's specification with the given BIST profiles on
/// every BIST-capable ECU (the paper instantiates all 36 Table I profiles
/// on each of the 15 ECUs).
///
/// The fail-data message `c^R` uses the fixed fail-data size
/// ([`FAIL_DATA_BYTES`]); the pattern message `c^D` carries the profile's
/// `data_bytes` (its transfer time is evaluated by Eq. (1), not by the
/// schedule, so the nominal period only tags the message).
///
/// An empty `profiles` slice produces a functional-only specification
/// (plus the collection task), which is the *baseline* a diagnosis-capable
/// design is compared against in the paper's "+3.7 % extra cost" headline.
///
/// # Errors
///
/// Returns [`AugmentError::NoGateway`] if the architecture has no gateway
/// resource — the fail-data collection task `b^R` has nowhere to live.
pub fn augment(case: &CaseStudy, profiles: &[BistProfile]) -> Result<DiagSpec, AugmentError> {
    let mut spec = case.spec.clone();
    let gateway = spec
        .architecture
        .of_kind(ResourceKind::Gateway)
        .next()
        .ok_or(AugmentError::NoGateway)?;

    // The mandatory collection task b^R on the gateway.
    let collect = spec
        .application
        .add_task("bist_collect", TaskKind::Functional);
    spec.add_mapping(collect, gateway);

    let mut options = Vec::new();
    let ecus: Vec<ResourceId> = case
        .ecus()
        .into_iter()
        .filter(|&r| spec.architecture.resource(r).bist_capable)
        .collect();
    for ecu in ecus {
        let ecu_name = spec.architecture.resource(ecu).name.clone();
        for p in profiles {
            let test = spec.application.add_task(
                &format!("bist_t_{ecu_name}_p{}", p.id),
                TaskKind::Diagnostic(DiagRole::Test {
                    coverage: p.coverage,
                    runtime_ms: p.runtime_ms,
                    data_bytes: p.data_bytes,
                }),
            );
            let data = spec.application.add_task(
                &format!("bist_d_{ecu_name}_p{}", p.id),
                TaskKind::Diagnostic(DiagRole::Data {
                    data_bytes: p.data_bytes,
                }),
            );
            let msg_data = spec.application.add_message(
                &format!("cD_{ecu_name}_p{}", p.id),
                data,
                &[test],
                p.data_bytes,
                1_000_000,
            );
            let msg_fail = spec.application.add_message(
                &format!("cR_{ecu_name}_p{}", p.id),
                test,
                &[collect],
                FAIL_DATA_BYTES,
                1_000_000,
            );
            spec.add_mapping(test, ecu);
            spec.add_mapping(data, ecu);
            spec.add_mapping(data, gateway);
            options.push(BistOption {
                ecu,
                test,
                data,
                msg_data,
                msg_fail,
                profile: p.clone(),
            });
        }
    }

    Ok(DiagSpec {
        spec,
        options,
        collect,
        gateway,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_bist::paper_table1;
    use eea_model::paper_case_study;

    #[test]
    fn paper_augmentation_counts() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()).expect("gateway present");
        // 15 ECUs x 36 profiles = 540 BIST options.
        assert_eq!(diag.options.len(), 540);
        // Tasks: 45 functional + 1 collect + 2 x 540 diagnostic.
        assert_eq!(diag.spec.application.num_tasks(), 45 + 1 + 1080);
        // Messages: 41 functional + 2 x 540.
        assert_eq!(diag.spec.application.num_messages(), 41 + 1080);
        assert_eq!(diag.bist_ecus().len(), 15);
        for ecu in diag.bist_ecus() {
            assert_eq!(diag.options_of(ecu).count(), 36);
        }
    }

    #[test]
    fn data_task_has_local_and_gateway_option() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..2]).expect("gateway present");
        for o in &diag.options {
            let opts = diag.spec.mapping_options(o.data);
            assert_eq!(opts.len(), 2);
            assert!(opts.contains(&o.ecu));
            assert!(opts.contains(&diag.gateway));
            assert_eq!(diag.spec.mapping_options(o.test), &[o.ecu]);
        }
    }

    #[test]
    fn collect_task_on_gateway_only() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..1]).expect("gateway present");
        assert_eq!(diag.spec.mapping_options(diag.collect), &[diag.gateway]);
        assert!(!diag
            .spec
            .application
            .task(diag.collect)
            .kind
            .is_diagnostic());
    }

    #[test]
    fn augmented_spec_validates() {
        let case = paper_case_study();
        let diag = augment(&case, &paper_table1()[..4]).expect("gateway present");
        diag.spec.validate().expect("augmented spec validates");
    }
}
