//! Result reporting: the quantities behind Fig. 5, Fig. 6 and the §IV-B
//! headline numbers, plus CSV/ASCII rendering.

use std::fmt::Write as _;

use crate::explore::ExploredImplementation;

/// A Fig. 5 data point: monetary cost vs test quality, with the marker
/// class split at 20 s shut-off time (● below, ▲ above).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Monetary cost.
    pub cost: f64,
    /// Test quality in percent.
    pub quality_pct: f64,
    /// Shut-off time in seconds.
    pub shutoff_s: f64,
    /// Whether the shut-off time is below the paper's 20 s marker split.
    pub fast_shutoff: bool,
}

/// The paper splits Fig. 5 markers at a shut-off time of 20 seconds.
pub const SHUTOFF_MARKER_SPLIT_S: f64 = 20.0;

/// Extracts the Fig. 5 scatter data from a front.
pub fn fig5_points(front: &[ExploredImplementation]) -> Vec<Fig5Point> {
    front
        .iter()
        .map(|e| Fig5Point {
            cost: e.objectives.cost,
            quality_pct: e.objectives.test_quality * 100.0,
            shutoff_s: e.objectives.shutoff_s,
            fast_shutoff: e.objectives.shutoff_s < SHUTOFF_MARKER_SPLIT_S,
        })
        .collect()
}

/// A Fig. 6 row: memory split and shut-off time of one representative
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// 1-based implementation number (as in the paper's figure).
    pub number: usize,
    /// Gateway-stored test data in bytes.
    pub gateway_bytes: u64,
    /// ECU-local (distributed) test data in bytes.
    pub distributed_bytes: u64,
    /// Shut-off time in seconds (plotted in log scale in the paper).
    pub shutoff_s: f64,
    /// Test quality in percent (context column).
    pub quality_pct: f64,
    /// Monetary cost (context column).
    pub cost: f64,
}

/// Picks `k` representative implementations spread across the front's test
/// quality range (endpoints included) and returns their Fig. 6 rows.
pub fn fig6_rows(front: &[ExploredImplementation], k: usize) -> Vec<Fig6Row> {
    if front.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut by_quality: Vec<&ExploredImplementation> = front
        .iter()
        .filter(|e| e.objectives.test_quality > 0.0)
        .collect();
    by_quality.sort_by(|a, b| a.objectives.test_quality.total_cmp(&b.objectives.test_quality));
    if by_quality.is_empty() {
        return Vec::new();
    }
    let k = k.min(by_quality.len());
    let mut rows = Vec::with_capacity(k);
    for i in 0..k {
        let idx = if k == 1 {
            0
        } else {
            i * (by_quality.len() - 1) / (k - 1)
        };
        let e = by_quality[idx];
        rows.push(Fig6Row {
            number: i + 1,
            gateway_bytes: e.memory.gateway_bytes,
            distributed_bytes: e.memory.distributed_bytes,
            shutoff_s: e.objectives.shutoff_s,
            quality_pct: e.objectives.test_quality * 100.0,
            cost: e.objectives.cost,
        });
    }
    rows
}

/// The §IV-B headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Number of non-dominated implementations (paper: 176).
    pub front_size: usize,
    /// Cheapest design without any structural test (the baseline).
    pub baseline_cost: f64,
    /// Best test quality achievable within `cost_budget_factor` of the
    /// baseline (paper: 80.7 % within +3.7 %).
    pub best_quality_pct_in_budget: f64,
    /// The relative extra cost of that implementation.
    pub extra_cost_pct: f64,
}

/// Computes the headline numbers with the paper's +3.7 % budget factor.
/// `baseline_cost` is the cheapest diagnosis-free design (obtain it from a
/// dedicated baseline exploration, or pass `None` to look for a
/// zero-quality design inside the front).
pub fn headline(
    front: &[ExploredImplementation],
    baseline_cost: Option<f64>,
) -> Option<Headline> {
    headline_with_budget(front, baseline_cost, 1.037)
}

/// Computes the headline with a custom budget factor relative to the
/// cheapest diagnosis-free design; returns `None` on an empty front or
/// when no baseline is available.
pub fn headline_with_budget(
    front: &[ExploredImplementation],
    baseline_cost: Option<f64>,
    budget_factor: f64,
) -> Option<Headline> {
    let baseline_cost = baseline_cost.unwrap_or_else(|| {
        front
            .iter()
            .filter(|e| e.objectives.test_quality == 0.0)
            .map(|e| e.objectives.cost)
            .fold(f64::INFINITY, f64::min)
    });
    if !baseline_cost.is_finite() {
        return None;
    }
    let budget = baseline_cost * budget_factor;
    let best = front
        .iter()
        .filter(|e| e.objectives.cost <= budget)
        .max_by(|a, b| a.objectives.test_quality.total_cmp(&b.objectives.test_quality))?;
    Some(Headline {
        front_size: front.len(),
        baseline_cost,
        best_quality_pct_in_budget: best.objectives.test_quality * 100.0,
        extra_cost_pct: (best.objectives.cost / baseline_cost - 1.0) * 100.0,
    })
}

/// Implementations whose shut-off time fits a *partial networking* window.
///
/// The paper (Section I) notes that the same BIST integration applies
/// during partial networking (AUTOSAR v4.0.3): the session must finish
/// before the ECU's power-down, so "a short shut-off time also represents
/// a necessary condition to apply BIST during partial networking". This
/// helper filters the front accordingly and sorts by test quality
/// (best first).
pub fn partial_networking_candidates(
    front: &[ExploredImplementation],
    max_shutoff_s: f64,
) -> Vec<&ExploredImplementation> {
    let mut out: Vec<&ExploredImplementation> = front
        .iter()
        .filter(|e| e.objectives.shutoff_s <= max_shutoff_s && e.objectives.test_quality > 0.0)
        .collect();
    out.sort_by(|a, b| b.objectives.test_quality.total_cmp(&a.objectives.test_quality));
    out
}

/// Renders Fig. 5 data as CSV (`cost,quality_pct,shutoff_s,marker`).
pub fn fig5_csv(points: &[Fig5Point]) -> String {
    let mut out = String::from("cost,quality_pct,shutoff_s,marker\n");
    for p in points {
        let marker = if p.fast_shutoff { "circle" } else { "triangle" };
        let _ = writeln!(
            out,
            "{:.2},{:.3},{:.4},{marker}",
            p.cost, p.quality_pct, p.shutoff_s
        );
    }
    out
}

/// Renders Fig. 6 data as CSV.
pub fn fig6_csv(rows: &[Fig6Row]) -> String {
    let mut out =
        String::from("impl,gateway_bytes,distributed_bytes,shutoff_s,quality_pct,cost\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.3},{:.2}",
            r.number, r.gateway_bytes, r.distributed_bytes, r.shutoff_s, r.quality_pct, r.cost
        );
    }
    out
}

/// Renders an ASCII scatter of Fig. 5 (cost on x, quality on y), with the
/// paper's marker split: `o` = shut-off < 20 s, `^` = above.
pub fn fig5_ascii(points: &[Fig5Point], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::from("(empty front)\n");
    }
    let (min_c, max_c) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.cost), hi.max(p.cost))
    });
    let (min_q, max_q) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.quality_pct), hi.max(p.quality_pct))
    });
    let span_c = (max_c - min_c).max(1e-9);
    let span_q = (max_q - min_q).max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    for p in points {
        let x = (((p.cost - min_c) / span_c) * (width - 1) as f64).round() as usize;
        let y = (((p.quality_pct - min_q) / span_q) * (height - 1) as f64).round() as usize;
        let row = height - 1 - y;
        grid[row][x] = if p.fast_shutoff { b'o' } else { b'^' };
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "test quality [%] {:.1}..{:.1} (y) vs cost {:.1}..{:.1} (x); o: shut-off < 20 s, ^: >= 20 s",
        min_q, max_q, min_c, max_c
    );
    for row in grid {
        // The grid holds only ASCII marker bytes.
        out.extend(row.iter().map(|&b| b as char));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploredImplementation;
    use crate::objectives::{MemorySummary, Objectives};
    use eea_model::Implementation;

    fn entry(cost: f64, quality: f64, shutoff: f64, gw: u64, local: u64) -> ExploredImplementation {
        ExploredImplementation {
            objectives: Objectives {
                cost,
                test_quality: quality,
                shutoff_s: shutoff,
            },
            implementation: Implementation::new(),
            memory: MemorySummary {
                gateway_bytes: gw,
                distributed_bytes: local,
                selected: Vec::new(),
            },
        }
    }

    fn sample_front() -> Vec<ExploredImplementation> {
        vec![
            entry(100.0, 0.0, 0.0, 0, 0),
            entry(102.0, 0.65, 25.0, 4_000_000, 0),
            entry(103.5, 0.807, 30.0, 9_000_000, 0),
            entry(120.0, 0.81, 3.0, 0, 9_000_000),
            entry(140.0, 0.95, 2.0, 1_000_000, 12_000_000),
        ]
    }

    #[test]
    fn fig5_marker_split() {
        let pts = fig5_points(&sample_front());
        assert_eq!(pts.len(), 5);
        assert!(pts[0].fast_shutoff);
        assert!(!pts[2].fast_shutoff);
        let csv = fig5_csv(&pts);
        assert!(csv.contains("triangle"));
        assert!(csv.contains("circle"));
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn fig6_rows_span_quality() {
        let rows = fig6_rows(&sample_front(), 3);
        assert_eq!(rows.len(), 3);
        // Spread across quality: first is lowest-quality diagnosed design,
        // last is the best.
        assert!(rows[0].quality_pct <= rows[2].quality_pct);
        assert_eq!(rows[2].quality_pct, 95.0);
        let csv = fig6_csv(&rows);
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn headline_finds_cheap_quality() {
        let hl = headline(&sample_front(), None).expect("baseline exists");
        assert_eq!(hl.front_size, 5);
        assert_eq!(hl.baseline_cost, 100.0);
        // Budget 103.7 admits the 0.807-quality design at 103.5.
        assert!((hl.best_quality_pct_in_budget - 80.7).abs() < 1e-9);
        assert!(hl.extra_cost_pct < 3.7);
    }

    #[test]
    fn headline_none_without_baseline() {
        let front = vec![entry(10.0, 0.5, 1.0, 0, 0)];
        assert!(headline(&front, None).is_none());
        // With an explicit baseline, the in-front search is bypassed.
        let hl = headline(&front, Some(9.8)).expect("explicit baseline");
        assert!((hl.best_quality_pct_in_budget - 50.0).abs() < 1e-9);
    }

    #[test]
    fn partial_networking_filters_and_sorts() {
        let front = sample_front();
        let candidates = partial_networking_candidates(&front, 5.0);
        // Only the two fast diagnosed designs qualify; the quality-0
        // baseline and the slow gateway designs do not.
        assert_eq!(candidates.len(), 2);
        assert!(candidates[0].objectives.test_quality >= candidates[1].objectives.test_quality);
        assert!(candidates.iter().all(|e| e.objectives.shutoff_s <= 5.0));
        assert!(partial_networking_candidates(&front, 0.5).is_empty());
    }

    #[test]
    fn ascii_render_contains_markers() {
        let art = fig5_ascii(&fig5_points(&sample_front()), 40, 10);
        assert!(art.contains('o'));
        assert!(art.contains('^'));
    }

    #[test]
    fn fig6_empty_inputs() {
        assert!(fig6_rows(&[], 7).is_empty());
        assert!(fig6_rows(&sample_front(), 0).is_empty());
        let no_diag = vec![entry(1.0, 0.0, 0.0, 0, 0)];
        assert!(fig6_rows(&no_diag, 7).is_empty());
    }
}
