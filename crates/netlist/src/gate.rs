use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A bit-parallel simulation word: one bit per test pattern.
///
/// Implemented by `u64` (the classic 64-pattern word) and by wider
/// fixed-lane blocks (e.g. `eea_faultsim`'s `BitBlock<LANES>`, a
/// `[u64; LANES]` evaluated lane-parallel). [`GateKind::eval`] is generic
/// over this trait so the same gate-evaluation code serves every word
/// width; the lane loops of a wide word are shaped for LLVM
/// autovectorization.
pub trait SimWord:
    Copy
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
{
    /// The all-zeros word.
    const ZEROS: Self;
    /// The all-ones word.
    const ONES: Self;
}

impl SimWord for u64 {
    const ZEROS: Self = 0;
    const ONES: Self = u64::MAX;
}

/// Identifier of a gate inside a [`Circuit`](crate::Circuit).
///
/// Gate ids are dense indices assigned in creation order by
/// [`CircuitBuilder`](crate::CircuitBuilder); they index directly into the
/// circuit's gate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Returns the dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a gate id from a dense index.
    ///
    /// Only meaningful for indices previously obtained from the same
    /// circuit; out-of-range ids cause panics when used for lookups.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The gate library.
///
/// `Input` is a primary input, `Dff` a D-type flip-flop (one fanin: its data
/// input). Under the full-scan assumption used throughout this workspace a
/// `Dff` output acts as a pseudo-primary input and its data input as a
/// pseudo-primary output of the combinational core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// D flip-flop (exactly one fanin). Scan-replaced during test.
    Dff,
    /// Logical AND (>= 1 fanin).
    And,
    /// Logical NAND (>= 1 fanin).
    Nand,
    /// Logical OR (>= 1 fanin).
    Or,
    /// Logical NOR (>= 1 fanin).
    Nor,
    /// Logical XOR (>= 1 fanin).
    Xor,
    /// Logical XNOR (>= 1 fanin).
    Xnor,
    /// Inverter (exactly one fanin).
    Not,
    /// Buffer (exactly one fanin).
    Buf,
}

impl GateKind {
    /// Whether the gate is a source of the combinational core (has no
    /// combinational fanin): primary inputs and flip-flop outputs.
    #[inline]
    pub fn is_combinational_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Dff)
    }

    /// Evaluates the gate on bit-parallel fanin words (one bit per pattern).
    ///
    /// `Input` and `Dff` have no combinational evaluation; callers must not
    /// pass them here.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called on `Input`/`Dff` or with an empty
    /// fanin slice.
    #[inline]
    pub fn eval_words(self, fanin: &[u64]) -> u64 {
        self.eval(fanin)
    }

    /// Generic counterpart of [`eval_words`](Self::eval_words): evaluates
    /// the gate on any [`SimWord`] width (e.g. wide multi-lane blocks).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called on `Input`/`Dff` or with an empty
    /// fanin slice.
    #[inline]
    pub fn eval<W: SimWord>(self, fanin: &[W]) -> W {
        debug_assert!(!fanin.is_empty(), "gate evaluation needs at least one fanin");
        self.eval_iter(fanin.iter().copied())
    }

    /// Evaluates the gate folding fanin values straight off an iterator —
    /// no gather buffer. With wide multi-lane words the buffer round-trip
    /// (store every fanin block, reload it for the fold) costs more than
    /// the fold itself; hot simulation loops feed values directly.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called on `Input`/`Dff`; an empty
    /// iterator yields the fold identity.
    #[inline]
    pub fn eval_iter<W: SimWord>(self, mut fanin: impl Iterator<Item = W>) -> W {
        match self {
            GateKind::And => fanin.fold(W::ONES, |acc, w| acc & w),
            GateKind::Nand => !fanin.fold(W::ONES, |acc, w| acc & w),
            GateKind::Or => fanin.fold(W::ZEROS, |acc, w| acc | w),
            GateKind::Nor => !fanin.fold(W::ZEROS, |acc, w| acc | w),
            GateKind::Xor => fanin.fold(W::ZEROS, |acc, w| acc ^ w),
            GateKind::Xnor => !fanin.fold(W::ZEROS, |acc, w| acc ^ w),
            GateKind::Not => !fanin.next().unwrap_or(W::ZEROS),
            GateKind::Buf => fanin.next().unwrap_or(W::ZEROS),
            GateKind::Input | GateKind::Dff => {
                debug_assert!(false, "sources are not evaluated combinationally");
                W::ZEROS
            }
        }
    }

    /// The controlling value of the gate, if it has one (e.g. `0` for AND:
    /// any fanin at the controlling value determines the output).
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate's output inverts the dominant/accumulated value
    /// (NAND, NOR, NOT, XNOR).
    #[inline]
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Canonical lower-case name used by the `.bench` writer.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Dff => "dff",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        let a = 0b1100;
        let b = 0b1010;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
    }

    #[test]
    fn multi_input_gates() {
        let w = [0b1111, 0b1110, 0b1100];
        assert_eq!(GateKind::And.eval_words(&w) & 0xF, 0b1100);
        assert_eq!(GateKind::Nor.eval_words(&w) & 0xF, 0b0000);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(GateKind::Nand.to_string(), "nand");
        assert_eq!(GateId(7).to_string(), "g7");
    }
}
