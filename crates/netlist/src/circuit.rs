use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::{GateId, GateKind};

/// A validated gate-level circuit.
///
/// Construction goes through [`CircuitBuilder`], which checks arity rules,
/// rejects combinational cycles and precomputes a topological order of the
/// combinational core (treating flip-flop outputs as sources). Under the
/// full-scan assumption, a test pattern assigns primary inputs and flip-flop
/// (pseudo-input) values, and a response is observed at primary outputs and
/// flip-flop data inputs (pseudo-outputs).
#[derive(Debug, Clone)]
pub struct Circuit {
    kinds: Vec<GateKind>,
    fanin: Vec<Vec<GateId>>,
    fanout: Vec<Vec<GateId>>,
    names: Vec<String>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    topo: Vec<GateId>,
    level: Vec<u32>,
}

impl Circuit {
    /// Number of gates (including inputs and flip-flops).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops (scan cells after scan insertion).
    #[inline]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Pattern width of the full-scan combinational core: primary inputs
    /// plus flip-flops.
    #[inline]
    pub fn pattern_width(&self) -> usize {
        self.num_inputs() + self.num_dffs()
    }

    /// Response width: primary outputs plus flip-flop data inputs.
    #[inline]
    pub fn response_width(&self) -> usize {
        self.num_outputs() + self.num_dffs()
    }

    /// Gate kind lookup.
    #[inline]
    pub fn kind(&self, g: GateId) -> GateKind {
        self.kinds[g.index()]
    }

    /// Fanin list of a gate.
    #[inline]
    pub fn fanin(&self, g: GateId) -> &[GateId] {
        &self.fanin[g.index()]
    }

    /// Fanout list of a gate.
    #[inline]
    pub fn fanout(&self, g: GateId) -> &[GateId] {
        &self.fanout[g.index()]
    }

    /// Name of a gate (empty if auto-generated names were elided).
    #[inline]
    pub fn name(&self, g: GateId) -> &str {
        &self.names[g.index()]
    }

    /// Primary inputs in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Flip-flops in declaration order. Order matters: scan-chain insertion
    /// and pattern layout both use this order.
    #[inline]
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Gates of the combinational core in topological order (sources first).
    /// Sources (`Input`, `Dff`) are not part of the order.
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Logic level of a gate: 0 for sources, `1 + max(level of fanin)`
    /// otherwise. Useful for levelised event-driven simulation.
    #[inline]
    pub fn level(&self, g: GateId) -> u32 {
        self.level[g.index()]
    }

    /// Maximum logic level (circuit depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.kinds.len() as u32).map(GateId)
    }

    /// Summary statistics used by reports and sanity checks.
    pub fn stats(&self) -> CircuitStats {
        let mut logic_gates = 0usize;
        for &k in &self.kinds {
            if !k.is_combinational_source() {
                logic_gates += 1;
            }
        }
        CircuitStats {
            gates: self.num_gates(),
            logic_gates,
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            dffs: self.num_dffs(),
            depth: self.depth(),
        }
    }
}

/// Summary statistics of a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// All nodes including sources.
    pub gates: usize,
    /// Logic gates (excluding `Input`/`Dff` sources).
    pub logic_gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Combinational depth.
    pub depth: u32,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({} logic), {} PIs, {} POs, {} FFs, depth {}",
            self.gates, self.logic_gates, self.inputs, self.outputs, self.dffs, self.depth
        )
    }
}

/// Error returned by [`CircuitBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// A gate has an arity its kind does not allow (e.g. 2-input NOT).
    BadArity {
        /// Offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// Fanin count found.
        arity: usize,
    },
    /// The combinational core contains a cycle through the named gate.
    CombinationalCycle(GateId),
    /// The circuit has no primary output and no flip-flop, so no fault could
    /// ever be observed.
    NoObservationPoint,
    /// A duplicate signal name was registered.
    DuplicateName(String),
    /// A fanin references a gate id that was never created.
    DanglingFanin {
        /// Gate holding the dangling reference.
        gate: GateId,
        /// The referenced, non-existent id.
        fanin: GateId,
    },
    /// [`CircuitBuilder::connect_dff`] was called on a non-flip-flop gate.
    NotAFlipFlop(GateId),
    /// [`CircuitBuilder::connect_dff`] was called on an already-connected
    /// flip-flop.
    AlreadyConnected(GateId),
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::BadArity { gate, kind, arity } => {
                write!(f, "gate {gate} of kind {kind} has invalid fanin count {arity}")
            }
            BuildCircuitError::CombinationalCycle(g) => {
                write!(f, "combinational cycle through gate {g}")
            }
            BuildCircuitError::NoObservationPoint => {
                write!(f, "circuit has neither primary outputs nor flip-flops")
            }
            BuildCircuitError::DuplicateName(n) => write!(f, "duplicate signal name {n:?}"),
            BuildCircuitError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} references non-existent fanin {fanin}")
            }
            BuildCircuitError::NotAFlipFlop(g) => {
                write!(f, "gate {g} is not a flip-flop")
            }
            BuildCircuitError::AlreadyConnected(g) => {
                write!(f, "flip-flop {g} is already connected")
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// Incremental builder for [`Circuit`].
///
/// # Example
///
/// ```
/// use eea_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), eea_netlist::BuildCircuitError> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input("a");
/// let q = b.dff(a, "q");
/// let n = b.gate(GateKind::Not, &[q], "n");
/// b.output(n);
/// let c = b.finish()?;
/// assert_eq!(c.num_dffs(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    kinds: Vec<GateKind>,
    fanin: Vec<Vec<GateId>>,
    names: Vec<String>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    dff_data: Vec<Option<GateId>>,
    by_name: HashMap<String, GateId>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: GateKind, fanin: Vec<GateId>, name: &str) -> GateId {
        let id = GateId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.fanin.push(fanin);
        self.names.push(name.to_owned());
        self.dff_data.push(None);
        if !name.is_empty() {
            self.by_name.insert(name.to_owned(), id);
        }
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: &str) -> GateId {
        let id = self.push(GateKind::Input, Vec::new(), name);
        self.inputs.push(id);
        id
    }

    /// Adds a flip-flop whose data input is `data`.
    pub fn dff(&mut self, data: GateId, name: &str) -> GateId {
        let id = self.push(GateKind::Dff, vec![data], name);
        self.dffs.push(id);
        id
    }

    /// Adds a flip-flop whose data input is connected later via
    /// [`connect_dff`](Self::connect_dff) (needed for feedback loops).
    pub fn dff_deferred(&mut self, name: &str) -> GateId {
        let id = self.push(GateKind::Dff, Vec::new(), name);
        self.dffs.push(id);
        id
    }

    /// Connects the data input of a deferred flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::NotAFlipFlop`] if `ff` is not a
    /// flip-flop (or does not exist) and
    /// [`BuildCircuitError::AlreadyConnected`] if it already has a data
    /// input.
    pub fn connect_dff(&mut self, ff: GateId, data: GateId) -> Result<(), BuildCircuitError> {
        if self.kinds.get(ff.index()) != Some(&GateKind::Dff) {
            return Err(BuildCircuitError::NotAFlipFlop(ff));
        }
        if !self.fanin[ff.index()].is_empty() {
            return Err(BuildCircuitError::AlreadyConnected(ff));
        }
        self.fanin[ff.index()].push(data);
        Ok(())
    }

    /// Adds a logic gate. `kind` must not be a source kind (`Input`/`Dff`;
    /// use [`input`](Self::input) / [`dff`](Self::dff) for those) — a source
    /// kind passed here is rejected later by [`finish`](Self::finish)'s
    /// arity validation.
    pub fn gate(&mut self, kind: GateKind, fanin: &[GateId], name: &str) -> GateId {
        debug_assert!(
            !kind.is_combinational_source(),
            "use input()/dff() for source nodes"
        );
        self.push(kind, fanin.to_vec(), name)
    }

    /// Marks a gate as primary output.
    pub fn output(&mut self, g: GateId) {
        self.outputs.push(g);
    }

    /// Appends an extra fanin pin to a variadic logic gate
    /// (AND/NAND/OR/NOR/XOR/XNOR). Growing a fixed-arity gate (input,
    /// flip-flop, inverter, buffer) this way is rejected later by
    /// [`finish`](Self::finish)'s arity validation.
    pub fn add_fanin(&mut self, g: GateId, src: GateId) {
        debug_assert!(
            matches!(
                self.kinds[g.index()],
                GateKind::And
                    | GateKind::Nand
                    | GateKind::Or
                    | GateKind::Nor
                    | GateKind::Xor
                    | GateKind::Xnor
            ),
            "cannot add fanin to a fixed-arity gate"
        );
        self.fanin[g.index()].push(src);
    }

    /// Current fanin count of a gate.
    pub fn fanin_len(&self, g: GateId) -> usize {
        self.fanin[g.index()].len()
    }

    /// Kind of a previously added gate.
    pub fn kind(&self, g: GateId) -> GateKind {
        self.kinds[g.index()]
    }

    /// Looks up a previously added gate by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no gate was added yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Validates and freezes the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError`] when arity rules are violated, a
    /// combinational cycle exists, or the circuit has no observation point.
    pub fn finish(self) -> Result<Circuit, BuildCircuitError> {
        let n = self.kinds.len();
        // Every fanin reference must point at an existing gate; a dangling
        // id would otherwise index out of bounds below.
        for i in 0..n {
            for &f in &self.fanin[i] {
                if f.index() >= n {
                    return Err(BuildCircuitError::DanglingFanin {
                        gate: GateId(i as u32),
                        fanin: f,
                    });
                }
            }
        }
        // Arity checks.
        for i in 0..n {
            let kind = self.kinds[i];
            let arity = self.fanin[i].len();
            let ok = match kind {
                GateKind::Input => arity == 0,
                GateKind::Dff | GateKind::Not | GateKind::Buf => arity == 1,
                _ => arity >= 1,
            };
            if !ok {
                return Err(BuildCircuitError::BadArity {
                    gate: GateId(i as u32),
                    kind,
                    arity,
                });
            }
        }
        if self.outputs.is_empty() && self.dffs.is_empty() {
            return Err(BuildCircuitError::NoObservationPoint);
        }

        // Fanout lists.
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for i in 0..n {
            for &f in &self.fanin[i] {
                fanout[f.index()].push(GateId(i as u32));
            }
        }

        // Kahn topological sort of the combinational core. DFF outputs are
        // sources; the edge into a DFF (its data input) terminates there and
        // does not continue through the DFF output, so sequential feedback
        // loops are fine.
        let mut indegree: Vec<u32> = vec![0; n];
        for (i, deg) in indegree.iter_mut().enumerate() {
            if !self.kinds[i].is_combinational_source() {
                *deg = self.fanin[i].len() as u32;
            }
        }
        let mut level: Vec<u32> = vec![0; n];
        let mut queue: Vec<GateId> = (0..n as u32)
            .map(GateId)
            .filter(|g| self.kinds[g.index()].is_combinational_source())
            .collect();
        let mut topo: Vec<GateId> = Vec::with_capacity(n);
        let mut visited = queue.len();
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            if !self.kinds[g.index()].is_combinational_source() {
                topo.push(g);
            }
            for &s in &fanout[g.index()] {
                if self.kinds[s.index()].is_combinational_source() {
                    // Edge into a DFF data input: terminates the path.
                    continue;
                }
                level[s.index()] = level[s.index()].max(level[g.index()] + 1);
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    queue.push(s);
                    visited += 1;
                }
            }
        }
        // DFF data edges were not counted in `visited`; recount combinational
        // gates only.
        let comb_gates = (0..n)
            .filter(|&i| !self.kinds[i].is_combinational_source())
            .count();
        if topo.len() != comb_gates {
            let stuck = (0..n)
                .find(|&i| !self.kinds[i].is_combinational_source() && indegree[i] > 0)
                .map(|i| GateId(i as u32))
                .unwrap_or(GateId(0));
            return Err(BuildCircuitError::CombinationalCycle(stuck));
        }
        let _ = visited;

        Ok(Circuit {
            kinds: self.kinds,
            fanin: self.fanin,
            fanout,
            names: self.names,
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: self.dffs,
            topo,
            level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let c = b.input("c");
        let g1 = b.gate(GateKind::And, &[a, c], "g1");
        let g2 = b.gate(GateKind::Not, &[g1], "g2");
        b.output(g2);
        b.finish().expect("valid circuit")
    }

    #[test]
    fn builds_and_orders() {
        let c = simple();
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.topo_order().len(), 2);
        assert_eq!(c.level(c.topo_order()[0]), 1);
        assert_eq!(c.level(c.topo_order()[1]), 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn fanout_lists() {
        let c = simple();
        let a = c.inputs()[0];
        assert_eq!(c.fanout(a).len(), 1);
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Not, &[a, x], "g");
        b.output(g);
        match b.finish() {
            Err(BuildCircuitError::BadArity { kind, arity, .. }) => {
                assert_eq!(kind, GateKind::Not);
                assert_eq!(arity, 2);
            }
            other => panic!("expected BadArity, got {other:?}"),
        }
    }

    #[test]
    fn rejects_combinational_cycle() {
        // g1 = AND(a, g2); g2 = NOT(g1) -- combinational loop.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        // Build with a placeholder then patch the fanin directly via a DFF-free loop:
        // easiest is to construct ids manually.
        let g1 = b.gate(GateKind::And, &[a, GateId(2)], "g1"); // forward ref to g2
        let g2 = b.gate(GateKind::Not, &[g1], "g2");
        assert_eq!(g2, GateId(2));
        b.output(g2);
        assert!(matches!(
            b.finish(),
            Err(BuildCircuitError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn sequential_feedback_is_allowed() {
        // q = DFF(n); n = NOT(q) -- a toggle flip-flop, fine.
        let mut b = CircuitBuilder::new();
        let q = b.dff_deferred("q");
        let n = b.gate(GateKind::Not, &[q], "n");
        b.connect_dff(q, n).expect("q is an unconnected flip-flop");
        b.output(n);
        let c = b.finish().expect("sequential loop is legal");
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.pattern_width(), 1);
        assert_eq!(c.response_width(), 2);
    }

    #[test]
    fn rejects_unobservable_circuit() {
        let mut b = CircuitBuilder::new();
        b.input("a");
        assert!(matches!(
            b.finish(),
            Err(BuildCircuitError::NoObservationPoint)
        ));
    }

    #[test]
    fn stats_display() {
        let s = simple().stats();
        assert_eq!(s.logic_gates, 2);
        assert!(s.to_string().contains("2 PIs"));
    }

    #[test]
    fn find_by_name() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        assert_eq!(b.find("a"), Some(a));
        assert_eq!(b.find("zz"), None);
    }
}
