//! Gate-level circuit model used as the circuit-under-test (CUT) substrate
//! for BIST profile generation.
//!
//! The paper characterises each BIST session on an automotive microprocessor
//! from Infineon (371,900 collapsed faults, 100 scan chains, maximum chain
//! length 77). That netlist is proprietary, so this crate provides the
//! closest open equivalent: a full-scan gate-level circuit model with
//!
//! * a typed gate library ([`GateKind`]),
//! * a validated, levelised circuit graph ([`Circuit`]) built through
//!   [`CircuitBuilder`],
//! * an ISCAS-style `.bench` parser/writer ([`bench_format`]),
//! * a seeded synthetic random-logic generator ([`synth`]) able to produce
//!   circuits of arbitrary size with realistic fanin/fanout distributions, and
//! * scan-chain insertion ([`scan`]) that partitions the state elements into
//!   balanced scan chains, exactly like the STUMPS architecture requires.
//!
//! Downstream, [`eea-faultsim`](https://example.invalid) enumerates stuck-at
//! faults on this representation and `eea-bist` shifts pseudo-random and
//! deterministic patterns through the scan chains.
//!
//! # Example
//!
//! ```
//! use eea_netlist::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), eea_netlist::BuildCircuitError> {
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.gate(GateKind::Nand, &[a, c], "g");
//! b.output(g);
//! let circuit = b.finish()?;
//! assert_eq!(circuit.num_inputs(), 2);
//! assert_eq!(circuit.num_outputs(), 1);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod gate;
pub mod bench_format;
pub mod scan;
pub mod synth;
pub mod verilog;

pub use circuit::{BuildCircuitError, Circuit, CircuitBuilder, CircuitStats};
pub use gate::{GateId, GateKind};
pub use scan::{ScanChains, ScanConfig};
pub use synth::{SynthConfig, synthesize};
