//! Gate-level circuit model used as the circuit-under-test (CUT) substrate
//! for BIST profile generation.
//!
//! The paper characterises each BIST session on an automotive microprocessor
//! from Infineon (371,900 collapsed faults, 100 scan chains, maximum chain
//! length 77). That netlist is proprietary, so this crate provides the
//! closest open equivalent: a full-scan gate-level circuit model with
//!
//! * a typed gate library ([`GateKind`]),
//! * a validated, levelised circuit graph ([`Circuit`]) built through
//!   [`CircuitBuilder`],
//! * an ISCAS-style `.bench` parser/writer ([`bench_format`]),
//! * a seeded synthetic random-logic generator ([`synth`]) able to produce
//!   circuits of arbitrary size with realistic fanin/fanout distributions, and
//! * scan-chain insertion ([`scan`]) that partitions the state elements into
//!   balanced scan chains, exactly like the STUMPS architecture requires.
//!
//! Downstream, [`eea-faultsim`](https://example.invalid) enumerates stuck-at
//! faults on this representation and `eea-bist` shifts pseudo-random and
//! deterministic patterns through the scan chains.
//!
//! # Example
//!
//! ```
//! use eea_netlist::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), eea_netlist::BuildCircuitError> {
//! let mut b = CircuitBuilder::new();
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.gate(GateKind::Nand, &[a, c], "g");
//! b.output(g);
//! let circuit = b.finish()?;
//! assert_eq!(circuit.num_inputs(), 2);
//! assert_eq!(circuit.num_outputs(), 1);
//! # Ok(())
//! # }
//! ```

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod circuit;
mod gate;
pub mod bench_format;
pub mod scan;
pub mod synth;
pub mod verilog;

pub use bench_format::ParseBenchError;
pub use circuit::{BuildCircuitError, Circuit, CircuitBuilder, CircuitStats};
pub use gate::{GateId, GateKind, SimWord};
pub use verilog::ParseVerilogError;
pub use scan::{ScanChains, ScanConfig, ScanError};
pub use synth::{synthesize, SynthConfig, SynthError};

use std::error::Error;
use std::fmt;

/// Crate-level error: every fallible `eea-netlist` API returns a variant of
/// this (or an error that converts into it), so downstream crates can hold
/// one netlist error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// `.bench` parsing failed.
    Bench(bench_format::ParseBenchError),
    /// Verilog parsing failed.
    Verilog(verilog::ParseVerilogError),
    /// Circuit construction/validation failed.
    Build(BuildCircuitError),
    /// Synthetic circuit generation failed.
    Synth(SynthError),
    /// Scan-chain insertion failed.
    Scan(ScanError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Bench(e) => write!(f, "bench: {e}"),
            NetlistError::Verilog(e) => write!(f, "verilog: {e}"),
            NetlistError::Build(e) => write!(f, "build: {e}"),
            NetlistError::Synth(e) => write!(f, "synth: {e}"),
            NetlistError::Scan(e) => write!(f, "scan: {e}"),
        }
    }
}

impl Error for NetlistError {}

impl From<bench_format::ParseBenchError> for NetlistError {
    fn from(e: bench_format::ParseBenchError) -> Self {
        NetlistError::Bench(e)
    }
}

impl From<verilog::ParseVerilogError> for NetlistError {
    fn from(e: verilog::ParseVerilogError) -> Self {
        NetlistError::Verilog(e)
    }
}

impl From<BuildCircuitError> for NetlistError {
    fn from(e: BuildCircuitError) -> Self {
        NetlistError::Build(e)
    }
}

impl From<SynthError> for NetlistError {
    fn from(e: SynthError) -> Self {
        NetlistError::Synth(e)
    }
}

impl From<ScanError> for NetlistError {
    fn from(e: ScanError) -> Self {
        NetlistError::Scan(e)
    }
}
