//! Scan-chain insertion for the STUMPS architecture.
//!
//! STUMPS (Self-Testing Unit using MISR and Parallel Shift register sequence
//! generator) feeds all scan chains in parallel from a pseudo-random pattern
//! generator and compacts all chain outputs into a MISR. Test time per
//! pattern is therefore governed by the *longest* chain, which is why the
//! paper's CUT uses 100 balanced chains with a maximum length of 77.
//!
//! [`ScanChains::balanced`] partitions a circuit's flip-flops round-robin
//! into `num_chains` chains, mirroring an industrial stitching tool's
//! balance objective.
//!
//! # Example
//!
//! ```
//! use eea_netlist::{synthesize, SynthConfig, ScanChains};
//!
//! let c = synthesize(&SynthConfig { gates: 100, inputs: 8, dffs: 50, seed: 1, ..SynthConfig::default() }).expect("synthesizes");
//! let chains = ScanChains::balanced(&c, 10).expect("at least one chain");
//! assert_eq!(chains.num_chains(), 10);
//! assert_eq!(chains.max_length(), 5);
//! ```

use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::GateId;

/// Error from [`ScanChains::balanced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanError {
    /// A scan architecture needs at least one chain.
    ZeroChains,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::ZeroChains => write!(f, "scan architecture needs at least one chain"),
        }
    }
}

impl Error for ScanError {}

/// Scan-architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Number of parallel scan chains.
    pub num_chains: usize,
    /// Shift clock frequency in Hz (the paper's CUT shifts at 40 MHz).
    pub shift_frequency_hz: u64,
}

impl Default for ScanConfig {
    fn default() -> Self {
        // The paper's CUT: 100 chains at 40 MHz.
        ScanConfig {
            num_chains: 100,
            shift_frequency_hz: 40_000_000,
        }
    }
}

/// A partition of a circuit's flip-flops into scan chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChains {
    chains: Vec<Vec<GateId>>,
    /// chain index and position for each flip-flop, indexed by the
    /// flip-flop's position in `Circuit::dffs()`.
    placement: Vec<(u32, u32)>,
}

impl ScanChains {
    /// Partitions the flip-flops of `circuit` round-robin into `num_chains`
    /// balanced chains. If the circuit has fewer flip-flops than chains, the
    /// surplus chains stay empty (chain count is preserved so that timing
    /// formulas depending on the configured architecture stay meaningful).
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::ZeroChains`] if `num_chains == 0`.
    pub fn balanced(circuit: &Circuit, num_chains: usize) -> Result<Self, ScanError> {
        if num_chains == 0 {
            return Err(ScanError::ZeroChains);
        }
        let mut chains: Vec<Vec<GateId>> = vec![Vec::new(); num_chains];
        let mut placement = Vec::with_capacity(circuit.num_dffs());
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            let chain = i % num_chains;
            placement.push((chain as u32, chains[chain].len() as u32));
            chains[chain].push(ff);
        }
        Ok(ScanChains { chains, placement })
    }

    /// Number of chains (including empty ones).
    #[inline]
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The flip-flops of chain `i`, scan-in first.
    #[inline]
    pub fn chain(&self, i: usize) -> &[GateId] {
        &self.chains[i]
    }

    /// Iterator over all chains.
    pub fn iter(&self) -> impl Iterator<Item = &[GateId]> + '_ {
        self.chains.iter().map(|c| c.as_slice())
    }

    /// Length of the longest chain — the number of shift cycles needed to
    /// load (and simultaneously unload) one pattern.
    pub fn max_length(&self) -> usize {
        self.chains.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Chain index and shift position of the `i`-th flip-flop of the
    /// circuit (index into `Circuit::dffs()`).
    #[inline]
    pub fn placement(&self, dff_index: usize) -> (usize, usize) {
        let (c, p) = self.placement[dff_index];
        (c as usize, p as usize)
    }

    /// Total number of scan cells.
    pub fn num_cells(&self) -> usize {
        self.placement.len()
    }

    /// Shift cycles per pattern: load of pattern *k+1* overlaps with unload
    /// of pattern *k*, plus one capture cycle.
    pub fn cycles_per_pattern(&self) -> usize {
        self.max_length() + 1
    }

    /// Wall-clock test time for `patterns` patterns at `shift_frequency_hz`,
    /// in seconds: `(patterns + 1) * (max_length + 1) / f` (the `+1` pattern
    /// accounts for the final unload). A zero shift frequency yields
    /// `f64::INFINITY` — the test never completes — rather than a panic.
    pub fn test_time_s(&self, patterns: u64, shift_frequency_hz: u64) -> f64 {
        if shift_frequency_hz == 0 {
            return f64::INFINITY;
        }
        ((patterns + 1) * self.cycles_per_pattern() as u64) as f64 / shift_frequency_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};

    fn circuit(dffs: usize) -> Circuit {
        synthesize(&SynthConfig {
            gates: 50,
            inputs: 4,
            dffs,
            seed: 5,
            ..SynthConfig::default()
        }).expect("synthesizes")
    }

    #[test]
    fn balanced_partition() {
        let c = circuit(23);
        let chains = ScanChains::balanced(&c, 5).expect("at least one chain");
        let lens: Vec<usize> = chains.iter().map(|ch| ch.len()).collect();
        assert_eq!(lens, vec![5, 5, 5, 4, 4]);
        assert_eq!(chains.max_length(), 5);
        assert_eq!(chains.num_cells(), 23);
    }

    #[test]
    fn placement_consistent() {
        let c = circuit(12);
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        for (i, &ff) in c.dffs().iter().enumerate() {
            let (ci, pos) = chains.placement(i);
            assert_eq!(chains.chain(ci)[pos], ff);
        }
    }

    #[test]
    fn more_chains_than_ffs() {
        let c = circuit(3);
        let chains = ScanChains::balanced(&c, 8).expect("at least one chain");
        assert_eq!(chains.num_chains(), 8);
        assert_eq!(chains.max_length(), 1);
        assert_eq!(chains.iter().filter(|ch| ch.is_empty()).count(), 5);
    }

    #[test]
    fn test_time_matches_paper_order() {
        // Paper CUT: 100 chains, max length 77, 40 MHz. 500 patterns take
        // 500 * 78 / 40e6 ~ 0.975 ms of raw shift time (profile 1 reports
        // 4.87 ms including deterministic patterns and restore).
        let c = circuit(100);
        let chains = ScanChains::balanced(&c, 100).expect("at least one chain");
        assert_eq!(chains.max_length(), 1);
        let t = chains.test_time_s(500, 40_000_000);
        assert!(t > 0.0 && t < 0.001);
    }

    #[test]
    fn cycles_per_pattern() {
        let c = circuit(10);
        let chains = ScanChains::balanced(&c, 2).expect("at least one chain");
        assert_eq!(chains.cycles_per_pattern(), 6);
    }
}
