//! Seeded synthetic random-logic generator.
//!
//! The paper's CUT is a proprietary Infineon automotive microprocessor; for
//! an open reproduction we generate random logic with realistic structural
//! properties instead (see DESIGN.md, substitution table). The generator is
//! fully deterministic for a given [`SynthConfig`], so every experiment is
//! reproducible.
//!
//! Structural realism knobs:
//!
//! * fanin distribution biased towards 2-input gates (as in mapped standard
//!   cell netlists),
//! * locality-biased fanin selection that yields logic depth comparable to
//!   pipeline stages rather than a flat two-level structure,
//! * a configurable fraction of XOR/XNOR gates, which are the main source of
//!   random-pattern-resistant faults — the very faults that force the
//!   deterministic top-off patterns whose storage cost the paper's design
//!   space exploration trades off.
//!
//! # Example
//!
//! ```
//! use eea_netlist::{synthesize, SynthConfig};
//!
//! # fn main() -> Result<(), eea_netlist::SynthError> {
//! let c = synthesize(&SynthConfig { gates: 200, inputs: 12, dffs: 16, seed: 7, ..SynthConfig::default() })?;
//! assert_eq!(c.num_dffs(), 16);
//! assert!(c.stats().logic_gates >= 200);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use crate::circuit::{BuildCircuitError, Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};

/// Error from [`synthesize`]: the configuration cannot produce a valid
/// circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// `inputs + dffs == 0`: the circuit would have no signal source.
    NoSources,
    /// `gates == 0`: the circuit would have no logic to test.
    NoGates,
    /// A primary input or flip-flop output could not be wired into any
    /// gate (every generated gate has a fixed arity — e.g. a 1-gate
    /// configuration whose only gate is an inverter).
    UnwirableSource(GateId),
    /// The generated circuit failed validation.
    Build(BuildCircuitError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NoSources => write!(f, "config needs at least one input or flip-flop"),
            SynthError::NoGates => write!(f, "config needs at least one logic gate"),
            SynthError::UnwirableSource(g) => {
                write!(f, "no variadic gate available to absorb unused source {g}")
            }
            SynthError::Build(e) => write!(f, "generated circuit is invalid: {e}"),
        }
    }
}

impl Error for SynthError {}

impl From<BuildCircuitError> for SynthError {
    fn from(e: BuildCircuitError) -> Self {
        SynthError::Build(e)
    }
}

/// Configuration for [`synthesize`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of logic gates (excluding inputs/flip-flops).
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of flip-flops.
    pub dffs: usize,
    /// Maximum gate fanin (>= 2).
    pub max_fanin: usize,
    /// Target number of logic levels. Real mapped netlists have depths of
    /// 10–30 levels; much deeper random circuits become unrealistically
    /// random-pattern-resistant (propagation probability decays per level).
    pub levels: usize,
    /// Fraction of XOR/XNOR gates in (0, 1); higher values create more
    /// random-pattern-resistant faults.
    pub xor_fraction: f64,
    /// RNG seed; equal seeds produce identical circuits.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            gates: 1000,
            inputs: 32,
            dffs: 64,
            max_fanin: 4,
            levels: 12,
            xor_fraction: 0.12,
            seed: 0xEEA_D5E,
        }
    }
}

/// Minimal deterministic RNG (SplitMix64). Keeps the library free of a hard
/// `rand` dependency; statistical quality is more than sufficient for
/// structure generation.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn pick_kind(rng: &mut SplitMix64, fanin: usize, xor_fraction: f64) -> GateKind {
    if fanin == 1 {
        return if rng.unit() < 0.7 {
            GateKind::Not
        } else {
            GateKind::Buf
        };
    }
    if rng.unit() < xor_fraction {
        return if rng.unit() < 0.5 {
            GateKind::Xor
        } else {
            GateKind::Xnor
        };
    }
    // Inverting gates dominate: NAND/NOR keep signal probabilities balanced
    // along deep cones (a p=0.5 NAND chain oscillates around 0.25/0.75),
    // whereas AND/OR chains collapse towards constant signals and produce
    // unrealistically many random-untestable faults.
    match rng.below(10) {
        0..=3 => GateKind::Nand,
        4..=7 => GateKind::Nor,
        8 => GateKind::And,
        _ => GateKind::Or,
    }
}

fn pick_fanin_count(rng: &mut SplitMix64, max_fanin: usize) -> usize {
    // Mapped netlist-like distribution: mostly 2-input, some 3/4, few 1.
    let r = rng.unit();
    let n = if r < 0.08 {
        1
    } else if r < 0.72 {
        2
    } else if r < 0.92 {
        3
    } else {
        4
    };
    n.min(max_fanin.max(1))
}

/// Fraction of fanin pins drawn from the immediately preceding level;
/// the remainder reaches uniformly into all earlier levels (long wires /
/// reconvergence).
const PREV_LEVEL_BIAS: f64 = 0.7;

/// Generates a random full-scan circuit per `cfg`.
///
/// The result always validates: every flip-flop's data input is driven, and
/// every sink gate (no fanout) becomes a primary output, so no logic is
/// structurally unobservable.
///
/// # Errors
///
/// Returns [`SynthError`] for degenerate configurations
/// (`inputs + dffs == 0`, `gates == 0`, or a source that no generated gate
/// can absorb).
pub fn synthesize(cfg: &SynthConfig) -> Result<Circuit, SynthError> {
    if cfg.inputs + cfg.dffs == 0 {
        return Err(SynthError::NoSources);
    }
    if cfg.gates == 0 {
        return Err(SynthError::NoGates);
    }
    let mut rng = SplitMix64::new(cfg.seed);
    let mut b = CircuitBuilder::new();

    let mut pool: Vec<GateId> = Vec::with_capacity(cfg.inputs + cfg.dffs + cfg.gates);
    let mut has_fanout: Vec<bool> = Vec::with_capacity(pool.capacity());
    for i in 0..cfg.inputs {
        pool.push(b.input(&format!("pi{i}")));
        has_fanout.push(false);
    }
    let mut ffs = Vec::with_capacity(cfg.dffs);
    for i in 0..cfg.dffs {
        let ff = b.dff_deferred(&format!("ff{i}"));
        ffs.push(ff);
        pool.push(ff);
        has_fanout.push(false);
    }

    let num_sources = pool.len();
    // Levelised construction: level 0 holds the sources; logic gates are
    // spread evenly over `levels` levels and draw fanin mostly from the
    // previous level. This keeps the circuit shallow and wide like a real
    // mapped netlist, which is what makes it predominantly random-testable.
    let levels = cfg.levels.max(1).min(cfg.gates);
    let mut level_of: Vec<Vec<GateId>> = vec![pool.clone()];
    let mut gates = Vec::with_capacity(cfg.gates);
    for lvl in 0..levels {
        let width = cfg.gates / levels + usize::from(lvl < cfg.gates % levels);
        let mut this_level = Vec::with_capacity(width);
        for _ in 0..width {
            let i = gates.len();
            let n = pick_fanin_count(&mut rng, cfg.max_fanin);
            let mut fanin: Vec<GateId> = Vec::with_capacity(n);
            let mut attempts = 0;
            while fanin.len() < n && attempts < 32 {
                attempts += 1;
                // `level_of` always holds at least the source level.
                let Some(prev) = level_of.last() else { break };
                let s = if rng.unit() < PREV_LEVEL_BIAS || level_of.len() == 1 {
                    prev[rng.below(prev.len())]
                } else {
                    let l = rng.below(level_of.len());
                    level_of[l][rng.below(level_of[l].len())]
                };
                // A duplicated pin makes XOR(a, a) a constant and poisons
                // the downstream cone with redundant faults; never allow it.
                if !fanin.contains(&s) {
                    fanin.push(s);
                }
            }
            for &f in &fanin {
                has_fanout[f.index()] = true;
            }
            let kind = pick_kind(&mut rng, fanin.len(), cfg.xor_fraction);
            let g = b.gate(kind, &fanin, &format!("n{i}"));
            gates.push(g);
            pool.push(g);
            this_level.push(g);
            has_fanout.push(false);
        }
        if !this_level.is_empty() {
            level_of.push(this_level);
        }
    }

    // Drive each flip-flop from a distinct late gate where possible.
    for (i, &ff) in ffs.iter().enumerate() {
        let g = gates[gates.len() - 1 - (i % gates.len().min(cfg.dffs.max(1) * 2))];
        b.connect_dff(ff, g)?;
        has_fanout[g.index()] = true;
    }

    // Backstop for configurations with more sources than gates: wire every
    // still-unused source into some variadic gate so no primary input or
    // flip-flop output is structurally dead.
    let mut scan_from = 0;
    for si in 0..num_sources {
        if has_fanout[pool[si].index()] {
            continue;
        }
        let mut wired = false;
        // First pass respects the fanin cap; the second pass (for extreme
        // source/gate ratios) grows gates beyond `max_fanin`, which is
        // harmless for simulation purposes.
        for relax in [false, true] {
            for off in 0..gates.len() {
                let g = gates[(scan_from + off) % gates.len()];
                let variadic = matches!(
                    b.kind(g),
                    GateKind::And
                        | GateKind::Nand
                        | GateKind::Or
                        | GateKind::Nor
                        | GateKind::Xor
                        | GateKind::Xnor
                );
                if variadic && (relax || b.fanin_len(g) < cfg.max_fanin.max(2)) {
                    b.add_fanin(g, pool[si]);
                    has_fanout[pool[si].index()] = true;
                    scan_from = (scan_from + off + 1) % gates.len();
                    wired = true;
                    break;
                }
            }
            if wired {
                break;
            }
        }
        if !wired {
            return Err(SynthError::UnwirableSource(pool[si]));
        }
    }

    // Every sink gate becomes a primary output so no logic cone is
    // structurally unobservable.
    let mut n_outputs = 0;
    for &g in &gates {
        if !has_fanout[g.index()] {
            b.output(g);
            n_outputs += 1;
        }
    }
    if n_outputs == 0 {
        if let Some(&last) = gates.last() {
            b.output(last);
        }
    }
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = SynthConfig {
            gates: 300,
            seed: 42,
            ..SynthConfig::default()
        };
        let a = synthesize(&cfg).expect("synthesizes");
        let b = synthesize(&cfg).expect("synthesizes");
        assert_eq!(a.stats(), b.stats());
        for (ga, gb) in a.gate_ids().zip(b.gate_ids()) {
            assert_eq!(a.kind(ga), b.kind(gb));
            assert_eq!(a.fanin(ga), b.fanin(gb));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&SynthConfig {
            seed: 1,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let b = synthesize(&SynthConfig {
            seed: 2,
            ..SynthConfig::default()
        }).expect("synthesizes");
        // Extremely unlikely to coincide in both structure and kinds.
        assert!(a.stats() != b.stats() || a.gate_ids().any(|g| a.kind(g) != b.kind(g)));
    }

    #[test]
    fn respects_sizes() {
        let cfg = SynthConfig {
            gates: 500,
            inputs: 20,
            dffs: 40,
            seed: 3,
            ..SynthConfig::default()
        };
        let c = synthesize(&cfg).expect("synthesizes");
        assert_eq!(c.num_inputs(), 20);
        assert_eq!(c.num_dffs(), 40);
        assert_eq!(c.stats().logic_gates, 500);
        assert!(c.num_outputs() > 0);
    }

    #[test]
    fn has_reasonable_depth() {
        let c = synthesize(&SynthConfig {
            gates: 2000,
            seed: 9,
            ..SynthConfig::default()
        }).expect("synthesizes");
        // Locality bias should create depth well beyond 3 levels.
        assert!(c.depth() > 5, "depth = {}", c.depth());
    }

    #[test]
    fn every_ff_is_driven() {
        let c = synthesize(&SynthConfig {
            gates: 100,
            inputs: 8,
            dffs: 12,
            seed: 11,
            ..SynthConfig::default()
        }).expect("synthesizes");
        for &ff in c.dffs() {
            assert_eq!(c.fanin(ff).len(), 1);
        }
    }

    #[test]
    fn sinks_are_outputs() {
        let c = synthesize(&SynthConfig {
            gates: 400,
            seed: 21,
            ..SynthConfig::default()
        }).expect("synthesizes");
        for g in c.gate_ids() {
            if !c.kind(g).is_combinational_source() && c.fanout(g).is_empty() {
                assert!(c.outputs().contains(&g), "sink {g} not an output");
            }
        }
    }

    #[test]
    fn splitmix_unit_range() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
