//! ISCAS-style `.bench` netlist format.
//!
//! The `.bench` format is the lingua franca of the test-generation
//! literature (ISCAS-85/89 benchmark suites). Grammar per line:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(f)
//! f = NAND(a, b)
//! q = DFF(d)
//! ```
//!
//! # Example
//!
//! ```
//! use eea_netlist::bench_format;
//!
//! # fn main() -> Result<(), bench_format::ParseBenchError> {
//! let src = "\
//! INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n";
//! let c = bench_format::parse(src)?;
//! assert_eq!(c.num_inputs(), 2);
//! let round = bench_format::to_bench(&c);
//! assert_eq!(bench_format::parse(&round)?.num_gates(), c.num_gates());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::circuit::{BuildCircuitError, Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed; carries the 1-based line number and text.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
    },
    /// An unknown gate type was used.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate-type token.
        kind: String,
    },
    /// A signal was referenced but never defined.
    UndefinedSignal(String),
    /// A signal was defined twice.
    Redefined(String),
    /// The assembled circuit failed validation.
    Build(BuildCircuitError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, text } => {
                write!(f, "syntax error on line {line}: {text:?}")
            }
            ParseBenchError::UnknownGate { line, kind } => {
                write!(f, "unknown gate type {kind:?} on line {line}")
            }
            ParseBenchError::UndefinedSignal(s) => write!(f, "undefined signal {s:?}"),
            ParseBenchError::Redefined(s) => write!(f, "signal {s:?} defined twice"),
            ParseBenchError::Build(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl Error for ParseBenchError {}

impl From<BuildCircuitError> for ParseBenchError {
    fn from(e: BuildCircuitError) -> Self {
        ParseBenchError::Build(e)
    }
}

fn gate_kind(token: &str) -> Option<GateKind> {
    match token.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "DFF" => Some(GateKind::Dff),
        _ => None,
    }
}

enum Stmt {
    Input(String),
    Output(String),
    Gate {
        out: String,
        kind: GateKind,
        fanin: Vec<String>,
    },
}

fn parse_line(line_no: usize, line: &str) -> Result<Option<Stmt>, ParseBenchError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let syntax = || ParseBenchError::Syntax {
        line: line_no,
        text: line.to_owned(),
    };
    // `INPUT`/`OUTPUT` are keywords only when immediately followed by a
    // parenthesised name. A gate whose *name* merely starts with the
    // keyword (`INPUTX = AND(a, b)`) contains an `=` before the `(` and
    // falls through to the gate-definition grammar below.
    let keyword_arg = |upper: &str, lower: &str| -> Option<&str> {
        let rest = line
            .strip_prefix(upper)
            .or_else(|| line.strip_prefix(lower))?
            .trim_start();
        rest.starts_with('(').then_some(rest)
    };
    if let Some(rest) = keyword_arg("INPUT", "input") {
        let name = rest
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(syntax)?;
        return Ok(Some(Stmt::Input(name.trim().to_owned())));
    }
    if let Some(rest) = keyword_arg("OUTPUT", "output") {
        let name = rest
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(syntax)?;
        return Ok(Some(Stmt::Output(name.trim().to_owned())));
    }
    let (out, rhs) = line.split_once('=').ok_or_else(syntax)?;
    let rhs = rhs.trim();
    let open = rhs.find('(').ok_or_else(syntax)?;
    let close = rhs.rfind(')').ok_or_else(syntax)?;
    if close < open {
        return Err(syntax());
    }
    let kind_token = rhs[..open].trim();
    let kind = gate_kind(kind_token).ok_or_else(|| ParseBenchError::UnknownGate {
        line: line_no,
        kind: kind_token.to_owned(),
    })?;
    let fanin: Vec<String> = rhs[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if fanin.is_empty() {
        return Err(syntax());
    }
    Ok(Some(Stmt::Gate {
        out: out.trim().to_owned(),
        kind,
        fanin,
    }))
}

/// Parses `.bench` source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate kinds,
/// undefined or redefined signals, and on circuit validation failures.
pub fn parse(src: &str) -> Result<Circuit, ParseBenchError> {
    let mut stmts = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(s) = parse_line(i + 1, line)? {
            stmts.push(s);
        }
    }

    let mut b = CircuitBuilder::new();
    let mut ids: HashMap<String, GateId> = HashMap::new();
    // Pass 1: declare inputs and (deferred) flip-flops so that forward and
    // feedback references resolve.
    for s in &stmts {
        match s {
            Stmt::Input(name) => {
                if ids.contains_key(name) {
                    return Err(ParseBenchError::Redefined(name.clone()));
                }
                ids.insert(name.clone(), b.input(name));
            }
            Stmt::Gate {
                out,
                kind: GateKind::Dff,
                ..
            } => {
                if ids.contains_key(out) {
                    return Err(ParseBenchError::Redefined(out.clone()));
                }
                ids.insert(out.clone(), b.dff_deferred(out));
            }
            _ => {}
        }
    }
    // Pass 2: logic gates, in dependency order via iterative resolution.
    // `.bench` files list gates in arbitrary order, so loop until settled.
    let mut pending: Vec<&Stmt> = stmts
        .iter()
        .filter(|s| matches!(s, Stmt::Gate { kind, .. } if *kind != GateKind::Dff))
        .collect();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|s| {
            if let Stmt::Gate { out, kind, fanin } = s {
                let resolved: Option<Vec<GateId>> =
                    fanin.iter().map(|n| ids.get(n).copied()).collect();
                if let Some(fi) = resolved {
                    ids.insert(out.clone(), b.gate(*kind, &fi, out));
                    return false;
                }
            }
            true
        });
        if pending.len() == before {
            // A fanin is genuinely undefined (or a combinational cycle via
            // undeclared names). Report the first unresolved signal.
            let missing = pending
                .first()
                .and_then(|s| match s {
                    Stmt::Gate { fanin, .. } => {
                        fanin.iter().find(|n| !ids.contains_key(*n)).cloned()
                    }
                    _ => None,
                })
                .unwrap_or_default();
            return Err(ParseBenchError::UndefinedSignal(missing));
        }
    }
    // Pass 3: connect flip-flop data inputs and outputs.
    for s in &stmts {
        match s {
            Stmt::Gate {
                out,
                kind: GateKind::Dff,
                fanin,
            } => {
                let ff = ids[out.as_str()];
                let data = *ids
                    .get(&fanin[0])
                    .ok_or_else(|| ParseBenchError::UndefinedSignal(fanin[0].clone()))?;
                b.connect_dff(ff, data)?;
            }
            Stmt::Output(name) => {
                let g = *ids
                    .get(name)
                    .ok_or_else(|| ParseBenchError::UndefinedSignal(name.clone()))?;
                b.output(g);
            }
            _ => {}
        }
    }
    Ok(b.finish()?)
}

/// Serialises a [`Circuit`] to `.bench` text. Unnamed gates receive their
/// id-derived name (`g<N>`).
pub fn to_bench(c: &Circuit) -> String {
    let name = |g: GateId| -> String {
        let n = c.name(g);
        if n.is_empty() {
            g.to_string()
        } else {
            n.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str("# generated by eea-netlist\n");
    for &i in c.inputs() {
        out.push_str(&format!("INPUT({})\n", name(i)));
    }
    for &o in c.outputs() {
        out.push_str(&format!("OUTPUT({})\n", name(o)));
    }
    for &ff in c.dffs() {
        out.push_str(&format!("{} = DFF({})\n", name(ff), name(c.fanin(ff)[0])));
    }
    for &g in c.topo_order() {
        let fanin: Vec<String> = c.fanin(g).iter().map(|&f| name(f)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            name(g),
            c.kind(g).name().to_ascii_uppercase(),
            fanin.join(", ")
        ));
    }
    out
}

/// The ISCAS-85 `c17` benchmark, the canonical smoke-test circuit of the
/// testing literature (6 NAND gates, 5 inputs, 2 outputs).
pub const C17: &str = "\
# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// A small sequential example (ISCAS-89 `s27`-like: 3 flip-flops).
pub const S27: &str = "\
# ISCAS-89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c17() {
        let c = parse(C17).expect("c17 parses");
        let s = c.stats();
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.logic_gates, 6);
        assert_eq!(s.dffs, 0);
    }

    #[test]
    fn parses_s27() {
        let c = parse(S27).expect("s27 parses");
        let s = c.stats();
        assert_eq!(s.inputs, 4);
        assert_eq!(s.dffs, 3);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        for src in [C17, S27] {
            let c = parse(src).expect("parses");
            let text = to_bench(&c);
            let c2 = parse(&text).expect("roundtrip parses");
            assert_eq!(c.stats(), c2.stats());
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse("INPUT(a)\nOUTPUT(f)\nf = FOO(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::UnknownGate { .. }));
    }

    #[test]
    fn rejects_undefined_signal() {
        let err = parse("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n").unwrap_err();
        assert_eq!(err, ParseBenchError::UndefinedSignal("ghost".into()));
    }

    #[test]
    fn rejects_redefinition() {
        let err = parse("INPUT(a)\nINPUT(a)\nOUTPUT(a)\n").unwrap_err();
        assert_eq!(err, ParseBenchError::Redefined("a".into()));
    }

    #[test]
    fn rejects_garbage() {
        let err = parse("INPUT(a)\nwhat even is this\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let src = "INPUT(a)\nOUTPUT(f)\nf = NOT(g)\ng = BUF(a)\n";
        let c = parse(src).expect("forward reference resolves");
        assert_eq!(c.stats().logic_gates, 2);
    }

    #[test]
    fn gate_names_starting_with_keywords_parse() {
        // Regression: `strip_prefix("INPUT")` used to fire on gate names
        // that merely start with INPUT/OUTPUT, rejecting valid netlists.
        let src = "\
INPUT(a)\nINPUT(b)\nOUTPUT(OUTPUTY)\n\
INPUTX = AND(a, b)\nOUTPUTY = NOT(INPUTX)\n";
        let c = parse(src).expect("keyword-prefixed gate names parse");
        assert_eq!(c.stats().inputs, 2);
        assert_eq!(c.stats().logic_gates, 2);
    }

    #[test]
    fn keyword_with_space_before_paren_parses() {
        let src = "INPUT (a)\nOUTPUT (f)\nf = NOT(a)\n";
        let c = parse(src).expect("spaced keyword form parses");
        assert_eq!(c.stats().inputs, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# header\n\nINPUT(a) # trailing\nOUTPUT(f)\nf = NOT(a)\n";
        assert!(parse(src).is_ok());
    }
}
