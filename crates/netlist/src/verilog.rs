//! Structural Verilog netlist parsing (gate-level subset).
//!
//! Accepts the flat gate-level netlists that synthesis tools emit for test
//! applications: one module, `input`/`output`/`wire` declarations, and
//! primitive gate instantiations in positional form:
//!
//! ```text
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire n1;
//!   nand g1 (n1, a, b);   // output first, like Verilog primitives
//!   not  g2 (y, n1);
//!   dff  r1 (q, d);       // sequential cells as 2-pin primitives
//! endmodule
//! ```
//!
//! This intentionally small subset covers the ISCAS-style benchmark
//! conversions commonly distributed as `.v` files; anything beyond it
//! (expressions, assigns, vectors) is rejected with a precise error.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::circuit::{BuildCircuitError, Circuit, CircuitBuilder};
use crate::gate::{GateId, GateKind};

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// Unexpected token or malformed statement.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// An unsupported primitive was instantiated.
    UnknownPrimitive {
        /// 1-based line number.
        line: usize,
        /// The primitive name.
        name: String,
    },
    /// A referenced net was never declared.
    UndeclaredNet(String),
    /// A net is driven twice.
    MultipleDrivers(String),
    /// The assembled circuit failed validation.
    Build(BuildCircuitError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ParseVerilogError::UnknownPrimitive { line, name } => {
                write!(f, "unsupported primitive {name:?} on line {line}")
            }
            ParseVerilogError::UndeclaredNet(n) => write!(f, "undeclared net {n:?}"),
            ParseVerilogError::MultipleDrivers(n) => write!(f, "net {n:?} has multiple drivers"),
            ParseVerilogError::Build(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl Error for ParseVerilogError {}

impl From<BuildCircuitError> for ParseVerilogError {
    fn from(e: BuildCircuitError) -> Self {
        ParseVerilogError::Build(e)
    }
}

fn primitive(name: &str) -> Option<GateKind> {
    match name {
        "and" => Some(GateKind::And),
        "nand" => Some(GateKind::Nand),
        "or" => Some(GateKind::Or),
        "nor" => Some(GateKind::Nor),
        "xor" => Some(GateKind::Xor),
        "xnor" => Some(GateKind::Xnor),
        "not" | "inv" => Some(GateKind::Not),
        "buf" => Some(GateKind::Buf),
        "dff" => Some(GateKind::Dff),
        _ => None,
    }
}

#[derive(Debug)]
struct Instance {
    line: usize,
    kind: GateKind,
    /// Output net followed by input nets (positional primitive style).
    pins: Vec<String>,
}

/// Strips `//` line comments and `/* */` block comments.
fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut in_block = false;
    let mut in_line = false;
    while let Some(c) = chars.next() {
        if in_block {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_block = false;
            } else if c == '\n' {
                out.push('\n');
            }
            continue;
        }
        if in_line {
            if c == '\n' {
                in_line = false;
                out.push('\n');
            }
            continue;
        }
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    in_line = true;
                    continue;
                }
                Some('*') => {
                    chars.next();
                    in_block = true;
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    out
}

/// Parses a gate-level Verilog module into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on syntax errors, unsupported constructs,
/// undeclared or multiply-driven nets, and circuit validation failures.
pub fn parse(src: &str) -> Result<Circuit, ParseVerilogError> {
    let cleaned = strip_comments(src);
    // Statements end with ';' (module header too); track line numbers by
    // counting newlines up to each statement start.
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let mut instances: Vec<Instance> = Vec::new();
    let mut saw_module = false;
    let mut saw_end = false;

    let mut line_no = 1usize;
    for raw_stmt in cleaned.split(';') {
        let start_line = line_no;
        line_no += raw_stmt.matches('\n').count();
        let stmt = raw_stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        // `endmodule` may trail the last statement without a semicolon.
        let stmt = if let Some(rest) = stmt.strip_suffix("endmodule") {
            saw_end = true;
            let rest = rest.trim();
            if rest.is_empty() {
                continue;
            }
            rest
        } else {
            stmt
        };
        let mut tokens = stmt.split_whitespace();
        let keyword = tokens.next().unwrap_or_default();
        match keyword {
            "module" => {
                saw_module = true; // port list is re-declared below; skip
            }
            "input" | "output" | "wire" => {
                let rest: String = stmt[keyword.len()..].replace(',', " ");
                let names = rest.split_whitespace().map(str::to_owned);
                match keyword {
                    "input" => inputs.extend(names),
                    "output" => outputs.extend(names),
                    _ => wires.extend(names),
                }
            }
            prim => {
                let Some(kind) = primitive(prim) else {
                    return Err(ParseVerilogError::UnknownPrimitive {
                        line: start_line,
                        name: prim.to_owned(),
                    });
                };
                // Form: <prim> <name> ( pin, pin, ... )
                let open = stmt.find('(').ok_or_else(|| ParseVerilogError::Syntax {
                    line: start_line,
                    message: "expected '(' in instantiation".into(),
                })?;
                let close = stmt.rfind(')').ok_or_else(|| ParseVerilogError::Syntax {
                    line: start_line,
                    message: "expected ')' in instantiation".into(),
                })?;
                if close < open {
                    return Err(ParseVerilogError::Syntax {
                        line: start_line,
                        message: "')' before '(' in instantiation".into(),
                    });
                }
                let pins: Vec<String> = stmt[open + 1..close]
                    .split(',')
                    .map(|p| p.trim().to_owned())
                    .filter(|p| !p.is_empty())
                    .collect();
                if pins.len() < 2 {
                    return Err(ParseVerilogError::Syntax {
                        line: start_line,
                        message: "primitive needs an output and at least one input".into(),
                    });
                }
                instances.push(Instance {
                    line: start_line,
                    kind,
                    pins,
                });
            }
        }
    }
    if !saw_module || !saw_end {
        return Err(ParseVerilogError::Syntax {
            line: 1,
            message: "expected a single module ... endmodule".into(),
        });
    }

    // Net table: declared nets; inputs are driven by the PI, everything
    // else must be driven by exactly one instance output.
    let mut declared: HashMap<String, ()> = HashMap::new();
    for n in inputs.iter().chain(&outputs).chain(&wires) {
        declared.insert(n.clone(), ());
    }
    let mut driver: HashMap<String, usize> = HashMap::new();
    for (ii, inst) in instances.iter().enumerate() {
        for pin in &inst.pins {
            if !declared.contains_key(pin) {
                return Err(ParseVerilogError::UndeclaredNet(pin.clone()));
            }
        }
        let out = &inst.pins[0];
        if inputs.contains(out) || driver.insert(out.clone(), ii).is_some() {
            return Err(ParseVerilogError::MultipleDrivers(out.clone()));
        }
    }

    // Build: PIs, then deferred DFFs, then combinational gates by
    // dependency resolution (same strategy as the .bench parser).
    let mut b = CircuitBuilder::new();
    let mut ids: HashMap<String, GateId> = HashMap::new();
    for n in &inputs {
        ids.insert(n.clone(), b.input(n));
    }
    for inst in &instances {
        if inst.kind == GateKind::Dff {
            ids.insert(inst.pins[0].clone(), b.dff_deferred(&inst.pins[0]));
        }
    }
    let mut pending: Vec<&Instance> = instances
        .iter()
        .filter(|i| i.kind != GateKind::Dff)
        .collect();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|inst| {
            let resolved: Option<Vec<GateId>> = inst.pins[1..]
                .iter()
                .map(|n| ids.get(n).copied())
                .collect();
            if let Some(fanin) = resolved {
                ids.insert(
                    inst.pins[0].clone(),
                    b.gate(inst.kind, &fanin, &inst.pins[0]),
                );
                return false;
            }
            true
        });
        if pending.len() == before {
            let inst = pending[0];
            let missing = inst.pins[1..]
                .iter()
                .find(|n| !ids.contains_key(*n))
                .cloned()
                .unwrap_or_default();
            return Err(ParseVerilogError::Syntax {
                line: inst.line,
                message: format!("unresolvable net {missing:?} (undriven or combinational loop)"),
            });
        }
    }
    for inst in &instances {
        if inst.kind == GateKind::Dff {
            let ff = ids[inst.pins[0].as_str()];
            let data = *ids
                .get(&inst.pins[1])
                .ok_or_else(|| ParseVerilogError::UndeclaredNet(inst.pins[1].clone()))?;
            b.connect_dff(ff, data)?;
        }
    }
    for out in &outputs {
        let g = *ids
            .get(out)
            .ok_or_else(|| ParseVerilogError::UndeclaredNet(out.clone()))?;
        b.output(g);
    }
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
// a tiny netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  nand g1 (n1, a, b);
  not  g2 (y, n1);
endmodule
";

    #[test]
    fn parses_small_module() {
        let c = parse(SMALL).expect("parses");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.stats().logic_gates, 2);
    }

    #[test]
    fn parses_sequential_cells() {
        let src = "\
module seq (clkless_d, q_out);
  input clkless_d;
  output q_out;
  wire q, n;
  dff r1 (q, n);
  not g1 (n, q);
  buf g2 (q_out, q);
endmodule
";
        let c = parse(src).expect("parses");
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_outputs(), 1);
        let _ = c.stats();
    }

    #[test]
    fn block_and_line_comments_stripped() {
        let src = "\
module t (a, y); /* block
   spanning lines */
  input a;  // comment
  output y;
  buf g (y, a);
endmodule
";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn rejects_unknown_primitive() {
        let src = "module t (a, y); input a; output y; mux2 g (y, a); endmodule";
        assert!(matches!(
            parse(src),
            Err(ParseVerilogError::UnknownPrimitive { .. })
        ));
    }

    #[test]
    fn rejects_undeclared_net() {
        let src = "module t (a, y); input a; output y; buf g (y, ghost); endmodule";
        assert_eq!(
            parse(src).map(|c| c.stats()).unwrap_err(),
            ParseVerilogError::UndeclaredNet("ghost".into())
        );
    }

    #[test]
    fn rejects_multiple_drivers() {
        let src = "\
module t (a, b, y);
  input a, b;
  output y;
  buf g1 (y, a);
  buf g2 (y, b);
endmodule
";
        assert_eq!(
            parse(src).map(|c| c.stats()).unwrap_err(),
            ParseVerilogError::MultipleDrivers("y".into())
        );
    }

    #[test]
    fn rejects_combinational_loop() {
        let src = "\
module t (a, y);
  input a;
  output y;
  wire n1, n2;
  and g1 (n1, a, n2);
  not g2 (n2, n1);
  buf g3 (y, n1);
endmodule
";
        assert!(matches!(parse(src), Err(ParseVerilogError::Syntax { .. })));
    }

    #[test]
    fn rejects_missing_module() {
        assert!(matches!(
            parse("input a; output y; buf g (y, a);"),
            Err(ParseVerilogError::Syntax { .. })
        ));
    }

    #[test]
    fn verilog_and_bench_agree() {
        // The same function in both formats produces equivalent circuits.
        let v = parse(SMALL).expect("verilog parses");
        let bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n";
        let b = crate::bench_format::parse(bench).expect("bench parses");
        assert_eq!(v.stats(), b.stats());
    }
}
