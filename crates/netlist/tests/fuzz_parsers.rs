//! Fuzz harness for the two netlist parsers: mutated `.bench` and Verilog
//! sources must never panic `parse()` — every input yields `Ok` or a typed
//! error (see DESIGN.md, "Error taxonomy").
//!
//! Each proptest case derives several mutants from the known-good seed
//! sources (byte flips, truncations, line shuffles, token splices, raw
//! junk) and pushes them through the parser. At the configured case counts
//! the harness exercises well over 1000 mutated inputs per run.

use eea_netlist::bench_format::{C17, S27};
use eea_netlist::{bench_format, verilog};
use proptest::prelude::*;

const VERILOG_COMB: &str = "\
module top (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire n1, n2;
  nand g1 (n1, a, b);
  nor  g2 (n2, n1, c);
  not  g3 (y, n2);
  buf  g4 (z, n1);
endmodule
";

const VERILOG_SEQ: &str = "\
module top (d, q);
  input d;
  output q;
  wire n1;
  dff r1 (n1, d);
  not g1 (q, n1);
endmodule
";

/// Deterministic xorshift64* used to derive mutation decisions from the
/// proptest-supplied seed.
struct Mutator(u64);

impl Mutator {
    fn new(seed: u64) -> Self {
        Mutator(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// One random structural mutation of `src`.
    fn mutate(&mut self, src: &str) -> String {
        let mut bytes = src.as_bytes().to_vec();
        match self.below(8) {
            // Flip a byte to printable ASCII.
            0 if !bytes.is_empty() => {
                let i = self.below(bytes.len());
                bytes[i] = 0x20 + (self.next() % 0x5f) as u8;
            }
            // Truncate mid-token.
            1 if !bytes.is_empty() => bytes.truncate(self.below(bytes.len())),
            // Delete a byte.
            2 if !bytes.is_empty() => {
                let i = self.below(bytes.len());
                bytes.remove(i);
            }
            // Duplicate a random line (redefinitions, duplicate INPUTs).
            3 => {
                let lines: Vec<&str> = src.lines().collect();
                if !lines.is_empty() {
                    let line = lines[self.below(lines.len())];
                    let mut s = src.to_string();
                    s.push_str(line);
                    s.push('\n');
                    return s;
                }
            }
            // Splice a random chunk over another position.
            4 if bytes.len() > 4 => {
                let from = self.below(bytes.len() - 2);
                let len = 1 + self.below((bytes.len() - from).min(16));
                let to = self.below(bytes.len());
                let chunk: Vec<u8> = bytes[from..from + len].to_vec();
                for (k, b) in chunk.into_iter().enumerate() {
                    if to + k < bytes.len() {
                        bytes[to + k] = b;
                    }
                }
            }
            // Insert a keyword fragment at a random position (exercises
            // prefix handling like bare `INPUT(` / `OUTPUT(` / `module`).
            5 => {
                const FRAGMENTS: &[&str] = &[
                    "INPUT(", "OUTPUT(", "= NAND(", "DFF(", ",,", "((", "))",
                    "module ", "endmodule", "wire ", "input ", "output ",
                    "nand g (", "#", "=",
                ];
                let frag = FRAGMENTS[self.below(FRAGMENTS.len())];
                let i = self.below(bytes.len() + 1);
                let mut s = Vec::with_capacity(bytes.len() + frag.len());
                s.extend_from_slice(&bytes[..i]);
                s.extend_from_slice(frag.as_bytes());
                s.extend_from_slice(&bytes[i..]);
                bytes = s;
            }
            // Swap two halves (declarations after uses, endmodule first).
            6 if bytes.len() > 2 => {
                let mid = self.below(bytes.len());
                bytes.rotate_left(mid);
            }
            // Replace with raw printable junk.
            _ => {
                let len = self.below(200);
                bytes = (0..len).map(|_| 0x20 + (self.next() % 0x5f) as u8).collect();
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// ≥ 192 cases x 4 mutants x 2 seeds = 1536 mutated `.bench` inputs,
    /// none of which may panic the parser.
    #[test]
    fn bench_parser_never_panics(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        for src in [C17, S27] {
            let mut mutant = src.to_string();
            for _ in 0..4 {
                mutant = m.mutate(&mutant);
                // Ok or typed error — the call itself must return.
                let _ = bench_format::parse(&mutant);
            }
        }
    }

    /// Same budget for the Verilog subset parser.
    #[test]
    fn verilog_parser_never_panics(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        for src in [VERILOG_COMB, VERILOG_SEQ] {
            let mut mutant = src.to_string();
            for _ in 0..4 {
                mutant = m.mutate(&mutant);
                let _ = verilog::parse(&mutant);
            }
        }
    }

    /// Cross-feed: each parser must also survive the other's grammar and
    /// pure junk without panicking.
    #[test]
    fn parsers_survive_foreign_and_junk_input(seed in any::<u64>()) {
        let mut m = Mutator::new(seed);
        let junk = m.mutate("");
        for src in [C17, VERILOG_COMB, junk.as_str(), ""] {
            let _ = bench_format::parse(src);
            let _ = verilog::parse(src);
        }
    }
}

#[test]
fn valid_seeds_still_parse() {
    bench_format::parse(C17).expect("c17 parses");
    bench_format::parse(S27).expect("s27 parses");
    verilog::parse(VERILOG_COMB).expect("combinational verilog parses");
    verilog::parse(VERILOG_SEQ).expect("sequential verilog parses");
}
