//! Reverse-order test-set compaction.
//!
//! Later ATPG patterns tend to detect many earlier-targeted faults
//! fortuitously. Simulating the test set in reverse order and keeping only
//! patterns that detect a not-yet-detected fault routinely shrinks the set
//! by 30–50 % — directly reducing the *encoded deterministic test data*
//! volume `s(b^D)` that the paper's DSE must place in gateway or ECU memory.

use eea_faultsim::{FaultUniverse, WideFaultSim, WidePatternBlock};
use eea_netlist::Circuit;

use crate::cube::TestCube;

/// Compacts `cubes` by reverse-order fault simulation against the faults in
/// `universe` (detection state in `universe` is reset first and left at the
/// compacted set's detection state). Returns the retained cubes, in their
/// original relative order.
pub fn compact_reverse_order(
    circuit: &Circuit,
    cubes: &[TestCube],
    universe: &mut FaultUniverse,
) -> Vec<TestCube> {
    universe.reset();
    compact_from_state(circuit, cubes, universe)
}

/// Like [`compact_reverse_order`] but keeps the current detection state of
/// `universe`: faults already marked detected (e.g. by pseudo-random BIST
/// patterns) do not cause cubes to be retained. This is the variant used by
/// the mixed-mode top-off flow.
pub fn compact_from_state(
    circuit: &Circuit,
    cubes: &[TestCube],
    universe: &mut FaultUniverse,
) -> Vec<TestCube> {
    // One cube per block: the narrow 1-lane word avoids paying the default
    // width for single-pattern grading.
    let mut sim = WideFaultSim::<1>::new(circuit);
    let mut keep = vec![false; cubes.len()];
    for (idx, cube) in cubes.iter().enumerate().rev() {
        let filled = cube.filled_with(|| false);
        let block = WidePatternBlock::<1>::from_patterns(circuit, &[filled]);
        if sim.detect_block(&block, universe) > 0 {
            keep[idx] = true;
        }
    }
    cubes
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(c, _)| c.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;

    #[test]
    fn duplicate_patterns_are_dropped() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut cube = TestCube::unspecified(&c);
        for i in 0..c.pattern_width() {
            cube.set(i, i % 2 == 0);
        }
        let cubes = vec![cube.clone(), cube.clone(), cube];
        let mut universe = eea_faultsim::FaultUniverse::collapsed(&c);
        let compacted = compact_reverse_order(&c, &cubes, &mut universe);
        assert_eq!(compacted.len(), 1);
    }

    #[test]
    fn compaction_preserves_coverage() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        // A handful of distinct patterns.
        let mut cubes = Vec::new();
        for k in 0..12u32 {
            let mut cube = TestCube::unspecified(&c);
            for i in 0..c.pattern_width() {
                cube.set(i, (k >> (i as u32 % 5)) & 1 == 1);
            }
            cubes.push(cube);
        }
        let mut u_before = eea_faultsim::FaultUniverse::collapsed(&c);
        let mut sim = eea_faultsim::FaultSim::new(&c);
        for cube in &cubes {
            let block = eea_faultsim::PatternBlock::from_patterns(&c, &[cube.filled_with(|| false)]);
            sim.detect_block(&block, &mut u_before);
        }
        let cov_before = u_before.coverage();

        let mut u_after = eea_faultsim::FaultUniverse::collapsed(&c);
        let compacted = compact_reverse_order(&c, &cubes, &mut u_after);
        assert!(compacted.len() <= cubes.len());
        assert!(
            (u_after.coverage() - cov_before).abs() < 1e-12,
            "compaction changed coverage: {} -> {}",
            cov_before,
            u_after.coverage()
        );
    }
}
