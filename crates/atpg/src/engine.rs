//! ATPG driver: PODEM per undetected fault with fault dropping and
//! compaction.

use eea_faultsim::{FaultUniverse, WideFaultSim, WidePatternBlock};
use eea_netlist::Circuit;


use crate::cube::TestCube;
use crate::podem::{AtpgOutcome, Podem};

/// Configuration of [`generate_tests`].
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgConfig {
    /// PODEM backtrack limit per fault; beyond it the fault is *aborted*.
    pub backtrack_limit: u64,
    /// Whether to run reverse-order compaction at the end.
    pub compact: bool,
    /// Seed for the random fill of don't-care bits.
    pub fill_seed: u64,
    /// Stop once the universe's coverage reaches this value (used by the
    /// BIST profile generator to hit 95 %/98 % targets); `None` = run to
    /// completion.
    pub stop_at_coverage: Option<f64>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 100,
            compact: true,
            fill_seed: 0xA7F6,
            stop_at_coverage: None,
        }
    }
}

/// Result of an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// Generated (possibly compacted) test cubes.
    pub cubes: Vec<TestCube>,
    /// Number of faults proven untestable (redundant).
    pub untestable: usize,
    /// Number of faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Number of detected faults.
    pub detected: usize,
    /// Total faults targeted.
    pub total_faults: usize,
    /// Sum of the *specified* (care) bits of the raw PODEM cubes before
    /// random fill — the quantity a test-data compressor must actually
    /// encode, and thus the driver of the `s(b^D)` size model in `eea-bist`.
    pub specified_care_bits: usize,
}

impl AtpgRun {
    /// Fault coverage: detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// Fault efficiency: (detected + untestable) / total. A complete ATPG
    /// run has efficiency 1.0 even when redundant faults cap coverage.
    pub fn efficiency(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            (self.detected + self.untestable) as f64 / self.total_faults as f64
        }
    }

    /// Total care bits over all cubes (input to the test-data size model).
    pub fn total_care_bits(&self) -> usize {
        self.cubes.iter().map(TestCube::care_bits).sum()
    }
}

/// Runs ATPG over the collapsed fault universe of `circuit`.
///
/// Equivalent to [`generate_tests_for`] with a fresh universe; see there for
/// details.
pub fn generate_tests(circuit: &Circuit, config: &AtpgConfig) -> AtpgRun {
    let mut universe = FaultUniverse::collapsed(circuit);
    generate_tests_for(circuit, &mut universe, config)
}

/// Runs ATPG targeting exactly the faults still undetected in `universe`
/// (already-detected faults — e.g. covered by earlier pseudo-random BIST
/// patterns — are skipped, which is precisely the mixed-mode "top-off"
/// flow).
///
/// Each generated cube is random-filled and fault-simulated so that one
/// pattern drops many faults. On return, `universe` reflects the detection
/// state of the returned test set.
pub fn generate_tests_for(
    circuit: &Circuit,
    universe: &mut FaultUniverse,
    config: &AtpgConfig,
) -> AtpgRun {
    let mut podem = Podem::new(circuit, config.backtrack_limit);
    // Grading one cube at a time: the narrow 1-lane word skips the unused
    // upper lanes of the default-width pattern block.
    let mut sim = WideFaultSim::<1>::new(circuit);
    let mut cubes: Vec<TestCube> = Vec::new();
    let mut specified_care_bits = 0usize;
    let mut untestable = 0;
    let mut aborted = 0;
    let pre_detected = universe.num_detected();
    let pre_detected_idx: Vec<usize> = (0..universe.num_faults())
        .filter(|&i| universe.is_detected(i))
        .collect();
    let mut fill_state = config.fill_seed | 1;
    let mut fill = move || {
        // xorshift64 bit stream for don't-care fill.
        fill_state ^= fill_state << 13;
        fill_state ^= fill_state >> 7;
        fill_state ^= fill_state << 17;
        fill_state & 1 == 1
    };

    for fi in 0..universe.num_faults() {
        if let Some(target) = config.stop_at_coverage {
            if universe.coverage() >= target {
                break;
            }
        }
        if universe.is_detected(fi) {
            continue;
        }
        let fault = universe.fault(fi);
        match podem.run(fault) {
            AtpgOutcome::Test(cube) => {
                specified_care_bits += cube.care_bits();
                let filled = cube.filled_with(&mut fill);
                let block =
                    WidePatternBlock::<1>::from_patterns(circuit, std::slice::from_ref(&filled));
                let newly = sim.detect_block(&block, universe);
                debug_assert!(newly > 0, "generated cube must detect its target");
                // Store the *filled* pattern: compaction and downstream BIST
                // encoding then work with the exact pattern that was graded.
                cubes.push(TestCube::from_values(
                    filled.into_iter().map(Some).collect(),
                ));
            }
            AtpgOutcome::Untestable => untestable += 1,
            AtpgOutcome::Aborted => aborted += 1,
        }
    }

    if config.compact && !cubes.is_empty() {
        // Replay compaction starting from the pre-run detection state so
        // that cubes are only kept for faults the pseudo-random phase did
        // not already cover.
        let mut replay = universe.clone();
        replay.reset();
        for &i in &pre_detected_idx {
            replay.mark_detected(i);
        }
        cubes = crate::compact::compact_from_state(circuit, &cubes, &mut replay);
        *universe = replay;
    }

    AtpgRun {
        detected: universe.num_detected() - pre_detected,
        total_faults: universe.num_faults() - pre_detected,
        cubes,
        untestable,
        aborted,
        specified_care_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::{bench_format, synthesize, SynthConfig};

    #[test]
    fn c17_full_run() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let run = generate_tests(&c, &AtpgConfig::default());
        assert_eq!(run.total_faults, 22);
        assert_eq!(run.untestable, 0);
        assert_eq!(run.aborted, 0);
        assert_eq!(run.detected, 22);
        assert!((run.coverage() - 1.0).abs() < 1e-12);
        assert!((run.efficiency() - 1.0).abs() < 1e-12);
        // c17 is testable with very few patterns.
        assert!(run.cubes.len() <= 10, "{} cubes", run.cubes.len());
    }

    #[test]
    fn s27_full_run() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let run = generate_tests(&c, &AtpgConfig::default());
        assert!((run.efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(run.detected + run.untestable, run.total_faults);
    }

    #[test]
    fn synthetic_circuit_efficiency() {
        let c = synthesize(&SynthConfig {
            gates: 200,
            inputs: 12,
            dffs: 10,
            seed: 99,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let run = generate_tests(&c, &AtpgConfig::default());
        // Every fault is detected, proven untestable, or aborted; aborted
        // faults may additionally be detected fortuitously by later cubes,
        // so the counts can overlap.
        assert!(run.detected + run.untestable <= run.total_faults);
        assert!(run.detected + run.untestable + run.aborted >= run.total_faults);
        assert!(run.coverage() > 0.8, "coverage = {}", run.coverage());
        assert!(run.efficiency() >= run.coverage());
    }

    #[test]
    fn topoff_after_partial_detection() {
        use eea_faultsim::{FaultSim, FaultUniverse, PatternBlock};
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut universe = FaultUniverse::collapsed(&c);
        // Detect some faults with one pattern first.
        let mut sim = FaultSim::new(&c);
        let block = PatternBlock::from_patterns(&c, &[vec![true; 5]]);
        let pre = sim.detect_block(&block, &mut universe);
        assert!(pre > 0);
        let run = generate_tests_for(&c, &mut universe, &AtpgConfig::default());
        assert_eq!(universe.num_detected(), universe.num_faults());
        assert_eq!(run.detected, universe.num_faults() - pre);
    }
}
