use std::fmt;

use eea_faultsim::PatternBlock;
use eea_netlist::Circuit;

/// A partially specified test pattern over the full-scan pattern sources
/// (primary inputs first, then flip-flops).
///
/// Unassigned positions are *don't-cares*; their count drives the
/// encoded-deterministic-data size model in `eea-bist` (test-data
/// compression stores roughly the care bits plus control overhead, which is
/// why Table I's data sizes shrink as more faults are covered by random
/// patterns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCube {
    values: Vec<Option<bool>>,
}

impl TestCube {
    /// An all-don't-care cube of the circuit's pattern width.
    pub fn unspecified(circuit: &Circuit) -> Self {
        TestCube {
            values: vec![None; circuit.pattern_width()],
        }
    }

    /// Builds a cube from explicit values.
    pub fn from_values(values: Vec<Option<bool>>) -> Self {
        TestCube { values }
    }

    /// Pattern width.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the cube has no positions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at source `i` (`None` = don't-care).
    #[inline]
    pub fn get(&self, i: usize) -> Option<bool> {
        self.values[i]
    }

    /// Sets source `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        self.values[i] = Some(v);
    }

    /// Clears source `i` back to don't-care.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.values[i] = None;
    }

    /// Number of specified (care) bits.
    pub fn care_bits(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Fills the don't-cares with bits drawn from `fill`, returning a fully
    /// specified bit vector. `fill` is typically an LFSR state or a seeded
    /// RNG stream; random fill gives deterministic patterns a chance to
    /// detect additional faults fortuitously.
    pub fn filled_with(&self, mut fill: impl FnMut() -> bool) -> Vec<bool> {
        self.values
            .iter()
            .map(|v| v.unwrap_or_else(&mut fill))
            .collect()
    }

    /// Whether `other` is compatible (no conflicting care bit).
    pub fn compatible(&self, other: &TestCube) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merges `other` into `self` (static compaction of compatible cubes).
    ///
    /// # Panics
    ///
    /// Panics if the cubes are incompatible or differ in width.
    pub fn merge(&mut self, other: &TestCube) {
        assert_eq!(self.len(), other.len(), "cube width mismatch");
        assert!(self.compatible(other), "merging incompatible cubes");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            if a.is_none() {
                *a = *b;
            }
        }
    }

    /// Packs fully specified versions of `cubes` (don't-cares zero-filled)
    /// into full-width pattern blocks for the fault simulator.
    pub fn pack_blocks(circuit: &Circuit, cubes: &[TestCube]) -> Vec<PatternBlock> {
        cubes
            .chunks(PatternBlock::CAPACITY)
            .map(|chunk| {
                let mut block = PatternBlock::zeroed(circuit, chunk.len());
                for (j, cube) in chunk.iter().enumerate() {
                    for (i, v) in cube.values.iter().enumerate() {
                        if let Some(true) = v {
                            block.set(i, j, true);
                        }
                    }
                }
                block
            })
            .collect()
    }
}

impl fmt::Display for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.values {
            let ch = match v {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;

    #[test]
    fn care_bits_and_display() {
        let mut c = TestCube::from_values(vec![None; 5]);
        c.set(0, true);
        c.set(3, false);
        assert_eq!(c.care_bits(), 2);
        assert_eq!(c.to_string(), "1XX0X");
        c.clear(0);
        assert_eq!(c.care_bits(), 1);
    }

    #[test]
    fn compatibility_and_merge() {
        let a = TestCube::from_values(vec![Some(true), None, Some(false)]);
        let b = TestCube::from_values(vec![None, Some(true), Some(false)]);
        let c = TestCube::from_values(vec![Some(false), None, None]);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.to_string(), "110");
    }

    #[test]
    fn filled_with_fills_only_dont_cares() {
        let c = TestCube::from_values(vec![Some(true), None, Some(false), None]);
        let filled = c.filled_with(|| true);
        assert_eq!(filled, vec![true, true, false, true]);
    }

    #[test]
    fn pack_blocks_roundtrip() {
        let circ = bench_format::parse(bench_format::C17).unwrap();
        let mut cube = TestCube::unspecified(&circ);
        cube.set(0, true);
        cube.set(4, true);
        let blocks = TestCube::pack_blocks(&circ, &[cube]);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 1);
        assert!(blocks[0].get(0, 0));
        assert!(blocks[0].get(4, 0));
        assert!(!blocks[0].get(1, 0));
    }
}
