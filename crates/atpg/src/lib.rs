// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Deterministic test-pattern generation (PODEM) and test-set compaction.
//!
//! Mixed-mode BIST (Section II of the paper) applies pseudo-random patterns
//! first and then *encoded deterministic patterns* for the remaining
//! random-resistant faults. This crate generates those deterministic
//! patterns:
//!
//! * [`Podem`] — the classic PODEM branch-and-bound algorithm over a
//!   five-valued composite algebra (implemented as separate good/faulty
//!   three-valued planes, so implication is exact),
//! * [`TestCube`] — a partially specified pattern; the number of *care bits*
//!   feeds the encoded-data size model of `eea-bist`,
//! * [`generate_tests`] — ATPG driver with fault dropping via the
//!   bit-parallel fault simulator and reverse-order compaction.
//!
//! PODEM with an exhausted search space proves *untestability*: faults it
//! rules out are redundant and excluded from the coverable set, exactly as
//! a commercial flow reports fault efficiency.
//!
//! # Example
//!
//! ```
//! use eea_netlist::bench_format;
//! use eea_atpg::{generate_tests, AtpgConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = bench_format::parse(bench_format::C17)?;
//! let run = generate_tests(&c, &AtpgConfig::default());
//! assert_eq!(run.untestable, 0);           // c17 is fully testable
//! assert!(run.coverage() > 0.999);
//! # Ok(())
//! # }
//! ```

mod compact;
mod cube;
mod engine;
mod podem;

pub use compact::compact_reverse_order;
pub use cube::TestCube;
pub use engine::{generate_tests, generate_tests_for, AtpgConfig, AtpgRun};
pub use podem::{AtpgOutcome, Podem};
