//! The PODEM (Path-Oriented DEcision Making) algorithm.
//!
//! PODEM searches the space of primary-input assignments only (not internal
//! lines), which keeps the implication step a plain forward simulation and
//! makes the search complete: if the decision tree is exhausted without a
//! test, the fault is provably untestable (redundant).

use eea_faultsim::{Fault, FaultSite};
use eea_netlist::{Circuit, GateId, GateKind};

use crate::cube::TestCube;

const X: u8 = 2;

/// Result of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A test cube detecting the fault.
    Test(TestCube),
    /// The fault is provably untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM test generator for one circuit.
///
/// Reusable across faults; buffers are allocated once.
#[derive(Debug)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    backtrack_limit: u64,
    good: Vec<u8>,
    faulty: Vec<u8>,
    /// gate id -> pattern-source index (or usize::MAX).
    source_index: Vec<usize>,
    /// observation gates: primary outputs and flip-flop drivers.
    obs_gates: Vec<GateId>,
    is_obs: Vec<bool>,
    assignment: Vec<Option<bool>>,
    xpath_seen: Vec<u32>,
    xpath_epoch: u32,
    /// SCOAP 0-/1-controllability per gate; guides the backtrace.
    cc0: Vec<u32>,
    cc1: Vec<u32>,
}

/// SCOAP controllability (CC0, CC1) per gate: the classic testability
/// measure — roughly, the number of lines that must be set to control a
/// line to 0/1.
fn scoap(circuit: &Circuit) -> (Vec<u32>, Vec<u32>) {
    let n = circuit.num_gates();
    let mut cc0 = vec![1u32; n];
    let mut cc1 = vec![1u32; n];
    let sum = |it: &mut dyn Iterator<Item = u32>| -> u32 {
        it.fold(0u32, |a, b| a.saturating_add(b)).saturating_add(1)
    };
    for &g in circuit.topo_order() {
        let i = g.index();
        let fanin = circuit.fanin(g);
        let f0 = |f: &GateId| cc0[f.index()];
        let f1 = |f: &GateId| cc1[f.index()];
        let (c0, c1) = match circuit.kind(g) {
            GateKind::And => (
                fanin.iter().map(f0).min().unwrap_or(0).saturating_add(1),
                sum(&mut fanin.iter().map(f1)),
            ),
            GateKind::Nand => (
                sum(&mut fanin.iter().map(f1)),
                fanin.iter().map(f0).min().unwrap_or(0).saturating_add(1),
            ),
            GateKind::Or => (
                sum(&mut fanin.iter().map(f0)),
                fanin.iter().map(f1).min().unwrap_or(0).saturating_add(1),
            ),
            GateKind::Nor => (
                fanin.iter().map(f1).min().unwrap_or(0).saturating_add(1),
                sum(&mut fanin.iter().map(f0)),
            ),
            GateKind::Not => (f1(&fanin[0]).saturating_add(1), f0(&fanin[0]).saturating_add(1)),
            GateKind::Buf => (f0(&fanin[0]).saturating_add(1), f1(&fanin[0]).saturating_add(1)),
            GateKind::Xor | GateKind::Xnor => {
                // Approximation for multi-input XOR: cheapest even/odd mix.
                let base: u32 = fanin
                    .iter()
                    .map(|f| f0(f).min(f1(f)))
                    .fold(0, |a, b| a.saturating_add(b));
                let spread = fanin
                    .iter()
                    .map(|f| f0(f).abs_diff(f1(f)))
                    .min()
                    .unwrap_or(0);
                let even = base.saturating_add(1);
                let odd = base.saturating_add(spread).saturating_add(1);
                if circuit.kind(g) == GateKind::Xor {
                    (even, odd)
                } else {
                    (odd, even)
                }
            }
            GateKind::Input | GateKind::Dff => (1, 1),
        };
        cc0[i] = c0;
        cc1[i] = c1;
    }
    (cc0, cc1)
}

impl<'c> Podem<'c> {
    /// Creates a generator with the given backtrack limit (per fault).
    pub fn new(circuit: &'c Circuit, backtrack_limit: u64) -> Self {
        let n = circuit.num_gates();
        let mut source_index = vec![usize::MAX; n];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            source_index[pi.index()] = i;
        }
        let npi = circuit.num_inputs();
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            source_index[ff.index()] = npi + i;
        }
        let mut is_obs = vec![false; n];
        let mut obs_gates = Vec::new();
        for &o in circuit.outputs() {
            if !is_obs[o.index()] {
                is_obs[o.index()] = true;
                obs_gates.push(o);
            }
        }
        for &ff in circuit.dffs() {
            let d = circuit.fanin(ff)[0];
            if !is_obs[d.index()] {
                is_obs[d.index()] = true;
                obs_gates.push(d);
            }
        }
        let (cc0, cc1) = scoap(circuit);
        Podem {
            circuit,
            backtrack_limit,
            good: vec![X; n],
            faulty: vec![X; n],
            source_index,
            obs_gates,
            is_obs,
            assignment: vec![None; circuit.pattern_width()],
            xpath_seen: vec![0; n],
            xpath_epoch: 0,
            cc0,
            cc1,
        }
    }

    /// Controllability cost of setting `g` to `v`.
    #[inline]
    fn cc(&self, g: GateId, v: bool) -> u32 {
        if v {
            self.cc1[g.index()]
        } else {
            self.cc0[g.index()]
        }
    }

    /// Generates a test for `fault`.
    pub fn run(&mut self, fault: Fault) -> AtpgOutcome {
        self.assignment.iter_mut().for_each(|a| *a = None);
        // Decision stack: (source index, current value, tried_both).
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks: u64 = 0;

        loop {
            self.imply(fault);
            if self.detected(fault) {
                let values: Vec<Option<bool>> = self.assignment.clone();
                return AtpgOutcome::Test(TestCube::from_values(values));
            }
            let objective = self.objective(fault);
            let next = objective.and_then(|(g, v)| self.backtrace(g, v));
            match next {
                Some((src, val)) => {
                    self.assignment[src] = Some(val);
                    decisions.push((src, val, false));
                }
                None => {
                    // Conflict or no progress possible: backtrack.
                    backtracks += 1;
                    if backtracks > self.backtrack_limit {
                        return AtpgOutcome::Aborted;
                    }
                    loop {
                        match decisions.pop() {
                            None => return AtpgOutcome::Untestable,
                            Some((src, val, tried_both)) => {
                                self.assignment[src] = None;
                                if !tried_both {
                                    self.assignment[src] = Some(!val);
                                    decisions.push((src, !val, true));
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Forward two-plane implication of the current assignment.
    fn imply(&mut self, fault: Fault) {
        let c = self.circuit;
        for g in c.gate_ids() {
            let i = g.index();
            if c.kind(g).is_combinational_source() {
                let v = match self.assignment[self.source_index[i]] {
                    Some(true) => 1,
                    Some(false) => 0,
                    None => X,
                };
                self.good[i] = v;
                self.faulty[i] = v;
            }
        }
        // Stem fault on a source line.
        if let FaultSite::Stem(g) = fault.site {
            if c.kind(g).is_combinational_source() {
                self.faulty[g.index()] = u8::from(fault.stuck_at);
            }
        }
        let mut buf_g: Vec<u8> = Vec::with_capacity(8);
        let mut buf_f: Vec<u8> = Vec::with_capacity(8);
        for &g in c.topo_order() {
            buf_g.clear();
            buf_f.clear();
            for (pin, &f) in c.fanin(g).iter().enumerate() {
                let mut fv = self.faulty[f.index()];
                if let FaultSite::Pin { gate, pin: fp } = fault.site {
                    if gate == g && fp as usize == pin {
                        fv = u8::from(fault.stuck_at);
                    }
                }
                buf_g.push(self.good[f.index()]);
                buf_f.push(fv);
            }
            let kind = c.kind(g);
            self.good[g.index()] = eval3(kind, &buf_g);
            let mut fv = eval3(kind, &buf_f);
            if let FaultSite::Stem(s) = fault.site {
                if s == g {
                    fv = u8::from(fault.stuck_at);
                }
            }
            self.faulty[g.index()] = fv;
        }
    }

    /// Whether the fault effect currently reaches an observation point.
    fn detected(&self, fault: Fault) -> bool {
        for &o in &self.obs_gates {
            let (g, f) = (self.good[o.index()], self.faulty[o.index()]);
            if g != X && f != X && g != f {
                return true;
            }
        }
        // Fault on a flip-flop data pin is observed at that pin directly.
        if let FaultSite::Pin { gate, .. } = fault.site {
            if self.circuit.kind(gate) == GateKind::Dff {
                let d = self.circuit.fanin(gate)[0];
                let g = self.good[d.index()];
                return g != X && g != u8::from(fault.stuck_at);
            }
        }
        false
    }

    /// Next objective `(gate, value)` or `None` when the current partial
    /// assignment cannot lead to a detection (triggering a backtrack).
    fn objective(&mut self, fault: Fault) -> Option<(GateId, bool)> {
        let c = self.circuit;
        // 1. Activation: the faulted line's good value must be the opposite
        //    of the stuck-at value.
        let activation_line = match fault.site {
            FaultSite::Stem(g) => g,
            FaultSite::Pin { gate, pin } => c.fanin(gate)[pin as usize],
        };
        let want = !fault.stuck_at;
        match self.good[activation_line.index()] {
            v if v == X => return Some((activation_line, want)),
            v if v == u8::from(fault.stuck_at) => return None, // activation failed
            _ => {}
        }
        // Fault is activated. If the effect vanished everywhere and nothing
        // is X any more on its paths, we are stuck; use D-frontier + X-path.
        let effect = |i: usize| -> bool {
            self.good[i] != X && self.faulty[i] != X && self.good[i] != self.faulty[i]
        };
        // Collect the D-frontier: gates with an effect on an input but an
        // undetermined output.
        let mut frontier: Vec<GateId> = Vec::new();
        let mut any_effect = false;
        for g in c.gate_ids() {
            let i = g.index();
            if c.kind(g).is_combinational_source() {
                if effect(i) {
                    any_effect = true;
                }
                continue;
            }
            if effect(i) {
                any_effect = true;
                continue;
            }
            if self.good[i] == X || self.faulty[i] == X {
                let input_effect = c.fanin(g).iter().enumerate().any(|(pin, &f)| {
                    let mut fv = self.faulty[f.index()];
                    if let FaultSite::Pin { gate, pin: fp } = fault.site {
                        if gate == g && fp as usize == pin {
                            fv = u8::from(fault.stuck_at);
                        }
                    }
                    let gv = self.good[f.index()];
                    gv != X && fv != X && gv != fv
                });
                if input_effect {
                    any_effect = true;
                    frontier.push(g);
                }
            }
        }
        if !any_effect {
            return None;
        }
        // The search may only backtrack when NO frontier gate can still
        // reach an observation point — checking a single gate would prune
        // valid branches and wrongly classify faults as untestable.
        // Prefer the lowest-level gate (cheapest to justify) among those
        // with an X-path.
        frontier.sort_by_key(|&g| c.level(g));
        for g in frontier {
            if !self.has_x_path(g) {
                continue;
            }
            // Set an X input to the non-controlling value.
            let pick = c
                .fanin(g)
                .iter()
                .find(|&&f| self.good[f.index()] == X)
                .copied();
            if let Some(f) = pick {
                let v = match c.kind(g).controlling_value() {
                    Some(ctrl) => !ctrl,
                    None => false, // XOR/XNOR: any defined value unblocks
                };
                return Some((f, v));
            }
        }
        None
    }

    /// Whether some gate with composite-X output leads from `from` to an
    /// observation point (X-path check).
    fn has_x_path(&mut self, from: GateId) -> bool {
        self.xpath_epoch += 1;
        let epoch = self.xpath_epoch;
        let c = self.circuit;
        let mut stack = vec![from];
        while let Some(g) = stack.pop() {
            if self.xpath_seen[g.index()] == epoch {
                continue;
            }
            self.xpath_seen[g.index()] = epoch;
            if self.is_obs[g.index()] {
                return true;
            }
            for &s in c.fanout(g) {
                if c.kind(s) == GateKind::Dff {
                    // The driver of a DFF is an observation gate, already
                    // covered by is_obs on `g` itself.
                    continue;
                }
                if self.good[s.index()] == X || self.faulty[s.index()] == X {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Maps an objective to a primary-input (or scan-cell) assignment by
    /// walking backwards through X-valued lines.
    fn backtrace(&self, gate: GateId, value: bool) -> Option<(usize, bool)> {
        let c = self.circuit;
        let mut g = gate;
        let mut v = value;
        loop {
            let i = g.index();
            if c.kind(g).is_combinational_source() {
                if self.good[i] != X {
                    return None; // already assigned; objective unreachable
                }
                return Some((self.source_index[i], v));
            }
            let kind = c.kind(g);
            let mut xs = c
                .fanin(g)
                .iter()
                .filter(|&&f| self.good[f.index()] == X)
                .copied();
            let first = xs.next()?;
            let (next, v_next) = match kind {
                GateKind::Not => (first, !v),
                GateKind::Buf => (first, v),
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let ctrl = kind.controlling_value()?;
                    let pre = v ^ kind.inverts();
                    if pre == ctrl {
                        // One controlling input suffices: pick the X input
                        // that is easiest to drive to the controlling value.
                        // The chain starts with `first`, so min/max over it
                        // can only be `None` if the iterator is empty —
                        // impossible, but `?` keeps the path panic-free.
                        let pick = std::iter::once(first)
                            .chain(xs)
                            .min_by_key(|&f| self.cc(f, ctrl))?;
                        (pick, ctrl)
                    } else {
                        // All inputs must be non-controlling: tackle the
                        // hardest one first so conflicts surface early.
                        let pick = std::iter::once(first)
                            .chain(xs)
                            .max_by_key(|&f| self.cc(f, !ctrl))?;
                        (pick, !ctrl)
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Assume remaining X inputs resolve to 0; required value
                    // = target corrected by inversion and defined parity.
                    let defined_parity = c
                        .fanin(g)
                        .iter()
                        .filter(|&&f| self.good[f.index()] != X)
                        .fold(false, |p, &f| p ^ (self.good[f.index()] == 1));
                    let need = v ^ (kind == GateKind::Xnor) ^ defined_parity;
                    (first, need)
                }
                // Sources were handled by the is_combinational_source()
                // early return; treat the impossible fall-through as an
                // unreachable objective rather than panicking.
                GateKind::Input | GateKind::Dff => return None,
            };
            v = v_next;
            g = next;
        }
    }
}

/// Three-valued gate evaluation (0, 1, X).
fn eval3(kind: GateKind, fanin: &[u8]) -> u8 {
    match kind {
        GateKind::And | GateKind::Nand => {
            let mut v = 1u8;
            for &f in fanin {
                if f == 0 {
                    v = 0;
                    break;
                }
                if f == X {
                    v = X;
                }
            }
            if v == X {
                X
            } else if kind == GateKind::Nand {
                v ^ 1
            } else {
                v
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut v = 0u8;
            for &f in fanin {
                if f == 1 {
                    v = 1;
                    break;
                }
                if f == X {
                    v = X;
                }
            }
            if v == X {
                X
            } else if kind == GateKind::Nor {
                v ^ 1
            } else {
                v
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut v = 0u8;
            for &f in fanin {
                if f == X {
                    return X;
                }
                v ^= f;
            }
            if kind == GateKind::Xnor {
                v ^ 1
            } else {
                v
            }
        }
        GateKind::Not => match fanin.first().copied().unwrap_or(X) {
            X => X,
            v => v ^ 1,
        },
        GateKind::Buf => fanin.first().copied().unwrap_or(X),
        // Sources are never evaluated (the simulator seeds them); answer X
        // conservatively instead of panicking if one slips through.
        GateKind::Input | GateKind::Dff => X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_faultsim::{FaultSim, FaultUniverse, PatternBlock};
    use eea_netlist::{bench_format, CircuitBuilder};

    #[test]
    fn eval3_truth_tables() {
        assert_eq!(eval3(GateKind::And, &[1, 1]), 1);
        assert_eq!(eval3(GateKind::And, &[0, X]), 0);
        assert_eq!(eval3(GateKind::And, &[1, X]), X);
        assert_eq!(eval3(GateKind::Nor, &[0, 0]), 1);
        assert_eq!(eval3(GateKind::Nor, &[X, 1]), 0);
        assert_eq!(eval3(GateKind::Xor, &[1, X]), X);
        assert_eq!(eval3(GateKind::Xnor, &[1, 1]), 1);
        assert_eq!(eval3(GateKind::Not, &[X]), X);
    }

    #[test]
    fn c17_all_faults_testable() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let universe = FaultUniverse::collapsed(&c);
        let mut podem = Podem::new(&c, 10_000);
        let mut sim = FaultSim::new(&c);
        for fi in 0..universe.num_faults() {
            let fault = universe.fault(fi);
            match podem.run(fault) {
                AtpgOutcome::Test(cube) => {
                    // Verify with the fault simulator.
                    let filled = cube.filled_with(|| false);
                    let block = PatternBlock::from_patterns(&c, &[filled]);
                    sim.run_good(&block);
                    assert!(
                        sim.detect_mask(fault, &block, false).any(),
                        "cube {cube} does not detect {fault}"
                    );
                }
                other => panic!("{fault}: expected test, got {other:?}"),
            }
        }
    }

    #[test]
    fn redundant_fault_proven_untestable() {
        // y = OR(a, AND(a, b)): the AND gate is redundant (absorption), so
        // AND-output stuck-at-0 is untestable.
        let mut bld = CircuitBuilder::new();
        let a = bld.input("a");
        let b = bld.input("b");
        let m = bld.gate(GateKind::And, &[a, b], "m");
        let y = bld.gate(GateKind::Or, &[a, m], "y");
        bld.output(y);
        let c = bld.finish().unwrap();
        let mut podem = Podem::new(&c, 10_000);
        let fault = Fault::sa0(FaultSite::Stem(m));
        assert_eq!(podem.run(fault), AtpgOutcome::Untestable);
        // The OR output itself is testable.
        assert!(matches!(
            podem.run(Fault::sa0(FaultSite::Stem(y))),
            AtpgOutcome::Test(_)
        ));
    }

    #[test]
    fn sequential_circuit_scan_faults() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let universe = FaultUniverse::collapsed(&c);
        let mut podem = Podem::new(&c, 50_000);
        let mut sim = FaultSim::new(&c);
        let mut tested = 0;
        for fi in 0..universe.num_faults() {
            let fault = universe.fault(fi);
            if let AtpgOutcome::Test(cube) = podem.run(fault) {
                let filled = cube.filled_with(|| false);
                let block = PatternBlock::from_patterns(&c, &[filled]);
                sim.run_good(&block);
                assert!(sim.detect_mask(fault, &block, false).any());
                tested += 1;
            }
        }
        // s27 in full scan is fully testable.
        assert_eq!(tested, universe.num_faults());
    }

    #[test]
    fn aborted_with_tiny_limit() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let universe = FaultUniverse::collapsed(&c);
        let mut podem = Podem::new(&c, 0);
        // With a zero backtrack budget some fault must abort (any fault that
        // needs at least one backtrack).
        let mut aborted = 0;
        for fi in 0..universe.num_faults() {
            if podem.run(universe.fault(fi)) == AtpgOutcome::Aborted {
                aborted += 1;
            }
        }
        // Not asserting a specific count — just that the limit is honoured
        // and nothing panics.
        let _ = aborted;
    }
}
