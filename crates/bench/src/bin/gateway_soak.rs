//! Sustained-arrival soak of the streaming gateway ingest service
//! (DESIGN.md §12).
//!
//! Where `fleet_campaign` measures the one-shot pipeline, this binary
//! drives the long-lived [`eea_fleet::GatewayService`]: every vehicle of
//! an `EEA_SOAK_SCALE`-sized fleet (default 100k/1M/10M) arrives one by
//! one through the bounded ingest queue, periodic mid-campaign snapshots
//! are taken *while arrivals keep coming* (their `detected` counts must
//! be monotone), and the final horizon snapshot closes the point. Per
//! scale the entry records the sustained ingest throughput
//! (`arrivals_per_s`), the snapshot latencies, the service counters
//! (`shed`, `duplicates`, `truncated_uploads`) and the process
//! `peak_rss_kb` — the memory-bound evidence: service state scales with
//! *uploads* (defective vehicles), not with the fleet.
//!
//! Two policy checks ride along:
//! - a **shed probe**: a deliberately tiny queue (capacity 256) offered
//!   512 arrivals with no drain must shed exactly the overflow through
//!   the typed [`FleetError::Overloaded`](eea_fleet::FleetError) path and
//!   account every shed arrival in the snapshot counters;
//! - a **bit-identity replay** at the smallest scale: the same arrival
//!   set re-ingested under different shard/thread/queue settings must
//!   produce an identical final snapshot (`snapshot_bit_identical`).
//!
//! Results merge into `BENCH_fleet.json` under a `"gateway_soak"` key,
//! preserving whatever `fleet_campaign` wrote there; run standalone it
//! writes a fresh file with just the soak section.
//!
//! ```text
//! cargo run -p eea-bench --bin gateway_soak --release
//! EEA_SOAK_SCALE=50000 cargo run -p eea-bench --bin gateway_soak --release
//! EEA_SOAK_QUEUE=1024 cargo run -p eea-bench --bin gateway_soak --release
//! EEA_OUT_DIR=target/exp cargo run -p eea-bench --bin gateway_soak --release
//! ```

use std::time::Instant;

use eea_bench::{env_u64, env_u64_list, env_usize, out_path, peak_rss_kb};
use eea_dse::EeaError;
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    GatewayConfig, GatewayService, GatewaySnapshot, TransportKind, VehicleBlueprint,
    DEFAULT_QUEUE_CAPACITY,
};
use eea_model::ResourceId;

/// Default `EEA_SOAK_SCALE` points: 100k, 1M, 10M vehicles.
const SCALE_SWEEP: [u64; 3] = [100_000, 1_000_000, 10_000_000];

/// Mid-campaign snapshots taken per scale point while arrivals continue.
const MID_SNAPSHOTS: usize = 8;

/// The ingest queue capacity: `EEA_SOAK_QUEUE` (floored at 1) over the
/// service default. One resolver for both the sweep *and* the shed probe
/// — the probe historically pinned its own 256-entry queue and silently
/// ignored the env knob.
fn soak_queue_capacity() -> usize {
    env_usize("EEA_SOAK_QUEUE", DEFAULT_QUEUE_CAPACITY).max(1)
}

/// The hand-built blueprint trio shared with the determinism and frozen
/// gateway tests: one all-local fast implementation, one
/// gateway-streaming, one with a never-runnable session.
fn blueprints() -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
    ]
}

fn campaign_config(vehicles: u32, seed: u64) -> CampaignConfig {
    CampaignConfig {
        vehicles,
        seed,
        threads: 0,
        ..CampaignConfig::default()
    }
}

/// The overload shed policy, exercised end to end: offer twice
/// `queue_capacity` arrivals to the configured queue with no drain in
/// between. Every rejection must be the typed `Overloaded` error, the
/// shed counter must match, and the snapshot must account
/// `ingested + shed == offered`. The probe honors `EEA_SOAK_QUEUE` like
/// the sweep does — the overflow asserted is always exactly the
/// capacity, whatever the knob says.
fn shed_probe(
    cut: &CutModel,
    bp: &[VehicleBlueprint],
    seed: u64,
    queue_capacity: usize,
) -> Result<String, EeaError> {
    let probe_offered = u32::try_from(queue_capacity * 2).unwrap_or(u32::MAX);
    let campaign = Campaign::new(cut, bp, campaign_config(probe_offered, seed))?;
    let horizon_s = campaign.config().horizon_s;
    let mut svc = GatewayService::new(
        cut,
        GatewayConfig {
            vehicles: probe_offered,
            horizon_s,
            queue_capacity,
            ..GatewayConfig::default()
        },
    )?;
    let mut offered = 0u64;
    let mut rejected = 0u64;
    for arrival in campaign.arrivals() {
        offered += 1;
        if svc.ingest(arrival).is_err() {
            rejected += 1;
        }
    }
    assert_eq!(
        svc.shed(),
        rejected,
        "every Overloaded rejection is counted as shed"
    );
    let snap = svc.snapshot_at(horizon_s);
    assert_eq!(
        snap.ingested + snap.shed,
        offered,
        "shed accounting covers every offered arrival"
    );
    assert_eq!(
        snap.shed,
        u64::from(probe_offered) - queue_capacity as u64,
        "a full queue with no drain sheds exactly the overflow"
    );
    eprintln!(
        "[shed probe] queue {queue_capacity}, offered {offered}: \
ingested {}, shed {} (typed Overloaded), detected {}",
        snap.ingested, snap.shed, snap.report.detected
    );
    Ok(format!(
        "\"shed_probe\": {{\"queue_capacity\": {queue_capacity}, \"offered\": {offered}, \
\"ingested\": {}, \"shed\": {}, \"accounted\": true}}",
        snap.ingested, snap.shed
    ))
}

/// Re-ingests the full arrival set of `campaign` under deliberately
/// different service settings and compares the final snapshot against
/// `reference` — the 100k-vehicle instantiation of the determinism
/// proptests, run at the smallest sweep scale only.
fn replay_bit_identical(
    cut: &CutModel,
    campaign: &Campaign,
    reference: &GatewaySnapshot,
) -> Result<bool, EeaError> {
    let cfg = campaign.config();
    let mut svc = GatewayService::new(
        cut,
        GatewayConfig {
            vehicles: cfg.vehicles,
            horizon_s: cfg.horizon_s,
            batch_size: cfg.batch_size,
            queue_capacity: 64,
            shards: 7,
            threads: 3,
        },
    )?;
    for arrival in campaign.arrivals() {
        svc.accept(arrival)?;
    }
    Ok(&svc.snapshot_at(cfg.horizon_s) == reference)
}

fn main() -> Result<(), EeaError> {
    let seed = env_u64("EEA_SEED", 2014);
    let queue_capacity = soak_queue_capacity();
    let mut scales = env_u64_list("EEA_SOAK_SCALE", &SCALE_SWEEP);
    // Ascending order: the RSS high-water mark is monotone over the
    // process lifetime, so each sample then reflects its own campaign.
    scales.sort_unstable();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "machine: {cores} core(s); ingest queue capacity {queue_capacity}; \
scales {scales:?}"
    );

    // The small shared substrate of the determinism/frozen-gateway tests:
    // the soak measures the *service*, not gate-level simulation, so the
    // CUT stays deliberately cheap.
    let cut = CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })?;
    let bp = blueprints();

    let probe_json = shed_probe(&cut, &bp, seed, queue_capacity)?;

    let mut entries = Vec::new();
    for &fleet in &scales {
        let campaign = Campaign::new(&cut, &bp, campaign_config(fleet as u32, seed))?;
        let horizon_s = campaign.config().horizon_s;
        let mut svc = GatewayService::new(
            &cut,
            GatewayConfig {
                vehicles: fleet as u32,
                horizon_s,
                batch_size: campaign.config().batch_size,
                queue_capacity,
                shards: 0,
                threads: 0,
            },
        )?;

        // Sustained ingest with periodic snapshots-under-load: every
        // n/MID_SNAPSHOTS arrivals, snapshot at the proportional campaign
        // time. Ingest and snapshot time are accounted separately so
        // arrivals_per_s measures the ingest path alone.
        let stride = (fleet as usize / MID_SNAPSHOTS).max(1);
        let mut mid_s = 0.0f64;
        let mut mids = 0usize;
        let mut prev_detected = 0u64;
        let start = Instant::now();
        for (i, arrival) in campaign.arrivals().enumerate() {
            svc.accept(arrival)?;
            if (i + 1) % stride == 0 && mids + 1 < MID_SNAPSHOTS {
                let at_s = horizon_s * (i + 1) as f64 / fleet as f64;
                let t0 = Instant::now();
                let snap = svc.snapshot_at(at_s);
                mid_s += t0.elapsed().as_secs_f64();
                mids += 1;
                assert!(
                    snap.report.detected >= prev_detected,
                    "snapshots-under-load are monotone in (ingested, t)"
                );
                prev_detected = snap.report.detected;
            }
        }
        let ingest_s = start.elapsed().as_secs_f64() - mid_s;

        let t0 = Instant::now();
        let (fin, stages) = svc.snapshot_at_timed(horizon_s);
        let snapshot_s = t0.elapsed().as_secs_f64();
        assert!(fin.report.detected >= prev_detected);
        assert_eq!(fin.ingested, fleet, "the trusted accept path never sheds");
        assert_eq!(fin.shed, 0);
        assert_eq!(fin.duplicates, 0);

        // Cross-settings replay at the smallest scale: one extra full
        // pass, cheap at 100k, pointless at 10M.
        let bit_identical = if fleet == scales[0] {
            let ok = replay_bit_identical(&cut, &campaign, &fin)?;
            assert!(
                ok,
                "final snapshot diverged across shard/thread/queue settings"
            );
            Some(ok)
        } else {
            None
        };

        let rss = peak_rss_kb();
        let arrivals_per_s = fleet as f64 / ingest_s;
        eprintln!(
            "[soak {fleet}] ingest {ingest_s:.3} s ({arrivals_per_s:.0} arrivals/s), \
{mids} mid snapshots ({mid_s:.3} s), final snapshot {snapshot_s:.3} s \
(diagnose {:.3} s), detected {}, truncated {}, peak RSS {} KiB",
            stages.diagnose_s,
            fin.report.detected,
            fin.truncated_uploads,
            rss.map_or_else(|| "?".into(), |kb| kb.to_string()),
        );
        entries.push(format!(
            "      {{\"vehicles\": {fleet}, \"queue_capacity\": {queue_capacity}, \
\"machine_cores\": {cores}, \"ingest_s\": {ingest_s:.6}, \
\"arrivals_per_s\": {arrivals_per_s:.2}, \"snapshots\": {}, \
\"mid_snapshot_s_total\": {mid_s:.6}, \"snapshot_s\": {snapshot_s:.6}, \
\"detected\": {}, \"uploads_ingested\": {}, \"shed\": {}, \"duplicates\": {}, \
\"truncated_uploads\": {}, \"peak_rss_kb\": {}, \"snapshot_bit_identical\": {}}}",
            mids + 1,
            fin.report.detected,
            fin.uploads_ingested,
            fin.shed,
            fin.duplicates,
            fin.truncated_uploads,
            rss.map_or_else(|| "null".into(), |kb| kb.to_string()),
            bit_identical.map_or_else(|| "null".into(), |b| b.to_string()),
        ));
    }

    let section = format!(
        "\"gateway_soak\": {{\n    {probe_json},\n    \"sweep\": [\n{}\n    ]\n  }}",
        entries.join(",\n")
    );
    let path = out_path("BENCH_fleet.json");
    let json = merge_section(std::fs::read_to_string(&path).ok().as_deref(), &section);
    println!("{json}");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}

/// Splices the `"gateway_soak"` section into an existing
/// `BENCH_fleet.json` (replacing a previous soak section when re-run),
/// or produces a standalone document when the file is absent or not the
/// expected shape. Plain string surgery — the workspace has no JSON
/// dependency by design.
fn merge_section(existing: Option<&str>, section: &str) -> String {
    let fallback = || format!("{{\n  {section}\n}}\n");
    let Some(existing) = existing else {
        return fallback();
    };
    // Re-run: the previous merge appended the soak section last, right
    // before the document's closing brace — truncating at its key leaves
    // the rest of the document intact and already brace-less.
    if let Some(at) = existing.find(",\n  \"gateway_soak\"") {
        let body = existing[..at].trim_end();
        return format!("{body},\n  {section}\n}}\n");
    }
    // First run: peel the document's closing brace.
    let Some(end) = existing.rfind('}') else {
        return fallback();
    };
    let body = existing[..end].trim_end();
    if body.is_empty() || !body.starts_with('{') {
        return fallback();
    }
    format!("{body},\n  {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::{merge_section, soak_queue_capacity};
    use eea_fleet::DEFAULT_QUEUE_CAPACITY;

    #[test]
    fn soak_queue_env_parses_with_floor_and_fallback() {
        // The one knob the shed probe historically ignored: valid values
        // pass through, zero floors at 1 (a zero-capacity queue can never
        // ingest), garbage falls back to the service default.
        std::env::remove_var("EEA_SOAK_QUEUE");
        assert_eq!(soak_queue_capacity(), DEFAULT_QUEUE_CAPACITY.max(1));
        std::env::set_var("EEA_SOAK_QUEUE", "1024");
        assert_eq!(soak_queue_capacity(), 1024);
        std::env::set_var("EEA_SOAK_QUEUE", "0");
        assert_eq!(soak_queue_capacity(), 1);
        std::env::set_var("EEA_SOAK_QUEUE", "not-a-number");
        assert_eq!(soak_queue_capacity(), DEFAULT_QUEUE_CAPACITY.max(1));
        std::env::remove_var("EEA_SOAK_QUEUE");
    }

    #[test]
    fn merges_and_remerges() {
        let fresh = merge_section(None, "\"gateway_soak\": {\"x\": 1}");
        assert_eq!(fresh, "{\n  \"gateway_soak\": {\"x\": 1}\n}\n");
        let doc = "{\n  \"transports\": [\n    {}\n  ]\n}\n";
        let merged = merge_section(Some(doc), "\"gateway_soak\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"gateway_soak\": {\"x\": 1}\n}\n"
        );
        let remerged = merge_section(Some(&merged), "\"gateway_soak\": {\"x\": 2}");
        assert_eq!(
            remerged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"gateway_soak\": {\"x\": 2}\n}\n"
        );
        assert_eq!(
            merge_section(Some("garbage"), "\"gateway_soak\": {}"),
            "{\n  \"gateway_soak\": {}\n}\n"
        );
    }
}
