//! Regenerates the **§IV-B headline numbers**:
//!
//! * evaluations per second (paper: 100,000 evaluations in ~29 min on an
//!   8-core i7),
//! * size of the non-dominated set (paper: 176),
//! * best test quality within +3.7 % of the cost of a design without
//!   structural tests (paper: 80.7 %).
//!
//! ```text
//! cargo run -p eea-bench --bin headline --release
//! EEA_EVALS=100000 cargo run -p eea-bench --bin headline --release
//! ```

use eea_bench::{env_u64, env_usize, run_case_study_exploration};
use eea_dse::explore::baseline_cost;
use eea_dse::{headline_with_budget, EeaError};
use eea_model::paper_case_study;

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 10_000);
    let seed = env_u64("EEA_SEED", 2014);
    // 0 = one worker per CPU; the EEA_THREADS environment variable overrides.
    let (_case, _diag, result) = run_case_study_exploration(evaluations, seed, 0)?;

    println!("== throughput ==");
    println!(
        "measured: {} evaluations in {:.1} s = {:.0} evals/s ({} worker thread{})",
        result.evaluations,
        result.duration_s,
        result.evals_per_second(),
        result.threads,
        if result.threads == 1 { "" } else { "s" }
    );
    println!("paper:    100,000 evaluations in ~29 min = ~57 evals/s (8 cores)");

    println!("\n== non-dominated set ==");
    println!("measured: {} implementations", result.front.len());
    println!("paper:    176 implementations (151 plotted in Fig. 5)");

    println!("\n== quality within a +3.7 % cost budget ==");
    let case = paper_case_study();
    let base = baseline_cost(&case, 3_000, seed ^ 0xBA5E, 0)?;
    println!("baseline (cheapest design without structural tests): {base:.1}");
    for factor in [1.01, 1.037, 1.10] {
        match headline_with_budget(&result.front, Some(base), factor) {
            Some(hl) => println!(
                "budget +{:>4.1} %: best quality {:>6.2} % at actual +{:.2} %",
                (factor - 1.0) * 100.0,
                hl.best_quality_pct_in_budget,
                hl.extra_cost_pct
            ),
            None => println!(
                "budget +{:>4.1} %: no implementation fits",
                (factor - 1.0) * 100.0
            ),
        }
    }
    println!("paper:    80.7 % test quality at < +3.7 %");
    Ok(())
}
