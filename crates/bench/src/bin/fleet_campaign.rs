//! Fleet-scale diagnosis campaign throughput sweep across transport
//! backends.
//!
//! Builds the shared CUT model, explores **one** case-study front, then
//! decodes it into vehicle blueprints once per `EEA_TRANSPORTS` backend
//! (default: classic mirrored CAN, CAN FD, and FlexRay) and runs the same
//! campaign at 1/2/4/8 worker threads per backend. Within each backend the
//! [`eea_fleet::FleetReport`] is asserted **bit-identical across the
//! sweep** before any timing is reported; timings and the per-backend
//! detection-latency percentiles land in `BENCH_fleet.json` (one entry per
//! transport, tagged with its `"transport"` label), so a single run yields
//! the classic-vs-FD-vs-FlexRay latency comparison.
//!
//! ```text
//! cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_FLEET_VEHICLES=10000 cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_TRANSPORTS=classic-can cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_OUT_DIR=target/exp cargo run -p eea-bench --bin fleet_campaign --release
//! ```
//!
//! Note: setting `EEA_THREADS` pins *every* sweep point to that worker
//! count (the workspace-wide override wins over the sweep).

use std::time::Instant;

use eea_bench::{env_transports, env_u64, env_usize, out_path, run_case_study_exploration};
use eea_dse::EeaError;
use eea_fleet::{
    blueprints_from_front_with, Campaign, CampaignConfig, CutConfig, CutModel, FleetReport,
    TransportConfig, TransportKind,
};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct SweepPoint {
    threads: usize,
    seconds: f64,
    vehicles_per_s: f64,
    sessions_per_s: f64,
}

fn json_report(report: &FleetReport) -> String {
    format!(
        "\"campaign\": {{\"vehicles\": {}, \"defective\": {}, \"detected\": {}, \"localized\": {}, \
\"sessions_completed\": {}, \"batches\": {}, \"detection_rate\": {:.4}, \"localization_rate\": {:.4}, \
\"latency_p50_s\": {:.1}, \"latency_p90_s\": {:.1}, \"latency_p99_s\": {:.1}}}",
        report.vehicles,
        report.defective,
        report.detected,
        report.localized,
        report.sessions_completed,
        report.batches,
        report.detection_rate(),
        report.localization_rate(),
        report.latency.p50_s,
        report.latency.p90_s,
        report.latency.p99_s,
    )
}

fn main() -> Result<(), EeaError> {
    let vehicles = env_usize("EEA_FLEET_VEHICLES", 100_000) as u32;
    let evaluations = env_usize("EEA_FLEET_EVALS", 2_000);
    let seed = env_u64("EEA_SEED", 2014);
    let transports = env_transports(&TransportKind::ALL);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("machine: {cores} core(s) available");

    eprintln!("building CUT model (golden session + per-fault fail data)...");
    let cut = CutModel::build(CutConfig::default())?;
    eprintln!(
        "  {} collapsed faults, {} session-detectable ({:.1} % coverage)",
        cut.num_faults(),
        cut.detectable_faults().len(),
        cut.coverage() * 100.0
    );

    // One exploration front; each backend re-prices the same
    // implementations, which is exactly the comparison the JSON reports.
    eprintln!("exploring a {evaluations}-evaluation front for the blueprint decode...");
    let (_case, diag, result) = run_case_study_exploration(evaluations, seed, 0)?;

    let config = CampaignConfig {
        vehicles,
        seed,
        ..CampaignConfig::default()
    };
    eprintln!(
        "campaign: {vehicles} vehicles, {:.0} % defective, {:.0}-day horizon\n",
        config.defect_fraction * 100.0,
        config.horizon_s / 86_400.0
    );

    let mut entries = Vec::new();
    for &kind in &transports {
        let transport = TransportConfig::for_kind(kind);
        let blueprints = blueprints_from_front_with(&diag, &result.front, &transport)?;
        let capable = blueprints.iter().filter(|b| b.is_campaign_capable()).count();
        eprintln!(
            "[{kind}] {} blueprints, {} campaign-capable",
            blueprints.len(),
            capable
        );

        let mut points = Vec::new();
        let mut reference: Option<FleetReport> = None;
        for &threads in &THREAD_SWEEP {
            let cfg = CampaignConfig {
                threads,
                ..config.clone()
            };
            let campaign = Campaign::new(&cut, &blueprints, cfg)?;
            let start = Instant::now();
            let report = campaign.run();
            let seconds = start.elapsed().as_secs_f64();
            eprintln!(
                "[{kind}] threads={threads}: {vehicles} vehicles in {seconds:.3} s \
({:.0} vehicles/s, {} sessions)",
                f64::from(vehicles) / seconds,
                report.sessions_completed
            );
            points.push(SweepPoint {
                threads,
                seconds,
                vehicles_per_s: f64::from(vehicles) / seconds,
                sessions_per_s: report.sessions_completed as f64 / seconds,
            });
            match &reference {
                None => reference = Some(report),
                Some(r) => assert!(
                    *r == report,
                    "fleet report diverged at {threads} threads on {kind} — determinism broken"
                ),
            }
        }
        // The sweep always has at least one point; keep the binary
        // panic-lean anyway.
        let Some(report) = reference else {
            continue;
        };

        eprintln!(
            "[{kind}] {} defective vehicles, {} detected ({:.1} %), {} localized ({:.1} %), \
p50 latency {:.1} h\n",
            report.defective,
            report.detected,
            report.detection_rate() * 100.0,
            report.localized,
            report.localization_rate() * 100.0,
            report.latency.p50_s / 3_600.0
        );

        let base = points[0].seconds;
        let sweep: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "        {{\"threads\": {}, \"seconds\": {:.6}, \"vehicles_per_s\": {:.2}, \
\"sessions_per_s\": {:.2}, \"speedup_vs_1_thread\": {:.3}}}",
                    p.threads,
                    p.seconds,
                    p.vehicles_per_s,
                    p.sessions_per_s,
                    base / p.seconds
                )
            })
            .collect();
        entries.push(format!(
            "    {{\n      \"transport\": \"{}\",\n      \"bit_identical_across_sweep\": true,\n      {},\n      \"sweep\": [\n{}\n      ]\n    }}",
            kind.label(),
            json_report(&report),
            sweep.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"machine_cores\": {cores},\n  \"transports\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    println!("{json}");
    let path = out_path("BENCH_fleet.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}
