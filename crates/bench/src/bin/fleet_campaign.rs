//! Fleet-scale diagnosis campaign throughput sweep across transport
//! backends.
//!
//! Builds the shared CUT model, explores **one** case-study front, then
//! decodes it into vehicle blueprints once per `EEA_TRANSPORTS` backend
//! (default: classic mirrored CAN, CAN FD, and FlexRay) and runs the same
//! campaign at 1/2/4/8 worker threads per backend. Within each backend the
//! [`eea_fleet::FleetReport`] is asserted **bit-identical across the
//! sweep** before any timing is reported; timings and the per-backend
//! detection-latency percentiles land in `BENCH_fleet.json` (one entry per
//! transport, tagged with its `"transport"` label), so a single run yields
//! the classic-vs-FD-vs-FlexRay latency comparison.
//!
//! A second, `EEA_FLEET_SCALE`-driven sweep (default 100k/1M/10M vehicles)
//! exercises the streaming sharded aggregation (DESIGN.md §10) at scale on
//! the first selected backend, recording per-stage timings
//! (simulate/merge/diagnose/fold) and the process peak RSS per point.
//!
//! ```text
//! cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_FLEET_VEHICLES=10000 cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_TRANSPORTS=classic-can cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_FLEET_SCALE=100000 cargo run -p eea-bench --bin fleet_campaign --release
//! EEA_OUT_DIR=target/exp cargo run -p eea-bench --bin fleet_campaign --release
//! ```
//!
//! Note: setting `EEA_THREADS` pins *every* sweep point to that worker
//! count (the workspace-wide override wins over the sweep).

use std::time::Instant;

use eea_bench::{
    env_scale_sweep, env_transports, env_u64, env_usize, out_path, peak_rss_kb,
    run_case_study_exploration,
};
use eea_dse::EeaError;
use eea_fleet::{
    blueprints_from_front_with, Campaign, CampaignConfig, CutConfig, CutModel, FleetReport,
    TransportConfig, TransportKind,
};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Default `EEA_FLEET_SCALE` points: 100k, 1M, 10M vehicles.
const SCALE_SWEEP: [u64; 3] = [100_000, 1_000_000, 10_000_000];

/// Minimum best-case parallel speedup the thread sweep must show on a
/// multi-core machine with a fleet large enough to amortize spawn
/// overhead. Deliberately lax — the gate catches "parallelism broke
/// entirely", not scheduler noise.
const MIN_SPEEDUP: f64 = 1.05;
const SPEEDUP_MIN_VEHICLES: u32 = 50_000;

struct SweepPoint {
    threads: usize,
    seconds: f64,
    vehicles_per_s: f64,
    sessions_per_s: f64,
}

fn json_report(report: &FleetReport) -> String {
    format!(
        "\"campaign\": {{\"vehicles\": {}, \"defective\": {}, \"detected\": {}, \"localized\": {}, \
\"sessions_completed\": {}, \"batches\": {}, \"detection_rate\": {:.4}, \"localization_rate\": {:.4}, \
\"latency_p50_s\": {:.1}, \"latency_p90_s\": {:.1}, \"latency_p99_s\": {:.1}}}",
        report.vehicles,
        report.defective,
        report.detected,
        report.localized,
        report.sessions_completed,
        report.batches,
        report.detection_rate(),
        report.localization_rate(),
        report.latency.p50_s,
        report.latency.p90_s,
        report.latency.p99_s,
    )
}

fn main() -> Result<(), EeaError> {
    let vehicles = env_usize("EEA_FLEET_VEHICLES", 100_000) as u32;
    let evaluations = env_usize("EEA_FLEET_EVALS", 2_000);
    let seed = env_u64("EEA_SEED", 2014);
    let transports = env_transports(&TransportKind::ALL);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Pattern-word geometry of the simulation substrate that produced the
    // CUT model — recorded alongside machine_cores in every entry so that
    // timing entries from different word widths are never compared as if
    // like-for-like.
    let word_bits = eea_faultsim::PatternBlock::CAPACITY;
    let lanes = eea_faultsim::DEFAULT_LANES;
    eprintln!("machine: {cores} core(s) available, {word_bits}-bit pattern word ({lanes} lanes)");

    eprintln!("building CUT model (golden session + per-fault fail data)...");
    let cut = CutModel::build(CutConfig::default())?;
    eprintln!(
        "  {} collapsed faults, {} session-detectable ({:.1} % coverage)",
        cut.num_faults(),
        cut.detectable_faults().len(),
        cut.coverage() * 100.0
    );

    // Dictionary-build microbenchmark on the same substrate: the one-pass
    // wide-word sweep vs the historical per-fault session replay, with
    // the tables asserted equal before the ratio is trusted.
    let (dict_serial_s, dict_one_pass_s) = {
        let cfg = cut.config();
        let chains = eea_netlist::ScanChains::balanced(cut.circuit(), cfg.chains)
            .map_err(eea_fleet::FleetError::from)?;
        let t = Instant::now();
        let serial = eea_bist::SessionTable::build_serial_replay(
            cut.circuit(),
            &chains,
            cfg.lfsr_seed,
            cfg.window,
            cfg.patterns,
        );
        let serial_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let one_pass = eea_bist::SessionTable::build(
            cut.circuit(),
            &chains,
            cfg.lfsr_seed,
            cfg.window,
            cfg.patterns,
            cfg.threads,
        );
        let one_pass_s = t.elapsed().as_secs_f64();
        for i in 0..serial.num_faults() {
            assert_eq!(
                serial.fail_data(i),
                one_pass.fail_data(i),
                "one-pass dictionary diverged from serial replay at fault {i}"
            );
            assert_eq!(serial.detect_windows(i), one_pass.detect_windows(i));
        }
        (serial_s, one_pass_s)
    };
    let dict_speedup = dict_serial_s / dict_one_pass_s.max(f64::MIN_POSITIVE);
    eprintln!(
        "  dictionary build: serial replay {dict_serial_s:.3} s, one-pass \
{dict_one_pass_s:.3} s ({dict_speedup:.1}x)"
    );

    // One exploration front; each backend re-prices the same
    // implementations, which is exactly the comparison the JSON reports.
    eprintln!("exploring a {evaluations}-evaluation front for the blueprint decode...");
    let (_case, diag, result) = run_case_study_exploration(evaluations, seed, 0)?;

    let config = CampaignConfig {
        vehicles,
        seed,
        ..CampaignConfig::default()
    };
    eprintln!(
        "campaign: {vehicles} vehicles, {:.0} % defective, {:.0}-day horizon\n",
        config.defect_fraction * 100.0,
        config.horizon_s / 86_400.0
    );

    let mut entries = Vec::new();
    for &kind in &transports {
        let transport = TransportConfig::for_kind(kind);
        let blueprints = blueprints_from_front_with(&diag, &result.front, &transport)?;
        let capable = blueprints.iter().filter(|b| b.is_campaign_capable()).count();
        eprintln!(
            "[{kind}] {} blueprints, {} campaign-capable",
            blueprints.len(),
            capable
        );

        let mut points = Vec::new();
        let mut reference: Option<FleetReport> = None;
        for &threads in &THREAD_SWEEP {
            let cfg = CampaignConfig {
                threads,
                ..config.clone()
            };
            let campaign = Campaign::new(&cut, &blueprints, cfg)?;
            let start = Instant::now();
            let report = campaign.run();
            let seconds = start.elapsed().as_secs_f64();
            eprintln!(
                "[{kind}] threads={threads}: {vehicles} vehicles in {seconds:.3} s \
({:.0} vehicles/s, {} sessions)",
                f64::from(vehicles) / seconds,
                report.sessions_completed
            );
            points.push(SweepPoint {
                threads,
                seconds,
                vehicles_per_s: f64::from(vehicles) / seconds,
                sessions_per_s: report.sessions_completed as f64 / seconds,
            });
            match &reference {
                None => reference = Some(report),
                Some(r) => assert!(
                    *r == report,
                    "fleet report diverged at {threads} threads on {kind} — determinism broken"
                ),
            }
        }
        // The sweep always has at least one point; keep the binary
        // panic-lean anyway.
        let Some(report) = reference else {
            continue;
        };

        // Speedup gate: on a multi-core machine with a fleet big enough
        // to amortize thread spawns, *some* sweep point must beat the
        // serial baseline — otherwise the parallel fold regressed.
        let best_speedup = points
            .iter()
            .map(|p| points[0].seconds / p.seconds)
            .fold(1.0_f64, f64::max);
        if cores == 1 {
            eprintln!(
                "[{kind}] note: single-core machine — thread-sweep speedup \
assertion skipped (best observed {best_speedup:.3}x)"
            );
        } else if vehicles < SPEEDUP_MIN_VEHICLES {
            eprintln!(
                "[{kind}] note: fleet of {vehicles} is below the \
{SPEEDUP_MIN_VEHICLES}-vehicle floor — speedup dominated by thread \
overhead, assertion skipped (best observed {best_speedup:.3}x)"
            );
        } else {
            assert!(
                best_speedup > MIN_SPEEDUP,
                "[{kind}] best thread-sweep speedup {best_speedup:.3}x on a \
{cores}-core machine — parallel simulation fold regressed"
            );
        }

        eprintln!(
            "[{kind}] {} defective vehicles, {} detected ({:.1} %), {} localized ({:.1} %), \
p50 latency {:.1} h\n",
            report.defective,
            report.detected,
            report.detection_rate() * 100.0,
            report.localized,
            report.localization_rate() * 100.0,
            report.latency.p50_s / 3_600.0
        );

        let base = points[0].seconds;
        let sweep: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "        {{\"threads\": {}, \"seconds\": {:.6}, \"vehicles_per_s\": {:.2}, \
\"sessions_per_s\": {:.2}, \"speedup_vs_1_thread\": {:.3}}}",
                    p.threads,
                    p.seconds,
                    p.vehicles_per_s,
                    p.sessions_per_s,
                    base / p.seconds
                )
            })
            .collect();
        entries.push(format!(
            "    {{\n      \"transport\": \"{}\",\n      \"machine_cores\": {cores},\n      \"word_bits\": {word_bits},\n      \"lanes\": {lanes},\n      \"bit_identical_across_sweep\": true,\n      {},\n      \"sweep\": [\n{}\n      ]\n    }}",
            kind.label(),
            json_report(&report),
            sweep.join(",\n")
        ));
    }

    // Scale sweep: the streaming-aggregation evidence. One run per fleet
    // size on the first selected backend at auto thread count, reporting
    // per-stage timings (simulate / merge / diagnose / fold) and the
    // process peak RSS. Points run in ascending size order because the
    // RSS high-water mark is monotone — each sample then belongs to the
    // largest campaign seen so far, i.e. its own.
    let mut scales = env_scale_sweep(&SCALE_SWEEP);
    scales.sort_unstable();
    let mut scale_entries = Vec::new();
    if let Some(&kind) = transports.first() {
        let transport = TransportConfig::for_kind(kind);
        let blueprints = blueprints_from_front_with(&diag, &result.front, &transport)?;
        for &fleet in &scales {
            let cfg = CampaignConfig {
                vehicles: fleet as u32,
                seed,
                threads: 0,
                ..CampaignConfig::default()
            };
            let threads_used = eea_faultsim::resolve_threads(cfg.threads);
            let campaign = Campaign::new(&cut, &blueprints, cfg)?;
            let start = Instant::now();
            let (report, stages) = campaign.run_timed();
            let seconds = start.elapsed().as_secs_f64();
            let rss = peak_rss_kb();
            eprintln!(
                "[scale {fleet}] {seconds:.3} s total ({:.0} vehicles/s) — \
simulate {:.3} s, merge {:.3} s, diagnose {:.3} s (lookup {:.3} s), \
fold {:.3} s, peak RSS {} KiB",
                fleet as f64 / seconds,
                stages.simulate_s,
                stages.merge_s,
                stages.diagnose_s,
                stages.diagnose_lookup_s,
                stages.fold_s,
                rss.map_or_else(|| "?".into(), |kb| kb.to_string()),
            );
            scale_entries.push(format!(
                "    {{\"vehicles\": {fleet}, \"transport\": \"{}\", \"threads\": {threads_used}, \
\"machine_cores\": {cores}, \"word_bits\": {word_bits}, \"lanes\": {lanes}, \
\"seconds\": {seconds:.6}, \"vehicles_per_s\": {:.2}, \
\"peak_rss_kb\": {}, \"detected\": {}, \"stages\": {{\"simulate_s\": {:.6}, \
\"merge_s\": {:.6}, \"diagnose_s\": {:.6}, \"fold_s\": {:.6}, \
\"dict_build_s\": {:.6}, \"diagnose_lookup_s\": {:.6}}}}}",
                kind.label(),
                fleet as f64 / seconds,
                rss.map_or_else(|| "null".into(), |kb| kb.to_string()),
                report.detected,
                stages.simulate_s,
                stages.merge_s,
                stages.diagnose_s,
                stages.fold_s,
                stages.dict_build_s,
                stages.diagnose_lookup_s,
            ));
        }
    }

    let json = format!(
        "{{\n  \"machine_cores\": {cores},\n  \"word_bits\": {word_bits},\n  \"lanes\": {lanes},\n  \
\"dict_build_serial_s\": {dict_serial_s:.6},\n  \
\"dict_build_one_pass_s\": {dict_one_pass_s:.6},\n  \
\"dict_speedup_vs_serial\": {dict_speedup:.3},\n  \
\"transports\": [\n{}\n  ],\n  \"scale_sweep\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        scale_entries.join(",\n")
    );
    println!("{json}");
    let path = out_path("BENCH_fleet.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}
