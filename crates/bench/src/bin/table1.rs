//! Regenerates **Table I**: BIST profiles (pseudo-random pattern count,
//! fault coverage, runtime, encoded data size) on an open synthetic CUT,
//! printed next to the published dataset.
//!
//! ```text
//! cargo run -p eea-bench --bin table1 --release
//! EEA_CUT_GATES=4000 EEA_PRP_MAX=65536 cargo run -p eea-bench --bin table1 --release
//! ```

use eea_bench::env_usize;
use eea_bist::{generate_profiles, paper_table1, CoverageTarget, ProfileConfig};
use eea_dse::EeaError;
use eea_netlist::{synthesize, SynthConfig};

fn main() -> Result<(), EeaError> {
    let gates = env_usize("EEA_CUT_GATES", 1_500);
    let prp_max = env_usize("EEA_PRP_MAX", 16_384) as u64;

    let cut = synthesize(&SynthConfig {
        gates,
        inputs: 32,
        dffs: 128,
        seed: 0xC07,
        ..SynthConfig::default()
    })?;
    println!("substitute CUT: {} (paper: 371,900 collapsed faults, 100 chains x <=77, 40 MHz)", cut.stats());

    let mut prp_counts = vec![256u64, 512, 1_024, 4_096];
    let mut next = 16_384u64;
    while next <= prp_max {
        prp_counts.push(next);
        next *= 4;
    }
    let cfg = ProfileConfig {
        prp_counts,
        targets: vec![
            CoverageTarget::Max,
            CoverageTarget::Max,
            CoverageTarget::OfMax(0.98),
            CoverageTarget::OfMax(0.95),
        ],
        num_chains: 32,
        ..ProfileConfig::default()
    };
    let t = std::time::Instant::now();
    let measured = generate_profiles(&cut, &cfg)?;
    let elapsed = t.elapsed();

    println!("\n== Table I (measured on the open CUT) ==");
    println!(
        "{:>3} {:>8} {:>6} {:>9} {:>11} {:>12}",
        "#", "PRPs", "det.", "cov [%]", "l(b) [ms]", "s(b) [B]"
    );
    for p in &measured {
        println!(
            "{:>3} {:>8} {:>6} {:>9.2} {:>11.2} {:>12}",
            p.id,
            p.random_patterns,
            p.deterministic_patterns,
            p.coverage * 100.0,
            p.runtime_ms,
            p.data_bytes
        );
    }
    println!("generated in {elapsed:.1?}");

    println!("\n== Table I (published dataset) ==");
    println!(
        "{:>3} {:>8} {:>9} {:>11} {:>12}",
        "#", "PRPs", "cov [%]", "l(b) [ms]", "s(b) [B]"
    );
    for p in paper_table1() {
        println!(
            "{:>3} {:>8} {:>9.2} {:>11.2} {:>12}",
            p.id,
            p.random_patterns,
            p.coverage * 100.0,
            p.runtime_ms,
            p.data_bytes
        );
    }

    // Shape checks mirroring the published trends.
    println!("\n== trend checks (measured vs published) ==");
    let groups = measured.chunks(cfg.targets.len()).collect::<Vec<_>>();
    let runtime_monotone = groups
        .windows(2)
        .all(|w| w[1][0].runtime_ms > w[0][0].runtime_ms);
    let data_shrinks = groups.first().zip(groups.last()).is_some_and(|(a, b)| {
        b[cfg.targets.len() - 1].data_bytes <= a[cfg.targets.len() - 1].data_bytes
    });
    // Rows 1 and 2 of each group are two max-coverage variants (like the
    // paper's 99.83 %/99.84 % pairs); ordering is checked from the best
    // max row downward.
    let coverage_ordered = groups.iter().all(|g| {
        let max_cov = g[0].coverage.max(g[1].coverage);
        max_cov >= g[2].coverage - 1e-9 && g[2].coverage >= g[3].coverage - 1e-9
    });
    println!("runtime grows with PRPs (paper: 4.87 ms -> 965 ms): {runtime_monotone}");
    println!("deterministic data shrinks with PRPs (paper: 455 kB -> 172 kB @95%): {data_shrinks}");
    println!("coverage targets order rows within a group: {coverage_ordered}");
    Ok(())
}
