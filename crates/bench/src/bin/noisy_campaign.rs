//! Channel-impairment sweep: diagnosis quality on a noisy bus.
//!
//! Runs the frozen-contract blueprint trio (the exact fleet
//! `tests/fleet_frozen_report.rs` pins) over a clean channel and over a
//! grid of error-rate × truncation-cap points ([`eea_fleet::NoisyChannel`]).
//! Three guarantees are asserted before any number is reported:
//!
//! 1. **Clean bit-identity** — the clean baseline is bit-identical across
//!    the thread × shard sweep, carries no robustness block, and (at the
//!    default 100 000-vehicle scale) reproduces the frozen report digest
//!    `0xC52D_7E52_A85B_1C99`.
//! 2. **Equivalence oracle** — a zero-rate, uncapped `NoisyChannel`
//!    (which owns and advances its dedicated per-vehicle RNG streams)
//!    reproduces the clean report bit-for-bit.
//! 3. **Impaired bit-identity** — every nonzero-impairment point is
//!    bit-identical across the same thread × shard sweep, including the
//!    f64 retransmission-overhead accumulator and the rank CDF.
//!
//! Per point the `BENCH_fleet.json` entry records the robustness axis —
//! retransmission volume/overhead, window-lost / corrupted /
//! cap-truncated upload counts, localization-rank degradation vs. the
//! clean twin, and the impaired-vs-clean rank CDF — under a
//! `"noisy_campaign"` key cooperating with the `fleet_campaign`,
//! `sched_campaign` and `gateway_soak` sections.
//!
//! ```text
//! cargo run -p eea-bench --bin noisy_campaign --release
//! EEA_NOISY_VEHICLES=10000 cargo run -p eea-bench --bin noisy_campaign --release
//! EEA_OUT_DIR=target/exp cargo run -p eea-bench --bin noisy_campaign --release
//! ```

use std::time::Instant;

use eea_bench::{env_u64, env_usize, out_path};
use eea_dse::EeaError;
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FleetReport, NoisyChannel, RobustnessReport, TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Frame-error-rate grid; corruption and window-loss rates scale with it
/// (see [`noisy`]).
const ERROR_RATES: [f64; 3] = [0.002, 0.01, 0.05];
/// Truncation-cap grid: uncapped, and a tight 48-byte cap (4 fail-memory
/// entries) that truncates the larger fail memories.
const CAPS: [u64; 2] = [u64::MAX, 48];
/// Channel seed of the sweep (the campaign seed stays `EEA_SEED`).
const CHANNEL_SEED: u64 = 0x0B5E_55ED_CA4B_005E;
/// The one-shot 100 000-vehicle digest `tests/fleet_frozen_report.rs`
/// freezes — the clean baseline must reproduce it at default scale.
const FROZEN_DIGEST: u64 = 0xC52D_7E52_A85B_1C99;

/// The frozen-contract blueprint trio (local-storage fast path, gateway
/// streaming, never-completing first session), stamped with `channel`.
fn blueprints(channel: ChannelConfig) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport: TransportKind::MirroredCan,
            channel,
            task_set: None,
        },
    ]
}

/// One sweep point: the frame-error rate is the axis value; payload
/// corruption fires at 4× and window loss at 2× that rate (payload events
/// are per-upload, frame errors per-frame, so the higher payload rates
/// keep both effects visible at the low end of the grid).
fn noisy(rate: f64, cap: u64) -> ChannelConfig {
    ChannelConfig::Noisy(NoisyChannel {
        frame_error_rate: rate,
        corruption_rate: (4.0 * rate).min(0.9),
        window_loss_rate: (2.0 * rate).min(0.9),
        truncation_cap_bytes: cap,
        seed: CHANNEL_SEED,
    })
}

/// FNV-1a 64 over the complete Debug rendering — the digest discipline of
/// `tests/fleet_frozen_report.rs`.
fn digest(report: &FleetReport) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in format!("{report:?}").bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Thread × shard sweep of one channel point; asserts bit-identity and
/// returns the reference report plus the slowest-to-fastest timing line.
fn run_sweep(
    label: &str,
    cut: &CutModel,
    channel: ChannelConfig,
    config: &CampaignConfig,
) -> Result<FleetReport, EeaError> {
    let bp = blueprints(channel);
    let mut reference: Option<FleetReport> = None;
    for &threads in &THREAD_SWEEP {
        let cfg = CampaignConfig {
            threads,
            shards: threads.min(5),
            ..config.clone()
        };
        let campaign = Campaign::new(cut, &bp, cfg)?;
        let start = Instant::now();
        let report = campaign.run();
        let seconds = start.elapsed().as_secs_f64();
        eprintln!(
            "[{label}] threads={threads}: {} vehicles in {seconds:.3} s ({:.0} vehicles/s)",
            report.vehicles,
            f64::from(report.vehicles) / seconds,
        );
        match &reference {
            None => reference = Some(report),
            Some(r) => assert!(
                *r == report,
                "[{label}] fleet report diverged at {threads} threads — determinism broken"
            ),
        }
    }
    reference.ok_or_else(|| EeaError::Fleet("empty thread sweep".into()))
}

fn json_robustness(rob: &RobustnessReport) -> String {
    let cdf: Vec<String> = rob
        .rank_cdf
        .iter()
        .map(|p| {
            format!(
                "{{\"bound\": {}, \"impaired_le\": {}, \"clean_le\": {}}}",
                p.bound, p.impaired_le, p.clean_le
            )
        })
        .collect();
    format!(
        "\"robustness\": {{\"impaired_uploads\": {}, \"retransmitted_frames\": {}, \
\"retransmit_overhead_s\": {:.3}, \"window_lost_uploads\": {}, \"corrupted_uploads\": {}, \
\"cap_truncated_uploads\": {}, \"rejected_uploads\": {}, \"rank_degraded\": {}, \
\"rank_improved\": {}, \"delocalized\": {}, \"rank_cdf\": [{}]}}",
        rob.impaired_uploads,
        rob.retransmitted_frames,
        rob.retransmit_overhead_s,
        rob.window_lost_uploads,
        rob.corrupted_uploads,
        rob.cap_truncated_uploads,
        rob.rejected_uploads,
        rob.rank_degraded,
        rob.rank_improved,
        rob.delocalized,
        cdf.join(", "),
    )
}

fn main() -> Result<(), EeaError> {
    let vehicles = env_usize("EEA_NOISY_VEHICLES", 100_000) as u32;
    let seed = env_u64("EEA_SEED", 2014);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("machine: {cores} core(s); {vehicles} vehicles, seed {seed}");

    let cut = CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })?;
    let config = CampaignConfig {
        vehicles,
        seed,
        ..CampaignConfig::default()
    };

    // Clean baseline: bit-identical across the sweep, no robustness
    // block, and at default scale the frozen one-shot digest.
    let clean = run_sweep("clean", &cut, ChannelConfig::Clean, &config)?;
    assert!(
        clean.robustness.is_none(),
        "clean campaign must not report a robustness axis"
    );
    let clean_digest = digest(&clean);
    let digest_frozen = vehicles == 100_000 && seed == 2014;
    if digest_frozen {
        assert_eq!(
            clean_digest, FROZEN_DIGEST,
            "clean channel must reproduce the frozen 100k digest"
        );
    }
    eprintln!("[clean] digest {clean_digest:#018X} (frozen contract checked: {digest_frozen})");

    // Equivalence oracle at bench scale: zero-rate noisy == clean.
    let zero = run_sweep(
        "zero-rate-noisy",
        &cut,
        ChannelConfig::Noisy(NoisyChannel {
            seed: CHANNEL_SEED,
            ..NoisyChannel::default()
        }),
        &config,
    )?;
    assert!(
        zero == clean,
        "zero-rate NoisyChannel must reproduce the Clean report bit-for-bit"
    );
    eprintln!("[zero-rate-noisy] bit-identical to clean: true");

    // The impairment grid.
    let mut points = Vec::new();
    let mut degraded_points = 0usize;
    for &cap in &CAPS {
        for &rate in &ERROR_RATES {
            let cap_label = if cap == u64::MAX {
                "uncapped".to_string()
            } else {
                format!("{cap} B")
            };
            let label = format!("rate {rate} / cap {cap_label}");
            let report = run_sweep(&label, &cut, noisy(rate, cap), &config)?;
            assert_eq!(
                report.detected,
                clean.detected,
                "[{label}] impairment degrades ranks, it must not drop detections"
            );
            let Some(rob) = &report.robustness else {
                return Err(EeaError::Fleet(format!(
                    "[{label}] nonzero rates must surface a robustness block"
                )));
            };
            degraded_points += usize::from(rob.rank_degraded > 0);
            eprintln!(
                "[{label}] impaired {} / retx frames {} (+{:.1} s) / degraded {} / \
delocalized {} / cap-truncated {}",
                rob.impaired_uploads,
                rob.retransmitted_frames,
                rob.retransmit_overhead_s,
                rob.rank_degraded,
                rob.delocalized,
                rob.cap_truncated_uploads,
            );
            points.push(format!(
                "    {{\"frame_error_rate\": {rate}, \"truncation_cap_bytes\": {}, \
\"bit_identical_across_sweep\": true, \"detected\": {}, \"localized\": {}, {}}}",
                if cap == u64::MAX {
                    "null".to_string()
                } else {
                    cap.to_string()
                },
                report.detected,
                report.localized,
                json_robustness(rob),
            ));
        }
    }
    assert!(
        degraded_points >= 3,
        "the sweep must show rank degradation at >= 3 points, got {degraded_points}"
    );

    let section = format!(
        "\"noisy_campaign\": {{\n    \"vehicles\": {vehicles}, \"seed\": {seed}, \
\"machine_cores\": {cores},\n    \"clean_digest\": \"{clean_digest:#018X}\", \
\"clean_digest_frozen_checked\": {digest_frozen},\n    \
\"clean_equals_zero_rate_noisy\": true,\n    \"points\": [\n{}\n    ]\n  }}",
        points.join(",\n")
    );
    let path = out_path("BENCH_fleet.json");
    let json = merge_section(std::fs::read_to_string(&path).ok().as_deref(), &section);
    println!("{json}");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}

/// Splices the `"noisy_campaign"` section into an existing
/// `BENCH_fleet.json`, replacing a previous noisy section when re-run.
/// The section lands *before* the `sched_campaign` and `gateway_soak`
/// sections, preserving both binaries' own merge anchors. Plain string
/// surgery — the workspace has no JSON dependency by design.
fn merge_section(existing: Option<&str>, section: &str) -> String {
    const KEY: &str = ",\n  \"noisy_campaign\"";
    const TAILS: [&str; 2] = [",\n  \"sched_campaign\"", ",\n  \"gateway_soak\""];
    let fallback = || format!("{{\n  {section}\n}}\n");
    let Some(existing) = existing else {
        return fallback();
    };
    // Re-run: peel the previous noisy section, which ends at the first
    // tail key after it or at the document's closing brace.
    let cleaned: String = if let Some(at) = existing.find(KEY) {
        let rest = &existing[at + KEY.len()..];
        match TAILS.iter().filter_map(|t| rest.find(t)).min() {
            Some(rel) => {
                let tail_at = at + KEY.len() + rel;
                format!("{}{}", &existing[..at], &existing[tail_at..])
            }
            None => format!("{}\n}}\n", existing[..at].trim_end()),
        }
    } else {
        existing.to_string()
    };
    if let Some(at) = TAILS.iter().filter_map(|t| cleaned.find(t)).min() {
        return format!("{},\n  {section}{}", &cleaned[..at], &cleaned[at..]);
    }
    let Some(end) = cleaned.rfind('}') else {
        return fallback();
    };
    let body = cleaned[..end].trim_end();
    if body.is_empty() || !body.starts_with('{') {
        return fallback();
    }
    format!("{body},\n  {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::merge_section;

    #[test]
    fn merges_remerges_and_keeps_tail_sections_last() {
        let fresh = merge_section(None, "\"noisy_campaign\": {\"x\": 1}");
        assert_eq!(fresh, "{\n  \"noisy_campaign\": {\"x\": 1}\n}\n");

        let doc = "{\n  \"transports\": [\n    {}\n  ]\n}\n";
        let merged = merge_section(Some(doc), "\"noisy_campaign\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"noisy_campaign\": {\"x\": 1}\n}\n"
        );
        let remerged = merge_section(Some(&merged), "\"noisy_campaign\": {\"x\": 2}");
        assert_eq!(
            remerged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"noisy_campaign\": {\"x\": 2}\n}\n"
        );

        // With sched and soak sections present the noisy section lands
        // before both, and a re-merge leaves them untouched.
        let tail = "{\n  \"transports\": [],\n  \"sched_campaign\": {\"s\": 1},\n  \
\"gateway_soak\": {\"g\": 1}\n}\n";
        let merged = merge_section(Some(tail), "\"noisy_campaign\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"transports\": [],\n  \"noisy_campaign\": {\"x\": 1},\n  \
\"sched_campaign\": {\"s\": 1},\n  \"gateway_soak\": {\"g\": 1}\n}\n"
        );
        let remerged = merge_section(Some(&merged), "\"noisy_campaign\": {\"x\": 2}");
        assert_eq!(
            remerged,
            "{\n  \"transports\": [],\n  \"noisy_campaign\": {\"x\": 2},\n  \
\"sched_campaign\": {\"s\": 1},\n  \"gateway_soak\": {\"g\": 1}\n}\n"
        );

        assert_eq!(
            merge_section(Some("garbage"), "\"noisy_campaign\": {}"),
            "{\n  \"noisy_campaign\": {}\n}\n"
        );
    }
}
