//! Regenerates **Fig. 6**: gateway vs distributed memory and shut-off time
//! (log scale) for seven representative implementations of the Fig. 5
//! front.
//!
//! Like `fig5`, the experiment runs once per `EEA_TRANSPORTS` backend
//! (default: classic mirrored CAN). The classic rows land in `fig6.csv`;
//! other backends in `fig6-<label>.csv`.
//!
//! ```text
//! cargo run -p eea-bench --bin fig6 --release
//! EEA_EVALS=100000 cargo run -p eea-bench --bin fig6 --release
//! EEA_TRANSPORTS=flexray cargo run -p eea-bench --bin fig6 --release
//! ```

use eea_bench::{
    env_transports, env_u64, env_usize, out_path, run_case_study_exploration_with_transport,
};
use eea_dse::{fig6_csv, fig6_rows, EeaError, TransportConfig, TransportKind};

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 10_000);
    let seed = env_u64("EEA_SEED", 2014);

    for kind in env_transports(&[TransportKind::MirroredCan]) {
        println!("== transport: {kind} ==");
        let transport = TransportConfig::for_kind(kind);
        let (_case, _diag, result) =
            run_case_study_exploration_with_transport(evaluations, seed, 0, transport)?;
        let rows = fig6_rows(&result.front, 7);

        println!("seven representative implementations (spread across test quality):\n");
        println!(
            "{:>4} {:>14} {:>14} {:>8} {:>16} {:>10} {:>8}",
            "impl", "gateway [B]", "local [B]", "gw/total", "shut-off [s]", "quality", "cost"
        );
        for r in &rows {
            let total = (r.gateway_bytes + r.distributed_bytes).max(1);
            println!(
                "{:>4} {:>14} {:>14} {:>7.0}% {:>16.3} {:>9.2}% {:>8.1}",
                r.number,
                r.gateway_bytes,
                r.distributed_bytes,
                r.gateway_bytes as f64 / total as f64 * 100.0,
                r.shutoff_s,
                r.quality_pct,
                r.cost
            );
        }

        // Log-scale shut-off bar chart, as in the paper's right axis.
        println!("\nshut-off time (log scale):");
        for r in &rows {
            let log = r.shutoff_s.max(1e-3).log10(); // -3 .. ~5
            let bar = (((log + 3.0) / 8.0) * 60.0).round().max(1.0) as usize;
            println!("impl {}: {} {:.3} s", r.number, "#".repeat(bar), r.shutoff_s);
        }
        println!(
            "\npaper's reading: implementations with most data at the gateway have the\n\
             lowest memory cost but the highest shut-off times; distributed storage\n\
             inverts the tradeoff (compare the rows above)."
        );

        let name = match kind {
            TransportKind::MirroredCan => "fig6.csv".to_string(),
            other => format!("fig6-{}.csv", other.label()),
        };
        let path = out_path(&name);
        match std::fs::write(&path, fig6_csv(&rows)) {
            Ok(()) => println!("\nwrote {} ({} rows)\n", path.display(), rows.len()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    Ok(())
}
