//! Schedule-derived vs flat shut-off windows over a heterogeneous
//! (logic + SRAM March) fleet — the in-ECU task-model evidence.
//!
//! Builds the shared logic CUT and the March-test SRAM model, then runs
//! the *same* mixed-family blueprint trio twice: once with the flat
//! driving/parked shut-off budget (the historical window source) and once
//! with windows derived from a fixed-priority cyclic-task schedule's idle
//! intervals ([`eea_fleet::TaskSchedule`]). Each variant sweeps 1/2/4/8
//! worker threads and a shard pair; the [`eea_fleet::FleetReport`] is
//! asserted **bit-identical across the sweep** before any number is
//! reported. Per variant the entry records the headline campaign counters
//! plus the per-family detection/latency split
//! ([`eea_fleet::FleetReport::per_family`]) — the schedule-vs-flat
//! latency comparison lands side by side in `BENCH_fleet.json` under a
//! `"sched_campaign"` key, cooperating with the sections `fleet_campaign`
//! and `gateway_soak` write.
//!
//! ```text
//! cargo run -p eea-bench --bin sched_campaign --release
//! EEA_SCHED_VEHICLES=10000 cargo run -p eea-bench --bin sched_campaign --release
//! EEA_OUT_DIR=target/exp cargo run -p eea-bench --bin sched_campaign --release
//! ```

use std::time::Instant;

use eea_bench::{env_u64, env_usize, out_path};
use eea_dse::EeaError;
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    FamilyReport, FleetReport, MarchTest, PeriodicTask, SporadicTask, SramConfig, TaskSetConfig,
    TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The in-ECU cyclic-task set every scheduled blueprint carries: two
/// periodic tasks (hyperperiod 60 s, worst-case utilization ≈ 0.35) plus
/// one sporadic task (≈ 0.04), leaving idle intervals comfortably above
/// the 5 s minimum BIST slice.
fn task_set() -> TaskSetConfig {
    TaskSetConfig {
        periodic: vec![
            PeriodicTask {
                period_us: 20_000_000,
                offset_us: 0,
                wcet_us: 4_000_000,
                priority: 0,
            },
            PeriodicTask {
                period_us: 60_000_000,
                offset_us: 5_000_000,
                wcet_us: 9_000_000,
                priority: 1,
            },
        ],
        sporadic: vec![SporadicTask {
            min_interarrival_us: 45_000_000,
            wcet_us: 2_000_000,
            priority: 2,
        }],
        min_slice_s: 5.0,
    }
}

/// The mixed-family sibling of the determinism-test trio: one all-local
/// logic implementation, one gateway-streaming SRAM implementation, and
/// one heterogeneous blueprint (dead logic session + streaming SRAM
/// session). `task_set` is stamped on every blueprint for the schedule
/// variant and left `None` for the flat variant.
fn blueprints(task_set: Option<&TaskSetConfig>) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, family: CutFamily, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![
                plan(0, CutFamily::Logic, 0.0, 400.0),
                plan(1, CutFamily::Logic, 0.0, 150.0),
            ],
            shutoff_budget_s: 900.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: task_set.cloned(),
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, CutFamily::Sram, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: task_set.cloned(),
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![
                plan(3, CutFamily::Logic, f64::INFINITY, 0.0),
                plan(4, CutFamily::Sram, 300.0, 60.0),
            ],
            shutoff_budget_s: 2_000.0,
            transport: TransportKind::MirroredCan,
            channel: ChannelConfig::Clean,
            task_set: task_set.cloned(),
        },
    ]
}

fn json_family(f: &FamilyReport) -> String {
    format!(
        "{{\"family\": \"{}\", \"detected\": {}, \"localized\": {}, \
\"latency_p50_s\": {:.1}, \"latency_p90_s\": {:.1}, \"latency_p99_s\": {:.1}}}",
        f.family.label(),
        f.detected,
        f.localized,
        f.latency.p50_s,
        f.latency.p90_s,
        f.latency.p99_s,
    )
}

fn json_report(report: &FleetReport) -> String {
    let families: Vec<String> = report.per_family.iter().map(json_family).collect();
    format!(
        "\"campaign\": {{\"vehicles\": {}, \"defective\": {}, \"detected\": {}, \
\"localized\": {}, \"sessions_completed\": {}, \"windows_used\": {}, \
\"detection_rate\": {:.4}, \"latency_p50_s\": {:.1}, \"latency_p90_s\": {:.1}, \
\"latency_p99_s\": {:.1}}},\n      \"per_family\": [{}]",
        report.vehicles,
        report.defective,
        report.detected,
        report.localized,
        report.sessions_completed,
        report.windows_used,
        report.detection_rate(),
        report.latency.p50_s,
        report.latency.p90_s,
        report.latency.p99_s,
        families.join(", "),
    )
}

/// One variant (flat or schedule windows): thread-sweep the campaign,
/// assert bit-identity, return the reference report + the JSON entry.
fn run_variant(
    label: &str,
    cut: &CutModel,
    sram: &MarchTest,
    bp: &[VehicleBlueprint],
    config: &CampaignConfig,
    cores: usize,
) -> Result<(FleetReport, String), EeaError> {
    let mut reference: Option<FleetReport> = None;
    let mut sweep = Vec::new();
    for &threads in &THREAD_SWEEP {
        // Shards vary with the thread point so the sweep also crosses the
        // aggregation axis; bit-identity must hold regardless.
        let cfg = CampaignConfig {
            threads,
            shards: threads.min(5),
            ..config.clone()
        };
        let campaign = Campaign::with_models(cut, Some(sram), bp, cfg)?;
        let start = Instant::now();
        let report = campaign.run();
        let seconds = start.elapsed().as_secs_f64();
        eprintln!(
            "[{label}] threads={threads}: {} vehicles in {seconds:.3} s \
({:.0} vehicles/s, {} windows used)",
            report.vehicles,
            f64::from(report.vehicles) / seconds,
            report.windows_used
        );
        sweep.push(format!(
            "        {{\"threads\": {threads}, \"seconds\": {seconds:.6}, \
\"vehicles_per_s\": {:.2}}}",
            f64::from(report.vehicles) / seconds
        ));
        match &reference {
            None => reference = Some(report),
            Some(r) => assert!(
                *r == report,
                "[{label}] fleet report diverged at {threads} threads — determinism broken"
            ),
        }
    }
    let Some(report) = reference else {
        // THREAD_SWEEP is non-empty; keep the binary panic-lean anyway.
        return Err(EeaError::Fleet("empty thread sweep".into()));
    };
    for fam in &report.per_family {
        eprintln!(
            "[{label}]   {}: {} detected, {} localized, p50 latency {:.1} h",
            fam.family.label(),
            fam.detected,
            fam.localized,
            fam.latency.p50_s / 3_600.0
        );
    }
    let entry = format!(
        "    {{\n      \"windows\": \"{label}\",\n      \"machine_cores\": {cores},\n      \
\"bit_identical_across_sweep\": true,\n      {},\n      \"sweep\": [\n{}\n      ]\n    }}",
        json_report(&report),
        sweep.join(",\n")
    );
    Ok((report, entry))
}

fn main() -> Result<(), EeaError> {
    let vehicles = env_usize("EEA_SCHED_VEHICLES", 100_000) as u32;
    let seed = env_u64("EEA_SEED", 2014);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("machine: {cores} core(s); {vehicles} vehicles, seed {seed}");

    // The cheap shared substrate of the determinism tests plus the
    // default 64×16 SRAM: the sweep measures window-source and family
    // plumbing, not gate-level simulation.
    let cut = CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })?;
    let sram =
        MarchTest::build(SramConfig::default()).map_err(|e| EeaError::Fleet(e.to_string()))?;
    eprintln!(
        "SRAM March C-: {} faults, {} detectable ({:.1} % coverage)",
        sram.num_faults(),
        sram.detectable_faults().len(),
        sram.coverage() * 100.0
    );

    let config = CampaignConfig {
        vehicles,
        seed,
        ..CampaignConfig::default()
    };

    let ts = task_set();
    let flat_bp = blueprints(None);
    let sched_bp = blueprints(Some(&ts));
    let (flat, flat_entry) = run_variant("flat", &cut, &sram, &flat_bp, &config, cores)?;
    let (sched, sched_entry) = run_variant("schedule", &cut, &sram, &sched_bp, &config, cores)?;

    // The headline comparison: the schedule only *removes* usable idle
    // time relative to the flat budget (busy intervals and sub-slice
    // fragments are lost), so detection latency can only stay or grow.
    let p50_ratio = if flat.latency.p50_s > 0.0 {
        sched.latency.p50_s / flat.latency.p50_s
    } else {
        1.0
    };
    eprintln!(
        "\nschedule vs flat: p50 latency {:.1} h vs {:.1} h ({p50_ratio:.2}x), \
windows used {} vs {}",
        sched.latency.p50_s / 3_600.0,
        flat.latency.p50_s / 3_600.0,
        sched.windows_used,
        flat.windows_used
    );

    let section = format!(
        "\"sched_campaign\": {{\n    \"vehicles\": {vehicles}, \"seed\": {seed}, \
\"latency_p50_ratio_sched_vs_flat\": {p50_ratio:.4},\n    \"variants\": [\n{flat_entry},\n{sched_entry}\n    ]\n  }}"
    );
    let path = out_path("BENCH_fleet.json");
    let json = merge_section(std::fs::read_to_string(&path).ok().as_deref(), &section);
    println!("{json}");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}

/// Splices the `"sched_campaign"` section into an existing
/// `BENCH_fleet.json`, replacing a previous sched section when re-run.
/// The section is always inserted *before* any `"gateway_soak"` section,
/// preserving that binary's last-section invariant (its own merge
/// truncates at the soak key). Plain string surgery — the workspace has
/// no JSON dependency by design.
fn merge_section(existing: Option<&str>, section: &str) -> String {
    const KEY: &str = ",\n  \"sched_campaign\"";
    const SOAK: &str = ",\n  \"gateway_soak\"";
    let fallback = || format!("{{\n  {section}\n}}\n");
    let Some(existing) = existing else {
        return fallback();
    };
    // Re-run: peel the previous sched section, which ends either at the
    // soak key (sched is inserted before soak) or at the document's
    // closing brace.
    let cleaned: String = if let Some(at) = existing.find(KEY) {
        match existing[at + KEY.len()..].find(SOAK) {
            Some(rel) => {
                let soak_at = at + KEY.len() + rel;
                format!("{}{}", &existing[..at], &existing[soak_at..])
            }
            None => format!("{}\n}}\n", existing[..at].trim_end()),
        }
    } else {
        existing.to_string()
    };
    if let Some(at) = cleaned.find(SOAK) {
        return format!("{},\n  {section}{}", &cleaned[..at], &cleaned[at..]);
    }
    let Some(end) = cleaned.rfind('}') else {
        return fallback();
    };
    let body = cleaned[..end].trim_end();
    if body.is_empty() || !body.starts_with('{') {
        return fallback();
    }
    format!("{body},\n  {section}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::merge_section;

    #[test]
    fn merges_remerges_and_keeps_soak_last() {
        let fresh = merge_section(None, "\"sched_campaign\": {\"x\": 1}");
        assert_eq!(fresh, "{\n  \"sched_campaign\": {\"x\": 1}\n}\n");

        let doc = "{\n  \"transports\": [\n    {}\n  ]\n}\n";
        let merged = merge_section(Some(doc), "\"sched_campaign\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"sched_campaign\": {\"x\": 1}\n}\n"
        );
        let remerged = merge_section(Some(&merged), "\"sched_campaign\": {\"x\": 2}");
        assert_eq!(
            remerged,
            "{\n  \"transports\": [\n    {}\n  ],\n  \"sched_campaign\": {\"x\": 2}\n}\n"
        );

        // With a soak section present the sched section lands before it,
        // and replacing an old sched section leaves soak untouched.
        let with_soak = "{\n  \"transports\": [],\n  \"gateway_soak\": {\"s\": 1}\n}\n";
        let merged = merge_section(Some(with_soak), "\"sched_campaign\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"transports\": [],\n  \"sched_campaign\": {\"x\": 1},\n  \
\"gateway_soak\": {\"s\": 1}\n}\n"
        );
        let remerged = merge_section(Some(&merged), "\"sched_campaign\": {\"x\": 2}");
        assert_eq!(
            remerged,
            "{\n  \"transports\": [],\n  \"sched_campaign\": {\"x\": 2},\n  \
\"gateway_soak\": {\"s\": 1}\n}\n"
        );

        assert_eq!(
            merge_section(Some("garbage"), "\"sched_campaign\": {}"),
            "{\n  \"sched_campaign\": {}\n}\n"
        );
    }
}
