//! Thread-scaling sweep of the two parallel evaluation engines:
//!
//! * worklist-parallel PPSFP fault simulation ([`eea_faultsim::ParFaultSim`]),
//! * lane-based SAT-decoding DSE evaluation ([`eea_dse::DseProblem`]).
//!
//! Each engine runs the same workload at 1/2/4/8 worker threads and the
//! results are checked to be bit-identical across the sweep before any
//! timing is reported. Timings land in `BENCH_parallel.json` (machine
//! readable, includes the machine's core count — speedups saturate at the
//! physical parallelism available, so a 1-core container reports ~1x).
//!
//! ```text
//! cargo run -p eea-bench --bin bench_parallel --release
//! EEA_BENCH_BLOCKS=64 EEA_BENCH_BATCHES=8 cargo run -p eea-bench --bin bench_parallel --release
//! ```

use std::time::Instant;

use eea_bench::{env_usize, out_path, paper_diag_spec};
use eea_dse::{DseProblem, EeaError, EVAL_LANES};
use eea_faultsim::{FaultUniverse, ParFaultSim, PatternBlock, DEFAULT_LANES};
use eea_moea::{Problem, Rng};
use eea_netlist::{synthesize, Circuit, SynthConfig};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct SweepPoint {
    threads: usize,
    seconds: f64,
    /// Work items per second (pattern blocks or genotype evaluations).
    throughput: f64,
}

fn random_block(c: &Circuit, rng: &mut u64, count: usize) -> PatternBlock {
    let mut block = PatternBlock::zeroed(c, count);
    block.fill_words(|| {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    });
    block
}

/// One faultsim workload: a fresh collapsed universe pushed through `blocks`
/// full-width pattern blocks. Returns the per-block detection counts (the
/// determinism fingerprint).
fn faultsim_workload(
    circuit: &Circuit,
    sim: &mut ParFaultSim,
    blocks: usize,
) -> Vec<usize> {
    let mut universe = FaultUniverse::collapsed(circuit);
    let mut rng = 0x5EEDu64;
    (0..blocks)
        .map(|_| {
            let block = random_block(circuit, &mut rng, PatternBlock::CAPACITY);
            sim.detect_block(&block, &mut universe)
        })
        .collect()
}

fn faultsim_sweep(blocks: usize) -> Result<(Vec<SweepPoint>, bool), EeaError> {
    let circuit = synthesize(&SynthConfig {
        gates: 2_000,
        inputs: 32,
        dffs: 96,
        seed: 0xFA58,
        ..SynthConfig::default()
    })?;
    let mut points = Vec::new();
    let mut reference: Option<Vec<usize>> = None;
    let mut identical = true;
    for &threads in &THREAD_SWEEP {
        let mut sim = ParFaultSim::new(&circuit, threads);
        faultsim_workload(&circuit, &mut sim, blocks); // warm-up
        let start = Instant::now();
        let fingerprint = faultsim_workload(&circuit, &mut sim, blocks);
        let seconds = start.elapsed().as_secs_f64();
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => identical &= *r == fingerprint,
        }
        points.push(SweepPoint {
            threads,
            seconds,
            throughput: blocks as f64 / seconds,
        });
        eprintln!(
            "faultsim  threads={threads}: {blocks} blocks in {seconds:.3} s"
        );
    }
    Ok((points, identical))
}

fn dse_sweep(batches: usize) -> Result<(Vec<SweepPoint>, bool), EeaError> {
    let (_case, diag) = paper_diag_spec()?;
    let mut points = Vec::new();
    let mut reference: Option<Vec<Option<Vec<f64>>>> = None;
    let mut identical = true;
    for &threads in &THREAD_SWEEP {
        let mut problem = DseProblem::with_threads(&diag, threads);
        let n = problem.genotype_len();
        let mut rng = Rng::new(0xD5E);
        let inputs: Vec<Vec<Vec<f64>>> = (0..batches)
            .map(|_| {
                (0..EVAL_LANES)
                    .map(|_| (0..n).map(|_| rng.unit()).collect())
                    .collect()
            })
            .collect();
        problem.evaluate_batch(&inputs[0]); // warm-up
        let mut problem = DseProblem::with_threads(&diag, threads);
        let start = Instant::now();
        let mut outputs = Vec::new();
        for batch in &inputs {
            outputs.extend(problem.evaluate_batch(batch));
        }
        let seconds = start.elapsed().as_secs_f64();
        let evals = batches * EVAL_LANES;
        match &reference {
            None => reference = Some(outputs),
            Some(r) => identical &= *r == outputs,
        }
        points.push(SweepPoint {
            threads,
            seconds,
            throughput: evals as f64 / seconds,
        });
        eprintln!(
            "dse       threads={threads}: {evals} evaluations in {seconds:.3} s"
        );
    }
    Ok((points, identical))
}

fn json_sweep(name: &str, unit: &str, points: &[SweepPoint], identical: bool) -> String {
    let base = points[0].seconds;
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"seconds\": {:.6}, \"{unit}_per_s\": {:.2}, \"speedup_vs_1_thread\": {:.3}}}",
                p.threads,
                p.seconds,
                p.throughput,
                base / p.seconds
            )
        })
        .collect();
    format!(
        "  \"{name}\": {{\n   \"bit_identical_across_sweep\": {identical},\n   \"sweep\": [\n{}\n   ]\n  }}",
        entries.join(",\n")
    )
}

fn main() -> Result<(), EeaError> {
    let blocks = env_usize("EEA_BENCH_BLOCKS", 32);
    let batches = env_usize("EEA_BENCH_BATCHES", 4);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("machine: {cores} core(s) available\n");

    let (fs_points, fs_identical) = faultsim_sweep(blocks)?;
    let (dse_points, dse_identical) = dse_sweep(batches)?;
    assert!(fs_identical, "faultsim results diverged across thread counts");
    assert!(dse_identical, "dse results diverged across thread counts");

    let word_bits = PatternBlock::CAPACITY;
    let lanes = DEFAULT_LANES;
    let json = format!
(
        "{{\n  \"machine_cores\": {cores},\n  \"word_bits\": {word_bits},\n  \"lanes\": {lanes},\n  \"workload\": {{\"faultsim_blocks\": {blocks}, \"dse_batches\": {batches}, \"dse_batch_size\": {EVAL_LANES}}},\n{},\n{}\n}}\n",
        json_sweep("faultsim", "blocks", &fs_points, fs_identical),
        json_sweep("dse", "evals", &dse_points, dse_identical),
    );
    println!("{json}");
    let path = out_path("BENCH_parallel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}
